#!/usr/bin/env bash
# Harness smoke target: reduced-scale Figure 7 sweep, serial vs parallel,
# with a bit-identity check between the two. Writes BENCH_harness.json
# (wall-times, speedup, per-run detail) to the repo root.
#
# Knobs (all optional):
#   ULMT_WORKERS  worker count for the parallel leg (default: all cores)
#   SWEEP_APPS    comma-separated apps (default: Mcf,Gap)
#   ULMT_SCALE    small | mid | paper (default: small)
#   BENCH_OUT     output path (default: BENCH_harness.json)
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release -p ulmt-bench --bin sweep
exec cargo run --release -q -p ulmt-bench --bin sweep
