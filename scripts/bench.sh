#!/usr/bin/env bash
# Harness smoke target: reduced-scale Figure 7 sweep, serial vs parallel,
# with a bit-identity check between the two. Writes BENCH_harness.json
# (wall-times, speedup, per-run detail) to the repo root; the sweep binary
# writes it atomically (temp file + rename), so an interrupted run never
# leaves a truncated report.
#
# On a single-core host the parallel leg still runs (for the identity
# gate) but the report carries "skipped_single_core": true — the speedup
# figure is not a threading measurement there.
#
# Knobs (all optional):
#   ULMT_WORKERS    worker count for the parallel leg (default: all
#                   cores; values above the core count are clamped)
#   SWEEP_APPS      comma-separated apps (default: Mcf,Gap)
#   ULMT_SCALE      small | mid | paper (default: small)
#   BENCH_OUT       output path (default: BENCH_harness.json)
#   ULMT_FAULT_SEED when set, adds a fault-injection determinism leg
#   ULMT_RETRIES    per-job retry budget for transient failures (default: 1)
set -euo pipefail
cd "$(dirname "$0")/.."

# Never leave a stale half-built binary ambiguity: build first, fail fast.
cargo build --release -p ulmt-bench --bin sweep
exec cargo run --release -q -p ulmt-bench --bin sweep
