#!/usr/bin/env bash
# Tier-1 CI gate. Run before every merge:
#
#   scripts/ci.sh
#
# Steps, in order (first failure aborts):
#   1. cargo fmt --check      -- formatting drift
#   2. cargo clippy -D warnings  (skipped with a notice if clippy is not
#                                 installed in this toolchain)
#   3. cargo build --release  -- the tier-1 build
#   4. cargo test -q          -- the tier-1 test suite
#   5. cargo test --doc       -- every doc example compiles and runs
#   6. trace validation       -- a traced fixed-seed faulted run whose
#                                counters must re-derive bit-exactly from
#                                the event stream (inspect's `trace` leg)
#
# This wraps the canonical tier-1 verify from ROADMAP.md
# (`cargo build --release && cargo test -q`) with the lint front-line so
# a clean ci.sh run implies a clean tier-1 run.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --all -- --check

if cargo clippy --version >/dev/null 2>&1; then
    echo "== cargo clippy (deny warnings)"
    cargo clippy --workspace --all-targets -- -D warnings
else
    echo "== cargo clippy not installed; skipping lint step"
fi

echo "== cargo build --release"
cargo build --release

echo "== cargo test -q"
cargo test -q

echo "== cargo test --doc"
cargo test -q --workspace --doc

echo "== trace validation (faulted, seed 7)"
ULMT_FAULT_SEED=7 ULMT_SCALE=small \
    cargo run -q --release -p ulmt-bench --bin inspect -- trace mcf target/traces

echo "ci.sh: all gates passed"
