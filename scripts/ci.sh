#!/usr/bin/env bash
# Tier-1 CI gate. Run before every merge:
#
#   scripts/ci.sh
#
# Steps, in order (first failure aborts):
#   1. cargo fmt --check      -- formatting drift
#   2. cargo clippy -D warnings  (skipped with a notice if clippy is not
#                                 installed in this toolchain)
#   3. cargo build --release  -- the tier-1 build
#   4. cargo test -q          -- the tier-1 test suite
#   5. cargo test --doc       -- every doc example compiles and runs
#   6. trace validation       -- a traced fixed-seed faulted run whose
#                                counters must re-derive bit-exactly from
#                                the event stream (inspect's `trace` leg)
#   7. service smoke          -- the sharded prefetch service at 1 and 2
#                                shards, 2 tenants: cross-shard-count
#                                fingerprint identity, the snapshot ->
#                                restore -> fingerprint round-trip, and
#                                the seeded chaos leg (kill/recover
#                                rounds under clean and lossy recovery
#                                policies)
#   8. chaos gate             -- asserts on the smoke report that the
#                                chaos leg actually exercised BOTH paths
#                                (>=1 clean recovery bit-identical to the
#                                fault-free run, >=1 lossy recovery with
#                                exact dropped-batch conservation)
#   8b. fairness gate         -- asserts on the same report that the
#                                starvation leg held its invariants: the
#                                FIFO (shared-queue baseline) tables are
#                                bit-identical to the DRR tables, DRR
#                                starves no light tenant (Jain >= 0.9,
#                                light p99 >= 5x better than FIFO), and
#                                the light-tenant p99 stays bounded
#   8c. net gate              -- asserts on the same report that the
#                                `--net` leg drove every tenant stream
#                                through the loopback TCP front-end and
#                                that the network-path fingerprints are
#                                bit-identical to the in-process path
#   8d. metrics gate          -- asserts on the same report that the
#                                metrics plane produced a populated
#                                per-shard report whose counters match
#                                shard_stats exactly, that a
#                                metrics-disabled run reproduced the
#                                enabled run's fingerprints bit-for-bit
#                                (on both transports), and that the
#                                enabled `--net` leg held >= 98% of the
#                                disabled leg's throughput
#   9. tables microbench smoke -- the flat-arena table layout against the
#                                preserved reference layout on a tiny
#                                profile: table fingerprints must be
#                                bit-identical and every snapshot must
#                                survive the byte-codec round trip (the
#                                bin exits 1 on any mismatch)
#  10. deprecation audit      -- the one-cycle deprecation window is
#                                closed: no `#[deprecated]` item remains
#                                anywhere in the tree, and nothing still
#                                references the removed pre-redesign
#                                entry points
#
# This wraps the canonical tier-1 verify from ROADMAP.md
# (`cargo build --release && cargo test -q`) with the lint front-line so
# a clean ci.sh run implies a clean tier-1 run.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --all -- --check

if cargo clippy --version >/dev/null 2>&1; then
    echo "== cargo clippy (deny warnings)"
    cargo clippy --workspace --all-targets -- -D warnings
else
    echo "== cargo clippy not installed; skipping lint step"
fi

echo "== cargo build --release"
cargo build --release

echo "== cargo test -q"
cargo test -q

echo "== cargo test --doc"
cargo test -q --workspace --doc

echo "== trace validation (faulted, seed 7)"
ULMT_FAULT_SEED=7 ULMT_SCALE=small \
    cargo run -q --release -p ulmt-bench --bin inspect -- trace mcf target/traces

echo "== service smoke (1 vs 2 shards, 2 tenants, snapshot round-trip, chaos + net legs)"
ULMT_SHARDS=1,2 ULMT_TENANTS=2 ULMT_FAULT_SEED=7 \
    BENCH_OUT=target/BENCH_service_smoke.json \
    cargo run -q --release -p ulmt-bench --bin serve -- --net

echo "== chaos gate (clean AND lossy recovery paths both exercised)"
# serve exits non-zero on any chaos violation; this gate additionally
# proves the fixed seed drove both recovery paths, so a refactor that
# silently stops scheduling one of them fails CI instead of passing
# vacuously.
grep -Eq '"clean_recoveries": [1-9]' target/BENCH_service_smoke.json \
    || { echo "chaos gate: no clean recoveries exercised"; exit 1; }
grep -Eq '"lossy_recoveries": [1-9]' target/BENCH_service_smoke.json \
    || { echo "chaos gate: no lossy recoveries exercised"; exit 1; }
grep -q '"clean_identical": true' target/BENCH_service_smoke.json \
    || { echo "chaos gate: clean recovery not bit-identical"; exit 1; }
grep -q '"lossy_conserved": true' target/BENCH_service_smoke.json \
    || { echo "chaos gate: lossy recovery accounting not conserved"; exit 1; }

echo "== fairness gate (FIFO == DRR tables, bounded light-tenant p99)"
# serve already exits non-zero when the starvation invariants fail; these
# asserts prove the leg ran and keep the thresholds visible in CI output.
grep -q '"scheduler_fingerprints_identical": true' target/BENCH_service_smoke.json \
    || { echo "fairness gate: FIFO and DRR learned different tables"; exit 1; }
grep -q '"ok": true' target/BENCH_service_smoke.json \
    || { echo "fairness gate: starvation leg invariants failed"; exit 1; }
# Bounded tail: under DRR the light tenants' submit->ack p99 must stay
# under 5 ms even with the hot tenant flooding a 48-batch backlog.
drr_p99=$(sed -n 's/.*"drr": {"light_p50_ms": [0-9.]*, "light_p99_ms": \([0-9.]*\),.*/\1/p' \
    target/BENCH_service_smoke.json)
[ -n "$drr_p99" ] || { echo "fairness gate: no DRR p99 in report"; exit 1; }
awk -v p99="$drr_p99" 'BEGIN { exit !(p99 > 0 && p99 < 5.0) }' \
    || { echo "fairness gate: DRR light p99 ${drr_p99} ms not bounded"; exit 1; }

echo "== net gate (network-path fingerprints bit-identical to in-process)"
# serve exits non-zero when the net leg diverges; this gate additionally
# proves the leg ran at all, so dropping `--net` from the smoke
# invocation fails CI instead of passing vacuously.
grep -q '"identical_to_in_process": true' target/BENCH_service_smoke.json \
    || { echo "net gate: network leg missing or not bit-identical"; exit 1; }

echo "== metrics gate (populated report, counter identity, zero-cost when off)"
# serve exits non-zero when any metrics invariant fails; these asserts
# prove the plane actually ran (a populated per-shard report) so a
# refactor that silently disables it fails CI instead of passing
# vacuously.
grep -q '"counters_match_shard_stats": true' target/BENCH_service_smoke.json \
    || { echo "metrics gate: registry counters diverge from shard_stats"; exit 1; }
grep -q '"disabled_fingerprints_identical": true' target/BENCH_service_smoke.json \
    || { echo "metrics gate: disabling metrics changed the learned tables"; exit 1; }
grep -q '"metrics_modes_identical": true' target/BENCH_service_smoke.json \
    || { echo "metrics gate: net fingerprints differ between metrics modes"; exit 1; }
grep -q '"metrics_overhead_ok": true' target/BENCH_service_smoke.json \
    || { echo "metrics gate: enabled net leg below 98% of disabled throughput"; exit 1; }
grep -Eq '"queue_wait_nanos": \{"p50": [0-9]+, "p99": [0-9]+\}' \
    target/BENCH_service_smoke.json \
    || { echo "metrics gate: no per-shard queue-wait percentiles in report"; exit 1; }
# The Prometheus exposition must stay parseable (TYPE lines + name{labels}
# value samples only); the dedicated unit test is the parser.
cargo test -q -p ulmt-service --lib \
    metrics::tests::exposition_is_parseable_name_value_lines >/dev/null \
    || { echo "metrics gate: exposition output failed to parse"; exit 1; }

echo "== tables microbench smoke (arena vs reference identity, tiny profile)"
ULMT_TABLE_MISSES=20000 ULMT_TABLE_ROWS=512 ULMT_REPEAT=1 \
    BENCH_OUT=target/BENCH_tables_smoke.json \
    cargo run -q --release -p ulmt-bench --bin tables

echo "== deprecation audit"
# The one-cycle deprecation window is closed: the old wrappers are gone,
# so no #[deprecated] item may exist anywhere in the tree and nothing
# may reference the removed pre-redesign entry points.
if grep -rn --include='*.rs' '#\[deprecated' src tests examples crates; then
    echo "deprecation audit: #[deprecated] items remain (above); the"
    echo "deprecation window is one release cycle -- remove, don't park"
    exit 1
fi
if grep -rn --include='*.rs' -E '\b(run_figure7_schemes|compare_policies)\b' \
        src tests examples crates; then
    echo "deprecation audit: references to removed pre-redesign APIs (above)"
    exit 1
fi

echo "ci.sh: all gates passed"
