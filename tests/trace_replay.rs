//! Record/replay: a captured trace driven through the simulator must
//! reproduce the generator-driven run exactly.

use ulmt::system::{Experiment, PrefetchScheme, SystemConfig, SystemSim};
use ulmt::workloads::codec;
use ulmt::workloads::{App, WorkloadSpec};

#[test]
fn replayed_trace_reproduces_the_run_bit_for_bit() {
    let spec = WorkloadSpec::new(App::Gap).scale(1.0 / 32.0).iterations(2);

    // Reference: the generator-driven run.
    let reference = Experiment::new(SystemConfig::small(), spec.clone())
        .scheme(PrefetchScheme::NoPref)
        .run();

    // Capture, serialize, deserialize, replay.
    let bytes = codec::encode(spec.build()).expect("generator addresses are aligned");
    let replayed = codec::decode(&bytes).expect("roundtrip");
    let result = SystemSim::from_parts(
        SystemConfig::small(),
        Box::new(replayed.into_iter()),
        false,
        None,
        false,
        "NoPref".to_string(),
        "Gap-replay".to_string(),
    )
    .run();

    assert_eq!(result.exec_cycles, reference.exec_cycles);
    assert_eq!(result.l2_misses, reference.l2_misses);
    assert_eq!(result.refs, reference.refs);
    assert_eq!(result.breakdown, reference.breakdown);
    assert_eq!(result.inter_miss.counts(), reference.inter_miss.counts());
}

#[test]
fn trace_files_are_compact() {
    let spec = WorkloadSpec::new(App::Tree).scale(1.0 / 16.0).iterations(2);
    let n = spec.build().count();
    let bytes = codec::encode(spec.build()).expect("aligned");
    assert_eq!(bytes.len(), n * codec::RECORD_BYTES);
    // 12 bytes per reference: a million-reference trace is 12 MB.
    assert_eq!(codec::RECORD_BYTES, 12);
}
