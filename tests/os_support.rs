//! OS-level support (Section 3.4) exercised through the public API:
//! page re-mapping, dynamic table sizing, and per-application ULMTs in a
//! multiprogrammed setting.

use ulmt::core::algorithm::UlmtAlgorithm;
use ulmt::core::table::{Base, Chain, Replicated, TableParams};
use ulmt::core::AlgorithmSpec;
use ulmt::memproc::{FixedLatencyMemory, MemProcConfig, MemProcLocation, MemProcessor};
use ulmt::simcore::{LineAddr, PageAddr};

fn train_page_walk(alg: &mut dyn UlmtAlgorithm, page: u64, reps: usize) {
    let first = PageAddr::new(page).first_line().raw();
    for _ in 0..reps {
        for l in first..first + PageAddr::lines_per_page() {
            alg.process_miss(LineAddr::new(l));
        }
    }
}

#[test]
fn remap_preserves_learning_across_algorithms() {
    let mut algs: Vec<Box<dyn UlmtAlgorithm>> = vec![
        Box::new(Base::new(TableParams::base_default(64 * 1024))),
        Box::new(Chain::new(TableParams::chain_default(64 * 1024))),
        Box::new(Replicated::new(TableParams::repl_default(64 * 1024))),
    ];
    for alg in &mut algs {
        train_page_walk(alg.as_mut(), 50, 2);
        alg.remap_page(PageAddr::new(50), PageAddr::new(7000));

        let new_first = PageAddr::new(7000).first_line().raw();
        let preds = alg.predict(LineAddr::new(new_first + 5), 1);
        assert!(
            preds[0].contains(&LineAddr::new(new_first + 6)),
            "{}: learned successor did not move with the page",
            alg.name()
        );
        // The old page no longer predicts.
        let old_first = PageAddr::new(50).first_line().raw();
        let old = alg.predict(LineAddr::new(old_first + 5), 1);
        assert!(
            old[0].is_empty(),
            "{}: stale row survived remap",
            alg.name()
        );
    }
}

#[test]
fn remap_through_the_memory_processor() {
    // The OS interface reaches the algorithm through the memory
    // processor (the scheduler owns the ULMT, Section 3.4).
    let mut mp = MemProcessor::new(
        MemProcConfig::default(),
        AlgorithmSpec::repl(64 * 1024).build(),
    );
    let mut mem = FixedLatencyMemory::new(MemProcLocation::InDram);
    let first = PageAddr::new(9).first_line().raw();
    for _ in 0..2 {
        for l in first..first + 16 {
            let now = mp.busy_until();
            mp.process(LineAddr::new(l), now, &mut mem);
        }
    }
    mp.algorithm_mut()
        .remap_page(PageAddr::new(9), PageAddr::new(4242));
    let new_first = PageAddr::new(4242).first_line().raw();
    let preds = mp.algorithm_mut().predict(LineAddr::new(new_first + 3), 1);
    assert!(preds[0].contains(&LineAddr::new(new_first + 4)));
}

#[test]
fn dynamic_sizing_shrinks_and_grows() {
    let mut repl = Replicated::new(TableParams::repl_default(16 * 1024));
    train_page_walk(&mut repl, 1, 2);
    train_page_walk(&mut repl, 2, 2);

    let big = repl.table_size_bytes();
    repl.resize(2 * 1024);
    assert!(repl.table_size_bytes() < big / 4);
    // Recently learned correlations survive the shrink.
    let first = PageAddr::new(2).first_line().raw();
    let preds = repl.predict(LineAddr::new(first + 1), 1);
    assert!(preds[0].contains(&LineAddr::new(first + 2)));

    // Growing back works and keeps state.
    repl.resize(16 * 1024);
    let preds = repl.predict(LineAddr::new(first + 1), 1);
    assert!(preds[0].contains(&LineAddr::new(first + 2)));
}

#[test]
fn per_application_ulmts_do_not_interfere() {
    // "A better approach is to associate a different ULMT, with its own
    // table, to each application. This eliminates interference."
    let mut mp_a = MemProcessor::new(
        MemProcConfig::default(),
        AlgorithmSpec::repl(4 * 1024).build(),
    );
    let mut mp_b = MemProcessor::new(
        MemProcConfig::default(),
        AlgorithmSpec::repl(4 * 1024).build(),
    );
    let mut mem = FixedLatencyMemory::new(MemProcLocation::InDram);

    // Application A walks 100,101,102...; application B walks the same
    // *line numbers* in reverse — a shared table would corrupt both.
    for _ in 0..3 {
        for i in 0..32u64 {
            let now = mp_a.busy_until();
            mp_a.process(LineAddr::new(100 + i), now, &mut mem);
            let now = mp_b.busy_until();
            mp_b.process(LineAddr::new(131 - i), now, &mut mem);
        }
    }
    let a = mp_a.algorithm_mut().predict(LineAddr::new(110), 1);
    let b = mp_b.algorithm_mut().predict(LineAddr::new(110), 1);
    assert!(a[0].contains(&LineAddr::new(111)), "A sees its own order");
    assert!(b[0].contains(&LineAddr::new(109)), "B sees its own order");
}

#[test]
fn protection_algorithms_never_dereference_application_data() {
    // The ULMT "can observe the physical addresses ... but it can neither
    // read from nor write to these addresses": its only memory traffic is
    // to its own table. Verify every table touch stays inside the table's
    // address range.
    let mut repl = Replicated::new(TableParams::repl_default(1024));
    let table_bytes = repl.table_size_bytes();
    for i in 0..256u64 {
        let step = repl.process_miss(LineAddr::new(i * 977));
        for touch in step
            .prefetch_cost
            .table_touches
            .iter()
            .chain(step.learn_cost.table_touches.iter())
        {
            let base = 0x4000_0000u64;
            assert!(
                touch.addr.raw() >= base && touch.addr.raw() + touch.bytes <= base + table_bytes,
                "table touch outside the table: {:?}",
                touch
            );
        }
    }
}
