//! The adaptive ULMT (Section 3.3.3's "decide the algorithm on-the-fly")
//! run through the full system: it should track the better stock
//! algorithm on each workload class without being told which.

use ulmt::system::{Experiment, PrefetchScheme, SystemConfig};
use ulmt::workloads::{App, WorkloadSpec};

fn exec(app: App, scheme: PrefetchScheme) -> u64 {
    let spec = WorkloadSpec::new(app).scale(1.0 / 16.0).iterations(3);
    Experiment::new(SystemConfig::small(), spec)
        .scheme(scheme)
        .run()
        .exec_cycles
}

#[test]
fn adaptive_tracks_repl_on_irregular_workloads() {
    let nopref = exec(App::Mcf, PrefetchScheme::NoPref);
    let repl = exec(App::Mcf, PrefetchScheme::Repl);
    let adaptive = exec(App::Mcf, PrefetchScheme::Adaptive);
    assert!(adaptive < nopref, "adaptive must speed Mcf up");
    // Within 15% of the hand-picked Repl configuration.
    assert!(
        (adaptive as f64) < repl as f64 * 1.15,
        "adaptive {adaptive} vs repl {repl}"
    );
}

#[test]
fn adaptive_improves_sequential_workloads_too() {
    let nopref = exec(App::Equake, PrefetchScheme::NoPref);
    let adaptive = exec(App::Equake, PrefetchScheme::Adaptive);
    assert!(adaptive < nopref, "adaptive {adaptive} vs nopref {nopref}");
}

#[test]
fn adaptive_never_catastrophic() {
    // On every application, adaptive stays within 20% of NoPref even
    // where prefetching cannot help (e.g. Tree).
    for app in App::ALL {
        let spec = WorkloadSpec::new(app).scale(1.0 / 32.0).iterations(2);
        let nopref = Experiment::new(SystemConfig::small(), spec.clone())
            .scheme(PrefetchScheme::NoPref)
            .run()
            .exec_cycles;
        let adaptive = Experiment::new(SystemConfig::small(), spec)
            .scheme(PrefetchScheme::Adaptive)
            .run()
            .exec_cycles;
        assert!(
            (adaptive as f64) < nopref as f64 * 1.2,
            "{app}: adaptive {adaptive} vs nopref {nopref}"
        );
    }
}
