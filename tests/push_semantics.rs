//! Full-system checks of the L2 push-accept rules (Section 2.1) — the
//! drop/steal outcomes observed through end-to-end counters.

use ulmt::system::{Experiment, PrefetchScheme, SystemConfig};
use ulmt::workloads::{App, WorkloadSpec};

fn run(app: App, scheme: PrefetchScheme) -> ulmt::system::RunResult {
    let spec = WorkloadSpec::new(app).scale(1.0 / 16.0).iterations(4);
    Experiment::new(SystemConfig::small(), spec)
        .scheme(scheme)
        .run()
}

#[test]
fn pushes_partition_into_the_figure9_categories() {
    // `issued` counts exactly the prefetches that entered queue 3, so
    // every one of them has exactly one fate: it stole a waiting MSHR
    // (DelayedHit), was installed prefetched (and later became a Hit, a
    // Replaced line, or stayed resident), was dropped on arrival, was
    // squashed in queue 3 by a demand miss, or never resolved before the
    // run drained. No slack, no double counting.
    let r = run(App::Gap, PrefetchScheme::Repl);
    let p = &r.prefetch;
    assert!(p.issued > 0);
    assert_eq!(
        p.issued,
        p.delayed_hits
            + p.accepted
            + p.redundant
            + p.dropped_other
            + p.squashed_at_nb
            + p.inflight_at_end,
        "{p:?}"
    );
    assert_eq!(
        p.accepted,
        p.hits + p.replaced + p.untouched_at_end,
        "{p:?}"
    );
    assert!(p.hits > 0, "some pushes must be demanded");
    assert!(p.delayed_hits > 0, "some pushes must steal waiting MSHRs");
}

#[test]
fn redundant_pushes_exist_for_noisy_workloads() {
    // Parser's noise makes the ULMT prefetch lines that demand fetched
    // on its own: those arrive to find the line present.
    let r = run(App::Parser, PrefetchScheme::Repl);
    assert!(r.prefetch.redundant > 0);
}

#[test]
fn replaced_pushes_dominate_on_conflicted_workloads() {
    // Sparse's conflict sets evict pushed lines before use (Figure 9's
    // huge Replaced bar for Sparse).
    let r = run(App::Sparse, PrefetchScheme::Repl);
    assert!(
        r.prefetch.replaced > r.prefetch.hits,
        "replaced {} vs hits {}",
        r.prefetch.replaced,
        r.prefetch.hits
    );
}

#[test]
fn no_pushes_means_no_push_outcomes() {
    for scheme in [PrefetchScheme::NoPref, PrefetchScheme::Conven4] {
        let r = run(App::Gap, scheme);
        let p = &r.prefetch;
        assert_eq!(p.issued, 0);
        assert_eq!(p.hits + p.delayed_hits + p.replaced + p.redundant, 0);
    }
}

#[test]
fn filter_absorbs_repeat_prefetches() {
    // Replicated re-prefetches overlapping successor windows; the Filter
    // must drop a meaningful share.
    let r = run(App::Mst, PrefetchScheme::Repl);
    assert!(
        r.filter_dropped > r.prefetch.issued / 10,
        "filter dropped {} of {}",
        r.filter_dropped,
        r.prefetch.issued
    );
}

#[test]
fn three_way_multiprogramming_runs_clean() {
    use ulmt::system::{MultiprogExperiment, TablePolicy};
    let apps = vec![
        WorkloadSpec::new(App::Mcf).scale(1.0 / 32.0).iterations(2),
        WorkloadSpec::new(App::Gap).scale(1.0 / 32.0).iterations(2),
        WorkloadSpec::new(App::Tree).scale(1.0 / 32.0).iterations(2),
    ];
    let total_refs: usize = apps.iter().map(|a| a.build().count()).sum();
    let r = MultiprogExperiment::new(SystemConfig::small(), apps)
        .quantum(700)
        .policy(TablePolicy::PerApplication)
        .run();
    assert_eq!(r.refs as usize, total_refs);
    assert!(r.prefetch.hits + r.prefetch.delayed_hits > 0);
}
