//! End-to-end integration tests spanning every crate: workload generation
//! → full-system simulation → result invariants.

use ulmt::system::{Experiment, PrefetchScheme, RunResult, SystemConfig};
use ulmt::workloads::{App, WorkloadSpec};

fn run(app: App, scheme: PrefetchScheme) -> RunResult {
    let spec = WorkloadSpec::new(app).scale(1.0 / 16.0).iterations(3);
    Experiment::new(SystemConfig::small(), spec)
        .scheme(scheme)
        .run()
}

#[test]
fn scheme_ordering_on_irregular_workloads() {
    // The paper's headline ordering: Base < Chain < Repl on irregular
    // applications (Figure 7).
    for app in [App::Mcf, App::Mst] {
        let nopref = run(app, PrefetchScheme::NoPref).exec_cycles;
        let base = run(app, PrefetchScheme::Base).exec_cycles;
        let chain = run(app, PrefetchScheme::Chain).exec_cycles;
        let repl = run(app, PrefetchScheme::Repl).exec_cycles;
        assert!(base < nopref, "{app}: Base should beat NoPref");
        assert!(chain < base, "{app}: Chain should beat Base");
        assert!(repl < chain, "{app}: Repl should beat Chain");
    }
}

#[test]
fn conven4_and_repl_are_complementary() {
    // Conven4 helps sequential apps, Repl helps irregular ones, and the
    // combination is at least as good as either (Section 5.2).
    let cg_conv = run(App::Cg, PrefetchScheme::Conven4).exec_cycles;
    let cg_repl = run(App::Cg, PrefetchScheme::Repl).exec_cycles;
    let cg_both = run(App::Cg, PrefetchScheme::Conven4Repl).exec_cycles;
    assert!(
        cg_conv < cg_repl,
        "CG is sequential: Conven4 should beat Repl"
    );
    assert!(cg_both as f64 <= cg_conv as f64 * 1.02);

    let mcf_conv = run(App::Mcf, PrefetchScheme::Conven4).exec_cycles;
    let mcf_repl = run(App::Mcf, PrefetchScheme::Repl).exec_cycles;
    let mcf_both = run(App::Mcf, PrefetchScheme::Conven4Repl).exec_cycles;
    assert!(
        mcf_repl < mcf_conv,
        "Mcf is irregular: Repl should beat Conven4"
    );
    assert!(mcf_both as f64 <= mcf_repl as f64 * 1.02);
}

#[test]
fn prefetching_reduces_beyond_l2_not_busy() {
    let nopref = run(App::Gap, PrefetchScheme::NoPref);
    let repl = run(App::Gap, PrefetchScheme::Repl);
    // Busy time is workload-determined and identical.
    assert_eq!(nopref.breakdown.busy, repl.breakdown.busy);
    // The savings come out of BeyondL2.
    assert!(repl.breakdown.beyond_l2 < nopref.breakdown.beyond_l2);
}

#[test]
fn coverage_and_misses_are_consistent() {
    let nopref = run(App::Mst, PrefetchScheme::NoPref);
    let repl = run(App::Mst, PrefetchScheme::Repl);
    let p = &repl.prefetch;
    // Hits + DelayedHits + NonPrefMisses accounts for roughly the
    // original misses (conflict effects allow some slack).
    let accounted = p.hits + p.delayed_hits + p.non_pref_misses;
    let original = nopref.l2_misses;
    assert!(
        (accounted as f64) > 0.85 * original as f64,
        "accounted {accounted} vs original {original}"
    );
    assert!(
        p.coverage(original) > 0.5,
        "coverage {}",
        p.coverage(original)
    );
}

#[test]
fn location_study_small_penalty() {
    // Figure 8: moving the memory processor to the North Bridge costs
    // only a little, thanks to far-ahead prefetching.
    let dram = run(App::Mst, PrefetchScheme::Conven4Repl).exec_cycles;
    let mc = run(App::Mst, PrefetchScheme::Conven4ReplMc).exec_cycles;
    assert!(mc >= dram, "NB location cannot be faster");
    assert!(
        (mc as f64) < dram as f64 * 1.25,
        "NB location should be within ~25%: {mc} vs {dram}"
    );
}

#[test]
fn custom_scheme_beats_generic_on_mst() {
    // Table 5: NumLevels = 4 pays off for MST — once the deeper table has
    // had enough iterations to learn (the level-4 entries only fill after
    // the pattern has repeated).
    let spec = WorkloadSpec::new(App::Mst).scale(1.0 / 32.0); // auto iterations: ~30
    let generic = Experiment::new(SystemConfig::small(), spec.clone())
        .scheme(PrefetchScheme::Conven4Repl)
        .run()
        .exec_cycles;
    let custom = Experiment::new(SystemConfig::small(), spec)
        .scheme(PrefetchScheme::Custom)
        .run()
        .exec_cycles;
    assert!(custom < generic, "custom {custom} vs generic {generic}");
}

#[test]
fn whole_pipeline_is_deterministic() {
    let a = run(App::Sparse, PrefetchScheme::Conven4Repl);
    let b = run(App::Sparse, PrefetchScheme::Conven4Repl);
    assert_eq!(a.exec_cycles, b.exec_cycles);
    assert_eq!(a.l2_misses, b.l2_misses);
    assert_eq!(a.prefetch.hits, b.prefetch.hits);
    assert_eq!(a.prefetch.issued, b.prefetch.issued);
    assert_eq!(a.inter_miss.counts(), b.inter_miss.counts());
}

#[test]
fn all_apps_run_all_figure7_schemes() {
    // Smoke: every (app, scheme) pair completes and accounts its time.
    for app in App::ALL {
        let spec = WorkloadSpec::new(app).scale(1.0 / 32.0).iterations(2);
        for scheme in PrefetchScheme::FIGURE7 {
            let r = Experiment::new(SystemConfig::small(), spec.clone())
                .scheme(scheme)
                .run();
            assert!(r.exec_cycles > 0, "{app}/{scheme}");
            let accounted = r.breakdown.total() as f64;
            assert!(
                (accounted - r.exec_cycles as f64).abs() / (r.exec_cycles as f64) < 0.1,
                "{app}/{scheme}: accounted {accounted} vs {}",
                r.exec_cycles
            );
        }
    }
}
