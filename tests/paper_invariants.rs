//! Invariants lifted directly from the paper's text, checked end-to-end.

use ulmt::core::predict::PredictionScorer;
use ulmt::core::AlgorithmSpec;
use ulmt::system::{l2_miss_stream_with, Experiment, PrefetchScheme, SystemConfig};
use ulmt::workloads::{App, WorkloadSpec};

fn spec(app: App) -> WorkloadSpec {
    WorkloadSpec::new(app).scale(1.0 / 16.0).iterations(4)
}

#[test]
fn dependent_misses_dominate_the_200_280_bin() {
    // Figure 6: "The most significant bin is [200,280) ... since the
    // round-trip latency to memory is 208-243 cycles, dependent misses
    // are likely to fall in this bin."
    for app in [App::Mcf, App::Mst] {
        let r = Experiment::new(SystemConfig::small(), spec(app))
            .scheme(PrefetchScheme::NoPref)
            .run();
        let fr = r.inter_miss.fractions();
        assert!(fr[2] > 0.4, "{app}: [200,280) fraction {fr:?}");
    }
}

#[test]
fn ulmt_occupancy_stays_under_200_cycles() {
    // "the figure shows that, in all the algorithms, the occupancy time
    // is less than 200 cycles. Consequently, the ULMT is fast enough to
    // process most of the L2 misses."
    for scheme in [
        PrefetchScheme::Base,
        PrefetchScheme::Chain,
        PrefetchScheme::Repl,
    ] {
        let r = Experiment::new(SystemConfig::small(), spec(App::Mcf))
            .scheme(scheme)
            .run();
        let u = r.ulmt.expect("ULMT ran");
        assert!(
            u.occupancy.mean() < 200.0,
            "{scheme}: occupancy {}",
            u.occupancy.mean()
        );
    }
}

#[test]
fn repl_has_the_lowest_response_time() {
    // Figure 10: "Repl has the lowest response time".
    let response = |scheme| {
        let r = Experiment::new(SystemConfig::small(), spec(App::Gap))
            .scheme(scheme)
            .run();
        r.ulmt.expect("ULMT ran").response.mean()
    };
    let chain = response(PrefetchScheme::Chain);
    let repl = response(PrefetchScheme::Repl);
    assert!(repl < chain, "repl {repl} vs chain {chain}");
    // And the North Bridge location roughly doubles it.
    let repl_mc = response(PrefetchScheme::ReplMc);
    assert!(repl_mc > repl * 1.2, "mc {repl_mc} vs dram {repl}");
}

#[test]
fn repl_prediction_beats_chain_at_deep_levels() {
    // Figure 5: "Repl almost always outperforms Chain by a wide margin"
    // at levels 2 and 3.
    let config = SystemConfig::small();
    let wl = spec(App::Gap).iterations(8);
    let misses: Vec<_> = l2_miss_stream_with(&config, &wl).collect();
    let rows = (4 * wl.footprint_lines() as usize).next_power_of_two();
    let accuracy = |spec: AlgorithmSpec| {
        let mut alg = spec.build();
        let mut scorer = PredictionScorer::new(3);
        for &m in &misses {
            scorer.observe(alg.as_mut(), m);
        }
        (scorer.accuracy(2), scorer.accuracy(3))
    };
    let (chain2, chain3) = accuracy(AlgorithmSpec::chain(rows));
    let (repl2, repl3) = accuracy(AlgorithmSpec::repl(rows));
    assert!(repl2 >= chain2, "level2 repl {repl2} chain {chain2}");
    assert!(repl3 >= chain3, "level3 repl {repl3} chain {chain3}");
}

#[test]
fn beyond_l2_is_the_main_nopref_component() {
    // "On average, BeyondL2 is the most significant component of the
    // execution time under NoPref" (44% in the paper).
    let mut beyond = 0.0;
    for app in App::ALL {
        let wl = WorkloadSpec::new(app).scale(1.0 / 32.0).iterations(2);
        let r = Experiment::new(SystemConfig::small(), wl)
            .scheme(PrefetchScheme::NoPref)
            .run();
        beyond += r.breakdown.fraction_beyond_l2();
    }
    let avg = beyond / App::ALL.len() as f64;
    assert!(avg > 0.4, "average BeyondL2 fraction {avg}");
}

#[test]
fn memory_side_prefetching_adds_only_one_way_traffic() {
    // Figure 11's explanation: pushes add one-way (reply) traffic, so the
    // utilization increase stays moderate.
    let base = Experiment::new(SystemConfig::small(), spec(App::Mcf))
        .scheme(PrefetchScheme::NoPref)
        .run();
    let repl = Experiment::new(SystemConfig::small(), spec(App::Mcf))
        .scheme(PrefetchScheme::Repl)
        .run();
    assert!(repl.fsb_utilization > base.fsb_utilization);
    assert!(
        repl.fsb_utilization < 3.0 * base.fsb_utilization,
        "prefetching should not explode bus utilization: {} vs {}",
        repl.fsb_utilization,
        base.fsb_utilization
    );
}

#[test]
fn issued_prefetches_account_exactly_under_every_scheme() {
    // The queue-3 admission stages and push outcomes partition `issued`
    // exactly: nothing a ULMT requests is ever lost by the accounting,
    // whichever Figure 7 scheme produced it.
    for scheme in PrefetchScheme::FIGURE7 {
        let r = Experiment::new(SystemConfig::small(), spec(App::Mcf))
            .scheme(scheme)
            .run();
        let p = &r.prefetch;
        assert_eq!(
            p.issued,
            p.delayed_hits
                + p.accepted
                + p.redundant
                + p.dropped_other
                + p.squashed_at_nb
                + p.inflight_at_end,
            "{scheme}: {p:?}"
        );
        assert_eq!(
            p.accepted,
            p.hits + p.replaced + p.untouched_at_end,
            "{scheme}: {p:?}"
        );
    }
}

#[test]
fn trace_rederives_every_counter_bit_exactly() {
    // The cycle-stamped event trace is a second, independent account of
    // the run; `validate_trace` re-derives the aggregates from it and
    // demands bit-identity — with and without fault injection, and the
    // tracer itself must not perturb the simulation.
    use ulmt::simcore::{FaultConfig, TraceConfig};
    use ulmt::system::validate_trace;
    let experiment = |faults: Option<FaultConfig>, traced: bool| {
        let mut e =
            Experiment::new(SystemConfig::small(), spec(App::Mcf)).scheme(PrefetchScheme::Repl);
        if let Some(f) = faults {
            e = e.faults(f);
        }
        if traced {
            e = e.trace(TraceConfig::default());
        }
        e.run()
    };
    for faults in [None, Some(FaultConfig::stress(11))] {
        let traced = experiment(faults, true);
        let audit = validate_trace(&traced).unwrap_or_else(|e| {
            panic!("faults={:?}: {e}", faults.map(|f| f.seed));
        });
        assert!(audit.events > 0);
        let untraced = experiment(faults, false);
        assert_eq!(
            traced.fingerprint(),
            untraced.fingerprint(),
            "tracing changed the simulation (faults={:?})",
            faults.map(|f| f.seed)
        );
    }
}

#[test]
fn sparse_and_tree_have_the_smallest_speedups() {
    // Section 5.2 / Figure 9: "Sparse and Tree, the applications with the
    // smallest speedups" (cache conflicts + inaccurate prefetches).
    let speedup = |app: App| {
        let wl = WorkloadSpec::new(app).scale(1.0 / 16.0).iterations(3);
        let base = Experiment::new(SystemConfig::small(), wl.clone())
            .scheme(PrefetchScheme::NoPref)
            .run();
        let repl = Experiment::new(SystemConfig::small(), wl)
            .scheme(PrefetchScheme::Repl)
            .run();
        repl.speedup_vs(base.exec_cycles)
    };
    let tree = speedup(App::Tree);
    let mcf = speedup(App::Mcf);
    let mst = speedup(App::Mst);
    assert!(tree < mcf, "tree {tree} vs mcf {mcf}");
    assert!(tree < mst, "tree {tree} vs mst {mst}");
}
