//! Randomized property tests on the core data structures: correlation
//! tables, the filter, the stream detector, caches, and the cost model —
//! exercised with arbitrary miss streams from the in-repo PRNG.

use ulmt::cache::{AccessOutcome, Cache, CacheConfig, PushOutcome};
use ulmt::core::algorithm::UlmtAlgorithm;
use ulmt::core::stream::StreamDetector;
use ulmt::core::table::{Base, Chain, Replicated, TableParams};
use ulmt::core::Filter;
use ulmt::simcore::rng::Pcg32;
use ulmt::simcore::LineAddr;

const CASES: u64 = 64;

fn lines(rng: &mut Pcg32) -> Vec<u64> {
    let len = rng.gen_range_usize(1..400);
    (0..len).map(|_| rng.gen_range_u64(0..512)).collect()
}

/// Every algorithm survives arbitrary miss streams, never prefetches
/// more than NumLevels * NumSucc lines, and keeps its costs phased
/// correctly (prefetch phase never writes the table).
#[test]
fn algorithms_bounded_and_phase_correct() {
    let mut rng = Pcg32::seed_from_u64(0xa16);
    for _ in 0..CASES {
        let misses = lines(&mut rng);
        let params = TableParams {
            num_rows: 256,
            assoc: 2,
            num_succ: 2,
            num_levels: 3,
        };
        let mut algs: Vec<Box<dyn UlmtAlgorithm>> = vec![
            Box::new(Base::new(TableParams {
                num_levels: 1,
                ..params
            })),
            Box::new(Chain::new(params)),
            Box::new(Replicated::new(params)),
        ];
        for alg in &mut algs {
            for &m in &misses {
                let step = alg.process_miss(LineAddr::new(m));
                assert!(
                    step.prefetches.len() <= params.num_levels * params.num_succ,
                    "{}: {} prefetches",
                    alg.name(),
                    step.prefetches.len()
                );
                assert!(step.prefetch_cost.table_touches.iter().all(|t| !t.is_write));
                assert!(step.total_insns() > 0);
            }
        }
    }
}

/// Replicated's predictions always come from actually observed successor
/// pairs: any level-1 prediction for X was at some point the very next
/// miss after X.
#[test]
fn repl_level1_predictions_are_sound() {
    let mut rng = Pcg32::seed_from_u64(0x50a2d);
    for _ in 0..CASES {
        let misses = lines(&mut rng);
        let params = TableParams {
            num_rows: 1024,
            assoc: 2,
            num_succ: 4,
            num_levels: 2,
        };
        let mut repl = Replicated::new(params);
        let mut observed_pairs = std::collections::HashSet::new();
        let mut last: Option<u64> = None;
        for &m in &misses {
            if let Some(l) = last {
                observed_pairs.insert((l, m));
            }
            repl.process_miss(LineAddr::new(m));
            last = Some(m);
        }
        for &m in &misses {
            for p in &repl.predict(LineAddr::new(m), 1)[0] {
                assert!(
                    observed_pairs.contains(&(m, p.raw())),
                    "predicted {} after {m} but that pair never occurred",
                    p.raw()
                );
            }
        }
    }
}

/// The filter admits each address at most once per window and never
/// remembers more than its capacity.
#[test]
fn filter_window_semantics() {
    let mut rng = Pcg32::seed_from_u64(0xf117e2);
    for _ in 0..CASES {
        let len = rng.gen_range_usize(1..200);
        let addrs: Vec<u64> = (0..len).map(|_| rng.gen_range_u64(0..64)).collect();
        let cap = rng.gen_range_usize(1..40);
        let mut f = Filter::new(cap);
        let mut window: Vec<u64> = Vec::new();
        for &a in &addrs {
            let expect = !window.contains(&a);
            assert_eq!(f.admit(LineAddr::new(a)), expect);
            if expect {
                window.push(a);
                if window.len() > cap {
                    window.remove(0);
                }
            }
            assert!(f.len() <= cap);
        }
        assert_eq!(f.admitted() + f.dropped(), addrs.len() as u64);
    }
}

/// The stream detector never predicts lines it could not justify: all
/// prefetches continue an arithmetic progression through the observed
/// miss.
#[test]
fn stream_prefetches_are_progressions() {
    let mut rng = Pcg32::seed_from_u64(0x52ea7);
    for _ in 0..CASES {
        let misses = lines(&mut rng);
        let mut d = StreamDetector::new(4, 6);
        for &m in &misses {
            let prefetches = d.observe(LineAddr::new(m));
            for w in prefetches.windows(2) {
                let delta = w[1].delta(w[0]);
                assert_eq!(delta.abs(), 1, "non-unit stride in prefetch run");
            }
        }
    }
}

/// Cache invariant: a line is never both valid and pending; fills only
/// complete lines with MSHRs; the number of pending ways equals the
/// number of allocated MSHRs.
#[test]
fn cache_mshr_way_consistency() {
    let mut rng = Pcg32::seed_from_u64(0xca54e);
    for _ in 0..CASES {
        let len = rng.gen_range_usize(1..300);
        let ops: Vec<(u64, bool)> = (0..len)
            .map(|_| (rng.gen_range_u64(0..64), rng.gen_bool(0.5)))
            .collect();
        let cfg = CacheConfig {
            size_bytes: 1024,
            assoc: 2,
            line_size: 64,
            mshrs: 4,
            wb_capacity: 4,
        };
        let mut cache = Cache::new(cfg);
        let mut outstanding = Vec::new();
        for (line, push) in ops {
            let line = LineAddr::new(line);
            if push {
                if let PushOutcome::StoleMshr { .. } = cache.push(line) {
                    outstanding.retain(|&l| l != line);
                }
            } else {
                match cache.access(line, false) {
                    AccessOutcome::Miss { .. } => outstanding.push(line),
                    AccessOutcome::Blocked => {
                        // Drain one to make progress.
                        if let Some(l) = outstanding.pop() {
                            cache.fill(l, false);
                        }
                    }
                    _ => {}
                }
            }
            assert_eq!(cache.mshrs().in_use(), outstanding.len());
        }
        // Drain everything; all MSHRs must free.
        for l in outstanding {
            cache.fill(l, false);
        }
        assert_eq!(cache.mshrs().in_use(), 0);
    }
}

/// Page remapping is an involution on predictions: remapping A->B then
/// B->A restores the original prediction set.
#[test]
fn remap_roundtrip() {
    use ulmt::simcore::PageAddr;
    let mut rng = Pcg32::seed_from_u64(0x2e3a9);
    for _ in 0..CASES {
        let len = rng.gen_range_usize(16..128);
        let misses: Vec<u64> = (0..len).map(|_| rng.gen_range_u64(0..256)).collect();
        let params = TableParams {
            num_rows: 4096,
            assoc: 2,
            num_succ: 2,
            num_levels: 2,
        };
        let mut repl = Replicated::new(params);
        for &m in &misses {
            repl.process_miss(LineAddr::new(m));
        }
        let probe: Vec<LineAddr> = misses.iter().map(|&m| LineAddr::new(m)).collect();
        let before: Vec<_> = probe.iter().map(|&p| repl.predict(p, 2)).collect();
        // Lines 0..256 are pages 0..4; round-trip pages 0..4 through high
        // page numbers.
        for p in 0..4u64 {
            repl.remap_page(PageAddr::new(p), PageAddr::new(1000 + p));
        }
        for p in 0..4u64 {
            repl.remap_page(PageAddr::new(1000 + p), PageAddr::new(p));
        }
        let after: Vec<_> = probe.iter().map(|&p| repl.predict(p, 2)).collect();
        assert_eq!(before, after);
    }
}
