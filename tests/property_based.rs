//! Property-based tests (proptest) on the core data structures:
//! correlation tables, the filter, the stream detector, caches, and the
//! cost model — exercised with arbitrary miss streams.

use proptest::prelude::*;
use ulmt::cache::{AccessOutcome, Cache, CacheConfig, PushOutcome};
use ulmt::core::algorithm::UlmtAlgorithm;
use ulmt::core::stream::StreamDetector;
use ulmt::core::table::{Base, Chain, Replicated, TableParams};
use ulmt::core::Filter;
use ulmt::simcore::LineAddr;

fn lines() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(0u64..512, 1..400)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every algorithm survives arbitrary miss streams, never prefetches
    /// more than NumLevels * NumSucc lines, and keeps its costs phased
    /// correctly (prefetch phase never writes the table).
    #[test]
    fn algorithms_bounded_and_phase_correct(misses in lines()) {
        let params = TableParams { num_rows: 256, assoc: 2, num_succ: 2, num_levels: 3 };
        let mut algs: Vec<Box<dyn UlmtAlgorithm>> = vec![
            Box::new(Base::new(TableParams { num_levels: 1, ..params })),
            Box::new(Chain::new(params)),
            Box::new(Replicated::new(params)),
        ];
        for alg in &mut algs {
            for &m in &misses {
                let step = alg.process_miss(LineAddr::new(m));
                prop_assert!(
                    step.prefetches.len() <= params.num_levels * params.num_succ,
                    "{}: {} prefetches", alg.name(), step.prefetches.len()
                );
                prop_assert!(step.prefetch_cost.table_touches.iter().all(|t| !t.is_write));
                prop_assert!(step.total_insns() > 0);
            }
        }
    }

    /// Replicated's predictions always come from actually observed
    /// successor pairs: any level-1 prediction for X was at some point the
    /// very next miss after X.
    #[test]
    fn repl_level1_predictions_are_sound(misses in lines()) {
        let params = TableParams { num_rows: 1024, assoc: 2, num_succ: 4, num_levels: 2 };
        let mut repl = Replicated::new(params);
        let mut observed_pairs = std::collections::HashSet::new();
        let mut last: Option<u64> = None;
        for &m in &misses {
            if let Some(l) = last {
                observed_pairs.insert((l, m));
            }
            repl.process_miss(LineAddr::new(m));
            last = Some(m);
        }
        for &m in &misses {
            for p in &repl.predict(LineAddr::new(m), 1)[0] {
                prop_assert!(
                    observed_pairs.contains(&(m, p.raw())),
                    "predicted {} after {m} but that pair never occurred", p.raw()
                );
            }
        }
    }

    /// The filter admits each address at most once per window and never
    /// remembers more than its capacity.
    #[test]
    fn filter_window_semantics(addrs in proptest::collection::vec(0u64..64, 1..200),
                               cap in 1usize..40) {
        let mut f = Filter::new(cap);
        let mut window: Vec<u64> = Vec::new();
        for &a in &addrs {
            let expect = !window.contains(&a);
            prop_assert_eq!(f.admit(LineAddr::new(a)), expect);
            if expect {
                window.push(a);
                if window.len() > cap {
                    window.remove(0);
                }
            }
            prop_assert!(f.len() <= cap);
        }
        prop_assert_eq!(f.admitted() + f.dropped(), addrs.len() as u64);
    }

    /// The stream detector never predicts lines it could not justify: all
    /// prefetches continue an arithmetic progression through the observed
    /// miss.
    #[test]
    fn stream_prefetches_are_progressions(misses in lines()) {
        let mut d = StreamDetector::new(4, 6);
        for &m in &misses {
            let prefetches = d.observe(LineAddr::new(m));
            for w in prefetches.windows(2) {
                let delta = w[1].delta(w[0]);
                prop_assert_eq!(delta.abs(), 1, "non-unit stride in prefetch run");
            }
        }
    }

    /// Cache invariant: a line is never both valid and pending; fills only
    /// complete lines with MSHRs; the number of pending ways equals the
    /// number of allocated MSHRs.
    #[test]
    fn cache_mshr_way_consistency(ops in proptest::collection::vec((0u64..64, any::<bool>()), 1..300)) {
        let cfg = CacheConfig {
            size_bytes: 1024,
            assoc: 2,
            line_size: 64,
            mshrs: 4,
            wb_capacity: 4,
        };
        let mut cache = Cache::new(cfg);
        let mut outstanding = Vec::new();
        for (line, push) in ops {
            let line = LineAddr::new(line);
            if push {
                if let PushOutcome::StoleMshr { .. } = cache.push(line) {
                    outstanding.retain(|&l| l != line);
                }
            } else {
                match cache.access(line, false) {
                    AccessOutcome::Miss { .. } => outstanding.push(line),
                    AccessOutcome::Blocked => {
                        // Drain one to make progress.
                        if let Some(l) = outstanding.pop() {
                            cache.fill(l, false);
                        }
                    }
                    _ => {}
                }
            }
            prop_assert_eq!(cache.mshrs().in_use(), outstanding.len());
        }
        // Drain everything; all MSHRs must free.
        for l in outstanding {
            cache.fill(l, false);
        }
        prop_assert_eq!(cache.mshrs().in_use(), 0);
    }

    /// Page remapping is an involution on predictions: remapping A->B then
    /// B->A restores the original prediction set.
    #[test]
    fn remap_roundtrip(misses in proptest::collection::vec(0u64..256, 16..128)) {
        use ulmt::simcore::PageAddr;
        let params = TableParams { num_rows: 4096, assoc: 2, num_succ: 2, num_levels: 2 };
        let mut repl = Replicated::new(params);
        for &m in &misses {
            repl.process_miss(LineAddr::new(m));
        }
        let probe: Vec<LineAddr> = misses.iter().map(|&m| LineAddr::new(m)).collect();
        let before: Vec<_> = probe.iter().map(|&p| repl.predict(p, 2)).collect();
        // Lines 0..256 are pages 0..4; round-trip pages 0..4 through high
        // page numbers.
        for p in 0..4u64 {
            repl.remap_page(PageAddr::new(p), PageAddr::new(1000 + p));
        }
        for p in 0..4u64 {
            repl.remap_page(PageAddr::new(1000 + p), PageAddr::new(p));
        }
        let after: Vec<_> = probe.iter().map(|&p| repl.predict(p, 2)).collect();
        prop_assert_eq!(before, after);
    }
}
