//! Diagnostic runner: one application under every scheme, with the full
//! counter set on one line per run — the quickest way to see *why* a
//! scheme behaves as it does.
//!
//! ```text
//! cargo run --release -p ulmt-bench --bin inspect -- [app]
//! ULMT_SCALE=paper cargo run --release -p ulmt-bench --bin inspect -- mcf
//! ```

use ulmt_bench::Profile;
use ulmt_system::{Experiment, PrefetchScheme};
use ulmt_workloads::App;

fn parse_app(name: &str) -> Option<App> {
    App::ALL
        .iter()
        .copied()
        .find(|a| a.name().eq_ignore_ascii_case(name))
}

fn main() {
    let app = std::env::args()
        .nth(1)
        .and_then(|n| parse_app(&n))
        .unwrap_or(App::Mcf);
    let profile = Profile::from_env();
    let spec = profile.workload(app);
    println!(
        "inspect: {} at {} scale ({} L2 lines footprint)\n",
        app,
        profile.name,
        spec.footprint_lines()
    );
    let schemes = [
        PrefetchScheme::NoPref,
        PrefetchScheme::Conven4,
        PrefetchScheme::Base,
        PrefetchScheme::Chain,
        PrefetchScheme::Repl,
        PrefetchScheme::Conven4Repl,
        PrefetchScheme::Custom,
    ];
    let mut baseline = None;
    for scheme in schemes {
        let r = Experiment::new(profile.config, spec.clone())
            .scheme(scheme)
            .run();
        let base = *baseline.get_or_insert(r.exec_cycles);
        println!("[speedup {:.2}]", r.speedup_vs(base));
        print!("{}", r.summary());
        println!();
    }
}
