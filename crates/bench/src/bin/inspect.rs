//! Diagnostic runner: one application under every scheme, with the full
//! counter set on one line per run — the quickest way to see *why* a
//! scheme behaves as it does.
//!
//! ```text
//! cargo run --release -p ulmt-bench --bin inspect -- [app]
//! ULMT_SCALE=paper cargo run --release -p ulmt-bench --bin inspect -- mcf
//! ```
//!
//! The `trace` leg runs one traced experiment, cross-validates every
//! aggregate counter against the event stream, and exports the trace for
//! Perfetto:
//!
//! ```text
//! cargo run --release -p ulmt-bench --bin inspect -- trace [app] [out_dir]
//! ULMT_FAULT_SEED=7 cargo run --release -p ulmt-bench --bin inspect -- trace mcf
//! ```

use ulmt_bench::{write_trace_chrome, write_trace_jsonl, Profile};
use ulmt_simcore::{FaultConfig, TraceConfig};
use ulmt_system::{validate_trace, Experiment, PrefetchScheme};
use ulmt_workloads::App;

fn parse_app(name: &str) -> Option<App> {
    App::ALL
        .iter()
        .copied()
        .find(|a| a.name().eq_ignore_ascii_case(name))
}

/// Runs one traced experiment, proves the counters against the trace,
/// and writes both export formats. Exits non-zero on any disagreement,
/// so CI can use this as the trace-validation gate.
fn trace_leg(args: &[String]) {
    let app = args.first().and_then(|n| parse_app(n)).unwrap_or(App::Mcf);
    let out_dir = args
        .get(1)
        .cloned()
        .unwrap_or_else(|| "target/traces".to_string());
    let profile = Profile::from_env();
    let faults = FaultConfig::from_env();
    println!(
        "trace: {} / Repl at {} scale, faults {}",
        app,
        profile.name,
        match &faults {
            Some(f) => format!("on (seed {})", f.seed),
            None => "off".to_string(),
        }
    );
    // `ULMT_TRACE=<n>` raises the ring capacity for big workloads whose
    // event stream outgrows the default (truncation fails validation).
    let mut exp = Experiment::new(profile.config, profile.workload(app))
        .scheme(PrefetchScheme::Repl)
        .trace(TraceConfig::from_env().unwrap_or_default());
    if let Some(f) = faults {
        exp = exp.faults(f);
    }
    let r = exp.run();
    match validate_trace(&r) {
        Ok(audit) => println!(
            "validated: {} events agree with the counters ({} checks)",
            audit.events, audit.checks
        ),
        Err(e) => {
            eprintln!("trace validation FAILED: {e}");
            std::process::exit(1);
        }
    }
    let trace = r.trace.as_ref().expect("traced run carries a trace");
    std::fs::create_dir_all(&out_dir).expect("create trace output dir");
    let stem = format!("{}/{}_repl", out_dir, app.name().to_lowercase());
    let jsonl = format!("{stem}.trace.jsonl");
    let chrome = format!("{stem}.trace.json");
    write_trace_jsonl(&jsonl, trace).expect("write jsonl trace");
    write_trace_chrome(&chrome, trace).expect("write chrome trace");
    println!("wrote {jsonl}");
    println!("wrote {chrome} (load in https://ui.perfetto.dev)");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("trace") {
        trace_leg(&args[1..]);
        return;
    }
    let app = args.first().and_then(|n| parse_app(n)).unwrap_or(App::Mcf);
    let profile = Profile::from_env();
    let spec = profile.workload(app);
    println!(
        "inspect: {} at {} scale ({} L2 lines footprint)\n",
        app,
        profile.name,
        spec.footprint_lines()
    );
    let schemes = [
        PrefetchScheme::NoPref,
        PrefetchScheme::Conven4,
        PrefetchScheme::Base,
        PrefetchScheme::Chain,
        PrefetchScheme::Repl,
        PrefetchScheme::Conven4Repl,
        PrefetchScheme::Custom,
    ];
    let mut baseline = None;
    for scheme in schemes {
        let r = Experiment::new(profile.config, spec.clone())
            .scheme(scheme)
            .run();
        let base = *baseline.get_or_insert(r.exec_cycles);
        println!("[speedup {:.2}]", r.speedup_vs(base));
        print!("{}", r.summary());
        println!();
    }
}
