//! Future-work experiment: conflict-aware prefetch suppression
//! (Section 7 of the paper hypothesizes it "should improve Sparse and
//! Tree"). Compares plain Replicated with a ConflictAwareUlmt wrapper.
//!
//! Result in this reproduction: the mechanism suppresses correctly on
//! concentrated conflict traffic (see the unit tests), but our Sparse
//! and Tree models spread conflicts over enough sets that set-pressure
//! suppression does not change end-to-end time — a negative result,
//! recorded in EXPERIMENTS.md.

use ulmt_bench::Profile;
use ulmt_core::conflict::ConflictAwareUlmt;
use ulmt_core::AlgorithmSpec;
use ulmt_memproc::{MemProcConfig, MemProcessor};
use ulmt_system::{Experiment, PrefetchScheme, SystemSim};
use ulmt_workloads::App;

fn main() {
    let profile = Profile::from_env();
    println!(
        "Conflict-aware suppression experiment (profile: {})\n",
        profile.name
    );
    for app in [App::Sparse, App::Tree] {
        let spec = profile.workload(app);
        let rows = (spec.footprint_lines() as usize)
            .next_power_of_two()
            .max(1024);
        let sets = profile.config.l2.num_sets();
        let base = Experiment::new(profile.config, spec.clone())
            .scheme(PrefetchScheme::NoPref)
            .run();
        let repl = Experiment::new(profile.config, spec.clone())
            .scheme(PrefetchScheme::Repl)
            .run();
        for factor in [2.0f64, 4.0, 8.0] {
            let ca = SystemSim::from_parts(
                profile.config,
                Box::new(spec.build()),
                false,
                Some(MemProcessor::new(
                    MemProcConfig::default(),
                    Box::new(ConflictAwareUlmt::new(
                        AlgorithmSpec::repl(rows).build(),
                        sets,
                        factor,
                    )),
                )),
                false,
                format!("ConflictAware(x{factor})"),
                app.name().to_string(),
            )
            .run();
            println!(
                "{app} factor {factor}: repl {:.3} vs conflict-aware {:.3} (replaced {} -> {})",
                repl.speedup_vs(base.exec_cycles),
                ca.speedup_vs(base.exec_cycles),
                repl.prefetch.replaced,
                ca.prefetch.replaced
            );
        }
    }
}
