//! Harness smoke target: a reduced-scale Figure 7 sweep run twice — once
//! serially (one worker) and once on the parallel harness — followed by a
//! bit-identity check of every result and a machine-readable wall-time
//! report written to `BENCH_harness.json`.
//!
//! Environment:
//!
//! * `ULMT_SCALE` — profile (`small` | `mid` | `paper`); defaults to
//!   `small` here (unlike the figure generators) so the smoke run stays
//!   in seconds.
//! * `SWEEP_APPS` — comma-separated application names (default
//!   `Mcf,Gap`).
//! * `ULMT_WORKERS` — worker override for the parallel leg.
//! * `BENCH_OUT` — output path (default `BENCH_harness.json`).
//! * `ULMT_FAULT_SEED` — when set, adds a third leg that runs the sweep
//!   twice under stress fault injection with that seed and checks that
//!   the two fault reports are identical (determinism gate).
//!
//! The report is written atomically (temp file + rename), so an
//! interrupted run never leaves a truncated `BENCH_harness.json`.
//!
//! Exits non-zero if any parallel result differs from its serial twin,
//! if any job fails, or if the fault leg is non-deterministic.

use std::fmt::Write as _;

use ulmt_bench::profile::Profile;
use ulmt_simcore::FaultConfig;
use ulmt_system::{runner, Experiment, PrefetchScheme, SweepResult};
use ulmt_workloads::App;

fn parse_apps() -> Vec<App> {
    let raw = std::env::var("SWEEP_APPS").unwrap_or_else(|_| "Mcf,Gap".to_string());
    raw.split(',')
        .map(|name| {
            let name = name.trim();
            App::ALL
                .iter()
                .copied()
                .find(|a| a.name().eq_ignore_ascii_case(name))
                .unwrap_or_else(|| panic!("unknown app {name:?} in SWEEP_APPS"))
        })
        .collect()
}

fn experiments(profile: &Profile, apps: &[App]) -> Vec<Experiment> {
    apps.iter()
        .flat_map(|&app| PrefetchScheme::FIGURE7.iter().map(move |&s| (app, s)))
        .map(|(app, s)| Experiment::new(profile.config, profile.workload(app)).scheme(s))
        .collect()
}

fn json_report(
    profile: &Profile,
    apps: &[App],
    serial: &SweepResult,
    parallel: &SweepResult,
    identical: bool,
) -> String {
    let ms = |nanos: u64| nanos as f64 / 1e6;
    let mut j = String::new();
    j.push_str("{\n");
    let _ = writeln!(j, "  \"profile\": \"{}\",", profile.name);
    let _ = writeln!(
        j,
        "  \"apps\": [{}],",
        apps.iter()
            .map(|a| format!("\"{}\"", a.name()))
            .collect::<Vec<_>>()
            .join(", ")
    );
    let _ = writeln!(j, "  \"schemes\": {},", PrefetchScheme::FIGURE7.len());
    let _ = writeln!(j, "  \"runs\": {},", serial.results.len());
    let _ = writeln!(
        j,
        "  \"host_parallelism\": {},",
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    );
    let _ = writeln!(j, "  \"serial_workers\": {},", serial.workers);
    let _ = writeln!(j, "  \"parallel_workers\": {},", parallel.workers);
    // On a 1-core host the "parallel" leg is a second serial pass kept
    // for the identity gate; its speedup is not a threading measurement.
    let _ = writeln!(j, "  \"skipped_single_core\": {},", parallel.workers < 2);
    let _ = writeln!(j, "  \"serial_wall_ms\": {:.3},", ms(serial.wall_nanos));
    let _ = writeln!(j, "  \"parallel_wall_ms\": {:.3},", ms(parallel.wall_nanos));
    let _ = writeln!(
        j,
        "  \"speedup\": {:.3},",
        serial.wall_nanos as f64 / parallel.wall_nanos.max(1) as f64
    );
    let _ = writeln!(
        j,
        "  \"serial_cycles_per_sec\": {:.0},",
        serial.cycles_per_wall_sec()
    );
    let _ = writeln!(
        j,
        "  \"parallel_cycles_per_sec\": {:.0},",
        parallel.cycles_per_wall_sec()
    );
    let _ = writeln!(j, "  \"results_identical\": {identical},");
    let _ = writeln!(
        j,
        "  \"failed_jobs\": {},",
        serial.failed.len() + parallel.failed.len()
    );
    let _ = writeln!(
        j,
        "  \"retried_jobs\": {},",
        serial.retried + parallel.retried
    );
    j.push_str("  \"failures\": [\n");
    let failures: Vec<_> = serial
        .failed
        .iter()
        .map(|f| ("serial", f))
        .chain(parallel.failed.iter().map(|f| ("parallel", f)))
        .collect();
    for (i, (leg, f)) in failures.iter().enumerate() {
        let _ = writeln!(
            j,
            "    {{\"leg\": \"{leg}\", \"app\": \"{}\", \"scheme\": \"{}\", \"attempts\": {}, \"error\": {:?}}}{}",
            f.app,
            f.scheme,
            f.attempts,
            f.error,
            if i + 1 < failures.len() { "," } else { "" }
        );
    }
    j.push_str("  ],\n");
    j.push_str("  \"runs_detail\": [\n");
    for (i, r) in serial.results.iter().enumerate() {
        let parallel_wall = parallel
            .results
            .get(i)
            .map(|p| ms(p.wall_nanos))
            .unwrap_or(0.0);
        let _ = writeln!(
            j,
            "    {{\"app\": \"{}\", \"scheme\": \"{}\", \"exec_cycles\": {}, \"serial_wall_ms\": {:.3}, \"parallel_wall_ms\": {:.3}}}{}",
            r.app,
            r.scheme,
            r.exec_cycles,
            ms(r.wall_nanos),
            parallel_wall,
            if i + 1 < serial.results.len() { "," } else { "" }
        );
    }
    j.push_str("  ]\n}\n");
    j
}

fn main() {
    // Default to the small profile: this binary is the smoke target and
    // should finish in seconds. ULMT_SCALE still overrides.
    let profile = if std::env::var("ULMT_SCALE").is_ok() {
        Profile::from_env()
    } else {
        Profile::small()
    };
    let apps = parse_apps();
    eprintln!(
        "sweep: Figure 7 schemes x {:?} at {} scale",
        apps.iter().map(|a| a.name()).collect::<Vec<_>>(),
        profile.name
    );

    eprintln!("serial pass (1 worker) ...");
    let serial = runner::run_experiments_with(experiments(&profile, &apps), 1);
    // The parallel leg uses the clamped default worker count (never more
    // than the host's cores — see `runner::worker_count`). On a 1-core
    // host the leg still runs for the bit-identity gate but is marked
    // `"skipped_single_core": true` in the report: a second serial pass
    // measures nothing about the threaded path, and the old behavior of
    // flooring at 2 workers just measured oversubscription noise.
    let workers = runner::worker_count();
    if workers < 2 {
        eprintln!("parallel pass: single-core host, running identity check only ...");
    } else {
        eprintln!("parallel pass ({workers} workers) ...");
    }
    let parallel = runner::run_experiments_with(experiments(&profile, &apps), workers);

    let mut identical = serial.results.len() == parallel.results.len();
    for (s, p) in serial.results.iter().zip(&parallel.results) {
        if s.fingerprint() != p.fingerprint() {
            eprintln!(
                "MISMATCH: {}/{} differs between serial and parallel",
                s.app, s.scheme
            );
            identical = false;
        }
    }
    for f in serial.failed.iter().chain(&parallel.failed) {
        eprintln!(
            "FAILED: {}/{} after {} attempt(s): {}",
            f.app, f.scheme, f.attempts, f.error
        );
    }

    // Optional determinism leg: the same fault seed must produce the same
    // fault report (and the same fingerprints) twice in a row.
    let mut faults_deterministic = true;
    if let Ok(raw) = std::env::var("ULMT_FAULT_SEED") {
        if let Ok(seed) = raw.trim().parse::<u64>() {
            eprintln!("fault pass (seed {seed}, twice) ...");
            let faulted = |p: &Profile, apps: &[App]| -> SweepResult {
                let exps = experiments(p, apps)
                    .into_iter()
                    .map(|e| e.faults(FaultConfig::stress(seed)).twin(false))
                    .collect();
                runner::run_experiments_with(exps, workers)
            };
            let a = faulted(&profile, &apps);
            let b = faulted(&profile, &apps);
            for (ra, rb) in a.results.iter().zip(&b.results) {
                if ra.fingerprint() != rb.fingerprint() || ra.fault != rb.fault {
                    eprintln!(
                        "FAULT NONDETERMINISM: {}/{} differs across identical seeds",
                        ra.app, ra.scheme
                    );
                    faults_deterministic = false;
                }
            }
            if a.results.len() != b.results.len() {
                faults_deterministic = false;
            }
            eprintln!(
                "fault pass: {} runs, deterministic = {faults_deterministic}",
                a.results.len()
            );
        }
    }

    eprint!("{}", parallel.throughput_report());
    eprintln!(
        "serial {:.1} ms, parallel {:.1} ms -> speedup {:.2}x on {workers} workers",
        serial.wall_nanos as f64 / 1e6,
        parallel.wall_nanos as f64 / 1e6,
        serial.wall_nanos as f64 / parallel.wall_nanos.max(1) as f64
    );

    let out = std::env::var("BENCH_OUT").unwrap_or_else(|_| "BENCH_harness.json".to_string());
    let report = json_report(&profile, &apps, &serial, &parallel, identical);
    ulmt_bench::atomic_write(&out, &report).unwrap_or_else(|e| panic!("writing {out}: {e}"));
    eprintln!("wrote {out}");

    let all_completed = serial.failed.is_empty() && parallel.failed.is_empty();
    if !identical || !all_completed || !faults_deterministic {
        std::process::exit(1);
    }
    println!(
        "sweep ok: {} runs identical serial/parallel",
        serial.results.len()
    );
}
