//! Correlation-table microbench: the flat-arena layout against the
//! preserved pre-arena reference layout, plus the batch-ingestion
//! kernel, with bit-identity gates.
//!
//! Three legs per algorithm (Base/Chain/Repl), all over the same seeded
//! miss stream:
//!
//! * `reference` — the pre-rewrite boxed-row layout
//!   ([`ulmt_core::table::reference`]), per-miss `process_miss`;
//! * `arena` — the flat-arena layout, per-miss `process_miss`;
//! * `arena_batch` — the flat-arena layout through the zero-alloc batch
//!   kernel `process_misses` (the path `ulmt-service` shards ingest on).
//!
//! Plus a raw-allocation leg (`find_or_alloc` throughput in rows/sec,
//! reference vs arena) isolating the table probe/replace path.
//!
//! Identity gates (exit 1 on failure): after replaying the stream, the
//! arena table's fingerprint must equal the reference table's
//! bit-for-bit, the batch kernel's table must equal the per-miss table,
//! and every snapshot must survive the byte-codec round trip with its
//! fingerprint intact.
//!
//! Environment:
//!
//! * `ULMT_TABLE_MISSES` — stream length per leg (default `500000`).
//! * `ULMT_TABLE_ROWS` — table rows (default `65536`; the paper's real
//!   tables are 1–2M rows, far beyond any private cache, which is the
//!   regime the cache-conscious layout targets).
//! * `ULMT_REPEAT` — timed repetitions, best-of (default `3`).
//! * `BENCH_OUT` — output path (default `BENCH_tables.json`).
//!
//! The report is written atomically (temp file + rename).

use std::fmt::Write as _;
use std::time::Instant;

use ulmt_bench::io::atomic_write;
use ulmt_core::algorithm::{StepSink, UlmtAlgorithm};
use ulmt_core::table::reference::{RefBase, RefChain, RefReplicated, RefRowTable};
use ulmt_core::table::{
    AllocKind, Base, Chain, MruList, Replicated, RowTable, TableParams, TableSnapshot,
};
use ulmt_simcore::{LineAddr, Pcg32};

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(default)
}

/// The differential tests' stream shape: a random walk over a hot pool
/// (hits, MRU churn) plus cold lines (allocations, replacements).
fn miss_stream(seed: u64, len: usize, lines: u64) -> Vec<LineAddr> {
    let mut rng = Pcg32::seed_from_u64(seed);
    let pool: Vec<u64> = (0..64).map(|_| rng.gen_range_u64(0..lines)).collect();
    let mut cursor = 0usize;
    (0..len)
        .map(|_| {
            let n = if rng.gen_bool(0.75) {
                cursor = (cursor + rng.gen_range_usize(1..4)) % pool.len();
                pool[cursor]
            } else {
                rng.gen_range_u64(0..lines)
            };
            LineAddr::new(n)
        })
        .collect()
}

/// Sink for the batch leg: counts and checksums without allocating, the
/// way the service's ingest sink consumes steps.
#[derive(Default)]
struct CountSink {
    prefetches: u64,
    insns: u64,
    checksum: u64,
}

impl StepSink for CountSink {
    fn begin(&mut self, _miss: LineAddr) {}

    fn prefetch(&mut self, addr: LineAddr) {
        self.prefetches += 1;
        self.checksum ^= addr.raw().wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }

    fn end(&mut self, prefetch_insns: u64, learn_insns: u64) {
        self.insns += prefetch_insns + learn_insns;
    }
}

/// One timed leg: best-of-`repeat` observations/sec, plus a checksum so
/// the work cannot be optimized away.
struct Timing {
    obs_per_sec: f64,
    checksum: u64,
}

fn best_of(repeat: usize, obs: usize, mut run: impl FnMut() -> u64) -> Timing {
    let mut best = f64::MIN;
    let mut checksum = 0u64;
    for _ in 0..repeat.max(1) {
        let start = Instant::now();
        checksum = run();
        let rate = obs as f64 / start.elapsed().as_secs_f64().max(1e-12);
        best = best.max(rate);
    }
    Timing {
        obs_per_sec: best,
        checksum,
    }
}

fn per_miss_leg<A: UlmtAlgorithm>(
    mut make: impl FnMut() -> A,
    misses: &[LineAddr],
    repeat: usize,
) -> Timing {
    best_of(repeat, misses.len(), || {
        let mut alg = make();
        let mut checksum = 0u64;
        for &m in misses {
            let step = alg.process_miss(m);
            for &p in &step.prefetches {
                checksum ^= p.raw().wrapping_mul(0x9E37_79B9_7F4A_7C15);
            }
            checksum = checksum.wrapping_add(step.total_insns());
        }
        checksum
    })
}

fn batch_leg<A: UlmtAlgorithm>(
    mut make: impl FnMut() -> A,
    misses: &[LineAddr],
    repeat: usize,
) -> Timing {
    best_of(repeat, misses.len(), || {
        let mut alg = make();
        let mut sink = CountSink::default();
        for chunk in misses.chunks(512) {
            alg.process_misses(chunk, &mut sink);
        }
        sink.checksum.wrapping_add(sink.insns)
    })
}

/// Everything measured and verified for one algorithm.
struct AlgReport {
    name: &'static str,
    reference: Timing,
    arena: Timing,
    arena_batch: Timing,
    fingerprint: u64,
    identical: bool,
    codec_ok: bool,
}

impl AlgReport {
    fn speedup(&self) -> f64 {
        self.arena.obs_per_sec / self.reference.obs_per_sec.max(1e-12)
    }

    fn batch_speedup(&self) -> f64 {
        self.arena_batch.obs_per_sec / self.reference.obs_per_sec.max(1e-12)
    }
}

fn codec_round_trips(snap: &TableSnapshot) -> bool {
    match TableSnapshot::from_bytes(&snap.to_bytes()) {
        Ok(decoded) => decoded.fingerprint() == snap.fingerprint(),
        Err(_) => false,
    }
}

#[allow(clippy::too_many_arguments)]
fn run_algorithm<A, R>(
    name: &'static str,
    make_arena: impl Fn() -> A,
    make_ref: impl Fn() -> R,
    fp_arena: impl Fn(&A) -> u64,
    fp_ref: impl Fn(&R) -> u64,
    snap_arena: impl Fn(&A) -> TableSnapshot,
    misses: &[LineAddr],
    repeat: usize,
) -> AlgReport
where
    A: UlmtAlgorithm,
    R: UlmtAlgorithm,
{
    let reference = per_miss_leg(&make_ref, misses, repeat);
    let arena = per_miss_leg(&make_arena, misses, repeat);
    let arena_batch = batch_leg(&make_arena, misses, repeat);

    // Identity gate: replay once more on fresh tables and compare end
    // states. Per-miss checksums already pin the emitted streams.
    let mut a = make_arena();
    let mut r = make_ref();
    let mut b = make_arena();
    let mut bsink = CountSink::default();
    for &m in misses {
        a.process_miss(m);
        r.process_miss(m);
    }
    b.process_misses(misses, &mut bsink);
    let fingerprint = fp_arena(&a);
    let identical = fingerprint == fp_ref(&r)
        && fingerprint == fp_arena(&b)
        && reference.checksum == arena.checksum;
    let codec_ok = codec_round_trips(&snap_arena(&a));
    AlgReport {
        name,
        reference,
        arena,
        arena_batch,
        fingerprint,
        identical,
        codec_ok,
    }
}

/// Raw `find_or_alloc` throughput (rows/sec): the probe/replace path in
/// isolation, reference boxed rows vs the flat arena.
fn alloc_legs(rows: usize, misses: &[LineAddr], repeat: usize) -> (Timing, Timing) {
    let params = TableParams {
        num_rows: rows,
        assoc: 4,
        num_succ: 4,
        num_levels: 1,
    };
    fn kind_tag(kind: AllocKind) -> u64 {
        match kind {
            AllocKind::Existing => 1,
            AllocKind::Fresh => 2,
            AllocKind::Replaced => 3,
        }
    }
    let reference = best_of(repeat, misses.len(), || {
        let mut t = RefRowTable::new(&params, 20, MruList::new(params.num_succ));
        let mut acc = 0u64;
        for &m in misses {
            let (_, kind) = t.find_or_alloc(m);
            acc = acc.wrapping_add(kind_tag(kind));
        }
        acc
    });
    let arena = best_of(repeat, misses.len(), || {
        let mut t = RowTable::new(&params, 20, 1);
        let mut acc = 0u64;
        for &m in misses {
            let (_, kind) = t.find_or_alloc(m);
            acc = acc.wrapping_add(kind_tag(kind));
        }
        acc
    });
    (reference, arena)
}

fn json_report(
    reports: &[AlgReport],
    alloc: &(Timing, Timing),
    misses: usize,
    rows: usize,
    repeat: usize,
    overall: f64,
    target: f64,
) -> String {
    let mut j = String::new();
    j.push_str("{\n");
    let _ = writeln!(j, "  \"misses\": {misses},");
    let _ = writeln!(j, "  \"rows\": {rows},");
    let _ = writeln!(j, "  \"repeat\": {repeat},");
    let _ = writeln!(j, "  \"speedup_target\": {target},");
    let _ = writeln!(j, "  \"overall_speedup\": {overall:.3},");
    let _ = writeln!(j, "  \"speedup_ok\": {},", overall >= target);
    let _ = writeln!(
        j,
        "  \"identity_ok\": {},",
        reports.iter().all(|r| r.identical && r.codec_ok)
    );
    j.push_str("  \"algorithms\": [\n");
    for (i, r) in reports.iter().enumerate() {
        let _ = writeln!(
            j,
            "    {{\"name\": \"{}\", \"reference_obs_per_sec\": {:.0}, \"arena_obs_per_sec\": {:.0}, \"arena_batch_obs_per_sec\": {:.0}, \"speedup\": {:.3}, \"batch_speedup\": {:.3}, \"fingerprint\": \"{:016x}\", \"fingerprints_identical\": {}, \"codec_roundtrip_ok\": {}}}{}",
            r.name,
            r.reference.obs_per_sec,
            r.arena.obs_per_sec,
            r.arena_batch.obs_per_sec,
            r.speedup(),
            r.batch_speedup(),
            r.fingerprint,
            r.identical,
            r.codec_ok,
            if i + 1 < reports.len() { "," } else { "" }
        );
    }
    j.push_str("  ],\n");
    let _ = writeln!(
        j,
        "  \"alloc\": {{\"reference_rows_per_sec\": {:.0}, \"arena_rows_per_sec\": {:.0}, \"speedup\": {:.3}}}",
        alloc.0.obs_per_sec,
        alloc.1.obs_per_sec,
        alloc.1.obs_per_sec / alloc.0.obs_per_sec.max(1e-12)
    );
    j.push_str("}\n");
    j
}

fn main() {
    let misses = env_usize("ULMT_TABLE_MISSES", 500_000);
    let rows = env_usize("ULMT_TABLE_ROWS", 65_536);
    let repeat = env_usize("ULMT_REPEAT", 3);
    // Roughly 2 lines per slot so the stream forces replacements.
    let stream = miss_stream(0xDECAF, misses, (rows * 8) as u64);
    eprintln!("tables: {misses} misses, {rows} rows, best of {repeat}");

    let base = TableParams {
        num_rows: rows,
        assoc: 4,
        num_succ: 4,
        num_levels: 1,
    };
    let multi = TableParams {
        num_rows: rows,
        assoc: 2,
        num_succ: 2,
        num_levels: 3,
    };
    let reports = vec![
        run_algorithm(
            "base",
            || Base::new(base),
            || RefBase::new(base),
            |a| a.table_fingerprint(),
            |r| r.table_fingerprint(),
            |a| a.snapshot(),
            &stream,
            repeat,
        ),
        run_algorithm(
            "chain",
            || Chain::new(multi),
            || RefChain::new(multi),
            |a| a.table_fingerprint(),
            |r| r.table_fingerprint(),
            |a| a.snapshot(),
            &stream,
            repeat,
        ),
        run_algorithm(
            "repl",
            || Replicated::new(multi),
            || RefReplicated::new(multi),
            |a| a.table_fingerprint(),
            |r| r.table_fingerprint(),
            |a| a.snapshot(),
            &stream,
            repeat,
        ),
    ];

    let alloc = alloc_legs(rows, &stream, repeat);

    // Overall speedup: geometric mean of the batch-kernel speedups —
    // the path the service actually ingests on.
    let overall =
        (reports.iter().map(|r| r.batch_speedup().ln()).sum::<f64>() / reports.len() as f64).exp();
    let target = 1.5;

    for r in &reports {
        eprintln!(
            "  {:<6} ref {:>12.0} obs/s | arena {:>12.0} ({:.2}x) | batch {:>12.0} ({:.2}x) | identity {}",
            r.name,
            r.reference.obs_per_sec,
            r.arena.obs_per_sec,
            r.speedup(),
            r.arena_batch.obs_per_sec,
            r.batch_speedup(),
            if r.identical && r.codec_ok { "ok" } else { "FAILED" }
        );
    }
    eprintln!(
        "  alloc  ref {:>12.0} rows/s | arena {:>12.0} ({:.2}x)",
        alloc.0.obs_per_sec,
        alloc.1.obs_per_sec,
        alloc.1.obs_per_sec / alloc.0.obs_per_sec.max(1e-12)
    );
    eprintln!("  overall batch speedup: {overall:.2}x (target {target}x)");

    let out = std::env::var("BENCH_OUT").unwrap_or_else(|_| "BENCH_tables.json".to_string());
    atomic_write(
        &out,
        &json_report(&reports, &alloc, misses, rows, repeat, overall, target),
    )
    .unwrap_or_else(|e| panic!("writing {out}: {e}"));
    eprintln!("wrote {out}");

    if !reports.iter().all(|r| r.identical && r.codec_ok) {
        eprintln!("tables: FAILED (fingerprint or codec identity)");
        std::process::exit(1);
    }
    eprintln!("tables: identity gates passed");
}
