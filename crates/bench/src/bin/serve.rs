//! Service smoke target: the sharded multi-tenant prefetch service run
//! over the same multi-tenant observation streams at several shard
//! counts, with a bit-identity check of every tenant's learned table
//! across shard counts, a snapshot → restore → fingerprint warm-start
//! check, and a machine-readable throughput report written to
//! `BENCH_service.json`.
//!
//! Environment:
//!
//! * `ULMT_SHARDS` — comma-separated shard counts (default `1,2,4`).
//! * `ULMT_TENANTS` — number of tenants (default `4`).
//! * `BENCH_OUT` — output path (default `BENCH_service.json`).
//!
//! The report is written atomically (temp file + rename), so an
//! interrupted run never leaves a truncated `BENCH_service.json`.
//!
//! Exits non-zero if any tenant's table fingerprint differs between
//! shard counts, or if a restored snapshot does not reproduce its
//! source fingerprint bit-for-bit.

use std::collections::VecDeque;
use std::fmt::Write as _;
use std::time::Instant;

use ulmt_bench::io::atomic_write;
use ulmt_service::{PendingBatch, PrefetchService, ServiceConfig, TenantSpec};
use ulmt_simcore::LineAddr;
use ulmt_system::{l2_miss_stream_with, SystemConfig};
use ulmt_workloads::{App, WorkloadSpec};

/// One tenant's identity and full observation stream.
struct Tenant {
    id: u32,
    spec: TenantSpec,
    obs: Vec<LineAddr>,
}

fn parse_shards() -> Vec<usize> {
    let raw = std::env::var("ULMT_SHARDS").unwrap_or_else(|_| "1,2,4".to_string());
    raw.split(',')
        .map(|s| {
            s.trim()
                .parse::<usize>()
                .unwrap_or_else(|_| panic!("bad shard count {s:?} in ULMT_SHARDS"))
        })
        .collect()
}

fn tenants() -> Vec<Tenant> {
    let n: usize = std::env::var("ULMT_TENANTS")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(4);
    let config = SystemConfig::small();
    (0..n as u32)
        .map(|id| {
            let app = App::ALL[id as usize % App::ALL.len()];
            let spec = WorkloadSpec::new(app).scale(1.0 / 32.0).iterations(2);
            let kind = match id % 3 {
                0 => TenantSpec::repl(1024),
                1 => TenantSpec::chain(1024),
                _ => TenantSpec::base(1024),
            };
            Tenant {
                id: id + 1,
                spec: kind,
                obs: l2_miss_stream_with(&config, &spec).collect(),
            }
        })
        .collect()
}

struct Leg {
    shards: usize,
    wall_nanos: u64,
    observed: u64,
    fingerprints: Vec<(u32, u64)>,
    utilization: Vec<f64>,
}

impl Leg {
    fn obs_per_sec(&self) -> f64 {
        self.observed as f64 / (self.wall_nanos.max(1) as f64 / 1e9)
    }
}

/// Feeds every tenant's stream through a `shards`-shard service in
/// interleaved rounds and returns throughput plus per-tenant table
/// fingerprints.
fn run_leg(shards: usize, tenants: &[Tenant]) -> Leg {
    const BATCH: usize = 256;
    let service = PrefetchService::start(ServiceConfig {
        shards,
        ..ServiceConfig::default()
    });
    let mut sessions: Vec<_> = tenants
        .iter()
        .map(|t| {
            service
                .open(t.id, t.spec)
                .unwrap_or_else(|e| panic!("opening tenant {}: {e}", t.id))
        })
        .collect();

    let start = Instant::now();
    // Interleave tenants round-robin, one batch each per round, so every
    // shard sees its tenants' streams genuinely mixed. Each tenant keeps
    // a bounded pending window; once it is full, the oldest reply is
    // reaped and its recycled observation buffer refilled for the next
    // batch — steady-state submission allocates nothing.
    const WINDOW: usize = 4;
    struct Feeder {
        pool: Vec<Vec<LineAddr>>,
        pending: VecDeque<PendingBatch>,
    }
    let rounds = tenants
        .iter()
        .map(|t| t.obs.len().div_ceil(BATCH))
        .max()
        .unwrap_or(0);
    let mut feeders: Vec<Feeder> = tenants
        .iter()
        .map(|_| Feeder {
            pool: Vec::new(),
            pending: VecDeque::new(),
        })
        .collect();
    let mut observed = 0u64;
    for round in 0..rounds {
        for ((t, session), feeder) in tenants.iter().zip(&mut sessions).zip(&mut feeders) {
            let lo = round * BATCH;
            if lo >= t.obs.len() {
                continue;
            }
            let hi = (lo + BATCH).min(t.obs.len());
            if feeder.pending.len() >= WINDOW {
                let reply = feeder
                    .pending
                    .pop_front()
                    .expect("window is non-empty")
                    .wait()
                    .expect("shard alive");
                observed += reply.observed;
                feeder.pool.push(reply.recycled);
            }
            let mut buf = feeder
                .pool
                .pop()
                .unwrap_or_else(|| Vec::with_capacity(BATCH));
            buf.extend_from_slice(&t.obs[lo..hi]);
            feeder.pending.push_back(
                session
                    .submit(buf)
                    .unwrap_or_else(|e| panic!("submitting to tenant {}: {e}", t.id)),
            );
        }
    }
    for feeder in &mut feeders {
        while let Some(p) = feeder.pending.pop_front() {
            observed += p.wait().expect("shard alive").observed;
        }
    }
    service.drain().expect("drain");
    let wall_nanos = start.elapsed().as_nanos() as u64;

    let fingerprints = sessions
        .iter()
        .map(|s| (s.tenant(), s.fingerprint().expect("fingerprint")))
        .collect();
    let utilization = (0..shards)
        .map(|i| service.shard_stats(i).expect("shard stats").utilization())
        .collect();
    service.shutdown();
    Leg {
        shards,
        wall_nanos,
        observed,
        fingerprints,
        utilization,
    }
}

/// Snapshot every tenant on a fresh service, restore each snapshot into
/// a new tenant, and check the restored fingerprints match bit-for-bit.
fn snapshot_restore_identical(tenants: &[Tenant]) -> bool {
    let service = PrefetchService::start(ServiceConfig {
        shards: 2,
        ..ServiceConfig::default()
    });
    let mut ok = true;
    for t in tenants {
        let mut session = service.open(t.id, t.spec).expect("open");
        session
            .submit(t.obs.clone())
            .expect("submit")
            .wait()
            .expect("reply");
        let snap = session.snapshot().expect("snapshot");
        let source = session.fingerprint().expect("fingerprint");
        // Restore into a disjoint tenant ID: a cold table warm-started
        // from the snapshot must reproduce the source exactly.
        let warm = service.open(t.id + 1000, t.spec).expect("open warm");
        warm.restore(snap).expect("restore");
        let restored = warm.fingerprint().expect("fingerprint");
        if restored != source {
            eprintln!(
                "MISMATCH: tenant {} snapshot restore {restored:016x} != source {source:016x}",
                t.id
            );
            ok = false;
        }
    }
    service.shutdown();
    ok
}

fn json_report(tenants: &[Tenant], legs: &[Leg], identical: bool, snapshot_ok: bool) -> String {
    let mut j = String::new();
    j.push_str("{\n");
    let _ = writeln!(j, "  \"tenants\": {},", tenants.len());
    let _ = writeln!(
        j,
        "  \"observations\": {},",
        tenants.iter().map(|t| t.obs.len()).sum::<usize>()
    );
    let _ = writeln!(j, "  \"fingerprints_identical\": {identical},");
    let _ = writeln!(j, "  \"snapshot_restore_identical\": {snapshot_ok},");
    j.push_str("  \"legs\": [\n");
    for (i, leg) in legs.iter().enumerate() {
        let util = leg
            .utilization
            .iter()
            .map(|u| format!("{u:.4}"))
            .collect::<Vec<_>>()
            .join(", ");
        let _ = writeln!(
            j,
            "    {{\"shards\": {}, \"wall_ms\": {:.3}, \"obs_per_sec\": {:.0}, \"utilization\": [{util}]}}{}",
            leg.shards,
            leg.wall_nanos as f64 / 1e6,
            leg.obs_per_sec(),
            if i + 1 < legs.len() { "," } else { "" }
        );
    }
    j.push_str("  ],\n");
    j.push_str("  \"tenant_fingerprints\": [\n");
    let reference = &legs[0].fingerprints;
    for (i, (tenant, fp)) in reference.iter().enumerate() {
        let _ = writeln!(
            j,
            "    {{\"tenant\": {tenant}, \"fingerprint\": \"{fp:016x}\"}}{}",
            if i + 1 < reference.len() { "," } else { "" }
        );
    }
    j.push_str("  ]\n}\n");
    j
}

fn main() {
    let shard_counts = parse_shards();
    let tenants = tenants();
    let total: usize = tenants.iter().map(|t| t.obs.len()).sum();
    eprintln!(
        "serve: {} tenants, {} observations, shard counts {:?}",
        tenants.len(),
        total,
        shard_counts
    );

    let legs: Vec<Leg> = shard_counts
        .iter()
        .map(|&shards| {
            let leg = run_leg(shards, &tenants);
            eprintln!(
                "  {} shard(s): {:.1} ms, {:.0} obs/sec",
                shards,
                leg.wall_nanos as f64 / 1e6,
                leg.obs_per_sec()
            );
            leg
        })
        .collect();

    // Determinism gate: every tenant's table must be bit-identical (same
    // fingerprint) no matter how many shards served it.
    let mut identical = true;
    let reference = &legs[0];
    for leg in &legs[1..] {
        for ((tenant, want), (_, got)) in reference.fingerprints.iter().zip(&leg.fingerprints) {
            if want != got {
                eprintln!(
                    "MISMATCH: tenant {tenant} fingerprint {got:016x} at {} shard(s) != {want:016x} at {} shard(s)",
                    leg.shards, reference.shards
                );
                identical = false;
            }
        }
    }

    eprintln!("snapshot/restore pass ...");
    let snapshot_ok = snapshot_restore_identical(&tenants);

    let out = std::env::var("BENCH_OUT").unwrap_or_else(|_| "BENCH_service.json".to_string());
    atomic_write(&out, &json_report(&tenants, &legs, identical, snapshot_ok))
        .unwrap_or_else(|e| panic!("writing {out}: {e}"));
    eprintln!("wrote {out}");

    if !identical || !snapshot_ok {
        eprintln!("serve: FAILED");
        std::process::exit(1);
    }
    eprintln!("serve: all checks passed");
}
