//! Service smoke target: the sharded multi-tenant prefetch service run
//! over the same multi-tenant observation streams at several shard
//! counts, with a bit-identity check of every tenant's learned table
//! across shard counts, a snapshot → restore → fingerprint warm-start
//! check, and a machine-readable throughput report written to
//! `BENCH_service.json`.
//!
//! Environment:
//!
//! * `ULMT_SHARDS` — comma-separated shard counts (default `1,2,4`).
//! * `ULMT_TENANTS` — number of tenants (default `4`).
//! * `ULMT_FAULT_SEED` — seed for the chaos leg's fault schedule
//!   (default `7`); the schedule is a pure function of the seed.
//! * `BENCH_OUT` — output path (default `BENCH_service.json`).
//!
//! The report is written atomically (temp file + rename), so an
//! interrupted run never leaves a truncated `BENCH_service.json`.
//!
//! After the throughput legs, a chaos leg kills the shard mid-stream
//! under two recovery policies. With a journal window that covers the
//! checkpoint gap, recovery must be **clean**: every tenant's final
//! fingerprint identical to the fault-free legs. With a deliberately
//! undersized window, recovery must be **lossy** with an exact
//! `dropped_batches` count satisfying the conservation identity
//! `recovered.batches + dropped == total batches`. Recovery latency
//! percentiles land in the report under `"chaos"`.
//!
//! The metrics plane rides every leg: the in-process reference leg's
//! merged `MetricsReport` lands under a `"metrics"` object in the
//! report (per-shard queue-wait / ingest-latency percentiles, counters
//! cross-checked against `shard_stats`), and a metrics-disabled leg
//! must reproduce the enabled leg's fingerprints bit-for-bit — the
//! plane observes the virtual clock but never writes it.
//!
//! With `--net`, extra legs drive the same tenant streams through the
//! TCP network front-end on loopback — one `NetClient` thread per
//! tenant, pipelined submission with NACK retry — twice per metrics
//! mode, and record throughput plus the enabled-vs-disabled overhead
//! ratio under a `"net"` object in the report.
//!
//! Exits non-zero if any tenant's table fingerprint differs between
//! shard counts, metrics modes, or transports, if a restored snapshot
//! does not reproduce its source fingerprint bit-for-bit, if any
//! chaos-leg invariant fails, if the metrics counters disagree with
//! `shard_stats`, or if the metrics-enabled `--net` leg falls below
//! 98% of the disabled leg's throughput.

use std::collections::VecDeque;
use std::fmt::Write as _;
use std::time::{Duration, Instant};

use ulmt_bench::io::atomic_write;
use ulmt_service::{
    MetricsReport, NetClient, NetConfig, NetServer, NetSubmit, PendingBatch, PrefetchService,
    RecoveryOutcome, SchedulerPolicy, ServiceConfig, ServiceError, Session, ShardState,
    SupervisionConfig, TenantSpec,
};
use ulmt_simcore::{LineAddr, ServiceFaultConfig};
use ulmt_system::{l2_miss_stream_with, SystemConfig};
use ulmt_workloads::{App, WorkloadSpec};

/// One tenant's identity and full observation stream.
struct Tenant {
    id: u32,
    spec: TenantSpec,
    obs: Vec<LineAddr>,
}

fn parse_shards() -> Vec<usize> {
    let raw = std::env::var("ULMT_SHARDS").unwrap_or_else(|_| "1,2,4".to_string());
    raw.split(',')
        .map(|s| {
            s.trim()
                .parse::<usize>()
                .unwrap_or_else(|_| panic!("bad shard count {s:?} in ULMT_SHARDS"))
        })
        .collect()
}

fn tenants() -> Vec<Tenant> {
    let n: usize = std::env::var("ULMT_TENANTS")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(4);
    let config = SystemConfig::small();
    (0..n as u32)
        .map(|id| {
            let app = App::ALL[id as usize % App::ALL.len()];
            let spec = WorkloadSpec::new(app).scale(1.0 / 32.0).iterations(2);
            let kind = match id % 3 {
                0 => TenantSpec::repl(1024),
                1 => TenantSpec::chain(1024),
                _ => TenantSpec::base(1024),
            };
            Tenant {
                id: id + 1,
                spec: kind,
                obs: l2_miss_stream_with(&config, &spec).collect(),
            }
        })
        .collect()
}

struct Leg {
    shards: usize,
    wall_nanos: u64,
    observed: u64,
    fingerprints: Vec<(u32, u64)>,
    utilization: Vec<f64>,
}

impl Leg {
    fn obs_per_sec(&self) -> f64 {
        self.observed as f64 / (self.wall_nanos.max(1) as f64 / 1e9)
    }
}

/// A leg's metrics-plane output: the merged service-wide report and
/// whether its per-shard counters matched `shard_stats` exactly.
struct LegMetrics {
    report: MetricsReport,
    counters_match: bool,
}

/// Feeds every tenant's stream through a `shards`-shard service in
/// interleaved rounds and returns throughput plus per-tenant table
/// fingerprints, and — when `metrics` is on — the service-wide
/// metrics report collected just before shutdown.
fn run_leg(
    shards: usize,
    tenants: &[Tenant],
    scheduler: SchedulerPolicy,
    metrics: bool,
) -> (Leg, Option<LegMetrics>) {
    const BATCH: usize = 256;
    let service = PrefetchService::start(ServiceConfig {
        shards,
        scheduler,
        metrics,
        ..ServiceConfig::default()
    });
    let mut sessions: Vec<_> = tenants
        .iter()
        .map(|t| {
            service
                .open(t.id, t.spec)
                .unwrap_or_else(|e| panic!("opening tenant {}: {e}", t.id))
        })
        .collect();

    let start = Instant::now();
    // Interleave tenants round-robin, one batch each per round, so every
    // shard sees its tenants' streams genuinely mixed. Each tenant keeps
    // a bounded pending window; once it is full, the oldest reply is
    // reaped and its recycled observation buffer refilled for the next
    // batch — steady-state submission allocates nothing.
    const WINDOW: usize = 4;
    struct Feeder {
        pool: Vec<Vec<LineAddr>>,
        pending: VecDeque<PendingBatch>,
    }
    let rounds = tenants
        .iter()
        .map(|t| t.obs.len().div_ceil(BATCH))
        .max()
        .unwrap_or(0);
    let mut feeders: Vec<Feeder> = tenants
        .iter()
        .map(|_| Feeder {
            pool: Vec::new(),
            pending: VecDeque::new(),
        })
        .collect();
    let mut observed = 0u64;
    for round in 0..rounds {
        for ((t, session), feeder) in tenants.iter().zip(&mut sessions).zip(&mut feeders) {
            let lo = round * BATCH;
            if lo >= t.obs.len() {
                continue;
            }
            let hi = (lo + BATCH).min(t.obs.len());
            if feeder.pending.len() >= WINDOW {
                let reply = feeder
                    .pending
                    .pop_front()
                    .expect("window is non-empty")
                    .wait()
                    .expect("shard alive");
                observed += reply.observed;
                feeder.pool.push(reply.recycled);
            }
            let mut buf = feeder
                .pool
                .pop()
                .unwrap_or_else(|| Vec::with_capacity(BATCH));
            buf.extend_from_slice(&t.obs[lo..hi]);
            feeder.pending.push_back(
                session
                    .submit(buf)
                    .unwrap_or_else(|e| panic!("submitting to tenant {}: {e}", t.id)),
            );
        }
    }
    for feeder in &mut feeders {
        while let Some(p) = feeder.pending.pop_front() {
            observed += p.wait().expect("shard alive").observed;
        }
    }
    service.drain().expect("drain");
    let wall_nanos = start.elapsed().as_nanos() as u64;

    let fingerprints = sessions
        .iter_mut()
        .map(|s| (s.tenant(), s.fingerprint().expect("fingerprint")))
        .collect();
    let utilization = (0..shards)
        .map(|i| service.shard_stats(i).expect("shard stats").utilization())
        .collect();
    let metrics = metrics.then(|| {
        let report = service.metrics().expect("metrics report");
        // The registry and the stats ledger are updated by the same
        // worker thread per batch, so after a drain their counters
        // must agree exactly — any drift is a double-count bug.
        let counters_match = report.shards.iter().all(|m| {
            let st = service
                .shard_stats(m.shard as usize)
                .expect("shard stats for metrics");
            m.batches == st.batches && m.observed == st.observed && m.prefetches == st.prefetches
        });
        LegMetrics {
            report,
            counters_match,
        }
    });
    service.shutdown();
    (
        Leg {
            shards,
            wall_nanos,
            observed,
            fingerprints,
            utilization,
        },
        metrics,
    )
}

/// The `--net` leg's result: throughput over the loopback TCP front-end
/// plus the per-tenant fingerprints the network path produced.
struct NetLeg {
    shards: usize,
    wall_nanos: u64,
    observed: u64,
    /// Backpressure NACKs absorbed (batches handed back and retried).
    nacks: u64,
    fingerprints: Vec<(u32, u64)>,
}

impl NetLeg {
    fn obs_per_sec(&self) -> f64 {
        self.observed as f64 / (self.wall_nanos.max(1) as f64 / 1e9)
    }
}

/// The `--net` section's aggregate verdict: a representative
/// metrics-enabled single-pass leg plus the cross-mode identity gate
/// (single-pass runs) and the overhead gate (multi-pass timed runs,
/// best-of-3 per mode).
struct NetVerdict {
    leg: NetLeg,
    /// Fingerprints agreed across every run in both metrics modes.
    modes_identical: bool,
    /// Best multi-pass throughput with the metrics plane enabled.
    enabled_obs_per_sec: f64,
    /// Best multi-pass throughput with the metrics plane disabled.
    disabled_obs_per_sec: f64,
    /// Best paired enabled/disabled ratio; the gate demands ≥ 0.98.
    overhead_ratio: f64,
    overhead_ok: bool,
}

/// Drives every tenant's stream through the TCP front-end on loopback,
/// one client thread per tenant, with the same batch size and pending
/// window as the in-process legs. NACKed batches are retried (after
/// reaping to free queue space), so nothing is dropped; a single-pass
/// run's fingerprints must be bit-identical to the in-process path's,
/// whether or not the metrics plane is on. `passes > 1` replays each
/// tenant's stream repeatedly to stretch the timed window for the
/// overhead comparison (learning converges after the first pass, so
/// both metrics modes do identical work; fingerprints then describe
/// the repeated stream, not the reference one).
fn run_net_leg(tenants: &[Tenant], metrics: bool, passes: usize) -> NetLeg {
    const BATCH: usize = 256;
    const WINDOW: usize = 4;
    let shards = 2;
    let service = PrefetchService::start(ServiceConfig {
        shards,
        scheduler: SchedulerPolicy::Drr,
        metrics,
        ..ServiceConfig::default()
    });
    let server = NetServer::bind(service, NetConfig::loopback()).expect("net: bind");
    let addr = server.local_addr();

    // The clock starts at a barrier all clients reach only after they
    // are connected, so thread-spawn and TCP-handshake jitter stays out
    // of the throughput number — the timed window is pure streaming.
    let gate = &std::sync::Barrier::new(tenants.len() + 1);
    let (results, wall_nanos): (Vec<(u32, u64, u64, u64)>, u64) = std::thread::scope(|scope| {
        let handles: Vec<_> = tenants
            .iter()
            .map(|t| {
                scope.spawn(move || {
                    let mut client = NetClient::connect(addr, t.id, t.spec).expect("net: connect");
                    gate.wait();
                    let mut pool: Vec<Vec<LineAddr>> = Vec::new();
                    let mut observed = 0u64;
                    let mut nacks = 0u64;
                    let reap_one = |client: &mut NetClient,
                                    pool: &mut Vec<Vec<LineAddr>>,
                                    observed: &mut u64| {
                        let reply = client.reap().expect("net: reap");
                        assert!(reply.error.is_none(), "net: batch rejected");
                        *observed += reply.observed;
                        pool.push(reply.recycled);
                    };
                    for chunk in (0..passes).flat_map(|_| t.obs.chunks(BATCH)) {
                        if client.pending() >= WINDOW {
                            reap_one(&mut client, &mut pool, &mut observed);
                        }
                        let mut buf = pool.pop().unwrap_or_else(|| Vec::with_capacity(BATCH));
                        buf.extend_from_slice(chunk);
                        loop {
                            match client
                                .submit_timeout(buf, Duration::from_millis(100))
                                .expect("net: submit")
                            {
                                NetSubmit::Enqueued { .. } => break,
                                NetSubmit::Full(b) | NetSubmit::TimedOut(b) => {
                                    nacks += 1;
                                    buf = b;
                                    if client.pending() > 0 {
                                        reap_one(&mut client, &mut pool, &mut observed);
                                    }
                                }
                            }
                        }
                    }
                    while client.pending() > 0 {
                        reap_one(&mut client, &mut pool, &mut observed);
                    }
                    let fp = client.fingerprint().expect("net: fingerprint");
                    client.goodbye();
                    (t.id, fp, observed, nacks)
                })
            })
            .collect();
        gate.wait();
        let start = Instant::now();
        let results = handles
            .into_iter()
            .map(|h| h.join().expect("net: client thread"))
            .collect();
        (results, start.elapsed().as_nanos() as u64)
    });
    server.shutdown();

    NetLeg {
        shards,
        wall_nanos,
        observed: results.iter().map(|r| r.2).sum(),
        nacks: results.iter().map(|r| r.3).sum(),
        fingerprints: results.iter().map(|r| (r.0, r.1)).collect(),
    }
}

/// Snapshot every tenant on a fresh service, restore each snapshot into
/// a new tenant, and check the restored fingerprints match bit-for-bit.
fn snapshot_restore_identical(tenants: &[Tenant]) -> bool {
    let service = PrefetchService::start(ServiceConfig {
        shards: 2,
        ..ServiceConfig::default()
    });
    let mut ok = true;
    for t in tenants {
        let mut session = service.open(t.id, t.spec).expect("open");
        session
            .submit(t.obs.clone())
            .expect("submit")
            .wait()
            .expect("reply");
        let snap = session.snapshot().expect("snapshot");
        let source = session.fingerprint().expect("fingerprint");
        // Restore into a disjoint tenant ID: a cold table warm-started
        // from the snapshot must reproduce the source exactly.
        let mut warm = service.open(t.id + 1000, t.spec).expect("open warm");
        warm.restore(snap).expect("restore");
        let restored = warm.fingerprint().expect("fingerprint");
        if restored != source {
            eprintln!(
                "MISMATCH: tenant {} snapshot restore {restored:016x} != source {source:016x}",
                t.id
            );
            ok = false;
        }
    }
    service.shutdown();
    ok
}

/// Aggregate verdict of the chaos leg: how many kill/recover rounds ran
/// under each policy, whether every invariant held, and the observed
/// recovery latencies.
struct ChaosSummary {
    seed: u64,
    rounds: usize,
    clean_recoveries: usize,
    lossy_recoveries: usize,
    clean_identical: bool,
    lossy_conserved: bool,
    dropped_batches: u64,
    latencies_nanos: Vec<u64>,
}

impl ChaosSummary {
    fn ok(&self) -> bool {
        self.clean_recoveries > 0
            && self.lossy_recoveries > 0
            && self.clean_identical
            && self.lossy_conserved
    }

    /// Nearest-rank percentile of recovery latency, in milliseconds.
    fn latency_ms(&self, pct: u64) -> f64 {
        nearest_rank_ms(&self.latencies_nanos, pct)
    }
}

/// Nearest-rank percentile over nanosecond samples, in milliseconds.
///
/// `rank = ceil(pct * n / 100)` clamped to `[1, n]`: p0 is the minimum,
/// p100 the maximum, and an empty sample set reports 0. The clamp makes
/// the degenerate cases total rather than panicking on `rank - 1`.
fn nearest_rank_ms(samples: &[u64], pct: u64) -> f64 {
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((pct * sorted.len() as u64).div_ceil(100)).clamp(1, sorted.len() as u64);
    sorted[rank as usize - 1] as f64 / 1e6
}

/// Jain fairness index `(Σx)² / (n·Σx²)` over per-tenant rates: 1.0 is
/// perfectly fair, `1/n` is one tenant taking everything. Empty or
/// all-zero inputs report 0 (no service observed is not "fair").
fn jain(rates: &[f64]) -> f64 {
    if rates.is_empty() {
        return 0.0;
    }
    let sum: f64 = rates.iter().sum();
    let sq: f64 = rates.iter().map(|x| x * x).sum();
    if sq == 0.0 {
        return 0.0;
    }
    (sum * sum) / (rates.len() as f64 * sq)
}

/// Picks the chaos kill point from the **actual checkpoint schedule**:
/// `OFFSET` acked batches past a seed-chosen checkpoint boundary, so the
/// checkpoint gap at the crash is always `OFFSET` — bigger than the
/// lossy policy's 2-batch journal window, smaller than the clean one's.
///
/// The boundary is chosen among those that still leave the kill strictly
/// inside the stream (`kill < total`). Short streams that fit no such
/// boundary fall back to killing as late as possible — the gap then runs
/// from batch 0 (no checkpoint has been taken yet), which still exceeds
/// the lossy window whenever the stream has more than 3 batches. Pure
/// function of its inputs; unit-tested against degenerate sizes.
fn kill_point(total_batches: u64, checkpoint_every: u64, x: u64) -> u64 {
    const OFFSET: u64 = 6;
    let last = total_batches.saturating_sub(1);
    // Checkpoint boundaries are every, 2*every, ...; usable ones satisfy
    // k*every + OFFSET <= last.
    let usable = last.saturating_sub(OFFSET) / checkpoint_every.max(1);
    if usable > 0 {
        checkpoint_every * (1 + x % usable) + OFFSET
    } else {
        last.max(2)
    }
}

fn chaos_seed() -> u64 {
    std::env::var("ULMT_FAULT_SEED")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(7)
}

/// Submits one batch and waits for its ack, resubmitting through the
/// crash and recovery. Safe because the shard journals before acking: a
/// batch whose ack never arrived was never journaled, so replaying it
/// cannot double-count.
fn submit_until_acked(session: &mut Session, obs: &[LineAddr]) {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        assert!(
            Instant::now() < deadline,
            "chaos: batch not acked within 30s — recovery wedged?"
        );
        let pending = match session.submit(obs.to_vec()) {
            Ok(p) => p,
            Err(ServiceError::Timeout | ServiceError::Closed | ServiceError::ShardDown(_)) => {
                std::thread::sleep(Duration::from_millis(1));
                continue;
            }
            Err(e) => panic!("chaos: unrecoverable submit error: {e}"),
        };
        match pending.wait() {
            Ok(reply) if reply.error.is_none() && !reply.shed => return,
            Ok(_) | Err(_) => continue,
        }
    }
}

/// One kill/recover round: a single-shard service with a seeded kill
/// fault mid-stream, a client that resubmits through the crash, and the
/// round's invariants checked against the fault-free reference.
fn chaos_round(
    tenants: &[Tenant],
    reference_fps: &[(u32, u64)],
    seed: u64,
    round: usize,
    clean_policy: bool,
    summary: &mut ChaosSummary,
) -> bool {
    const CHAOS_BATCH: usize = 64;
    const CHECKPOINT_EVERY: u64 = 8;
    let total_batches: u64 = tenants
        .iter()
        .map(|t| t.obs.len().div_ceil(CHAOS_BATCH) as u64)
        .sum();

    // Seed-derived kill point, placed a fixed offset past a checkpoint
    // boundary so the checkpoint gap at the crash (~6 acked batches)
    // exceeds the lossy policy's journal window but not the clean one's.
    let mut x = seed ^ 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(round as u64 + 1);
    x = x
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    let kill_at = kill_point(total_batches, CHECKPOINT_EVERY, x >> 33);

    let supervision = SupervisionConfig {
        max_restarts: 8,
        tick_ms: 2,
        wedge_ticks: 25,
        checkpoint_every: CHECKPOINT_EVERY,
        // Clean policy: the window always covers the checkpoint gap.
        // Lossy policy: a 2-batch window guarantees acked batches fall
        // off the ring before the crash at checkpoint-gap ~5.
        journal_window: if clean_policy { 64 } else { 2 },
        backoff_base_ms: 1,
        backoff_max_ms: 8,
        shed_when_down: false,
        control_timeout_ms: 10_000,
    };
    let service = PrefetchService::start(ServiceConfig {
        shards: 1,
        queue_depth: 64,
        supervision,
        fault: Some(ServiceFaultConfig::disabled(seed ^ round as u64).kill(0, kill_at)),
        ..ServiceConfig::default()
    });

    let mut sessions: Vec<Session> = tenants
        .iter()
        .map(|t| service.open(t.id, t.spec).expect("chaos: open"))
        .collect();
    let rounds = tenants
        .iter()
        .map(|t| t.obs.len().div_ceil(CHAOS_BATCH))
        .max()
        .unwrap_or(0);
    for r in 0..rounds {
        for (t, session) in tenants.iter().zip(&mut sessions) {
            let lo = r * CHAOS_BATCH;
            if lo >= t.obs.len() {
                continue;
            }
            let hi = (lo + CHAOS_BATCH).min(t.obs.len());
            submit_until_acked(session, &t.obs[lo..hi]);
        }
    }

    // The kill fires mid-stream, so by the time every batch is acked the
    // replacement worker is necessarily up; give the supervisor a beat
    // to publish the report it wrote while we were resubmitting.
    let deadline = Instant::now() + Duration::from_secs(30);
    while service.recovery_reports().is_empty() || service.shard_state(0) != ShardState::Up {
        assert!(
            Instant::now() < deadline,
            "chaos: recovery not reported within 30s"
        );
        std::thread::sleep(Duration::from_millis(1));
    }

    let fps: Vec<(u32, u64)> = sessions
        .iter_mut()
        .map(|s| (s.tenant(), s.fingerprint().expect("chaos: fingerprint")))
        .collect();
    let stats = service.shard_stats(0).expect("chaos: shard stats");
    let reports = service.recovery_reports();
    service.shutdown();

    let mut dropped = 0u64;
    let mut any_lossy = false;
    let mut all_clean = true;
    for report in &reports {
        summary.latencies_nanos.push(report.latency_nanos);
        match report.outcome {
            RecoveryOutcome::Clean { .. } => {}
            RecoveryOutcome::Lossy {
                dropped_batches, ..
            } => {
                any_lossy = true;
                all_clean = false;
                dropped += dropped_batches;
            }
        }
    }
    summary.dropped_batches += dropped;

    let identical = fps == reference_fps;
    let conserved = stats.batches + dropped == total_batches;
    let mut ok = true;
    if clean_policy {
        summary.clean_recoveries += reports.len();
        if !all_clean || !identical || !conserved {
            summary.clean_identical = false;
            ok = false;
        }
    } else {
        summary.lossy_recoveries += reports.len();
        if !any_lossy || !conserved {
            summary.lossy_conserved = false;
            ok = false;
        }
    }
    eprintln!(
        "  chaos round {round}: kill@{kill_at}/{total_batches} policy={} recoveries={} \
         dropped={dropped} identical={identical} conserved={conserved}{}",
        if clean_policy { "clean" } else { "lossy" },
        reports.len(),
        if ok { "" } else { "  <-- VIOLATION" },
    );
    ok
}

/// The chaos leg: alternating clean-policy and lossy-policy kill rounds
/// driven by a seeded, deterministic fault schedule.
fn run_chaos(tenants: &[Tenant], reference_fps: &[(u32, u64)]) -> ChaosSummary {
    const ROUNDS: usize = 6;
    let seed = chaos_seed();
    eprintln!("chaos leg: {ROUNDS} kill/recover rounds, seed {seed} ...");
    let mut summary = ChaosSummary {
        seed,
        rounds: ROUNDS,
        clean_recoveries: 0,
        lossy_recoveries: 0,
        clean_identical: true,
        lossy_conserved: true,
        dropped_batches: 0,
        latencies_nanos: Vec::new(),
    };
    for round in 0..ROUNDS {
        let clean_policy = round % 2 == 0;
        chaos_round(
            tenants,
            reference_fps,
            seed,
            round,
            clean_policy,
            &mut summary,
        );
    }
    eprintln!(
        "  chaos: {} clean + {} lossy recoveries, {} batches dropped (lossy policy), \
         recovery p50 {:.3} ms / p90 {:.3} ms / max {:.3} ms",
        summary.clean_recoveries,
        summary.lossy_recoveries,
        summary.dropped_batches,
        summary.latency_ms(50),
        summary.latency_ms(90),
        summary.latency_ms(100),
    );
    summary
}

/// One scheduling policy's side of the starvation leg.
struct StarvationSide {
    /// Pooled submit→ack latencies of every light-tenant probe, nanos.
    light_latencies_nanos: Vec<u64>,
    /// Completed probes per light tenant (for the Jain index).
    light_probes: Vec<u64>,
    hot_batches: u64,
    wall_nanos: u64,
}

impl StarvationSide {
    /// Jain fairness index over the light tenants' probe rates.
    fn jain(&self) -> f64 {
        let wall_secs = self.wall_nanos.max(1) as f64 / 1e9;
        let rates: Vec<f64> = self
            .light_probes
            .iter()
            .map(|&p| p as f64 / wall_secs)
            .collect();
        jain(&rates)
    }
}

/// The starvation leg's verdict: one hot tenant flooding a single shard
/// with large bursty batches while light tenants probe with small ones,
/// run under the FIFO policy (which reproduces the old shared-queue
/// arrival order — the baseline) and under deficit round-robin.
struct StarvationSummary {
    fifo: StarvationSide,
    drr: StarvationSide,
}

impl StarvationSummary {
    /// FIFO light p99 over DRR light p99 — how much queue-wait the
    /// scheduler shaves off the light tenants' tail.
    fn p99_improvement(&self) -> f64 {
        let fifo = nearest_rank_ms(&self.fifo.light_latencies_nanos, 99);
        let drr = nearest_rank_ms(&self.drr.light_latencies_nanos, 99);
        if drr <= 0.0 {
            return 0.0;
        }
        fifo / drr
    }

    fn ok(&self) -> bool {
        self.p99_improvement() >= 5.0 && self.drr.jain() >= 0.9
    }
}

/// Runs one policy's side: the hot tenant floods from its own thread
/// (deep pending window, 1024-observation batches, the deterministic
/// burst fault stretching every 8th batch), while each light tenant
/// probes closed-loop from its own thread with 64-observation batches,
/// timing every submit→ack round trip.
fn run_starvation_policy(scheduler: SchedulerPolicy, seed: u64) -> StarvationSide {
    const HOT: u32 = 1;
    const LIGHTS: u32 = 4;
    const HOT_BATCH: usize = 1024;
    const LIGHT_BATCH: usize = 64;
    const HOT_WINDOW: usize = 48;
    const RUN_MS: u64 = 400;

    let service = PrefetchService::start(ServiceConfig {
        shards: 1,
        queue_depth: 64,
        scheduler,
        // Hot tenant batches cost four quanta; a light batch a quarter of
        // one — DRR preempts the hot backlog between every large batch.
        quantum_obs: 256,
        fault: Some(ServiceFaultConfig::disabled(seed).burst(HOT, 8, 2, 50_000)),
        ..ServiceConfig::default()
    });

    let addrs = |tenant: u32, len: usize| -> Vec<LineAddr> {
        let mut x = seed ^ ((tenant as u64) << 32);
        (0..len)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                LineAddr::new((x >> 40) & 0xFFF)
            })
            .collect()
    };

    let mut hot_session = service.open(HOT, TenantSpec::repl(2048)).unwrap();
    let hot_obs = addrs(HOT, HOT_BATCH);
    let light_sessions: Vec<(Session, Vec<LineAddr>)> = (0..LIGHTS)
        .map(|i| {
            let id = HOT + 1 + i;
            (
                service.open(id, TenantSpec::repl(2048)).unwrap(),
                addrs(id, LIGHT_BATCH),
            )
        })
        .collect();

    let start = Instant::now();
    let deadline = start + Duration::from_millis(RUN_MS);
    std::thread::scope(|scope| {
        let hot = scope.spawn(move || {
            let mut pending: VecDeque<PendingBatch> = VecDeque::new();
            let mut batches = 0u64;
            while Instant::now() < deadline {
                if pending.len() >= HOT_WINDOW {
                    let reply = pending.pop_front().unwrap().wait().expect("hot ack");
                    assert!(reply.error.is_none(), "hot tenant rejected");
                }
                pending.push_back(hot_session.submit(hot_obs.clone()).expect("hot submit"));
                batches += 1;
            }
            for p in pending {
                let _ = p.wait();
            }
            batches
        });
        let lights: Vec<_> = light_sessions
            .into_iter()
            .map(|(mut session, obs)| {
                scope.spawn(move || {
                    let mut latencies = Vec::new();
                    while Instant::now() < deadline {
                        let t0 = Instant::now();
                        let reply = session
                            .submit(obs.clone())
                            .expect("light submit")
                            .wait()
                            .expect("light ack");
                        assert!(reply.error.is_none(), "light tenant rejected");
                        latencies.push(t0.elapsed().as_nanos() as u64);
                    }
                    latencies
                })
            })
            .collect();

        let hot_batches = hot.join().expect("hot thread");
        let mut light_latencies_nanos = Vec::new();
        let mut light_probes = Vec::new();
        for handle in lights {
            let lat = handle.join().expect("light thread");
            light_probes.push(lat.len() as u64);
            light_latencies_nanos.extend(lat);
        }
        let wall_nanos = start.elapsed().as_nanos() as u64;
        service.drain().expect("drain");
        service.shutdown();
        StarvationSide {
            light_latencies_nanos,
            light_probes,
            hot_batches,
            wall_nanos,
        }
    })
}

/// The starvation leg: same contention pattern under the shared-queue
/// baseline (FIFO) and under DRR.
fn run_starvation() -> StarvationSummary {
    let seed = chaos_seed() ^ 0x5747_4152;
    eprintln!("starvation leg: 1 hot + 4 light tenants, one shard ...");
    let fifo = run_starvation_policy(SchedulerPolicy::Fifo, seed);
    let drr = run_starvation_policy(SchedulerPolicy::Drr, seed);
    for (name, side) in [("fifo", &fifo), ("drr", &drr)] {
        eprintln!(
            "  {name}: light p50 {:.3} ms / p99 {:.3} ms, jain {:.3}, hot {} batches, {} probes",
            nearest_rank_ms(&side.light_latencies_nanos, 50),
            nearest_rank_ms(&side.light_latencies_nanos, 99),
            side.jain(),
            side.hot_batches,
            side.light_latencies_nanos.len(),
        );
    }
    let summary = StarvationSummary { fifo, drr };
    eprintln!(
        "  starvation: light p99 improves {:.1}x under DRR{}",
        summary.p99_improvement(),
        if summary.ok() { "" } else { "  <-- VIOLATION" },
    );
    summary
}

#[allow(clippy::too_many_arguments)]
fn json_report(
    tenants: &[Tenant],
    legs: &[Leg],
    identical: bool,
    scheduler_identical: bool,
    snapshot_ok: bool,
    chaos: &ChaosSummary,
    starvation: &StarvationSummary,
    metrics: &LegMetrics,
    metrics_off_identical: bool,
    net: Option<(&NetVerdict, bool)>,
) -> String {
    let mut j = String::new();
    j.push_str("{\n");
    let _ = writeln!(j, "  \"tenants\": {},", tenants.len());
    let _ = writeln!(
        j,
        "  \"observations\": {},",
        tenants.iter().map(|t| t.obs.len()).sum::<usize>()
    );
    let _ = writeln!(j, "  \"fingerprints_identical\": {identical},");
    let _ = writeln!(
        j,
        "  \"scheduler_fingerprints_identical\": {scheduler_identical},"
    );
    let _ = writeln!(j, "  \"snapshot_restore_identical\": {snapshot_ok},");
    j.push_str("  \"chaos\": {\n");
    let _ = writeln!(j, "    \"seed\": {},", chaos.seed);
    let _ = writeln!(j, "    \"rounds\": {},", chaos.rounds);
    let _ = writeln!(j, "    \"clean_recoveries\": {},", chaos.clean_recoveries);
    let _ = writeln!(j, "    \"lossy_recoveries\": {},", chaos.lossy_recoveries);
    let _ = writeln!(j, "    \"clean_identical\": {},", chaos.clean_identical);
    let _ = writeln!(j, "    \"lossy_conserved\": {},", chaos.lossy_conserved);
    let _ = writeln!(j, "    \"dropped_batches\": {},", chaos.dropped_batches);
    let _ = writeln!(
        j,
        "    \"recovery_latency_ms\": {{\"p50\": {:.3}, \"p90\": {:.3}, \"max\": {:.3}}}",
        chaos.latency_ms(50),
        chaos.latency_ms(90),
        chaos.latency_ms(100),
    );
    j.push_str("  },\n");
    j.push_str("  \"starvation\": {\n");
    let _ = writeln!(j, "    \"hot_tenants\": 1,");
    let _ = writeln!(
        j,
        "    \"light_tenants\": {},",
        starvation.drr.light_probes.len()
    );
    for (name, side) in [("fifo", &starvation.fifo), ("drr", &starvation.drr)] {
        let _ = writeln!(
            j,
            "    \"{name}\": {{\"light_p50_ms\": {:.3}, \"light_p99_ms\": {:.3}, \
             \"jain\": {:.4}, \"light_probes\": {}, \"hot_batches\": {}}},",
            nearest_rank_ms(&side.light_latencies_nanos, 50),
            nearest_rank_ms(&side.light_latencies_nanos, 99),
            side.jain(),
            side.light_latencies_nanos.len(),
            side.hot_batches,
        );
    }
    let _ = writeln!(
        j,
        "    \"light_p99_improvement\": {:.2},",
        starvation.p99_improvement()
    );
    let _ = writeln!(j, "    \"ok\": {}", starvation.ok());
    j.push_str("  },\n");
    j.push_str("  \"metrics\": {\n");
    let r = &metrics.report;
    let _ = writeln!(j, "    \"enabled\": {},", r.enabled);
    let _ = writeln!(
        j,
        "    \"counters_match_shard_stats\": {},",
        metrics.counters_match
    );
    let _ = writeln!(
        j,
        "    \"disabled_fingerprints_identical\": {metrics_off_identical},"
    );
    let _ = writeln!(j, "    \"recoveries\": {},", r.recoveries);
    j.push_str("    \"shards\": [\n");
    for (i, m) in r.shards.iter().enumerate() {
        let _ = writeln!(
            j,
            "      {{\"shard\": {}, \"epoch\": {}, \"batches\": {}, \"observed\": {}, \
             \"prefetches\": {}, \
             \"queue_wait_nanos\": {{\"p50\": {}, \"p99\": {}}}, \
             \"ingest_nanos\": {{\"p50\": {}, \"p99\": {}}}, \
             \"batch_size\": {{\"p50\": {}, \"p99\": {}}}}}{}",
            m.shard,
            m.epoch,
            m.batches,
            m.observed,
            m.prefetches,
            m.queue_wait_nanos.percentile(50),
            m.queue_wait_nanos.percentile(99),
            m.ingest_nanos.percentile(50),
            m.ingest_nanos.percentile(99),
            m.batch_size.percentile(50),
            m.batch_size.percentile(99),
            if i + 1 < r.shards.len() { "," } else { "" }
        );
    }
    j.push_str("    ]\n");
    j.push_str("  },\n");
    if let Some((v, identical)) = net {
        let leg = &v.leg;
        j.push_str("  \"net\": {\n");
        let _ = writeln!(j, "    \"shards\": {},", leg.shards);
        let _ = writeln!(j, "    \"wall_ms\": {:.3},", leg.wall_nanos as f64 / 1e6);
        let _ = writeln!(j, "    \"obs_per_sec\": {:.0},", v.enabled_obs_per_sec);
        let _ = writeln!(j, "    \"nacks\": {},", leg.nacks);
        let _ = writeln!(j, "    \"identical_to_in_process\": {identical},");
        let _ = writeln!(j, "    \"metrics_modes_identical\": {},", v.modes_identical);
        let _ = writeln!(
            j,
            "    \"disabled_obs_per_sec\": {:.0},",
            v.disabled_obs_per_sec
        );
        let _ = writeln!(
            j,
            "    \"metrics_overhead_ratio\": {:.4},",
            v.overhead_ratio
        );
        let _ = writeln!(j, "    \"metrics_overhead_ok\": {}", v.overhead_ok);
        j.push_str("  },\n");
    }
    j.push_str("  \"legs\": [\n");
    for (i, leg) in legs.iter().enumerate() {
        let util = leg
            .utilization
            .iter()
            .map(|u| format!("{u:.4}"))
            .collect::<Vec<_>>()
            .join(", ");
        let _ = writeln!(
            j,
            "    {{\"shards\": {}, \"wall_ms\": {:.3}, \"obs_per_sec\": {:.0}, \"utilization\": [{util}]}}{}",
            leg.shards,
            leg.wall_nanos as f64 / 1e6,
            leg.obs_per_sec(),
            if i + 1 < legs.len() { "," } else { "" }
        );
    }
    j.push_str("  ],\n");
    j.push_str("  \"tenant_fingerprints\": [\n");
    let reference = &legs[0].fingerprints;
    for (i, (tenant, fp)) in reference.iter().enumerate() {
        let _ = writeln!(
            j,
            "    {{\"tenant\": {tenant}, \"fingerprint\": \"{fp:016x}\"}}{}",
            if i + 1 < reference.len() { "," } else { "" }
        );
    }
    j.push_str("  ]\n}\n");
    j
}

fn main() {
    let shard_counts = parse_shards();
    let tenants = tenants();
    let total: usize = tenants.iter().map(|t| t.obs.len()).sum();
    eprintln!(
        "serve: {} tenants, {} observations, shard counts {:?}",
        tenants.len(),
        total,
        shard_counts
    );

    // The metrics report kept for the JSON comes from the widest leg
    // (later shard counts overwrite earlier ones), so the per-shard
    // breakdown is as informative as the run allows.
    let mut leg_metrics: Option<LegMetrics> = None;
    let legs: Vec<Leg> = shard_counts
        .iter()
        .map(|&shards| {
            let (leg, m) = run_leg(shards, &tenants, SchedulerPolicy::Drr, true);
            if m.is_some() {
                leg_metrics = m;
            }
            eprintln!(
                "  {} shard(s): {:.1} ms, {:.0} obs/sec",
                shards,
                leg.wall_nanos as f64 / 1e6,
                leg.obs_per_sec()
            );
            leg
        })
        .collect();
    let leg_metrics = leg_metrics.expect("metrics-enabled legs produce a report");

    // Determinism gate: every tenant's table must be bit-identical (same
    // fingerprint) no matter how many shards served it.
    let mut identical = true;
    let reference = &legs[0];
    for leg in &legs[1..] {
        for ((tenant, want), (_, got)) in reference.fingerprints.iter().zip(&leg.fingerprints) {
            if want != got {
                eprintln!(
                    "MISMATCH: tenant {tenant} fingerprint {got:016x} at {} shard(s) != {want:016x} at {} shard(s)",
                    leg.shards, reference.shards
                );
                identical = false;
            }
        }
    }

    // Scheduler-identity gate: the FIFO policy (shared-queue arrival
    // order) must learn the exact same tables as DRR — scheduling moves
    // batches in time, never within a tenant's stream.
    eprintln!("scheduler identity pass (FIFO vs DRR) ...");
    let (fifo_leg, _) = run_leg(1, &tenants, SchedulerPolicy::Fifo, true);
    let mut scheduler_identical = true;
    for ((tenant, want), (_, got)) in reference.fingerprints.iter().zip(&fifo_leg.fingerprints) {
        if want != got {
            eprintln!(
                "MISMATCH: tenant {tenant} fingerprint {got:016x} under FIFO != {want:016x} under DRR"
            );
            scheduler_identical = false;
        }
    }

    // Metrics-identity gate: a run with the metrics plane disabled must
    // learn the exact same tables — the plane reads the virtual clock
    // but never writes it, so fingerprints cannot depend on it.
    eprintln!("metrics identity pass (disabled vs enabled) ...");
    let (off_leg, _) = run_leg(shard_counts[0], &tenants, SchedulerPolicy::Drr, false);
    let mut metrics_off_identical = true;
    for ((tenant, want), (_, got)) in reference.fingerprints.iter().zip(&off_leg.fingerprints) {
        if want != got {
            eprintln!(
                "MISMATCH: tenant {tenant} fingerprint {got:016x} with metrics off != {want:016x} with metrics on"
            );
            metrics_off_identical = false;
        }
    }

    eprintln!("snapshot/restore pass ...");
    let snapshot_ok = snapshot_restore_identical(&tenants);

    let chaos = run_chaos(&tenants, &legs[0].fingerprints);

    let starvation = run_starvation();

    // Optional network leg: the same tenant streams through the TCP
    // front-end on loopback must learn bit-identical tables.
    let net = std::env::args().any(|a| a == "--net").then(|| {
        eprintln!("network pass (loopback TCP front-end) ...");
        // Identity first: one warmup plus one single-pass run per
        // metrics mode. Fingerprints must agree across modes (and,
        // checked below, with the in-process reference).
        let warmup = run_net_leg(&tenants, true, 1);
        let leg = run_net_leg(&tenants, true, 1);
        let disabled_id = run_net_leg(&tenants, false, 1);
        let modes_identical = leg.fingerprints == warmup.fingerprints
            && disabled_id.fingerprints == warmup.fingerprints;
        if !modes_identical {
            eprintln!("MISMATCH: net fingerprints differ between metrics modes");
        }
        // Then overhead: a 2% gate needs a timed window long enough
        // that a single scheduler stall cannot swamp it, so each
        // measured run replays every tenant's stream PASSES times, and
        // the modes alternate so every enabled run has a disabled run
        // from the same moment to compare against.
        const PASSES: usize = 16;
        const RUNS: usize = 4;
        let mut enabled = Vec::new();
        let mut disabled = Vec::new();
        for _ in 0..RUNS {
            disabled.push(run_net_leg(&tenants, false, PASSES));
            enabled.push(run_net_leg(&tenants, true, PASSES));
        }
        for (leg, mode) in enabled
            .iter()
            .map(|l| (l, "on"))
            .chain(disabled.iter().map(|l| (l, "off")))
        {
            eprintln!(
                "  net {} shard(s), metrics {}: {:.1} ms, {:.0} obs/sec, {} nacks",
                leg.shards,
                mode,
                leg.wall_nanos as f64 / 1e6,
                leg.obs_per_sec(),
                leg.nacks
            );
        }
        let enabled_obs_per_sec = enabled.iter().map(NetLeg::obs_per_sec).fold(0.0, f64::max);
        let disabled_obs_per_sec = disabled.iter().map(NetLeg::obs_per_sec).fold(0.0, f64::max);
        // Paired comparison: each enabled run is judged against the
        // disabled run that immediately preceded it — both halves of a
        // pair share whatever contention phase the host was in — and
        // the gate takes the best pair. A real regression (metrics
        // suddenly costing whole percents) drags every pair down;
        // transient host noise cannot fail the gate by landing on the
        // enabled half of a single pair.
        let overhead_ratio = enabled
            .iter()
            .zip(&disabled)
            .map(|(on, off)| on.obs_per_sec() / off.obs_per_sec().max(1.0))
            .fold(0.0, f64::max);
        let overhead_ok = overhead_ratio >= 0.98;
        if !overhead_ok {
            eprintln!(
                "SLOW: metrics-enabled net leg ran at {:.1}% of disabled throughput (< 98%)",
                overhead_ratio * 100.0
            );
        }
        NetVerdict {
            leg,
            modes_identical,
            enabled_obs_per_sec,
            disabled_obs_per_sec,
            overhead_ratio,
            overhead_ok,
        }
    });
    let mut net_identical = true;
    if let Some(v) = &net {
        for ((tenant, want), (_, got)) in reference.fingerprints.iter().zip(&v.leg.fingerprints) {
            if want != got {
                eprintln!(
                    "MISMATCH: tenant {tenant} fingerprint {got:016x} over the network != {want:016x} in-process"
                );
                net_identical = false;
            }
        }
    }

    let out = std::env::var("BENCH_OUT").unwrap_or_else(|_| "BENCH_service.json".to_string());
    atomic_write(
        &out,
        &json_report(
            &tenants,
            &legs,
            identical,
            scheduler_identical,
            snapshot_ok,
            &chaos,
            &starvation,
            &leg_metrics,
            metrics_off_identical,
            net.as_ref().map(|v| (v, net_identical)),
        ),
    )
    .unwrap_or_else(|e| panic!("writing {out}: {e}"));
    eprintln!("wrote {out}");

    let net_gates_ok = match &net {
        Some(v) => v.modes_identical && v.overhead_ok,
        None => true,
    };
    if !identical
        || !scheduler_identical
        || !snapshot_ok
        || !chaos.ok()
        || !starvation.ok()
        || !leg_metrics.counters_match
        || !metrics_off_identical
        || !net_identical
        || !net_gates_ok
    {
        eprintln!("serve: FAILED");
        std::process::exit(1);
    }
    eprintln!("serve: all checks passed");
}

#[cfg(test)]
mod tests {
    use super::{jain, kill_point, nearest_rank_ms};

    #[test]
    fn nearest_rank_handles_degenerate_sample_sets() {
        // Empty: every percentile is 0, not a panic.
        for pct in [0, 50, 90, 100] {
            assert_eq!(nearest_rank_ms(&[], pct), 0.0);
        }
        // Single sample: every percentile is that sample.
        for pct in [0, 50, 90, 100] {
            assert_eq!(nearest_rank_ms(&[3_000_000], pct), 3.0);
        }
        // Even length, unsorted input: p0 is the min, p100 the max,
        // p50 the ceil-rank (2nd of 4), p90 the 4th of 4.
        let samples = [4_000_000, 1_000_000, 3_000_000, 2_000_000];
        assert_eq!(nearest_rank_ms(&samples, 0), 1.0);
        assert_eq!(nearest_rank_ms(&samples, 50), 2.0);
        assert_eq!(nearest_rank_ms(&samples, 90), 4.0);
        assert_eq!(nearest_rank_ms(&samples, 100), 4.0);
        // Odd length: p50 is the true median.
        let odd = [5_000_000, 1_000_000, 3_000_000];
        assert_eq!(nearest_rank_ms(&odd, 50), 3.0);
    }

    #[test]
    fn kill_point_rides_the_checkpoint_schedule() {
        // Whenever a checkpoint boundary + offset fits in the stream, the
        // kill lands exactly 6 acked batches past a boundary: the gap the
        // lossy 2-batch journal window cannot cover.
        for total in 15..200u64 {
            for x in [0u64, 1, 7, 1 << 20] {
                let k = kill_point(total, 8, x);
                assert!(k >= 2 && k < total, "kill {k} in range for total {total}");
                assert_eq!((k - 6) % 8, 0, "kill {k} sits 6 past a boundary");
            }
        }
    }

    #[test]
    fn kill_point_degenerate_streams_still_kill_in_range() {
        // Streams too short for boundary+offset fall back to the latest
        // possible kill — still inside the stream, still past the lossy
        // window whenever the stream has more than 3 batches.
        for total in 1..15u64 {
            for x in [0u64, 3, 99] {
                let k = kill_point(total, 8, x);
                assert!(k >= 2, "kill {k} never before batch 2");
                if total >= 3 {
                    assert!(k < total, "kill {k} inside stream of {total}");
                }
                if total >= 4 {
                    assert!(k > 2, "kill {k} beats the 2-batch lossy window");
                }
            }
        }
        // The old schedule pinned these streams at min(total-1) — on a
        // 10-batch stream that was batch 9, a checkpoint gap of 1 that
        // the lossy window silently covered. Now the gap is 9.
        assert_eq!(kill_point(10, 8, 0), 9);
        assert_eq!(kill_point(15, 8, 12345), 14);
    }

    #[test]
    fn jain_index_bounds() {
        assert_eq!(jain(&[]), 0.0);
        assert_eq!(jain(&[0.0, 0.0]), 0.0);
        assert!((jain(&[5.0, 5.0, 5.0, 5.0]) - 1.0).abs() < 1e-12);
        // One tenant taking everything scores 1/n.
        assert!((jain(&[8.0, 0.0, 0.0, 0.0]) - 0.25).abs() < 1e-12);
        let skewed = jain(&[16.0, 1.0, 1.0, 1.0, 1.0]);
        assert!(skewed < 0.35, "heavy skew scores low, got {skewed}");
    }
}
