//! Service smoke target: the sharded multi-tenant prefetch service run
//! over the same multi-tenant observation streams at several shard
//! counts, with a bit-identity check of every tenant's learned table
//! across shard counts, a snapshot → restore → fingerprint warm-start
//! check, and a machine-readable throughput report written to
//! `BENCH_service.json`.
//!
//! Environment:
//!
//! * `ULMT_SHARDS` — comma-separated shard counts (default `1,2,4`).
//! * `ULMT_TENANTS` — number of tenants (default `4`).
//! * `ULMT_FAULT_SEED` — seed for the chaos leg's fault schedule
//!   (default `7`); the schedule is a pure function of the seed.
//! * `BENCH_OUT` — output path (default `BENCH_service.json`).
//!
//! The report is written atomically (temp file + rename), so an
//! interrupted run never leaves a truncated `BENCH_service.json`.
//!
//! After the throughput legs, a chaos leg kills the shard mid-stream
//! under two recovery policies. With a journal window that covers the
//! checkpoint gap, recovery must be **clean**: every tenant's final
//! fingerprint identical to the fault-free legs. With a deliberately
//! undersized window, recovery must be **lossy** with an exact
//! `dropped_batches` count satisfying the conservation identity
//! `recovered.batches + dropped == total batches`. Recovery latency
//! percentiles land in the report under `"chaos"`.
//!
//! Exits non-zero if any tenant's table fingerprint differs between
//! shard counts, if a restored snapshot does not reproduce its source
//! fingerprint bit-for-bit, or if any chaos-leg invariant fails.

use std::collections::VecDeque;
use std::fmt::Write as _;
use std::time::{Duration, Instant};

use ulmt_bench::io::atomic_write;
use ulmt_service::{
    PendingBatch, PrefetchService, RecoveryOutcome, ServiceConfig, ServiceError, Session,
    ShardState, SupervisionConfig, TenantSpec,
};
use ulmt_simcore::{LineAddr, ServiceFaultConfig};
use ulmt_system::{l2_miss_stream_with, SystemConfig};
use ulmt_workloads::{App, WorkloadSpec};

/// One tenant's identity and full observation stream.
struct Tenant {
    id: u32,
    spec: TenantSpec,
    obs: Vec<LineAddr>,
}

fn parse_shards() -> Vec<usize> {
    let raw = std::env::var("ULMT_SHARDS").unwrap_or_else(|_| "1,2,4".to_string());
    raw.split(',')
        .map(|s| {
            s.trim()
                .parse::<usize>()
                .unwrap_or_else(|_| panic!("bad shard count {s:?} in ULMT_SHARDS"))
        })
        .collect()
}

fn tenants() -> Vec<Tenant> {
    let n: usize = std::env::var("ULMT_TENANTS")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(4);
    let config = SystemConfig::small();
    (0..n as u32)
        .map(|id| {
            let app = App::ALL[id as usize % App::ALL.len()];
            let spec = WorkloadSpec::new(app).scale(1.0 / 32.0).iterations(2);
            let kind = match id % 3 {
                0 => TenantSpec::repl(1024),
                1 => TenantSpec::chain(1024),
                _ => TenantSpec::base(1024),
            };
            Tenant {
                id: id + 1,
                spec: kind,
                obs: l2_miss_stream_with(&config, &spec).collect(),
            }
        })
        .collect()
}

struct Leg {
    shards: usize,
    wall_nanos: u64,
    observed: u64,
    fingerprints: Vec<(u32, u64)>,
    utilization: Vec<f64>,
}

impl Leg {
    fn obs_per_sec(&self) -> f64 {
        self.observed as f64 / (self.wall_nanos.max(1) as f64 / 1e9)
    }
}

/// Feeds every tenant's stream through a `shards`-shard service in
/// interleaved rounds and returns throughput plus per-tenant table
/// fingerprints.
fn run_leg(shards: usize, tenants: &[Tenant]) -> Leg {
    const BATCH: usize = 256;
    let service = PrefetchService::start(ServiceConfig {
        shards,
        ..ServiceConfig::default()
    });
    let mut sessions: Vec<_> = tenants
        .iter()
        .map(|t| {
            service
                .open(t.id, t.spec)
                .unwrap_or_else(|e| panic!("opening tenant {}: {e}", t.id))
        })
        .collect();

    let start = Instant::now();
    // Interleave tenants round-robin, one batch each per round, so every
    // shard sees its tenants' streams genuinely mixed. Each tenant keeps
    // a bounded pending window; once it is full, the oldest reply is
    // reaped and its recycled observation buffer refilled for the next
    // batch — steady-state submission allocates nothing.
    const WINDOW: usize = 4;
    struct Feeder {
        pool: Vec<Vec<LineAddr>>,
        pending: VecDeque<PendingBatch>,
    }
    let rounds = tenants
        .iter()
        .map(|t| t.obs.len().div_ceil(BATCH))
        .max()
        .unwrap_or(0);
    let mut feeders: Vec<Feeder> = tenants
        .iter()
        .map(|_| Feeder {
            pool: Vec::new(),
            pending: VecDeque::new(),
        })
        .collect();
    let mut observed = 0u64;
    for round in 0..rounds {
        for ((t, session), feeder) in tenants.iter().zip(&mut sessions).zip(&mut feeders) {
            let lo = round * BATCH;
            if lo >= t.obs.len() {
                continue;
            }
            let hi = (lo + BATCH).min(t.obs.len());
            if feeder.pending.len() >= WINDOW {
                let reply = feeder
                    .pending
                    .pop_front()
                    .expect("window is non-empty")
                    .wait()
                    .expect("shard alive");
                observed += reply.observed;
                feeder.pool.push(reply.recycled);
            }
            let mut buf = feeder
                .pool
                .pop()
                .unwrap_or_else(|| Vec::with_capacity(BATCH));
            buf.extend_from_slice(&t.obs[lo..hi]);
            feeder.pending.push_back(
                session
                    .submit(buf)
                    .unwrap_or_else(|e| panic!("submitting to tenant {}: {e}", t.id)),
            );
        }
    }
    for feeder in &mut feeders {
        while let Some(p) = feeder.pending.pop_front() {
            observed += p.wait().expect("shard alive").observed;
        }
    }
    service.drain().expect("drain");
    let wall_nanos = start.elapsed().as_nanos() as u64;

    let fingerprints = sessions
        .iter_mut()
        .map(|s| (s.tenant(), s.fingerprint().expect("fingerprint")))
        .collect();
    let utilization = (0..shards)
        .map(|i| service.shard_stats(i).expect("shard stats").utilization())
        .collect();
    service.shutdown();
    Leg {
        shards,
        wall_nanos,
        observed,
        fingerprints,
        utilization,
    }
}

/// Snapshot every tenant on a fresh service, restore each snapshot into
/// a new tenant, and check the restored fingerprints match bit-for-bit.
fn snapshot_restore_identical(tenants: &[Tenant]) -> bool {
    let service = PrefetchService::start(ServiceConfig {
        shards: 2,
        ..ServiceConfig::default()
    });
    let mut ok = true;
    for t in tenants {
        let mut session = service.open(t.id, t.spec).expect("open");
        session
            .submit(t.obs.clone())
            .expect("submit")
            .wait()
            .expect("reply");
        let snap = session.snapshot().expect("snapshot");
        let source = session.fingerprint().expect("fingerprint");
        // Restore into a disjoint tenant ID: a cold table warm-started
        // from the snapshot must reproduce the source exactly.
        let mut warm = service.open(t.id + 1000, t.spec).expect("open warm");
        warm.restore(snap).expect("restore");
        let restored = warm.fingerprint().expect("fingerprint");
        if restored != source {
            eprintln!(
                "MISMATCH: tenant {} snapshot restore {restored:016x} != source {source:016x}",
                t.id
            );
            ok = false;
        }
    }
    service.shutdown();
    ok
}

/// Aggregate verdict of the chaos leg: how many kill/recover rounds ran
/// under each policy, whether every invariant held, and the observed
/// recovery latencies.
struct ChaosSummary {
    seed: u64,
    rounds: usize,
    clean_recoveries: usize,
    lossy_recoveries: usize,
    clean_identical: bool,
    lossy_conserved: bool,
    dropped_batches: u64,
    latencies_nanos: Vec<u64>,
}

impl ChaosSummary {
    fn ok(&self) -> bool {
        self.clean_recoveries > 0
            && self.lossy_recoveries > 0
            && self.clean_identical
            && self.lossy_conserved
    }

    /// Nearest-rank percentile of recovery latency, in milliseconds.
    fn latency_ms(&self, pct: u64) -> f64 {
        let mut sorted = self.latencies_nanos.clone();
        sorted.sort_unstable();
        if sorted.is_empty() {
            return 0.0;
        }
        let rank = ((pct * sorted.len() as u64).div_ceil(100)).clamp(1, sorted.len() as u64);
        sorted[rank as usize - 1] as f64 / 1e6
    }
}

fn chaos_seed() -> u64 {
    std::env::var("ULMT_FAULT_SEED")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(7)
}

/// Submits one batch and waits for its ack, resubmitting through the
/// crash and recovery. Safe because the shard journals before acking: a
/// batch whose ack never arrived was never journaled, so replaying it
/// cannot double-count.
fn submit_until_acked(session: &mut Session, obs: &[LineAddr]) {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        assert!(
            Instant::now() < deadline,
            "chaos: batch not acked within 30s — recovery wedged?"
        );
        let pending = match session.submit(obs.to_vec()) {
            Ok(p) => p,
            Err(ServiceError::Timeout | ServiceError::Closed | ServiceError::ShardDown(_)) => {
                std::thread::sleep(Duration::from_millis(1));
                continue;
            }
            Err(e) => panic!("chaos: unrecoverable submit error: {e}"),
        };
        match pending.wait() {
            Ok(reply) if reply.error.is_none() && !reply.shed => return,
            Ok(_) | Err(_) => continue,
        }
    }
}

/// One kill/recover round: a single-shard service with a seeded kill
/// fault mid-stream, a client that resubmits through the crash, and the
/// round's invariants checked against the fault-free reference.
fn chaos_round(
    tenants: &[Tenant],
    reference_fps: &[(u32, u64)],
    seed: u64,
    round: usize,
    clean_policy: bool,
    summary: &mut ChaosSummary,
) -> bool {
    const CHAOS_BATCH: usize = 64;
    const CHECKPOINT_EVERY: u64 = 8;
    let total_batches: u64 = tenants
        .iter()
        .map(|t| t.obs.len().div_ceil(CHAOS_BATCH) as u64)
        .sum();

    // Seed-derived kill point, placed a fixed offset past a checkpoint
    // boundary so the checkpoint gap at the crash (~5 acked batches)
    // exceeds the lossy policy's journal window but not the clean one's.
    let mut x = seed ^ 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(round as u64 + 1);
    x = x
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    let periods = (total_batches / CHECKPOINT_EVERY).saturating_sub(2).max(1);
    let kill_at = (CHECKPOINT_EVERY * (1 + (x >> 33) % periods) + 6)
        .min(total_batches.saturating_sub(1))
        .max(2);

    let supervision = SupervisionConfig {
        max_restarts: 8,
        tick_ms: 2,
        wedge_ticks: 25,
        checkpoint_every: CHECKPOINT_EVERY,
        // Clean policy: the window always covers the checkpoint gap.
        // Lossy policy: a 2-batch window guarantees acked batches fall
        // off the ring before the crash at checkpoint-gap ~5.
        journal_window: if clean_policy { 64 } else { 2 },
        backoff_base_ms: 1,
        backoff_max_ms: 8,
        shed_when_down: false,
        control_timeout_ms: 10_000,
    };
    let service = PrefetchService::start(ServiceConfig {
        shards: 1,
        queue_depth: 64,
        supervision,
        fault: Some(ServiceFaultConfig::disabled(seed ^ round as u64).kill(0, kill_at)),
        ..ServiceConfig::default()
    });

    let mut sessions: Vec<Session> = tenants
        .iter()
        .map(|t| service.open(t.id, t.spec).expect("chaos: open"))
        .collect();
    let rounds = tenants
        .iter()
        .map(|t| t.obs.len().div_ceil(CHAOS_BATCH))
        .max()
        .unwrap_or(0);
    for r in 0..rounds {
        for (t, session) in tenants.iter().zip(&mut sessions) {
            let lo = r * CHAOS_BATCH;
            if lo >= t.obs.len() {
                continue;
            }
            let hi = (lo + CHAOS_BATCH).min(t.obs.len());
            submit_until_acked(session, &t.obs[lo..hi]);
        }
    }

    // The kill fires mid-stream, so by the time every batch is acked the
    // replacement worker is necessarily up; give the supervisor a beat
    // to publish the report it wrote while we were resubmitting.
    let deadline = Instant::now() + Duration::from_secs(30);
    while service.recovery_reports().is_empty() || service.shard_state(0) != ShardState::Up {
        assert!(
            Instant::now() < deadline,
            "chaos: recovery not reported within 30s"
        );
        std::thread::sleep(Duration::from_millis(1));
    }

    let fps: Vec<(u32, u64)> = sessions
        .iter_mut()
        .map(|s| (s.tenant(), s.fingerprint().expect("chaos: fingerprint")))
        .collect();
    let stats = service.shard_stats(0).expect("chaos: shard stats");
    let reports = service.recovery_reports();
    service.shutdown();

    let mut dropped = 0u64;
    let mut any_lossy = false;
    let mut all_clean = true;
    for report in &reports {
        summary.latencies_nanos.push(report.latency_nanos);
        match report.outcome {
            RecoveryOutcome::Clean { .. } => {}
            RecoveryOutcome::Lossy {
                dropped_batches, ..
            } => {
                any_lossy = true;
                all_clean = false;
                dropped += dropped_batches;
            }
        }
    }
    summary.dropped_batches += dropped;

    let identical = fps == reference_fps;
    let conserved = stats.batches + dropped == total_batches;
    let mut ok = true;
    if clean_policy {
        summary.clean_recoveries += reports.len();
        if !all_clean || !identical || !conserved {
            summary.clean_identical = false;
            ok = false;
        }
    } else {
        summary.lossy_recoveries += reports.len();
        if !any_lossy || !conserved {
            summary.lossy_conserved = false;
            ok = false;
        }
    }
    eprintln!(
        "  chaos round {round}: kill@{kill_at}/{total_batches} policy={} recoveries={} \
         dropped={dropped} identical={identical} conserved={conserved}{}",
        if clean_policy { "clean" } else { "lossy" },
        reports.len(),
        if ok { "" } else { "  <-- VIOLATION" },
    );
    ok
}

/// The chaos leg: alternating clean-policy and lossy-policy kill rounds
/// driven by a seeded, deterministic fault schedule.
fn run_chaos(tenants: &[Tenant], reference_fps: &[(u32, u64)]) -> ChaosSummary {
    const ROUNDS: usize = 6;
    let seed = chaos_seed();
    eprintln!("chaos leg: {ROUNDS} kill/recover rounds, seed {seed} ...");
    let mut summary = ChaosSummary {
        seed,
        rounds: ROUNDS,
        clean_recoveries: 0,
        lossy_recoveries: 0,
        clean_identical: true,
        lossy_conserved: true,
        dropped_batches: 0,
        latencies_nanos: Vec::new(),
    };
    for round in 0..ROUNDS {
        let clean_policy = round % 2 == 0;
        chaos_round(
            tenants,
            reference_fps,
            seed,
            round,
            clean_policy,
            &mut summary,
        );
    }
    eprintln!(
        "  chaos: {} clean + {} lossy recoveries, {} batches dropped (lossy policy), \
         recovery p50 {:.3} ms / p90 {:.3} ms / max {:.3} ms",
        summary.clean_recoveries,
        summary.lossy_recoveries,
        summary.dropped_batches,
        summary.latency_ms(50),
        summary.latency_ms(90),
        summary.latency_ms(100),
    );
    summary
}

fn json_report(
    tenants: &[Tenant],
    legs: &[Leg],
    identical: bool,
    snapshot_ok: bool,
    chaos: &ChaosSummary,
) -> String {
    let mut j = String::new();
    j.push_str("{\n");
    let _ = writeln!(j, "  \"tenants\": {},", tenants.len());
    let _ = writeln!(
        j,
        "  \"observations\": {},",
        tenants.iter().map(|t| t.obs.len()).sum::<usize>()
    );
    let _ = writeln!(j, "  \"fingerprints_identical\": {identical},");
    let _ = writeln!(j, "  \"snapshot_restore_identical\": {snapshot_ok},");
    j.push_str("  \"chaos\": {\n");
    let _ = writeln!(j, "    \"seed\": {},", chaos.seed);
    let _ = writeln!(j, "    \"rounds\": {},", chaos.rounds);
    let _ = writeln!(j, "    \"clean_recoveries\": {},", chaos.clean_recoveries);
    let _ = writeln!(j, "    \"lossy_recoveries\": {},", chaos.lossy_recoveries);
    let _ = writeln!(j, "    \"clean_identical\": {},", chaos.clean_identical);
    let _ = writeln!(j, "    \"lossy_conserved\": {},", chaos.lossy_conserved);
    let _ = writeln!(j, "    \"dropped_batches\": {},", chaos.dropped_batches);
    let _ = writeln!(
        j,
        "    \"recovery_latency_ms\": {{\"p50\": {:.3}, \"p90\": {:.3}, \"max\": {:.3}}}",
        chaos.latency_ms(50),
        chaos.latency_ms(90),
        chaos.latency_ms(100),
    );
    j.push_str("  },\n");
    j.push_str("  \"legs\": [\n");
    for (i, leg) in legs.iter().enumerate() {
        let util = leg
            .utilization
            .iter()
            .map(|u| format!("{u:.4}"))
            .collect::<Vec<_>>()
            .join(", ");
        let _ = writeln!(
            j,
            "    {{\"shards\": {}, \"wall_ms\": {:.3}, \"obs_per_sec\": {:.0}, \"utilization\": [{util}]}}{}",
            leg.shards,
            leg.wall_nanos as f64 / 1e6,
            leg.obs_per_sec(),
            if i + 1 < legs.len() { "," } else { "" }
        );
    }
    j.push_str("  ],\n");
    j.push_str("  \"tenant_fingerprints\": [\n");
    let reference = &legs[0].fingerprints;
    for (i, (tenant, fp)) in reference.iter().enumerate() {
        let _ = writeln!(
            j,
            "    {{\"tenant\": {tenant}, \"fingerprint\": \"{fp:016x}\"}}{}",
            if i + 1 < reference.len() { "," } else { "" }
        );
    }
    j.push_str("  ]\n}\n");
    j
}

fn main() {
    let shard_counts = parse_shards();
    let tenants = tenants();
    let total: usize = tenants.iter().map(|t| t.obs.len()).sum();
    eprintln!(
        "serve: {} tenants, {} observations, shard counts {:?}",
        tenants.len(),
        total,
        shard_counts
    );

    let legs: Vec<Leg> = shard_counts
        .iter()
        .map(|&shards| {
            let leg = run_leg(shards, &tenants);
            eprintln!(
                "  {} shard(s): {:.1} ms, {:.0} obs/sec",
                shards,
                leg.wall_nanos as f64 / 1e6,
                leg.obs_per_sec()
            );
            leg
        })
        .collect();

    // Determinism gate: every tenant's table must be bit-identical (same
    // fingerprint) no matter how many shards served it.
    let mut identical = true;
    let reference = &legs[0];
    for leg in &legs[1..] {
        for ((tenant, want), (_, got)) in reference.fingerprints.iter().zip(&leg.fingerprints) {
            if want != got {
                eprintln!(
                    "MISMATCH: tenant {tenant} fingerprint {got:016x} at {} shard(s) != {want:016x} at {} shard(s)",
                    leg.shards, reference.shards
                );
                identical = false;
            }
        }
    }

    eprintln!("snapshot/restore pass ...");
    let snapshot_ok = snapshot_restore_identical(&tenants);

    let chaos = run_chaos(&tenants, &legs[0].fingerprints);

    let out = std::env::var("BENCH_OUT").unwrap_or_else(|_| "BENCH_service.json".to_string());
    atomic_write(
        &out,
        &json_report(&tenants, &legs, identical, snapshot_ok, &chaos),
    )
    .unwrap_or_else(|e| panic!("writing {out}: {e}"));
    eprintln!("wrote {out}");

    if !identical || !snapshot_ok || !chaos.ok() {
        eprintln!("serve: FAILED");
        std::process::exit(1);
    }
    eprintln!("serve: all checks passed");
}
