//! Small filesystem helpers for the bench binaries.

use std::io::Write as _;
use std::path::Path;

/// Writes `contents` to `path` atomically: the bytes go to a temporary
/// sibling file (`<path>.tmp.<pid>`) which is persisted and then renamed
/// over the destination. A crash, panic, or watchdog kill mid-write can
/// therefore never leave a truncated or interleaved JSON report behind —
/// readers see either the old complete file or the new complete file.
pub fn atomic_write(path: impl AsRef<Path>, contents: &str) -> std::io::Result<()> {
    let path = path.as_ref();
    let tmp = path.with_extension(format!(
        "{}tmp.{}",
        path.extension()
            .map(|e| format!("{}.", e.to_string_lossy()))
            .unwrap_or_default(),
        std::process::id()
    ));
    let result = (|| {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(contents.as_bytes())?;
        f.sync_all()?;
        drop(f);
        std::fs::rename(&tmp, path)
    })();
    if result.is_err() {
        // Best-effort cleanup; the original destination is untouched.
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn atomic_write_replaces_content_and_leaves_no_tmp() {
        let dir = std::env::temp_dir().join(format!("ulmt_io_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("report.json");
        atomic_write(&path, "{\"v\": 1}\n").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "{\"v\": 1}\n");
        atomic_write(&path, "{\"v\": 2}\n").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "{\"v\": 2}\n");
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains("tmp"))
            .collect();
        assert!(
            leftovers.is_empty(),
            "temp files left behind: {leftovers:?}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
