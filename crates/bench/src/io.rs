//! Small filesystem helpers for the bench binaries.

use std::io::Write as _;
use std::path::Path;

use ulmt_simcore::TraceBuffer;

/// Writes `contents` to `path` atomically: the bytes go to a temporary
/// sibling file (`<path>.tmp.<pid>`) which is persisted and then renamed
/// over the destination. A crash, panic, or watchdog kill mid-write can
/// therefore never leave a truncated or interleaved JSON report behind —
/// readers see either the old complete file or the new complete file.
pub fn atomic_write(path: impl AsRef<Path>, contents: &str) -> std::io::Result<()> {
    let path = path.as_ref();
    let tmp = path.with_extension(format!(
        "{}tmp.{}",
        path.extension()
            .map(|e| format!("{}.", e.to_string_lossy()))
            .unwrap_or_default(),
        std::process::id()
    ));
    let result = (|| {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(contents.as_bytes())?;
        f.sync_all()?;
        drop(f);
        std::fs::rename(&tmp, path)
    })();
    if result.is_err() {
        // Best-effort cleanup; the original destination is untouched.
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

/// Writes an event trace as JSON Lines (one `{"at":..,"ev":..}` object
/// per line), atomically.
pub fn write_trace_jsonl(path: impl AsRef<Path>, trace: &TraceBuffer) -> std::io::Result<()> {
    atomic_write(path, &trace.to_jsonl())
}

/// Writes an event trace in the Chrome `trace_event` format, atomically.
/// The file loads directly into Perfetto (<https://ui.perfetto.dev>) or
/// `chrome://tracing`.
pub fn write_trace_chrome(path: impl AsRef<Path>, trace: &TraceBuffer) -> std::io::Result<()> {
    atomic_write(path, &trace.to_chrome_trace())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn atomic_write_replaces_content_and_leaves_no_tmp() {
        let dir = std::env::temp_dir().join(format!("ulmt_io_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("report.json");
        atomic_write(&path, "{\"v\": 1}\n").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "{\"v\": 1}\n");
        atomic_write(&path, "{\"v\": 2}\n").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "{\"v\": 2}\n");
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains("tmp"))
            .collect();
        assert!(
            leftovers.is_empty(),
            "temp files left behind: {leftovers:?}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn trace_exports_round_trip_to_disk() {
        use ulmt_simcore::{LineAddr, TraceConfig, TraceEvent};
        let mut buf = TraceBuffer::new(TraceConfig::with_capacity(8));
        buf.record(
            3,
            TraceEvent::Q3Enqueue {
                line: LineAddr::new(7),
            },
        );
        let dir = std::env::temp_dir().join(format!("ulmt_trace_io_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let jsonl = dir.join("run.trace.jsonl");
        let chrome = dir.join("run.trace.json");
        write_trace_jsonl(&jsonl, &buf).unwrap();
        write_trace_chrome(&chrome, &buf).unwrap();
        let j = std::fs::read_to_string(&jsonl).unwrap();
        assert!(j.contains("\"ev\":\"q3_enqueue\""), "{j}");
        let c = std::fs::read_to_string(&chrome).unwrap();
        assert!(c.contains("traceEvents"), "{c}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
