//! Regeneration of Tables 1–5.

use ulmt_core::properties;
use ulmt_core::table::TableParams;
use ulmt_system::{l2_miss_stream, PrefetchScheme, SystemConfig};
use ulmt_workloads::{App, WorkloadSpec};

/// Table 1: qualitative algorithm comparison, measured from the real
/// structures.
pub fn table1() -> String {
    let rows = properties::table1(3);
    let mut s = String::new();
    s.push_str("Table 1. Comparing pair-based correlation algorithms on a ULMT\n");
    s.push_str(&format!(
        "{:<28} {:>8} {:>8} {:>12}\n",
        "Characteristic", "Base", "Chain", "Replicated"
    ));
    let fmt_bool = |b: bool| if b { "Yes" } else { "No" }.to_string();
    s.push_str(&format!(
        "{:<28} {:>8} {:>8} {:>12}\n",
        "Levels prefetched",
        rows[0].levels_prefetched,
        rows[1].levels_prefetched,
        rows[2].levels_prefetched
    ));
    s.push_str(&format!(
        "{:<28} {:>8} {:>8} {:>12}\n",
        "True MRU per level?",
        fmt_bool(rows[0].true_mru_per_level),
        fmt_bool(rows[1].true_mru_per_level),
        fmt_bool(rows[2].true_mru_per_level)
    ));
    s.push_str(&format!(
        "{:<28} {:>8.1} {:>8.1} {:>12.1}\n",
        "Row accesses, prefetch step",
        rows[0].prefetch_row_accesses,
        rows[1].prefetch_row_accesses,
        rows[2].prefetch_row_accesses
    ));
    s.push_str(&format!(
        "{:<28} {:>8.1} {:>8.1} {:>12.1}\n",
        "Row accesses, learning step",
        rows[0].learn_row_accesses,
        rows[1].learn_row_accesses,
        rows[2].learn_row_accesses
    ));
    s.push_str(&format!(
        "{:<28} {:>8} {:>8} {:>12}\n",
        "Response time",
        rows[0].response.to_string(),
        rows[1].response.to_string(),
        rows[2].response.to_string()
    ));
    s.push_str(&format!(
        "{:<28} {:>8} {:>8} {:>11}x\n",
        "Space (const #prefetches)",
        rows[0].relative_space,
        rows[1].relative_space,
        rows[2].relative_space
    ));
    s
}

/// Derives `NumRows` for one workload by the Table 2 rule: the lowest
/// power of two such that, with the trivial low-bits hash and a 2-way
/// table, fewer than 5% of insertions replace an existing entry.
pub fn derive_num_rows(workload: &WorkloadSpec) -> usize {
    let misses: Vec<_> = l2_miss_stream(workload).collect();
    let mut rows = 1024usize;
    loop {
        let params = TableParams {
            num_rows: rows,
            assoc: 2,
            num_succ: 1,
            num_levels: 1,
        };
        let mut table = ulmt_core::table::RowTable::new(&params, 8, 1);
        for &m in &misses {
            table.find_or_alloc(m);
        }
        if table.stats().replacement_ratio() < 0.05 || rows >= 1 << 22 {
            return rows;
        }
        rows *= 2;
    }
}

/// Table 2: applications, derived `NumRows`, and table sizes in MB for
/// Base (20 B/row), Chain (12 B/row) and Repl (28 B/row).
///
/// Uses paper-scale workloads regardless of profile (the table is about
/// the real footprints); pass `scale < 1.0` to test cheaply.
pub fn table2(scale: f64) -> String {
    let mut s = String::new();
    s.push_str("Table 2. Applications and correlation table sizes\n");
    s.push_str(&format!(
        "{:<8} {:<14} {:<38} {:>9} {:>9} {:>7} {:>7} {:>7}\n",
        "Appl", "Suite", "Problem", "NumRows", "(paper)", "Base", "Chain", "Repl"
    ));
    let mb = |rows: usize, bytes: u64| rows as f64 * bytes as f64 / (1024.0 * 1024.0);
    let mut sums = (0usize, 0f64, 0f64, 0f64);
    // Each app's NumRows derivation replays its miss stream repeatedly —
    // independent work, so derive all apps in parallel.
    let derived: Vec<usize> = ulmt_system::parallel_map(
        App::ALL
            .iter()
            .map(|&a| WorkloadSpec::new(a).scale(scale))
            .collect(),
        |spec| derive_num_rows(&spec),
    );
    for (app, rows) in App::ALL.into_iter().zip(derived) {
        let paper_rows = (App::paper_num_rows(app) as f64 * scale) as usize;
        let (b, c, r) = (mb(rows, 20), mb(rows, 12), mb(rows, 28));
        sums.0 += rows;
        sums.1 += b;
        sums.2 += c;
        sums.3 += r;
        s.push_str(&format!(
            "{:<8} {:<14} {:<38} {:>8}K {:>8}K {:>7.1} {:>7.1} {:>7.1}\n",
            app.name(),
            app.suite(),
            app.problem(),
            rows / 1024,
            paper_rows / 1024,
            b,
            c,
            r
        ));
    }
    let n = App::ALL.len() as f64;
    s.push_str(&format!(
        "{:<8} {:<14} {:<38} {:>8}K {:>9} {:>7.1} {:>7.1} {:>7.1}\n",
        "Average",
        "",
        "",
        sums.0 / App::ALL.len() / 1024,
        "",
        sums.1 / n,
        sums.2 / n,
        sums.3 / n
    ));
    s.push_str("(sizes in MB; NumRows = lowest power of two with <5% replacements)\n");
    s
}

/// Table 3: the simulated architecture.
pub fn table3() -> String {
    format!(
        "Table 3. Parameters of the simulated architecture\n{}",
        SystemConfig::default().table3()
    )
}

/// Table 4: algorithm parameter values.
pub fn table4() -> String {
    let mut s = String::new();
    s.push_str("Table 4. Parameter values used for the different algorithms\n");
    s.push_str(&format!(
        "{:<26} {:<22} {:<10} {}\n",
        "Prefetching algorithm", "Implementation", "Name", "Parameters"
    ));
    let rows = [
        ("Base", "Software ULMT", "Base", "NumSucc=4, Assoc=4"),
        (
            "Chain",
            "Software ULMT",
            "Chain",
            "NumSucc=2, Assoc=2, NumLevels=3",
        ),
        (
            "Replicated",
            "Software ULMT",
            "Repl",
            "NumSucc=2, Assoc=2, NumLevels=3",
        ),
        (
            "Sequential 1-stream",
            "Software ULMT",
            "Seq1",
            "NumSeq=1, NumPref=6",
        ),
        (
            "Sequential 4-streams",
            "Software ULMT",
            "Seq4",
            "NumSeq=4, NumPref=6",
        ),
        (
            "Sequential 4-streams",
            "Hardware in L1",
            "Conven4",
            "NumSeq=4, NumPref=6",
        ),
    ];
    for (alg, imp, name, params) in rows {
        s.push_str(&format!("{alg:<26} {imp:<22} {name:<10} {params}\n"));
    }
    s
}

/// Table 5: the customizations (with Conven4 also on).
pub fn table5() -> String {
    let mut s = String::new();
    s.push_str("Table 5. Customizations performed (Conven4 is also on)\n");
    for app in [App::Cg, App::Mst, App::Mcf] {
        let setup = PrefetchScheme::Custom.setup(app, 64 * 1024);
        let ulmt = setup.ulmt.as_ref().map(|u| u.label()).unwrap_or_default();
        let mode = if setup.verbose {
            "Verbose"
        } else {
            "Non-Verbose"
        };
        s.push_str(&format!("{:<8} {ulmt:<14} {mode}\n", app.name()));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_text_has_all_algorithms() {
        let t = table1();
        assert!(t.contains("Base") && t.contains("Chain") && t.contains("Replicated"));
        assert!(t.contains("Low") && t.contains("High"));
    }

    #[test]
    fn derive_num_rows_scales_with_footprint() {
        let small = derive_num_rows(&WorkloadSpec::new(App::Mcf).scale(1.0 / 32.0).iterations(2));
        let big = derive_num_rows(&WorkloadSpec::new(App::Mcf).scale(1.0 / 8.0).iterations(2));
        assert!(big > small, "big {big} small {small}");
    }

    #[test]
    fn table2_smoke() {
        let t = table2(1.0 / 32.0);
        assert!(t.contains("Mcf"));
        assert!(t.contains("SparseBench"));
    }

    #[test]
    fn table4_and_5_static_content() {
        assert!(table4().contains("Conven4"));
        let t5 = table5();
        assert!(t5.contains("seq1+repl") && t5.contains("Verbose"));
        assert!(t5.contains("repl(l4)"));
    }
}
