//! Regeneration of Figures 5–11.

use ulmt_core::algorithm::{Combined, UlmtAlgorithm};
use ulmt_core::predict::PredictionScorer;
use ulmt_core::seq::SeqUlmt;
use ulmt_core::table::{Base, Chain, Replicated, TableParams};
use ulmt_system::{l2_miss_stream_with, PrefetchScheme};
use ulmt_workloads::App;

use crate::profile::Profile;
use crate::runner::Runner;

fn pct(x: f64) -> String {
    format!("{:5.1}", 100.0 * x)
}

/// The algorithms compared in Figure 5, per level.
fn fig5_algorithms(num_rows: usize) -> Vec<(String, Box<dyn UlmtAlgorithm>)> {
    // "The experiments for the pair-based schemes use large tables ...
    // NumRows is 256 K, Assoc is 4, and NumSucc is 4."
    let params = TableParams {
        num_rows,
        assoc: 4,
        num_succ: 4,
        num_levels: 3,
    };
    let mk_seq4 = || Box::new(SeqUlmt::seq4());
    vec![
        (
            "Seq1".into(),
            Box::new(SeqUlmt::seq1()) as Box<dyn UlmtAlgorithm>,
        ),
        ("Seq4".into(), mk_seq4()),
        (
            "Base".into(),
            Box::new(Base::new(TableParams {
                num_levels: 1,
                ..params
            })),
        ),
        (
            "Seq4+Base".into(),
            Box::new(Combined::new(vec![
                mk_seq4(),
                Box::new(Base::new(TableParams {
                    num_levels: 1,
                    ..params
                })),
            ])),
        ),
        ("Chain".into(), Box::new(Chain::new(params))),
        ("Repl".into(), Box::new(Replicated::new(params))),
        (
            "Seq4+Repl".into(),
            Box::new(Combined::new(vec![
                mk_seq4(),
                Box::new(Replicated::new(params)),
            ])),
        ),
    ]
}

/// Figure 5: fraction of L2 misses correctly predicted at levels 1–3.
pub fn fig5(profile: &Profile) -> String {
    let mut out = String::new();
    out.push_str("Figure 5. % of L2 misses correctly predicted per level\n");
    let mut per_alg: Vec<(String, Vec<[f64; 3]>)> = Vec::new();
    for app in App::ALL {
        eprintln!("  predicting {} ...", app.name());
        let spec = profile.workload(app);
        let misses: Vec<_> = l2_miss_stream_with(&profile.config, &spec).collect();
        let num_rows = (4 * spec.footprint_lines() as usize).next_power_of_two();
        for (i, (name, mut alg)) in fig5_algorithms(num_rows).into_iter().enumerate() {
            let mut scorer = PredictionScorer::new(3);
            for &m in &misses {
                scorer.observe(alg.as_mut(), m);
            }
            if per_alg.len() <= i {
                per_alg.push((name, Vec::new()));
            }
            per_alg[i]
                .1
                .push([scorer.accuracy(1), scorer.accuracy(2), scorer.accuracy(3)]);
        }
    }
    for level in 0..3 {
        out.push_str(&format!("\nLevel {}\n{:<12}", level + 1, "Algorithm"));
        for app in App::ALL {
            out.push_str(&format!("{:>8}", app.name()));
        }
        out.push_str(&format!("{:>8}\n", "Avg"));
        for (name, rows) in &per_alg {
            // Base only stores one level of successors.
            if level > 0 && (name == "Base" || name == "Seq4+Base") {
                continue;
            }
            out.push_str(&format!("{name:<12}"));
            let mut sum = 0.0;
            for acc in rows {
                out.push_str(&format!("{:>8}", pct(acc[level])));
                sum += acc[level];
            }
            out.push_str(&format!("{:>8}\n", pct(sum / rows.len() as f64)));
        }
    }
    out
}

/// Figure 6: distribution of cycles between consecutive L2 misses
/// arriving at memory (NoPref).
pub fn fig6(runner: &mut Runner) -> String {
    runner.warm_grid(&App::ALL, &[PrefetchScheme::NoPref]);
    let mut out = String::new();
    out.push_str("Figure 6. Time between L2 misses at memory (NoPref)\n");
    let labels = ulmt_simcore::stats::BinnedHistogram::inter_miss().labels();
    out.push_str(&format!("{:<8}", "App"));
    for l in &labels {
        out.push_str(&format!("{l:>12}"));
    }
    out.push('\n');
    let mut sums = vec![0.0; labels.len()];
    for app in App::ALL {
        let r = runner.run(app, PrefetchScheme::NoPref);
        let fr = r.inter_miss.fractions();
        out.push_str(&format!("{:<8}", app.name()));
        for (i, f) in fr.iter().enumerate() {
            out.push_str(&format!("{:>11}%", pct(*f).trim()));
            sums[i] += f;
        }
        out.push('\n');
    }
    out.push_str(&format!("{:<8}", "Average"));
    for s in &sums {
        out.push_str(&format!("{:>11}%", pct(*s / App::ALL.len() as f64).trim()));
    }
    out.push('\n');
    out
}

/// Figure 7: normalized execution time under the seven schemes.
pub fn fig7(runner: &mut Runner) -> String {
    runner.warm_grid(&App::ALL, &PrefetchScheme::FIGURE7);
    let mut out = String::new();
    out.push_str("Figure 7. Execution time normalized to NoPref (Busy/UptoL2/BeyondL2)\n");
    for app in App::ALL {
        let base = runner.run(app, PrefetchScheme::NoPref).exec_cycles;
        out.push_str(&format!("\n{}\n", app.name()));
        out.push_str(&format!(
            "{:<16} {:>6} {:>6} {:>8} {:>7} {:>8}\n",
            "Scheme", "Busy", "UptoL2", "BeyondL2", "Total", "Speedup"
        ));
        for scheme in PrefetchScheme::FIGURE7 {
            let r = runner.run(app, scheme);
            let (busy, upto, beyond) = r.breakdown.normalized_to(base);
            let total = r.exec_cycles as f64 / base as f64;
            out.push_str(&format!(
                "{:<16} {:>6.3} {:>6.3} {:>8.3} {:>7.3} {:>8.2}\n",
                scheme.label(),
                busy,
                upto,
                beyond,
                total,
                base as f64 / r.exec_cycles as f64
            ));
        }
    }
    out.push_str("\nAverage speedups over NoPref\n");
    for scheme in PrefetchScheme::FIGURE7 {
        out.push_str(&format!(
            "{:<16} {:>6.2}\n",
            scheme.label(),
            runner.mean_speedup(scheme)
        ));
    }
    out
}

/// Figure 8: memory-processor location (in-DRAM vs North Bridge).
pub fn fig8(runner: &mut Runner) -> String {
    let schemes = [
        PrefetchScheme::NoPref,
        PrefetchScheme::Conven4Repl,
        PrefetchScheme::Conven4ReplMc,
    ];
    runner.warm_grid(&App::ALL, &schemes);
    let mut out = String::new();
    out.push_str("Figure 8. Execution time vs. memory processor location\n");
    out.push_str(&format!("{:<8}", "App"));
    for s in schemes {
        out.push_str(&format!("{:>16}", s.label()));
    }
    out.push('\n');
    for app in App::ALL {
        let base = runner.run(app, PrefetchScheme::NoPref).exec_cycles;
        out.push_str(&format!("{:<8}", app.name()));
        for scheme in schemes {
            let r = runner.run(app, scheme);
            out.push_str(&format!("{:>16.3}", r.exec_cycles as f64 / base as f64));
        }
        out.push('\n');
    }
    out.push_str(&format!(
        "Average speedups: Conven4+Repl {:.2}, Conven4+ReplMC {:.2}\n",
        runner.mean_speedup(PrefetchScheme::Conven4Repl),
        runner.mean_speedup(PrefetchScheme::Conven4ReplMc)
    ));
    out
}

/// Figure 9: breakdown of L2 misses + ULMT prefetches, normalized to the
/// NoPref miss count.
pub fn fig9(runner: &mut Runner) -> String {
    let schemes = [
        PrefetchScheme::Base,
        PrefetchScheme::Chain,
        PrefetchScheme::Repl,
        PrefetchScheme::Conven4Repl,
        PrefetchScheme::Conven4ReplMc,
    ];
    runner.warm_grid(&App::ALL, &schemes);
    runner.warm_grid(&App::ALL, &[PrefetchScheme::NoPref]);
    let mut out = String::new();
    out.push_str("Figure 9. L2 misses + prefetches, normalized to NoPref misses\n");
    let groups: Vec<(String, Vec<App>)> = vec![
        ("Sparse".into(), vec![App::Sparse]),
        ("Tree".into(), vec![App::Tree]),
        (
            "Avg-other-7".into(),
            App::ALL
                .iter()
                .copied()
                .filter(|a| *a != App::Sparse && *a != App::Tree)
                .collect(),
        ),
    ];
    for (label, apps) in groups {
        out.push_str(&format!(
            "\n{label}\n{:<16} {:>6} {:>8} {:>9} {:>9} {:>10} {:>9}\n",
            "Scheme", "Hits", "Delayed", "NonPref", "Replaced", "Redundant", "Coverage"
        ));
        for scheme in schemes {
            let mut acc = [0.0f64; 6];
            for &app in &apps {
                let original = runner.run(app, PrefetchScheme::NoPref).l2_misses.max(1) as f64;
                let r = runner.run(app, scheme);
                let p = &r.prefetch;
                acc[0] += p.hits as f64 / original;
                acc[1] += p.delayed_hits as f64 / original;
                acc[2] += p.non_pref_misses as f64 / original;
                acc[3] += p.replaced as f64 / original;
                acc[4] += p.redundant as f64 / original;
                acc[5] += (p.hits + p.delayed_hits) as f64 / original;
            }
            let n = apps.len() as f64;
            out.push_str(&format!(
                "{:<16} {:>6.2} {:>8.2} {:>9.2} {:>9.2} {:>10.2} {:>9.2}\n",
                scheme.label(),
                acc[0] / n,
                acc[1] / n,
                acc[2] / n,
                acc[3] / n,
                acc[4] / n,
                acc[5] / n
            ));
        }
    }
    out
}

/// Figure 10: ULMT response and occupancy times.
pub fn fig10(runner: &mut Runner) -> String {
    let schemes = [
        PrefetchScheme::Base,
        PrefetchScheme::Chain,
        PrefetchScheme::Repl,
        PrefetchScheme::ReplMc,
    ];
    runner.warm_grid(&App::ALL, &schemes);
    let mut out = String::new();
    out.push_str("Figure 10. Average ULMT response/occupancy (main-processor cycles)\n");
    out.push_str(&format!(
        "{:<10} {:>10} {:>11} {:>8} {:>8} {:>6}\n",
        "Algorithm", "Response", "Occupancy", "Busy%", "Mem%", "IPC"
    ));
    for scheme in schemes {
        let (mut resp, mut occ, mut memf, mut ipc) = (0.0, 0.0, 0.0, 0.0);
        let mut n = 0.0;
        for app in App::ALL {
            let r = runner.run(app, scheme);
            let Some(u) = &r.ulmt else { continue };
            resp += u.response.mean();
            occ += u.occupancy.mean();
            memf += u.mem_fraction();
            ipc += u.ipc();
            n += 1.0;
        }
        out.push_str(&format!(
            "{:<10} {:>10.1} {:>11.1} {:>7.1}% {:>7.1}% {:>6.2}\n",
            scheme.label(),
            resp / n,
            occ / n,
            100.0 * (1.0 - memf / n),
            100.0 * memf / n,
            ipc / n
        ));
    }
    out
}

/// Figure 11: main-memory (front-side) bus utilization.
pub fn fig11(runner: &mut Runner) -> String {
    let schemes = [
        PrefetchScheme::NoPref,
        PrefetchScheme::Conven4,
        PrefetchScheme::Base,
        PrefetchScheme::Chain,
        PrefetchScheme::Repl,
        PrefetchScheme::Conven4Repl,
        PrefetchScheme::Conven4ReplMc,
    ];
    runner.warm_grid(&App::ALL, &schemes);
    let mut out = String::new();
    out.push_str("Figure 11. FSB utilization (average over applications)\n");
    out.push_str(&format!(
        "{:<16} {:>8} {:>10} {:>12} {:>12}\n",
        "Scheme", "Total", "Baseline", "FasterExec", "PrefTraffic"
    ));
    let base_utils: Vec<(f64, f64)> = App::ALL
        .iter()
        .map(|&a| {
            let r = runner.run(a, PrefetchScheme::NoPref);
            (r.fsb_utilization, r.exec_cycles as f64)
        })
        .collect();
    for scheme in schemes {
        let (mut total, mut baseline, mut faster, mut pref) = (0.0, 0.0, 0.0, 0.0);
        for (i, &app) in App::ALL.iter().enumerate() {
            let r = runner.run(app, scheme);
            let (u0, t0) = base_utils[i];
            let scaled_u0 = u0 * (t0 / r.exec_cycles as f64);
            total += r.fsb_utilization;
            baseline += u0;
            faster += (scaled_u0 - u0).max(0.0);
            pref += (r.fsb_utilization - scaled_u0).max(0.0);
        }
        let n = App::ALL.len() as f64;
        out.push_str(&format!(
            "{:<16} {:>7.1}% {:>9.1}% {:>11.1}% {:>11.1}%\n",
            scheme.label(),
            100.0 * total / n,
            100.0 * baseline / n,
            100.0 * faster / n,
            100.0 * pref / n
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_runner() -> Runner {
        Runner::new(Profile::small())
    }

    #[test]
    fn fig5_smoke_on_two_apps() {
        // Full fig5 is exercised by the bench; here: a tiny profile works
        // and produces sane accuracy ordering on one app.
        let profile = Profile::small();
        // Enough iterations that the first (unlearnable) pass does not
        // dominate the accuracy denominator.
        let spec = profile.workload(App::Mcf).iterations(8);
        let misses: Vec<_> = l2_miss_stream_with(&profile.config, &spec).collect();
        let num_rows = (4 * spec.footprint_lines() as usize).next_power_of_two();
        let mut accs = Vec::new();
        for (name, mut alg) in fig5_algorithms(num_rows) {
            let mut scorer = PredictionScorer::new(3);
            for &m in &misses {
                scorer.observe(alg.as_mut(), m);
            }
            accs.push((name, scorer.accuracy(1)));
        }
        let get = |n: &str| {
            accs.iter()
                .find(|(a, _)| a == n)
                .expect("algorithm exists")
                .1
        };
        // Pair-based predicts Mcf; sequential cannot.
        assert!(get("Base") > 0.45, "base {}", get("Base"));
        assert!(get("Seq4") < 0.1, "seq4 {}", get("Seq4"));
        assert!(get("Repl") > 0.45, "repl {}", get("Repl"));
        assert!(get("Base") > 3.0 * get("Seq4"));
    }

    #[test]
    fn fig6_output_contains_all_apps() {
        // Use a single app to keep it fast: patch in a tiny subset by
        // running the full fig6 at small scale for Tree only would need
        // API changes, so just smoke the whole thing at small scale.
        let mut r = small_runner();
        let text = fig6(&mut r);
        assert!(text.contains("Mcf"));
        assert!(text.contains("[200,280)"));
    }
}
