//! Cached experiment runner shared by the figure generators.

use std::collections::HashMap;

use ulmt_system::{Experiment, PrefetchScheme, RunResult};
use ulmt_workloads::App;

use crate::profile::Profile;

/// Runs (app, scheme) simulations once and memoizes the results, since
/// several figures share the same underlying runs.
#[derive(Debug)]
pub struct Runner {
    profile: Profile,
    cache: HashMap<(App, PrefetchScheme), RunResult>,
}

impl Runner {
    /// Creates a runner for `profile`.
    pub fn new(profile: Profile) -> Self {
        Runner {
            profile,
            cache: HashMap::new(),
        }
    }

    /// The active profile.
    pub fn profile(&self) -> &Profile {
        &self.profile
    }

    /// Returns the (memoized) result of running `app` under `scheme`.
    pub fn run(&mut self, app: App, scheme: PrefetchScheme) -> &RunResult {
        let profile = &self.profile;
        self.cache.entry((app, scheme)).or_insert_with(|| {
            eprintln!("  running {} / {scheme} ...", app.name());
            Experiment::new(profile.config, profile.workload(app))
                .scheme(scheme)
                .run()
        })
    }

    /// Pre-fills the cache for any not-yet-run `(app, scheme)` pairs by
    /// fanning the missing simulations across the `ulmt_system::runner`
    /// worker pool. Results are identical to running them one by one
    /// through [`Runner::run`] — the simulations are deterministic — so
    /// the figure generators can warm their whole grid up front and then
    /// read every result from the cache.
    pub fn warm<I>(&mut self, pairs: I)
    where
        I: IntoIterator<Item = (App, PrefetchScheme)>,
    {
        let mut missing: Vec<(App, PrefetchScheme)> = Vec::new();
        for p in pairs {
            if !self.cache.contains_key(&p) && !missing.contains(&p) {
                missing.push(p);
            }
        }
        if missing.is_empty() {
            return;
        }
        eprintln!(
            "  running {} simulations on {} workers ...",
            missing.len(),
            ulmt_system::worker_count().min(missing.len())
        );
        let profile = &self.profile;
        let results = ulmt_system::parallel_map(missing.clone(), |(app, scheme)| {
            Experiment::new(profile.config, profile.workload(app))
                .scheme(scheme)
                .run()
        });
        for (key, r) in missing.into_iter().zip(results) {
            self.cache.insert(key, r);
        }
    }

    /// [`Runner::warm`] over the full `apps` × `schemes` grid.
    pub fn warm_grid(&mut self, apps: &[App], schemes: &[PrefetchScheme]) {
        self.warm(
            apps.iter()
                .flat_map(|&a| schemes.iter().map(move |&s| (a, s))),
        );
    }

    /// Speedup of `scheme` over NoPref for `app`.
    pub fn speedup(&mut self, app: App, scheme: PrefetchScheme) -> f64 {
        let base = self.run(app, PrefetchScheme::NoPref).exec_cycles;
        self.run(app, scheme).speedup_vs(base)
    }

    /// Arithmetic mean of per-application speedups for `scheme` (the
    /// paper reports "the average of the application speedups").
    pub fn mean_speedup(&mut self, scheme: PrefetchScheme) -> f64 {
        let sum: f64 = App::ALL.iter().map(|&a| self.speedup(a, scheme)).sum();
        sum / App::ALL.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memoizes_runs() {
        let mut r = Runner::new(Profile::small());
        let a = r.run(App::Tree, PrefetchScheme::NoPref).exec_cycles;
        let b = r.run(App::Tree, PrefetchScheme::NoPref).exec_cycles;
        assert_eq!(a, b);
        assert_eq!(r.cache.len(), 1);
    }

    #[test]
    fn warm_matches_serial_runs() {
        let schemes = [PrefetchScheme::NoPref, PrefetchScheme::Repl];
        let mut warmed = Runner::new(Profile::small());
        warmed.warm_grid(&[App::Tree], &schemes);
        assert_eq!(warmed.cache.len(), 2);
        let mut cold = Runner::new(Profile::small());
        for s in schemes {
            assert_eq!(
                warmed.run(App::Tree, s).fingerprint(),
                cold.run(App::Tree, s).fingerprint(),
                "warm/serial divergence under {s}"
            );
        }
    }

    #[test]
    fn speedup_of_nopref_is_one() {
        let mut r = Runner::new(Profile::small());
        let s = r.speedup(App::Tree, PrefetchScheme::NoPref);
        assert!((s - 1.0).abs() < 1e-12);
    }
}
