#![warn(missing_docs)]

//! Benchmark harness regenerating **every table and figure** of the ISCA
//! 2002 ULMT paper.
//!
//! Each `benches/` target (run with `cargo bench`) prints one table or
//! figure; the logic lives here so it is unit-testable at small scale.
//!
//! The machine/workload scale is selected with the `ULMT_SCALE`
//! environment variable:
//!
//! * `small` — 32 KB L2, 1/16-scale workloads (seconds; CI),
//! * `mid` — 128 KB L2, 1/4-scale workloads (default),
//! * `paper` — the full Table 3 machine and paper-calibrated workloads.
//!
//! All profiles scale the caches and footprints together, so the
//! footprint-to-cache ratios (and therefore the miss behavior) match the
//! full-size system.

pub mod figures;
pub mod io;
pub mod profile;
pub mod runner;
pub mod tables;

pub use io::{atomic_write, write_trace_chrome, write_trace_jsonl};
pub use profile::Profile;
pub use runner::Runner;
