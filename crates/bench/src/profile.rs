//! Scale profiles for the experiment harness.

use ulmt_cache::CacheConfig;
use ulmt_system::SystemConfig;
use ulmt_workloads::{App, WorkloadSpec};

/// A machine + workload scale, preserving footprint-to-cache ratios.
#[derive(Debug, Clone)]
pub struct Profile {
    /// Profile name (`small`, `mid`, `paper`).
    pub name: &'static str,
    /// Machine configuration.
    pub config: SystemConfig,
    /// Workload footprint scale factor.
    pub scale: f64,
}

impl Profile {
    /// 1/16-scale: 1 KB L1 / 32 KB L2. Runs in seconds.
    pub fn small() -> Self {
        Profile {
            name: "small",
            config: SystemConfig::small(),
            scale: 1.0 / 16.0,
        }
    }

    /// 1/4-scale: 4 KB L1 / 128 KB L2. The default.
    pub fn mid() -> Self {
        let mut config = SystemConfig::default();
        config.l1 = CacheConfig {
            size_bytes: 4 * 1024,
            ..config.l1
        };
        config.l2 = CacheConfig {
            size_bytes: 128 * 1024,
            ..config.l2
        };
        Profile {
            name: "mid",
            config,
            scale: 0.25,
        }
    }

    /// Full scale: the Table 3 machine with paper-calibrated workloads.
    pub fn paper() -> Self {
        Profile {
            name: "paper",
            config: SystemConfig::default(),
            scale: 1.0,
        }
    }

    /// Reads `ULMT_SCALE` (default `mid`).
    ///
    /// # Panics
    ///
    /// Panics on an unknown profile name.
    pub fn from_env() -> Self {
        match std::env::var("ULMT_SCALE").as_deref() {
            Ok("small") => Self::small(),
            Ok("mid") | Err(_) => Self::mid(),
            Ok("paper") => Self::paper(),
            Ok(other) => panic!("unknown ULMT_SCALE {other:?} (small|mid|paper)"),
        }
    }

    /// The workload specification for `app` at this profile's scale.
    pub fn workload(&self, app: App) -> WorkloadSpec {
        WorkloadSpec::new(app).scale(self.scale)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios_preserved_across_profiles() {
        // footprint / L2-lines must be profile-independent.
        let ratio = |p: &Profile, app: App| {
            p.workload(app).footprint_lines() as f64 / p.config.l2.num_lines() as f64
        };
        for app in [App::Mcf, App::Tree, App::Ft] {
            let small = ratio(&Profile::small(), app);
            let paper = ratio(&Profile::paper(), app);
            assert!(
                (small / paper - 1.0).abs() < 0.1,
                "{app}: small {small} vs paper {paper}"
            );
        }
    }

    #[test]
    fn env_default_is_mid() {
        // (The test environment does not set ULMT_SCALE.)
        if std::env::var("ULMT_SCALE").is_err() {
            assert_eq!(Profile::from_env().name, "mid");
        }
    }
}
