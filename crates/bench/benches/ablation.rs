//! Ablation studies of the design choices DESIGN.md calls out:
//! `NumLevels` depth, `NumSucc` width, Filter size, observation-queue
//! depth, L2 MSHR count, and Verbose vs Non-Verbose mode.

use ulmt_bench::Profile;
use ulmt_core::table::TableParams;
use ulmt_core::AlgorithmSpec;
use ulmt_memproc::{MemProcConfig, MemProcessor};
use ulmt_system::{Experiment, PrefetchScheme, SystemConfig, SystemSim};
use ulmt_workloads::{App, WorkloadSpec};

/// Runs a workload with an explicit ULMT algorithm (bypassing the scheme
/// presets) and returns its speedup over NoPref.
fn speedup_with_alg(
    config: SystemConfig,
    spec: &WorkloadSpec,
    alg: AlgorithmSpec,
    verbose: bool,
    conven4: bool,
) -> f64 {
    let base = Experiment::new(config, spec.clone())
        .scheme(PrefetchScheme::NoPref)
        .run();
    let memproc = MemProcessor::new(MemProcConfig { ..config.memproc }, alg.build());
    let r = SystemSim::from_parts(
        config,
        Box::new(spec.build()),
        conven4,
        Some(memproc),
        verbose,
        alg.label(),
        spec.app.name().to_string(),
    )
    .run();
    r.speedup_vs(base.exec_cycles)
}

fn speedup_with_config(config: SystemConfig, spec: &WorkloadSpec, scheme: PrefetchScheme) -> f64 {
    let base = Experiment::new(config, spec.clone())
        .scheme(PrefetchScheme::NoPref)
        .run();
    let r = Experiment::new(config, spec.clone()).scheme(scheme).run();
    r.speedup_vs(base.exec_cycles)
}

fn main() {
    let profile = Profile::from_env();
    println!("Ablation studies (profile: {})\n", profile.name);

    let rows_for = |spec: &WorkloadSpec| {
        (spec.footprint_lines() as usize)
            .next_power_of_two()
            .max(1024)
    };

    println!("NumLevels sweep (Replicated, MST) — the Table 5 deeper-levels customization:");
    let mst = profile.workload(App::Mst);
    let rows = rows_for(&mst);
    for levels in [1usize, 2, 3, 4, 6] {
        let alg = AlgorithmSpec::Repl(TableParams {
            num_levels: levels,
            ..TableParams::repl_default(rows)
        });
        let s = speedup_with_alg(profile.config, &mst, alg, false, false);
        println!("  NumLevels={levels}: speedup {s:.2}");
    }

    println!("\nNumSucc sweep (Replicated, Parser — noisy successors):");
    let parser = profile.workload(App::Parser);
    let rows = rows_for(&parser);
    for succ in [1usize, 2, 4] {
        let alg = AlgorithmSpec::Repl(TableParams {
            num_succ: succ,
            ..TableParams::repl_default(rows)
        });
        let s = speedup_with_alg(profile.config, &parser, alg, false, false);
        println!("  NumSucc={succ}: speedup {s:.2}");
    }

    println!("\nVerbose vs Non-Verbose mode (Conven4 + Repl, CG):");
    let cg = profile.workload(App::Cg);
    let rows = rows_for(&cg);
    for verbose in [false, true] {
        let s = speedup_with_alg(
            profile.config,
            &cg,
            AlgorithmSpec::repl(rows),
            verbose,
            true,
        );
        println!("  verbose={verbose}: speedup {s:.2}");
    }

    println!("\nFilter size sweep (Repl, Equake):");
    for entries in [1usize, 8, 32, 128] {
        let config = SystemConfig {
            filter_entries: entries,
            ..profile.config
        };
        let s = speedup_with_config(config, &profile.workload(App::Equake), PrefetchScheme::Repl);
        println!("  filter={entries:>4}: speedup {s:.2}");
    }

    println!("\nObservation queue (queue 2) depth sweep (Repl, CG — fast misses):");
    for depth in [1usize, 4, 16, 64] {
        let mut config = profile.config;
        config.queues.observation = depth;
        let s = speedup_with_config(config, &cg, PrefetchScheme::Repl);
        println!("  depth={depth:>3}: speedup {s:.2}");
    }

    println!("\nL2 MSHR sweep (Conven4+Repl, Equake — prefetch-heavy):");
    for mshrs in [2usize, 4, 8, 16] {
        let mut config = profile.config;
        config.l2.mshrs = mshrs;
        let s = speedup_with_config(
            config,
            &profile.workload(App::Equake),
            PrefetchScheme::Conven4Repl,
        );
        println!("  mshrs={mshrs:>3}: speedup {s:.2}");
    }
}
