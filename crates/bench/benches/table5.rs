//! Regenerates Table 5 (per-application customizations).
fn main() {
    println!("{}", ulmt_bench::tables::table5());
}
