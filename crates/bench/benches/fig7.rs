//! Regenerates Figure 7.
fn main() {
    let mut runner = ulmt_bench::Runner::new(ulmt_bench::Profile::from_env());
    println!("{}", ulmt_bench::figures::fig7(&mut runner));
}
