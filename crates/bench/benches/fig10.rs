//! Regenerates Figure 10.
fn main() {
    let mut runner = ulmt_bench::Runner::new(ulmt_bench::Profile::from_env());
    println!("{}", ulmt_bench::figures::fig10(&mut runner));
}
