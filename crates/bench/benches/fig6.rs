//! Regenerates Figure 6.
fn main() {
    let mut runner = ulmt_bench::Runner::new(ulmt_bench::Profile::from_env());
    println!("{}", ulmt_bench::figures::fig6(&mut runner));
}
