//! Criterion micro-benchmarks of the response/occupancy-critical
//! operations: one `process_miss` step per algorithm, the Filter, and the
//! stream detector. These are the software paths whose latency Figure 10
//! models.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use ulmt_core::algorithm::UlmtAlgorithm;
use ulmt_core::seq::SeqUlmt;
use ulmt_core::table::{Base, Chain, Replicated, TableParams};
use ulmt_core::Filter;
use ulmt_simcore::LineAddr;

fn trained_sequence() -> Vec<LineAddr> {
    (0..1024u64).map(|i| LineAddr::new((i * 769) % 65_536)).collect()
}

fn bench_process_miss(c: &mut Criterion) {
    let seq = trained_sequence();
    let mut group = c.benchmark_group("process_miss");
    macro_rules! bench_alg {
        ($name:expr, $alg:expr) => {
            let mut alg = $alg;
            for _ in 0..4 {
                for &m in &seq {
                    alg.process_miss(m);
                }
            }
            let mut i = 0;
            group.bench_function($name, |b| {
                b.iter(|| {
                    let m = seq[i % seq.len()];
                    i += 1;
                    black_box(alg.process_miss(black_box(m)))
                })
            });
        };
    }
    bench_alg!("base", Base::new(TableParams::base_default(64 * 1024)));
    bench_alg!("chain", Chain::new(TableParams::chain_default(64 * 1024)));
    bench_alg!("repl", Replicated::new(TableParams::repl_default(64 * 1024)));
    bench_alg!("seq4", SeqUlmt::seq4());
    group.finish();
}

fn bench_filter(c: &mut Criterion) {
    let mut filter = Filter::new(32);
    let mut i = 0u64;
    c.bench_function("filter_admit", |b| {
        b.iter(|| {
            i += 1;
            black_box(filter.admit(LineAddr::new(i % 48)))
        })
    });
}

criterion_group!(benches, bench_process_miss, bench_filter);
criterion_main!(benches);
