//! Micro-benchmarks of the response/occupancy-critical operations: one
//! `process_miss` step per algorithm, the Filter, and the MRU list. These
//! are the software paths whose latency Figure 10 models.
//!
//! Self-contained timing harness (no external benchmark crate): each
//! benchmark warms up, then reports the mean wall time per operation over
//! a fixed iteration budget.

use std::hint::black_box;
use std::time::Instant;
use ulmt_core::algorithm::UlmtAlgorithm;
use ulmt_core::seq::SeqUlmt;
use ulmt_core::table::{Base, Chain, MruList, Replicated, TableParams};
use ulmt_core::Filter;
use ulmt_simcore::LineAddr;

const WARMUP: u64 = 20_000;
const ITERS: u64 = 200_000;

fn bench<F: FnMut(u64)>(name: &str, mut op: F) {
    for i in 0..WARMUP {
        op(i);
    }
    let start = Instant::now();
    for i in 0..ITERS {
        op(i);
    }
    let elapsed = start.elapsed();
    println!(
        "{name:<24} {:>10.1} ns/op  ({ITERS} iterations in {:.1} ms)",
        elapsed.as_nanos() as f64 / ITERS as f64,
        elapsed.as_secs_f64() * 1e3
    );
}

fn trained_sequence() -> Vec<LineAddr> {
    (0..1024u64)
        .map(|i| LineAddr::new((i * 769) % 65_536))
        .collect()
}

fn bench_process_miss() {
    let seq = trained_sequence();
    macro_rules! bench_alg {
        ($name:expr, $alg:expr) => {
            let mut alg = $alg;
            for _ in 0..4 {
                for &m in &seq {
                    alg.process_miss(m);
                }
            }
            bench($name, |i| {
                let m = seq[(i as usize) % seq.len()];
                black_box(alg.process_miss(black_box(m)));
            });
        };
    }
    bench_alg!(
        "process_miss/base",
        Base::new(TableParams::base_default(64 * 1024))
    );
    bench_alg!(
        "process_miss/chain",
        Chain::new(TableParams::chain_default(64 * 1024))
    );
    bench_alg!(
        "process_miss/repl",
        Replicated::new(TableParams::repl_default(64 * 1024))
    );
    bench_alg!("process_miss/seq4", SeqUlmt::seq4());
}

fn bench_filter() {
    let mut filter = Filter::new(32);
    bench("filter_admit", |i| {
        black_box(filter.admit(LineAddr::new(i % 48)));
    });
}

fn bench_mru_insert() {
    // The storage hot path: duplicate re-insertions and evictions in a
    // NumSucc-sized list (the `rotate_right` path of `insert_mru`).
    let mut l = MruList::new(4);
    bench("mru_insert_mru", |i| {
        l.insert_mru(LineAddr::new(i % 6));
        black_box(l.mru());
    });
}

fn main() {
    println!("micro-benchmarks ({ITERS} iterations each)");
    bench_process_miss();
    bench_filter();
    bench_mru_insert();
}
