//! Regenerates Table 2 (applications and correlation table sizes).
//!
//! Always measured at paper scale unless ULMT_SCALE=small/mid, in which
//! case the footprints (and hence NumRows) shrink with the profile.
fn main() {
    let scale = ulmt_bench::Profile::from_env().scale;
    println!("{}", ulmt_bench::tables::table2(scale));
}
