//! Regenerates Table 1 (qualitative algorithm comparison).
fn main() {
    println!("{}", ulmt_bench::tables::table1());
}
