//! Regenerates Table 3 (simulated architecture parameters).
fn main() {
    println!("{}", ulmt_bench::tables::table3());
}
