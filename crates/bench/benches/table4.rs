//! Regenerates Table 4 (algorithm parameter values).
fn main() {
    println!("{}", ulmt_bench::tables::table4());
}
