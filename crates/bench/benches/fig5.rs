//! Regenerates Figure 5 (miss predictability per level).
fn main() {
    let profile = ulmt_bench::Profile::from_env();
    println!("{}", ulmt_bench::figures::fig5(&profile));
}
