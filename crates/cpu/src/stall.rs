//! Stall attribution (the Busy / UptoL2 / BeyondL2 breakdown of Figure 7).

use ulmt_simcore::Cycle;

/// Where a memory access was ultimately served from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ServiceLevel {
    /// Served by the L1 data cache.
    L1,
    /// Served by the L2 cache (including lines a prefetch placed there).
    L2,
    /// Served by main memory (an L2 miss that reached DRAM).
    Memory,
}

/// Cycle accounting for one simulated run.
///
/// The paper's Figure 7 splits execution time into `Busy` (computation and
/// non-memory pipeline stalls), `UptoL2` (stall on requests between the
/// processor and the L2 cache) and `BeyondL2` (stall on requests beyond
/// the L2 cache). "A system with a perfect L2 cache would only have the
/// Busy and UptoL2 times."
///
/// # Example
///
/// ```
/// use ulmt_cpu::{ServiceLevel, StallBreakdown};
///
/// let mut b = StallBreakdown::new();
/// b.add_busy(100);
/// b.add_stall(ServiceLevel::Memory, 300);
/// assert_eq!(b.total(), 400);
/// assert_eq!(b.beyond_l2, 300);
/// assert!((b.fraction_beyond_l2() - 0.75).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StallBreakdown {
    /// Cycles spent executing instructions (plus non-memory stalls).
    pub busy: Cycle,
    /// Stall cycles on accesses served by L1 or L2.
    pub upto_l2: Cycle,
    /// Stall cycles on accesses served by main memory.
    pub beyond_l2: Cycle,
}

impl StallBreakdown {
    /// An all-zero breakdown.
    pub fn new() -> Self {
        StallBreakdown::default()
    }

    /// Adds busy cycles.
    pub fn add_busy(&mut self, cycles: Cycle) {
        self.busy += cycles;
    }

    /// Adds stall cycles attributed by the level that served the blocking
    /// access.
    pub fn add_stall(&mut self, level: ServiceLevel, cycles: Cycle) {
        match level {
            ServiceLevel::L1 | ServiceLevel::L2 => self.upto_l2 += cycles,
            ServiceLevel::Memory => self.beyond_l2 += cycles,
        }
    }

    /// Total accounted cycles (= execution time).
    pub fn total(&self) -> Cycle {
        self.busy + self.upto_l2 + self.beyond_l2
    }

    /// Fraction of execution time stalled beyond the L2, the component the
    /// ULMT targets (44% on average under NoPref in the paper).
    pub fn fraction_beyond_l2(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.beyond_l2 as f64 / total as f64
        }
    }

    /// Normalizes each component against another run's total (the bars of
    /// Figure 7 are normalized to NoPref). Returns `(busy, upto_l2,
    /// beyond_l2)` fractions.
    pub fn normalized_to(&self, reference_total: Cycle) -> (f64, f64, f64) {
        if reference_total == 0 {
            return (0.0, 0.0, 0.0);
        }
        let t = reference_total as f64;
        (
            self.busy as f64 / t,
            self.upto_l2 as f64 / t,
            self.beyond_l2 as f64 / t,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attribution_routes_levels() {
        let mut b = StallBreakdown::new();
        b.add_stall(ServiceLevel::L1, 5);
        b.add_stall(ServiceLevel::L2, 10);
        b.add_stall(ServiceLevel::Memory, 100);
        assert_eq!(b.upto_l2, 15);
        assert_eq!(b.beyond_l2, 100);
    }

    #[test]
    fn normalization() {
        let mut b = StallBreakdown::new();
        b.add_busy(50);
        b.add_stall(ServiceLevel::Memory, 50);
        let (busy, upto, beyond) = b.normalized_to(200);
        assert!((busy - 0.25).abs() < 1e-12);
        assert_eq!(upto, 0.0);
        assert!((beyond - 0.25).abs() < 1e-12);
    }

    #[test]
    fn zero_total_is_safe() {
        let b = StallBreakdown::new();
        assert_eq!(b.fraction_beyond_l2(), 0.0);
        assert_eq!(b.normalized_to(0), (0.0, 0.0, 0.0));
    }
}
