//! The conventional processor-side prefetcher (`Conven4`, Table 4).
//!
//! "The main processor optionally includes a hardware prefetcher that can
//! prefetch multiple streams of stride 1 or −1 into the L1 cache. The
//! prefetcher monitors L1 cache misses" (Section 4). It shares the stream
//! recognition machinery with the software `Seq` ULMTs
//! ([`ulmt_core::stream::StreamDetector`]) but operates at L1-line (32 B)
//! granularity and injects its prefetches into the L1.

use ulmt_core::stream::StreamDetector;
use ulmt_simcore::{Addr, LineAddr};

/// L1 line size in bytes (Table 3).
pub const L1_LINE: u64 = 32;

/// The processor-side multi-stream sequential prefetcher.
///
/// # Example
///
/// ```
/// use ulmt_cpu::Conven4;
/// use ulmt_simcore::Addr;
///
/// let mut pf = Conven4::new(4, 6);
/// assert!(pf.observe_l1_miss(Addr::new(0)).is_empty());
/// assert!(pf.observe_l1_miss(Addr::new(32)).is_empty());
/// // Third sequential L1 miss: prefetch the next 6 L1 lines.
/// let lines = pf.observe_l1_miss(Addr::new(64));
/// assert_eq!(lines.len(), 6);
/// assert_eq!(lines[0].byte_addr(32), Addr::new(96));
/// ```
#[derive(Debug, Clone)]
pub struct Conven4 {
    detector: StreamDetector,
    issued: u64,
}

impl Conven4 {
    /// Creates a prefetcher with `num_seq` stream registers prefetching
    /// `num_pref` L1 lines per hit. Table 4's `Conven4` is `(4, 6)`.
    ///
    /// # Panics
    ///
    /// Panics if either parameter is zero.
    pub fn new(num_seq: usize, num_pref: usize) -> Self {
        Conven4 {
            detector: StreamDetector::new(num_seq, num_pref),
            issued: 0,
        }
    }

    /// Table 4's default configuration (`NumSeq = 4`, `NumPref = 6`).
    pub fn table4_default() -> Self {
        Self::new(4, 6)
    }

    /// Observes an L1 miss (byte address) and returns L1-line addresses to
    /// prefetch into the L1 cache.
    pub fn observe_l1_miss(&mut self, addr: Addr) -> Vec<LineAddr> {
        let lines = self.detector.observe(addr.line(L1_LINE));
        self.issued += lines.len() as u64;
        lines
    }

    /// Total prefetch requests issued.
    pub fn issued(&self) -> u64 {
        self.issued
    }

    /// Streams recognized so far.
    pub fn streams_recognized(&self) -> u64 {
        self.detector.streams_recognized()
    }

    /// Currently tracked streams.
    pub fn active_streams(&self) -> usize {
        self.detector.active_streams()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_streams_then_thrash_on_fifth() {
        let mut pf = Conven4::table4_default();
        // Establish 4 streams.
        for step in 0..3u64 {
            for s in 0..4u64 {
                pf.observe_l1_miss(Addr::new(s * 100_000 + step * L1_LINE));
            }
        }
        assert_eq!(pf.active_streams(), 4);
        // A fifth stream evicts the LRU register — this is what overwhelms
        // Conven4 on CG's many concurrent streams (Section 5.2).
        for step in 0..3u64 {
            pf.observe_l1_miss(Addr::new(900_000 + step * L1_LINE));
        }
        assert_eq!(pf.active_streams(), 4);
        assert_eq!(pf.streams_recognized(), 5);
    }

    #[test]
    fn descending_streams_supported() {
        let mut pf = Conven4::table4_default();
        pf.observe_l1_miss(Addr::new(10 * L1_LINE));
        pf.observe_l1_miss(Addr::new(9 * L1_LINE));
        let lines = pf.observe_l1_miss(Addr::new(8 * L1_LINE));
        assert_eq!(lines[0], Addr::new(7 * L1_LINE).line(L1_LINE));
    }

    #[test]
    fn issued_counter() {
        let mut pf = Conven4::table4_default();
        for n in 0..5u64 {
            pf.observe_l1_miss(Addr::new(n * L1_LINE));
        }
        // Recognition at the 3rd miss prefetches the window (6), then the
        // 4th and 5th misses each advance the frontier by one line.
        assert_eq!(pf.issued(), 8);
    }

    #[test]
    fn irregular_misses_issue_nothing() {
        let mut pf = Conven4::table4_default();
        for n in [0u64, 10_000, 555_000, 77_000] {
            assert!(pf.observe_l1_miss(Addr::new(n)).is_empty());
        }
        assert_eq!(pf.issued(), 0);
    }
}
