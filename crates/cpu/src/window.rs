//! Run-ahead miss window.
//!
//! Models the two resources that bound how far a dynamic superscalar can
//! slide past outstanding misses: the pending-load capacity (Table 3: 8)
//! and the reorder buffer (`rob_insns`). When either is exhausted the
//! processor stalls until the *oldest* outstanding miss completes — the
//! classic behavior that makes L2 misses "usually the hardest to hide
//! with out-of-order execution".

/// One outstanding (missing) load.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Pending {
    id: u64,
    insn_idx: u64,
}

/// Why the processor cannot continue past the window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WindowVerdict {
    /// The next reference may issue.
    Proceed,
    /// All pending-load slots are busy; wait for the oldest miss (`id`).
    StallFull {
        /// Identifier of the miss the processor must wait for.
        id: u64,
    },
    /// The next instruction is further than the ROB allows from the oldest
    /// outstanding miss; wait for it.
    StallRob {
        /// Identifier of the miss the processor must wait for.
        id: u64,
    },
}

/// Bookkeeping of outstanding misses with run-ahead limits.
///
/// # Example
///
/// ```
/// use ulmt_cpu::{MissWindow, WindowVerdict};
///
/// let mut w = MissWindow::new(2, 128);
/// w.issue(1, 0);
/// w.issue(2, 10);
/// // Both slots busy: the CPU must wait for miss 1.
/// assert_eq!(w.check(20), WindowVerdict::StallFull { id: 1 });
/// w.complete(1);
/// assert_eq!(w.check(20), WindowVerdict::Proceed);
/// ```
#[derive(Debug, Clone)]
pub struct MissWindow {
    max_pending: usize,
    rob_insns: u64,
    pending: Vec<Pending>,
}

impl MissWindow {
    /// Creates a window with `max_pending` load slots and a `rob_insns`
    /// instruction run-ahead limit.
    ///
    /// # Panics
    ///
    /// Panics if either limit is zero.
    pub fn new(max_pending: usize, rob_insns: u64) -> Self {
        assert!(
            max_pending > 0 && rob_insns > 0,
            "window limits must be positive"
        );
        MissWindow {
            max_pending,
            rob_insns,
            pending: Vec::with_capacity(max_pending),
        }
    }

    /// Records a newly issued miss `id` at instruction index `insn_idx`.
    ///
    /// # Panics
    ///
    /// Panics if the window is already full or `id` is already present —
    /// callers must consult [`MissWindow::check`] first.
    pub fn issue(&mut self, id: u64, insn_idx: u64) {
        assert!(
            self.pending.len() < self.max_pending,
            "issuing past a full window"
        );
        assert!(
            self.pending.iter().all(|p| p.id != id),
            "duplicate outstanding miss id {id}"
        );
        self.pending.push(Pending { id, insn_idx });
    }

    /// Marks miss `id` complete. Unknown ids are ignored (the fill may
    /// race with a push that already satisfied it).
    pub fn complete(&mut self, id: u64) {
        self.pending.retain(|p| p.id != id);
    }

    /// May the CPU, about to execute instruction `insn_count`, issue a new
    /// reference?
    pub fn check(&self, insn_count: u64) -> WindowVerdict {
        let Some(oldest) = self.pending.iter().min_by_key(|p| p.insn_idx) else {
            return WindowVerdict::Proceed;
        };
        if self.pending.len() >= self.max_pending {
            return WindowVerdict::StallFull { id: oldest.id };
        }
        if insn_count.saturating_sub(oldest.insn_idx) > self.rob_insns {
            return WindowVerdict::StallRob { id: oldest.id };
        }
        WindowVerdict::Proceed
    }

    /// Number of outstanding misses.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// Returns `true` if nothing is outstanding.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Identifier of the oldest outstanding miss.
    pub fn oldest(&self) -> Option<u64> {
        self.pending.iter().min_by_key(|p| p.insn_idx).map(|p| p.id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_window_proceeds() {
        let w = MissWindow::new(8, 128);
        assert_eq!(w.check(1_000_000), WindowVerdict::Proceed);
        assert!(w.is_empty());
        assert_eq!(w.oldest(), None);
    }

    #[test]
    fn rob_limit_stalls_on_oldest() {
        let mut w = MissWindow::new(8, 128);
        w.issue(7, 100);
        w.issue(8, 150);
        assert_eq!(w.check(200), WindowVerdict::Proceed);
        assert_eq!(w.check(229), WindowVerdict::StallRob { id: 7 });
        w.complete(7);
        // Now the oldest is id 8 at 150: 229 - 150 < 128.
        assert_eq!(w.check(229), WindowVerdict::Proceed);
    }

    #[test]
    fn capacity_limit_stalls() {
        let mut w = MissWindow::new(2, 1_000_000);
        w.issue(1, 0);
        w.issue(2, 1);
        assert_eq!(w.check(2), WindowVerdict::StallFull { id: 1 });
        assert_eq!(w.len(), 2);
    }

    #[test]
    fn complete_unknown_id_is_noop() {
        let mut w = MissWindow::new(2, 10);
        w.issue(1, 0);
        w.complete(42);
        assert_eq!(w.len(), 1);
    }

    #[test]
    #[should_panic(expected = "full window")]
    fn issue_past_capacity_panics() {
        let mut w = MissWindow::new(1, 10);
        w.issue(1, 0);
        w.issue(2, 1);
    }

    #[test]
    #[should_panic(expected = "duplicate outstanding")]
    fn duplicate_id_panics() {
        let mut w = MissWindow::new(4, 10);
        w.issue(1, 0);
        w.issue(1, 5);
    }
}
