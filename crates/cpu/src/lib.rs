#![warn(missing_docs)]

//! Main-processor model for the ULMT simulator.
//!
//! The paper simulates a 6-issue dynamic superscalar (Table 3). This crate
//! models the aspects of such a processor that the evaluation depends on:
//!
//! * **busy time** limited by issue width;
//! * **bounded overlap of misses** — a reorder-buffer-sized run-ahead
//!   window and a limited number of pending loads (Table 3: 8), so
//!   independent L2 misses partially overlap while the window lasts;
//! * **dependence serialization** — pointer-chasing loads cannot issue
//!   until the producing load returns, which is why "dependent misses are
//!   likely to fall in [the 200–280-cycle] bin" (Figure 6);
//! * **stall attribution** — every stall cycle is charged to `UptoL2`
//!   (data came from the L2 or L1) or `BeyondL2` (data came from memory),
//!   producing the execution-time breakdown of Figure 7;
//! * the **processor-side sequential prefetcher** (`Conven4`, Table 4)
//!   that watches L1 misses and prefetches ±1-stride streams into L1.
//!
//! The event-driven composition with caches, queues and DRAM lives in
//! [`ulmt-system`](../../system); this crate's types are deliberately
//! synchronous and unit-testable.

pub mod config;
pub mod conven;
pub mod stall;
pub mod window;

pub use config::CpuConfig;
pub use conven::Conven4;
pub use stall::{ServiceLevel, StallBreakdown};
pub use window::{MissWindow, WindowVerdict};
