//! Main-processor parameters (Table 3).

use ulmt_simcore::Cycle;

/// Timing parameters of the main processor and its cache hierarchy.
///
/// Defaults follow Table 3 of the paper: 6-issue dynamic, 1.6 GHz, 8
/// pending loads; L1 3-cycle hit round trip, L2 19-cycle hit round trip.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CpuConfig {
    /// Instructions issued per cycle when not stalled.
    pub issue_width: u64,
    /// Run-ahead window in instructions (reorder-buffer size): how far the
    /// processor can slide past an outstanding miss before stalling.
    pub rob_insns: u64,
    /// Maximum simultaneously pending (missing) loads.
    pub max_pending_loads: usize,
    /// L1 hit round-trip latency in cycles.
    pub l1_hit: Cycle,
    /// L2 hit round-trip latency in cycles.
    pub l2_hit: Cycle,
}

impl Default for CpuConfig {
    fn default() -> Self {
        CpuConfig {
            issue_width: 6,
            rob_insns: 128,
            max_pending_loads: 8,
            l1_hit: 3,
            l2_hit: 19,
        }
    }
}

impl CpuConfig {
    /// Busy cycles needed to execute `insns` instructions at full issue
    /// width (rounded up).
    pub fn busy_cycles(&self, insns: u64) -> Cycle {
        insns.div_ceil(self.issue_width)
    }

    /// Checks the configuration without panicking, returning a
    /// descriptive message for the first invalid parameter.
    pub fn check(&self) -> Result<(), String> {
        if self.issue_width == 0 {
            return Err("issue width must be positive".to_string());
        }
        if self.rob_insns == 0 {
            return Err("ROB size must be positive".to_string());
        }
        if self.max_pending_loads == 0 {
            return Err("pending loads must be positive".to_string());
        }
        Ok(())
    }

    /// Validates the configuration. Prefer [`CpuConfig::check`] where a
    /// recoverable error is wanted.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is zero.
    pub fn validate(&self) {
        self.check().unwrap_or_else(|e| panic!("{e}"));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_defaults() {
        let c = CpuConfig::default();
        c.validate();
        assert_eq!(c.issue_width, 6);
        assert_eq!(c.max_pending_loads, 8);
        assert_eq!(c.l1_hit, 3);
        assert_eq!(c.l2_hit, 19);
    }

    #[test]
    fn busy_cycles_round_up() {
        let c = CpuConfig::default();
        assert_eq!(c.busy_cycles(0), 0);
        assert_eq!(c.busy_cycles(1), 1);
        assert_eq!(c.busy_cycles(6), 1);
        assert_eq!(c.busy_cycles(7), 2);
        assert_eq!(c.busy_cycles(600), 100);
    }
}
