//! Main-processor parameters (Table 3).

use ulmt_simcore::{ConfigError, Cycle};

/// Timing parameters of the main processor and its cache hierarchy.
///
/// Defaults follow Table 3 of the paper: 6-issue dynamic, 1.6 GHz, 8
/// pending loads; L1 3-cycle hit round trip, L2 19-cycle hit round trip.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CpuConfig {
    /// Instructions issued per cycle when not stalled.
    pub issue_width: u64,
    /// Run-ahead window in instructions (reorder-buffer size): how far the
    /// processor can slide past an outstanding miss before stalling.
    pub rob_insns: u64,
    /// Maximum simultaneously pending (missing) loads.
    pub max_pending_loads: usize,
    /// L1 hit round-trip latency in cycles.
    pub l1_hit: Cycle,
    /// L2 hit round-trip latency in cycles.
    pub l2_hit: Cycle,
}

impl Default for CpuConfig {
    fn default() -> Self {
        CpuConfig {
            issue_width: 6,
            rob_insns: 128,
            max_pending_loads: 8,
            l1_hit: 3,
            l2_hit: 19,
        }
    }
}

impl CpuConfig {
    /// Busy cycles needed to execute `insns` instructions at full issue
    /// width (rounded up).
    pub fn busy_cycles(&self, insns: u64) -> Cycle {
        insns.div_ceil(self.issue_width)
    }

    /// Validates the configuration, returning the first invalid parameter
    /// as a typed [`ConfigError`].
    pub fn validate(&self) -> Result<(), ConfigError> {
        let err = |reason: &str| Err(ConfigError::new("CPU", reason));
        if self.issue_width == 0 {
            return err("issue width must be positive");
        }
        if self.rob_insns == 0 {
            return err("ROB size must be positive");
        }
        if self.max_pending_loads == 0 {
            return err("pending loads must be positive");
        }
        Ok(())
    }

    /// Infallible assertion form of [`CpuConfig::validate`].
    ///
    /// # Panics
    ///
    /// Panics with the [`ConfigError`] message if any parameter is zero.
    pub fn checked(&self) {
        if let Err(e) = self.validate() {
            panic!("{e}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_defaults() {
        let c = CpuConfig::default();
        c.checked();
        assert!(c.validate().is_ok());
        assert!(CpuConfig {
            issue_width: 0,
            ..c
        }
        .validate()
        .unwrap_err()
        .reason()
        .contains("issue width"));
        assert_eq!(c.issue_width, 6);
        assert_eq!(c.max_pending_loads, 8);
        assert_eq!(c.l1_hit, 3);
        assert_eq!(c.l2_hit, 19);
    }

    #[test]
    fn busy_cycles_round_up() {
        let c = CpuConfig::default();
        assert_eq!(c.busy_cycles(0), 0);
        assert_eq!(c.busy_cycles(1), 1);
        assert_eq!(c.busy_cycles(6), 1);
        assert_eq!(c.busy_cycles(7), 2);
        assert_eq!(c.busy_cycles(600), 100);
    }
}
