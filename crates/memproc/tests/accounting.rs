//! Cross-checks of the memory processor's time accounting: response ≤
//! occupancy, busy+mem decomposition, and location sensitivity.

use ulmt_core::AlgorithmSpec;
use ulmt_memproc::{FixedLatencyMemory, MemProcConfig, MemProcLocation, MemProcessor, TableMemory};
use ulmt_simcore::LineAddr;

fn drive(mut mp: MemProcessor, misses: &[u64]) -> MemProcessor {
    let mut mem = FixedLatencyMemory::new(mp.config().location);
    for &m in misses {
        let now = mp.busy_until();
        let step = mp.process(LineAddr::new(m), now, &mut mem);
        assert!(step.response_done <= step.occupancy_done);
        assert!(step.response_done >= now);
    }
    mp
}

fn misses(n: u64) -> Vec<u64> {
    (0..n).map(|i| (i * 131) % 4096).collect()
}

#[test]
fn occupancy_sums_decompose_into_busy_plus_mem() {
    let mp = drive(
        MemProcessor::new(MemProcConfig::default(), AlgorithmSpec::repl(4096).build()),
        &misses(512),
    );
    let s = mp.stats();
    // The per-step occupancy mean times steps equals total busy + mem.
    let total = s.occupancy.mean() * s.steps as f64;
    let parts = (s.busy_cycles + s.mem_cycles) as f64;
    assert!(
        (total - parts).abs() / parts < 1e-9,
        "occupancy total {total} vs busy+mem {parts}"
    );
    assert_eq!(s.steps, 512);
}

#[test]
fn response_never_exceeds_occupancy_mean() {
    for spec in [
        AlgorithmSpec::base(4096),
        AlgorithmSpec::chain(4096),
        AlgorithmSpec::repl(4096),
        AlgorithmSpec::seq4(),
    ] {
        let mp = drive(
            MemProcessor::new(MemProcConfig::default(), spec.build()),
            &misses(256),
        );
        let s = mp.stats();
        assert!(
            s.response.mean() <= s.occupancy.mean(),
            "{}: response {} occupancy {}",
            mp.algorithm_name(),
            s.response.mean(),
            s.occupancy.mean()
        );
    }
}

#[test]
fn seq_ulmt_has_no_table_memory_stall() {
    let mp = drive(
        MemProcessor::new(MemProcConfig::default(), AlgorithmSpec::seq4().build()),
        &misses(256),
    );
    assert_eq!(
        mp.stats().mem_cycles,
        0,
        "the sequential ULMT keeps all state in registers"
    );
    assert!(mp.stats().busy_cycles > 0);
}

#[test]
fn north_bridge_memory_is_strictly_slower() {
    let mut dram = FixedLatencyMemory::new(MemProcLocation::InDram);
    let mut nb = FixedLatencyMemory::new(MemProcLocation::NorthBridge);
    for i in 0..64u64 {
        let a = ulmt_simcore::Addr::new(i * 8192);
        assert!(nb.fetch(a, 0) > dram.fetch(a, 0));
    }
}

#[test]
fn empty_stats_are_zero() {
    let mp = MemProcessor::new(MemProcConfig::default(), AlgorithmSpec::repl(1024).build());
    let s = mp.stats();
    assert_eq!(s.ipc(), 0.0);
    assert_eq!(s.mem_fraction(), 0.0);
    assert_eq!(s.steps, 0);
    assert!(mp.is_idle_at(0));
}

#[test]
fn back_to_back_steps_never_overlap() {
    let mut mp = MemProcessor::new(MemProcConfig::default(), AlgorithmSpec::repl(4096).build());
    let mut mem = FixedLatencyMemory::new(MemProcLocation::InDram);
    let mut prev_end = 0;
    for &m in &misses(128) {
        let step = mp.process(LineAddr::new(m), prev_end, &mut mem);
        assert!(step.response_done >= prev_end);
        prev_end = step.occupancy_done;
    }
}

#[test]
fn larger_tables_raise_memory_stall_fraction() {
    // A table far beyond the 32 KB private cache stalls more.
    let small = drive(
        MemProcessor::new(MemProcConfig::default(), AlgorithmSpec::repl(1024).build()),
        &misses(1024),
    );
    let large = drive(
        MemProcessor::new(
            MemProcConfig::default(),
            AlgorithmSpec::repl(64 * 1024).build(),
        ),
        &(0..1024u64).map(|i| (i * 131) % 60_000).collect::<Vec<_>>(),
    );
    assert!(
        large.stats().mem_fraction() > small.stats().mem_fraction(),
        "large {} vs small {}",
        large.stats().mem_fraction(),
        small.stats().mem_fraction()
    );
}
