#![warn(missing_docs)]

//! The memory processor that executes the User-Level Memory Thread.
//!
//! Table 3 of the paper: a 2-issue, 800 MHz general-purpose core with a
//! 32 KB private L1, placed either in the North Bridge (memory controller)
//! chip or inside a DRAM chip. The core has no floating point — none of
//! the ULMT algorithms need it.
//!
//! This crate turns the machine-independent [`Cost`](ulmt_core::cost::Cost)
//! reported by an algorithm into **cycles**:
//!
//! * instructions retire at the 2-issue 800 MHz rate (≈ 1 main-processor
//!   cycle per instruction at best);
//! * every table access is replayed against the memory processor's private
//!   cache; misses fetch the line from DRAM through a caller-supplied
//!   [`TableMemory`], whose latency depends on where the core sits
//!   (21/56-cycle round trips inside the DRAM chip vs. 65/100 in the
//!   North Bridge — Figure 8's `Repl` vs `ReplMC`).
//!
//! The result is the response time and occupancy time of Figure 2, the
//! two quantities Figure 10 reports per algorithm.

pub mod processor;

pub use processor::{
    FixedLatencyMemory, MemProcConfig, MemProcLocation, MemProcessor, TableMemory, UlmtStats,
    UlmtStep,
};
