//! The memory-processor execution model.

use ulmt_cache::{AccessOutcome, Cache, CacheConfig};
use ulmt_core::algorithm::UlmtAlgorithm;
use ulmt_core::cost::Cost;
use ulmt_simcore::stats::Mean;
use ulmt_simcore::{Addr, ConfigError, Cycle, LineAddr, SharedTracer, TraceEvent};

/// Where the memory processor is integrated (Figure 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MemProcLocation {
    /// Inside a DRAM chip: lowest table-access latency, highest bandwidth
    /// (Table 3: 21/56-cycle round trips, 25.6 GB/s internal bus).
    #[default]
    InDram,
    /// In the North Bridge (memory controller) chip: no DRAM modification
    /// needed, but ~2x the table-access latency (65/100 cycles) and a
    /// 25-cycle delay before prefetch requests reach the DRAM.
    NorthBridge,
}

impl MemProcLocation {
    /// Extra delay a prefetch request suffers before reaching the DRAM
    /// (Table 3: 25 cycles from the North Bridge, none inside the DRAM).
    pub fn prefetch_injection_delay(self) -> Cycle {
        match self {
            MemProcLocation::InDram => 0,
            MemProcLocation::NorthBridge => 25,
        }
    }

    /// Contention-free round-trip latency of a table-memory fetch.
    pub fn fetch_latency(self, row_hit: bool) -> Cycle {
        match (self, row_hit) {
            (MemProcLocation::InDram, true) => 21,
            (MemProcLocation::InDram, false) => 56,
            (MemProcLocation::NorthBridge, true) => 65,
            (MemProcLocation::NorthBridge, false) => 100,
        }
    }

    /// Short label used in reports (Figure 8 calls the North Bridge
    /// variant `ReplMC`).
    pub fn label(self) -> &'static str {
        match self {
            MemProcLocation::InDram => "dram",
            MemProcLocation::NorthBridge => "mc",
        }
    }
}

/// Memory-processor parameters (Table 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemProcConfig {
    /// Where the core sits.
    pub location: MemProcLocation,
    /// Main-processor cycles per retired ULMT instruction. The core is
    /// 2-issue at 800 MHz (half the main clock), so the best case is 1
    /// main cycle per instruction.
    pub cycles_per_insn: Cycle,
    /// Private-cache hit round trip in main-processor cycles (Table 3: 4).
    pub l1_hit: Cycle,
    /// Private-cache geometry.
    pub cache: CacheConfig,
}

impl Default for MemProcConfig {
    fn default() -> Self {
        MemProcConfig {
            location: MemProcLocation::InDram,
            cycles_per_insn: 1,
            l1_hit: 4,
            cache: CacheConfig::memproc_l1(),
        }
    }
}

impl MemProcConfig {
    /// A North Bridge-located memory processor (`ReplMC` in Figure 8).
    pub fn north_bridge() -> Self {
        MemProcConfig {
            location: MemProcLocation::NorthBridge,
            ..Self::default()
        }
    }

    /// Validates the parameters, returning the first invalid one as a
    /// typed [`ConfigError`].
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.cycles_per_insn == 0 {
            return Err(ConfigError::new(
                "memory processor",
                "memory processor cycles/insn must be positive",
            ));
        }
        self.cache.validate().map_err(|e| {
            ConfigError::new(
                "memory processor",
                format!("memory processor cache: {}", e.reason()),
            )
        })
    }

    /// Infallible assertion form of [`MemProcConfig::validate`].
    ///
    /// # Panics
    ///
    /// Panics with the [`ConfigError`] message if a parameter is invalid.
    pub fn checked(&self) {
        if let Err(e) = self.validate() {
            panic!("{e}");
        }
    }
}

/// Source of correlation-table lines on private-cache misses.
///
/// Implemented by the system simulator over its shared DRAM model (so
/// table traffic contends with demand and prefetch traffic), and by
/// [`FixedLatencyMemory`] for stand-alone use.
pub trait TableMemory {
    /// Fetches the cache line containing `addr` at time `now`; returns the
    /// cycle at which the data reaches the memory processor.
    fn fetch(&mut self, addr: Addr, now: Cycle) -> Cycle;
}

/// A contention-free [`TableMemory`] with the paper's row-hit/row-miss
/// latencies and a simple open-row model (one open row, 4 KB).
///
/// # Example
///
/// ```
/// use ulmt_memproc::{FixedLatencyMemory, MemProcLocation, TableMemory};
/// use ulmt_simcore::Addr;
///
/// let mut mem = FixedLatencyMemory::new(MemProcLocation::InDram);
/// let t1 = mem.fetch(Addr::new(0), 0); // row miss: 56 cycles
/// let t2 = mem.fetch(Addr::new(64), t1); // same row: 21 cycles
/// assert_eq!(t1, 56);
/// assert_eq!(t2, t1 + 21);
/// ```
#[derive(Debug, Clone)]
pub struct FixedLatencyMemory {
    location: MemProcLocation,
    open_row: Option<u64>,
}

impl FixedLatencyMemory {
    /// Creates a memory with all rows closed.
    pub fn new(location: MemProcLocation) -> Self {
        FixedLatencyMemory {
            location,
            open_row: None,
        }
    }
}

impl TableMemory for FixedLatencyMemory {
    fn fetch(&mut self, addr: Addr, now: Cycle) -> Cycle {
        let row = addr.raw() / 4096;
        let hit = self.open_row == Some(row);
        self.open_row = Some(row);
        now + self.location.fetch_latency(hit)
    }
}

/// Outcome of the ULMT processing one observed miss.
#[derive(Debug, Clone)]
pub struct UlmtStep {
    /// Prefetch addresses generated, ready at `response_done`.
    pub prefetches: Vec<LineAddr>,
    /// Cycle at which the prefetch addresses were generated (end of the
    /// Prefetching step).
    pub response_done: Cycle,
    /// Cycle at which the Learning step finished; the ULMT is busy until
    /// then.
    pub occupancy_done: Cycle,
}

/// Aggregate ULMT execution statistics (Figure 10).
#[derive(Debug, Clone, Default)]
pub struct UlmtStats {
    /// Response time per observed miss, in main-processor cycles.
    pub response: Mean,
    /// Occupancy time per observed miss, in main-processor cycles.
    pub occupancy: Mean,
    /// Cycles spent computing (instruction execution).
    pub busy_cycles: Cycle,
    /// Cycles stalled on the private cache / table memory.
    pub mem_cycles: Cycle,
    /// Instructions retired.
    pub insns: u64,
    /// Misses observed (steps executed).
    pub steps: u64,
    /// Observations dropped because the ULMT was still busy and its
    /// observation queue (queue 2) was full.
    pub dropped_observations: u64,
}

impl UlmtStats {
    /// Instructions per *memory-processor* cycle (the core runs at half
    /// the main clock), as printed atop the bars of Figure 10.
    pub fn ipc(&self) -> f64 {
        let total = self.busy_cycles + self.mem_cycles;
        if total == 0 {
            0.0
        } else {
            self.insns as f64 / (total as f64 / 2.0)
        }
    }

    /// Fraction of ULMT time stalled on memory.
    pub fn mem_fraction(&self) -> f64 {
        let total = self.busy_cycles + self.mem_cycles;
        if total == 0 {
            0.0
        } else {
            self.mem_cycles as f64 / total as f64
        }
    }
}

/// A memory processor executing one ULMT.
///
/// # Example
///
/// ```
/// use ulmt_core::AlgorithmSpec;
/// use ulmt_memproc::{FixedLatencyMemory, MemProcConfig, MemProcessor, MemProcLocation};
/// use ulmt_simcore::LineAddr;
///
/// let mut mp = MemProcessor::new(MemProcConfig::default(), AlgorithmSpec::repl(1024).build());
/// let mut mem = FixedLatencyMemory::new(MemProcLocation::InDram);
/// for _ in 0..2 {
///     for n in [1u64, 2, 3] {
///         let now = mp.busy_until();
///         mp.process(LineAddr::new(n), now, &mut mem);
///     }
/// }
/// let step = mp.process(LineAddr::new(1), mp.busy_until(), &mut mem);
/// assert!(step.prefetches.contains(&LineAddr::new(2)));
/// assert!(step.response_done < step.occupancy_done);
/// ```
pub struct MemProcessor {
    cfg: MemProcConfig,
    algorithm: Box<dyn UlmtAlgorithm>,
    cache: Cache,
    busy_until: Cycle,
    stats: UlmtStats,
    tracer: Option<SharedTracer>,
}

impl std::fmt::Debug for MemProcessor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemProcessor")
            .field("algorithm", &self.algorithm.name())
            .field("location", &self.cfg.location)
            .field("busy_until", &self.busy_until)
            .finish()
    }
}

impl MemProcessor {
    /// Creates a memory processor running `algorithm`.
    pub fn new(cfg: MemProcConfig, algorithm: Box<dyn UlmtAlgorithm>) -> Self {
        MemProcessor {
            cache: Cache::new(cfg.cache),
            cfg,
            algorithm,
            busy_until: 0,
            stats: UlmtStats::default(),
            tracer: None,
        }
    }

    /// Installs a shared event tracer: every processed observation is then
    /// recorded as a [`TraceEvent::UlmtStep`] carrying the same response
    /// and occupancy durations that feed the Figure 10 means.
    pub fn set_tracer(&mut self, tracer: SharedTracer) {
        self.tracer = Some(tracer);
    }

    /// The configuration.
    pub fn config(&self) -> &MemProcConfig {
        &self.cfg
    }

    /// Name of the algorithm being run.
    pub fn algorithm_name(&self) -> String {
        self.algorithm.name()
    }

    /// The algorithm itself (for customization calls such as page
    /// re-mapping).
    pub fn algorithm_mut(&mut self) -> &mut dyn UlmtAlgorithm {
        self.algorithm.as_mut()
    }

    /// Cycle until which the thread is busy with the previous observation.
    pub fn busy_until(&self) -> Cycle {
        self.busy_until
    }

    /// Returns `true` if the thread can accept a new observation at `now`.
    pub fn is_idle_at(&self, now: Cycle) -> bool {
        self.busy_until <= now
    }

    /// Execution statistics.
    pub fn stats(&self) -> &UlmtStats {
        &self.stats
    }

    /// Records that an observation had to be dropped (queue 2 overflow).
    pub fn record_dropped_observation(&mut self) {
        self.stats.dropped_observations += 1;
    }

    /// Executes the Prefetching + Learning steps for `miss`, starting at
    /// `now` (which must be ≥ [`MemProcessor::busy_until`]; the caller
    /// serializes observations).
    ///
    /// # Panics
    ///
    /// Panics in debug builds if called while still busy.
    pub fn process(&mut self, miss: LineAddr, now: Cycle, mem: &mut dyn TableMemory) -> UlmtStep {
        debug_assert!(
            now >= self.busy_until,
            "ULMT is busy until {}",
            self.busy_until
        );
        let step = self.algorithm.process_miss(miss);

        let mut t = now;
        self.replay_cost(&step.prefetch_cost, &mut t, mem);
        let response_done = t;
        self.replay_cost(&step.learn_cost, &mut t, mem);
        let occupancy_done = t;

        self.busy_until = occupancy_done;
        self.stats.steps += 1;
        self.stats.insns += step.total_insns();
        self.stats.response.add((response_done - now) as f64);
        self.stats.occupancy.add((occupancy_done - now) as f64);
        if let Some(tracer) = &self.tracer {
            tracer.record(
                now,
                TraceEvent::UlmtStep {
                    line: miss,
                    response: response_done - now,
                    occupancy: occupancy_done - now,
                },
            );
        }

        UlmtStep {
            prefetches: step.prefetches,
            response_done,
            occupancy_done,
        }
    }

    /// Replays one phase's cost against the clock and the private cache.
    fn replay_cost(&mut self, cost: &Cost, t: &mut Cycle, mem: &mut dyn TableMemory) {
        let busy = cost.insns * self.cfg.cycles_per_insn;
        *t += busy;
        self.stats.busy_cycles += busy;
        let line_size = self.cfg.cache.line_size;
        for touch in &cost.table_touches {
            let first = touch.addr.line(line_size).raw();
            let last = touch
                .addr
                .offset(touch.bytes.max(1) as i64 - 1)
                .line(line_size)
                .raw();
            for lineno in first..=last {
                let line = LineAddr::new(lineno);
                let before = *t;
                match self.cache.access(line, touch.is_write) {
                    AccessOutcome::Hit { .. } => {
                        *t += self.cfg.l1_hit;
                    }
                    AccessOutcome::Miss { .. } | AccessOutcome::MissMerged { .. } => {
                        *t = mem.fetch(line.byte_addr(line_size), *t);
                        self.cache.fill(line, false);
                    }
                    AccessOutcome::Blocked => {
                        // The simple in-order core never has more than one
                        // outstanding fill; treat as a miss.
                        *t = mem.fetch(line.byte_addr(line_size), *t);
                    }
                }
                self.stats.mem_cycles += *t - before;
                // Fills complete immediately in this in-order model; drain
                // any write-backs (they only cost bandwidth, modeled by
                // the TableMemory implementation if it cares).
                while self.cache.writeback_queue_mut().pop().is_some() {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ulmt_core::AlgorithmSpec;

    fn line(n: u64) -> LineAddr {
        LineAddr::new(n)
    }

    fn run_steps(mp: &mut MemProcessor, mem: &mut dyn TableMemory, seq: &[u64], reps: usize) {
        for _ in 0..reps {
            for &n in seq {
                let now = mp.busy_until();
                mp.process(line(n), now, mem);
            }
        }
    }

    #[test]
    fn response_precedes_occupancy() {
        let mut mp = MemProcessor::new(MemProcConfig::default(), AlgorithmSpec::repl(1024).build());
        let mut mem = FixedLatencyMemory::new(MemProcLocation::InDram);
        let step = mp.process(line(5), 0, &mut mem);
        assert!(step.response_done <= step.occupancy_done);
        assert!(step.occupancy_done > 0);
        assert_eq!(mp.busy_until(), step.occupancy_done);
    }

    #[test]
    fn repl_response_is_low_and_occupancy_under_200() {
        // Figure 6/10 viability: occupancy must stay under ~200 cycles so
        // the ULMT keeps up with back-to-back dependent misses.
        let mut mp = MemProcessor::new(MemProcConfig::default(), AlgorithmSpec::repl(4096).build());
        let mut mem = FixedLatencyMemory::new(MemProcLocation::InDram);
        let seq: Vec<u64> = (0..32).map(|i| i * 37 + 3).collect();
        run_steps(&mut mp, &mut mem, &seq, 6);
        let stats = mp.stats();
        assert!(
            stats.occupancy.mean() < 200.0,
            "occupancy {}",
            stats.occupancy.mean()
        );
        assert!(
            stats.response.mean() < 100.0,
            "response {}",
            stats.response.mean()
        );
    }

    #[test]
    fn chain_response_exceeds_repl() {
        let seq: Vec<u64> = (0..32).map(|i| i * 37 + 3).collect();
        let run = |spec: AlgorithmSpec| {
            let mut mp = MemProcessor::new(MemProcConfig::default(), spec.build());
            let mut mem = FixedLatencyMemory::new(MemProcLocation::InDram);
            run_steps(&mut mp, &mut mem, &seq, 6);
            mp.stats().response.mean()
        };
        let chain = run(AlgorithmSpec::chain(4096));
        let repl = run(AlgorithmSpec::repl(4096));
        assert!(chain > repl, "chain {chain} vs repl {repl}");
    }

    #[test]
    fn north_bridge_roughly_doubles_response() {
        // Use a working set larger than the 32 KB private cache so table
        // reads actually reach the (location-dependent) memory.
        let seq: Vec<u64> = (0..3000).map(|i| i * 37 + 3).collect();
        let run = |cfg: MemProcConfig| {
            let mut mp = MemProcessor::new(cfg, AlgorithmSpec::repl(4096).build());
            let mut mem = FixedLatencyMemory::new(cfg.location);
            run_steps(&mut mp, &mut mem, &seq, 6);
            mp.stats().response.mean()
        };
        let dram = run(MemProcConfig::default());
        let nb = run(MemProcConfig::north_bridge());
        assert!(nb > dram * 1.3, "nb {nb} vs dram {dram}");
    }

    #[test]
    fn cache_reuse_lowers_learning_cost() {
        // Replicated's learning touches rows that were updated recently,
        // so the private cache should show a healthy hit rate.
        let mut mp = MemProcessor::new(MemProcConfig::default(), AlgorithmSpec::repl(1024).build());
        let mut mem = FixedLatencyMemory::new(MemProcLocation::InDram);
        let seq: Vec<u64> = (0..8).collect();
        run_steps(&mut mp, &mut mem, &seq, 16);
        let s = mp.stats();
        assert!(s.mem_fraction() < 0.8, "mem fraction {}", s.mem_fraction());
        assert!(s.ipc() > 0.2, "ipc {}", s.ipc());
    }

    #[test]
    fn dropped_observation_counter() {
        let mut mp = MemProcessor::new(MemProcConfig::default(), AlgorithmSpec::seq1().build());
        mp.record_dropped_observation();
        mp.record_dropped_observation();
        assert_eq!(mp.stats().dropped_observations, 2);
    }

    #[test]
    fn idle_tracking() {
        let mut mp = MemProcessor::new(MemProcConfig::default(), AlgorithmSpec::seq1().build());
        let mut mem = FixedLatencyMemory::new(MemProcLocation::InDram);
        assert!(mp.is_idle_at(0));
        let step = mp.process(line(1), 0, &mut mem);
        assert!(!mp.is_idle_at(step.occupancy_done - 1));
        assert!(mp.is_idle_at(step.occupancy_done));
    }
}
