//! Property test: the cache against a brute-force reference model.
//!
//! The reference model is an obviously-correct per-set LRU list with the
//! same accept/steal/drop semantics. Any divergence in hit/miss outcomes
//! or final contents is a bug in the optimized implementation.

use ulmt_cache::{AccessOutcome, Cache, CacheConfig, PushOutcome};
use ulmt_simcore::rng::Pcg32;
use ulmt_simcore::LineAddr;

/// Brute-force model: per set, a MRU-ordered list of (line, pending).
#[derive(Debug, Clone)]
struct RefModel {
    sets: Vec<Vec<(u64, bool)>>, // (line, pending)
    assoc: usize,
    mshrs_free: usize,
}

impl RefModel {
    fn new(cfg: &CacheConfig) -> Self {
        RefModel {
            sets: vec![Vec::new(); cfg.num_sets()],
            assoc: cfg.assoc,
            mshrs_free: cfg.mshrs,
        }
    }

    fn set_of(&self, line: u64) -> usize {
        (line as usize) & (self.sets.len() - 1)
    }

    /// Mirrors `Cache::access` for a demand read. Returns "hit", "merge",
    /// "miss" or "blocked".
    fn access(&mut self, line: u64) -> &'static str {
        let set = self.set_of(line);
        let ways = &mut self.sets[set];
        if let Some(pos) = ways.iter().position(|&(l, p)| l == line && !p) {
            let way = ways.remove(pos);
            ways.insert(0, way); // MRU
            return "hit";
        }
        if ways.iter().any(|&(l, p)| l == line && p) {
            return "merge";
        }
        if self.mshrs_free == 0 {
            return "blocked";
        }
        // Victim: LRU among non-pending.
        let victim = ways.iter().rposition(|&(_, p)| !p);
        if ways.len() >= self.assoc {
            match victim {
                Some(pos) => {
                    ways.remove(pos);
                }
                None => return "blocked", // set fully pending
            }
        }
        ways.insert(0, (line, true));
        self.mshrs_free -= 1;
        "miss"
    }

    fn fill(&mut self, line: u64) {
        let set = self.set_of(line);
        if let Some(pos) = self.sets[set].iter().position(|&(l, p)| l == line && p) {
            self.sets[set][pos].1 = false;
            let way = self.sets[set].remove(pos);
            self.sets[set].insert(0, way);
            self.mshrs_free += 1;
        }
    }

    /// Mirrors `Cache::push`.
    fn push(&mut self, line: u64) -> &'static str {
        let set = self.set_of(line);
        if self.sets[set].iter().any(|&(l, p)| l == line && p) {
            self.fill(line);
            return "stole";
        }
        if self.sets[set].iter().any(|&(l, p)| l == line && !p) {
            return "present";
        }
        if self.mshrs_free == 0 {
            return "no_mshr";
        }
        let ways = &mut self.sets[set];
        if ways.len() >= self.assoc {
            match ways.iter().rposition(|&(_, p)| !p) {
                Some(pos) => {
                    ways.remove(pos);
                }
                None => return "set_pending",
            }
        }
        self.sets[set].insert(0, (line, false));
        "accepted"
    }

    fn contains(&self, line: u64) -> bool {
        let set = self.set_of(line);
        self.sets[set].iter().any(|&(l, p)| l == line && !p)
    }
}

fn outcome_name(o: &AccessOutcome) -> &'static str {
    match o {
        AccessOutcome::Hit { .. } => "hit",
        AccessOutcome::MissMerged { .. } => "merge",
        AccessOutcome::Miss { .. } => "miss",
        AccessOutcome::Blocked => "blocked",
    }
}

fn push_name(o: &PushOutcome) -> &'static str {
    match o {
        PushOutcome::StoleMshr { .. } => "stole",
        PushOutcome::Accepted { .. } => "accepted",
        PushOutcome::DroppedPresent => "present",
        PushOutcome::DroppedWriteback => "writeback",
        PushOutcome::DroppedNoMshr => "no_mshr",
        PushOutcome::DroppedSetPending => "set_pending",
    }
}

#[derive(Debug, Clone, Copy)]
enum Op {
    Access(u64),
    Fill(u64),
    Push(u64),
}

fn random_ops(rng: &mut Pcg32) -> Vec<Op> {
    let len = rng.gen_range_usize(1..500);
    (0..len)
        .map(|_| {
            let line = rng.gen_range_u64(0..96);
            match rng.gen_range_u32(0..3) {
                0 => Op::Access(line),
                1 => Op::Fill(line),
                _ => Op::Push(line),
            }
        })
        .collect()
}

#[test]
fn cache_matches_reference_model() {
    let mut rng = Pcg32::seed_from_u64(0xcac4e);
    for _ in 0..128 {
        let ops = random_ops(&mut rng);
        let cfg = CacheConfig {
            size_bytes: 2048, // 16 sets x 2 ways
            assoc: 2,
            line_size: 64,
            mshrs: 4,
            wb_capacity: 8,
        };
        let mut cache = Cache::new(cfg);
        let mut model = RefModel::new(&cfg);
        for op in ops {
            match op {
                Op::Access(l) => {
                    let got = outcome_name(&cache.access(LineAddr::new(l), false));
                    let want = model.access(l);
                    assert_eq!(got, want, "access {}", l);
                }
                Op::Fill(l) => {
                    cache.fill(LineAddr::new(l), false);
                    model.fill(l);
                }
                Op::Push(l) => {
                    let got = push_name(&cache.push(LineAddr::new(l)));
                    let want = model.push(l);
                    assert_eq!(got, want, "push {}", l);
                }
            }
        }
        // Final contents agree.
        for l in 0..96 {
            assert_eq!(
                cache.contains(LineAddr::new(l)),
                model.contains(l),
                "final contents differ at line {}",
                l
            );
        }
    }
}
