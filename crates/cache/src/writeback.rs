//! Write-back queue.
//!
//! Dirty victims wait here until the bus drains them to memory. The L2
//! push-accept rules consult this queue: a prefetched line arriving while
//! the same line sits in the write-back queue is dropped (the queued copy
//! is newer than what memory returned).

use std::collections::VecDeque;

use ulmt_simcore::LineAddr;

/// FIFO queue of dirty lines awaiting write-back to memory.
///
/// # Example
///
/// ```
/// use ulmt_cache::WriteBackQueue;
/// use ulmt_simcore::LineAddr;
///
/// let mut wb = WriteBackQueue::new(2);
/// assert!(wb.enqueue(LineAddr::new(1)));
/// assert!(wb.enqueue(LineAddr::new(2)));
/// assert!(!wb.enqueue(LineAddr::new(3))); // full
/// assert!(wb.contains(LineAddr::new(1)));
/// assert_eq!(wb.pop(), Some(LineAddr::new(1)));
/// ```
#[derive(Debug, Clone)]
pub struct WriteBackQueue {
    queue: VecDeque<LineAddr>,
    capacity: usize,
    overflowed: u64,
}

impl WriteBackQueue {
    /// Creates a queue holding at most `capacity` lines.
    pub fn new(capacity: usize) -> Self {
        WriteBackQueue {
            queue: VecDeque::with_capacity(capacity),
            capacity,
            overflowed: 0,
        }
    }

    /// Enqueues a dirty line. Returns `false` (and counts an overflow) if
    /// the queue is full; the caller then models the write-back as issued
    /// immediately, which is the standard stall-free approximation.
    pub fn enqueue(&mut self, line: LineAddr) -> bool {
        if self.queue.len() >= self.capacity {
            self.overflowed += 1;
            return false;
        }
        self.queue.push_back(line);
        true
    }

    /// Removes and returns the oldest queued line.
    pub fn pop(&mut self) -> Option<LineAddr> {
        self.queue.pop_front()
    }

    /// Returns `true` if `line` is waiting in the queue.
    pub fn contains(&self, line: LineAddr) -> bool {
        self.queue.contains(&line)
    }

    /// Removes `line` from the queue if present (used when a demand miss
    /// must re-fetch a line that was about to be written back).
    pub fn remove(&mut self, line: LineAddr) -> bool {
        if let Some(pos) = self.queue.iter().position(|&l| l == line) {
            self.queue.remove(pos);
            true
        } else {
            false
        }
    }

    /// Number of queued lines.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Returns `true` if nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Number of enqueue attempts rejected because the queue was full.
    pub fn overflows(&self) -> u64 {
        self.overflowed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order() {
        let mut wb = WriteBackQueue::new(4);
        for i in 0..4 {
            assert!(wb.enqueue(LineAddr::new(i)));
        }
        for i in 0..4 {
            assert_eq!(wb.pop(), Some(LineAddr::new(i)));
        }
        assert_eq!(wb.pop(), None);
    }

    #[test]
    fn overflow_counts() {
        let mut wb = WriteBackQueue::new(1);
        assert!(wb.enqueue(LineAddr::new(1)));
        assert!(!wb.enqueue(LineAddr::new(2)));
        assert_eq!(wb.overflows(), 1);
        assert_eq!(wb.len(), 1);
    }

    #[test]
    fn remove_mid_queue() {
        let mut wb = WriteBackQueue::new(3);
        wb.enqueue(LineAddr::new(1));
        wb.enqueue(LineAddr::new(2));
        wb.enqueue(LineAddr::new(3));
        assert!(wb.remove(LineAddr::new(2)));
        assert!(!wb.remove(LineAddr::new(2)));
        assert_eq!(wb.pop(), Some(LineAddr::new(1)));
        assert_eq!(wb.pop(), Some(LineAddr::new(3)));
    }
}
