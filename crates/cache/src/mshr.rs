//! Miss Status Handling Registers.
//!
//! An MSHR tracks one in-flight line fill. The file has a fixed number of
//! registers (Table 3: queue depths and MSHR counts are small); when all
//! are busy, new misses must stall and arriving pushes are dropped.

use ulmt_simcore::LineAddr;

/// Identifier of an allocated MSHR, valid until it is released.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MshrId(pub(crate) usize);

/// One in-flight miss.
#[derive(Debug, Clone)]
struct Mshr {
    line: LineAddr,
    /// `true` if a demand access is waiting on this fill (as opposed to a
    /// fill initiated purely by a prefetch).
    demand_waiting: bool,
    /// `true` if the fill was initiated by a prefetch (processor-side
    /// prefetch or memory-side push that stole the register).
    prefetch_initiated: bool,
}

/// A fixed-capacity file of Miss Status Handling Registers.
///
/// # Example
///
/// ```
/// use ulmt_cache::MshrFile;
/// use ulmt_simcore::LineAddr;
///
/// let mut file = MshrFile::new(2);
/// let a = file.allocate(LineAddr::new(1), true, false).unwrap();
/// let _b = file.allocate(LineAddr::new(2), true, false).unwrap();
/// assert!(file.allocate(LineAddr::new(3), true, false).is_none()); // full
/// assert_eq!(file.find(LineAddr::new(1)), Some(a));
/// file.release(a);
/// assert!(file.has_free());
/// ```
#[derive(Debug, Clone)]
pub struct MshrFile {
    slots: Vec<Option<Mshr>>,
}

impl MshrFile {
    /// Creates a file with `capacity` registers.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "MSHR capacity must be positive");
        MshrFile {
            slots: vec![None; capacity],
        }
    }

    /// Allocates a register for `line`. Returns `None` when all registers
    /// are busy.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if an MSHR for `line` already exists; callers
    /// must merge into the existing register instead (see [`MshrFile::find`]).
    pub fn allocate(
        &mut self,
        line: LineAddr,
        demand_waiting: bool,
        prefetch_initiated: bool,
    ) -> Option<MshrId> {
        debug_assert!(self.find(line).is_none(), "duplicate MSHR for {line}");
        let idx = self.slots.iter().position(Option::is_none)?;
        self.slots[idx] = Some(Mshr {
            line,
            demand_waiting,
            prefetch_initiated,
        });
        Some(MshrId(idx))
    }

    /// Finds the register tracking `line`, if any.
    pub fn find(&self, line: LineAddr) -> Option<MshrId> {
        self.slots
            .iter()
            .position(|s| s.as_ref().is_some_and(|m| m.line == line))
            .map(MshrId)
    }

    /// Marks that a demand access is now waiting on the fill tracked by `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not allocated.
    pub fn mark_demand(&mut self, id: MshrId) {
        self.slot_mut(id).demand_waiting = true;
    }

    /// Returns `true` if a demand access waits on `id`.
    pub fn demand_waiting(&self, id: MshrId) -> bool {
        self.slot(id).demand_waiting
    }

    /// Returns `true` if the fill tracked by `id` was initiated by a
    /// prefetch.
    pub fn prefetch_initiated(&self, id: MshrId) -> bool {
        self.slot(id).prefetch_initiated
    }

    /// Line tracked by `id`.
    pub fn line(&self, id: MshrId) -> LineAddr {
        self.slot(id).line
    }

    /// Releases `id`, freeing the register.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not allocated.
    pub fn release(&mut self, id: MshrId) {
        assert!(self.slots[id.0].is_some(), "releasing unallocated MSHR");
        self.slots[id.0] = None;
    }

    /// Returns `true` if at least one register is free.
    pub fn has_free(&self) -> bool {
        self.slots.iter().any(Option::is_none)
    }

    /// Number of registers currently allocated.
    pub fn in_use(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    /// Total number of registers.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    fn slot(&self, id: MshrId) -> &Mshr {
        self.slots[id.0].as_ref().expect("stale MshrId")
    }

    fn slot_mut(&mut self, id: MshrId) -> &mut Mshr {
        self.slots[id.0].as_mut().expect("stale MshrId")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(n: u64) -> LineAddr {
        LineAddr::new(n)
    }

    #[test]
    fn allocate_until_full() {
        let mut f = MshrFile::new(3);
        for i in 0..3 {
            assert!(f.allocate(line(i), true, false).is_some());
        }
        assert!(!f.has_free());
        assert_eq!(f.in_use(), 3);
        assert!(f.allocate(line(99), true, false).is_none());
    }

    #[test]
    fn release_frees_slot() {
        let mut f = MshrFile::new(1);
        let id = f.allocate(line(5), false, true).unwrap();
        assert!(f.prefetch_initiated(id));
        assert!(!f.demand_waiting(id));
        f.mark_demand(id);
        assert!(f.demand_waiting(id));
        f.release(id);
        assert!(f.has_free());
        assert_eq!(f.find(line(5)), None);
    }

    #[test]
    fn find_locates_by_line() {
        let mut f = MshrFile::new(4);
        let a = f.allocate(line(10), true, false).unwrap();
        let b = f.allocate(line(20), true, false).unwrap();
        assert_eq!(f.find(line(10)), Some(a));
        assert_eq!(f.find(line(20)), Some(b));
        assert_eq!(f.find(line(30)), None);
        assert_eq!(f.line(a), line(10));
    }

    #[test]
    #[should_panic(expected = "releasing unallocated")]
    fn double_release_panics() {
        let mut f = MshrFile::new(1);
        let id = f.allocate(line(1), true, false).unwrap();
        f.release(id);
        f.release(id);
    }
}
