#![warn(missing_docs)]

//! Set-associative cache models for the ULMT simulator.
//!
//! Provides the three caches of the simulated machine (Table 3 of the
//! paper): the main processor's L1 (16 KB, 2-way, 32 B lines) and L2
//! (512 KB, 4-way, 64 B lines), and the memory processor's private L1
//! (32 KB, 2-way, 32 B lines).
//!
//! The L2 model implements the paper's *push prefetching* support
//! (Section 2.1): it accepts lines from memory that it never requested,
//! lets an arriving prefetch *steal* the MSHR of a matching pending demand
//! request, and drops arriving prefetches when
//!
//! 1. the cache already holds the line,
//! 2. the write-back queue holds the line,
//! 3. all MSHRs are busy, or
//! 4. every line in the target set is in transaction-pending state.
//!
//! Lines installed by a push carry a *prefetched* bit used by the
//! effectiveness accounting of Figure 9 (`Hits`, `DelayedHits`,
//! `Replaced`, `Redundant`).
//!
//! # Example
//!
//! ```
//! use ulmt_cache::{Cache, CacheConfig, AccessOutcome, PushOutcome};
//! use ulmt_simcore::Addr;
//!
//! let mut l2 = Cache::new(CacheConfig::l2());
//! let line = Addr::new(0x4000).line(64);
//!
//! // Cold miss allocates an MSHR; the fill completes it.
//! assert!(matches!(l2.access(line, false), AccessOutcome::Miss { .. }));
//! l2.fill(line, false);
//! assert!(matches!(l2.access(line, false), AccessOutcome::Hit { .. }));
//!
//! // A push for a line that is already present is dropped as redundant.
//! assert_eq!(l2.push(line), PushOutcome::DroppedPresent);
//! ```

pub mod config;
pub mod model;
pub mod mshr;
pub mod writeback;

pub use config::CacheConfig;
pub use model::{AccessOutcome, Cache, CacheStats, PrefetchOrigin, PushOutcome};
pub use mshr::{MshrFile, MshrId};
pub use writeback::WriteBackQueue;
