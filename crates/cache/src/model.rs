//! The set-associative cache model.
//!
//! State transitions only — timing lives in the system simulator. A way is
//! `Invalid`, `Valid`, or `Pending` (reserved by an MSHR for an in-flight
//! fill, the paper's "transaction-pending state").

use ulmt_simcore::LineAddr;

use crate::config::CacheConfig;
use crate::mshr::{MshrFile, MshrId};
use crate::writeback::WriteBackQueue;

/// Who installed a prefetched line (Figure 9 only counts memory-side
/// pushes; processor-side prefetch fills are tracked separately).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrefetchOrigin {
    /// A memory-side prefetched line pushed by the ULMT.
    Push,
    /// A fill initiated by the processor-side prefetcher.
    CpuSide,
}

/// Result of a demand or processor-prefetch access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessOutcome {
    /// The line was present.
    Hit {
        /// `Some(origin)` if this was the first demand touch of a line
        /// installed by a prefetch — a fully-eliminated miss (`Hits` in
        /// Figure 9 when the origin is [`PrefetchOrigin::Push`]).
        first_touch_of_prefetch: Option<PrefetchOrigin>,
    },
    /// The line is already being fetched; this access merged into the
    /// existing MSHR.
    MissMerged {
        /// Register the access merged into.
        mshr: MshrId,
        /// `true` if the in-flight fill was initiated by a prefetch, making
        /// this demand access a *delayed hit* (Figure 9).
        prefetch_initiated: bool,
    },
    /// A true miss: an MSHR was allocated and a victim way reserved.
    Miss {
        /// Newly allocated register; the caller sends the request to the
        /// next level and calls [`Cache::fill`] when data returns.
        mshr: MshrId,
        /// Dirty victim that was enqueued for write-back, if any.
        evicted_dirty: Option<LineAddr>,
        /// `Some((victim, origin))` if the victim was a never-touched
        /// prefetched line (`Replaced` in Figure 9 when the origin is
        /// [`PrefetchOrigin::Push`]).
        evicted_prefetch: Option<(LineAddr, PrefetchOrigin)>,
    },
    /// The access cannot proceed: no free MSHR, or every way in the set is
    /// transaction-pending. The caller must retry later.
    Blocked,
}

/// Result of a memory-side push (a prefetched line arriving unrequested).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushOutcome {
    /// A pending demand request for the same line existed; the push stole
    /// its MSHR and completed the fill, as if it were the reply.
    StoleMshr {
        /// `true` if a demand access was waiting (it is now satisfied).
        demand_was_waiting: bool,
        /// `true` if the line was installed with the prefetched bit set:
        /// the stolen MSHR belonged to a processor-side prefetch and no
        /// demand had merged in, so the push's line now sits untouched in
        /// the cache like an accepted push.
        installed_as_prefetch: bool,
    },
    /// The line was installed with its prefetched bit set.
    Accepted {
        /// Dirty victim that was enqueued for write-back, if any.
        evicted_dirty: Option<LineAddr>,
        /// `Some((victim, origin))` if the victim was a never-touched
        /// prefetched line.
        evicted_prefetch: Option<(LineAddr, PrefetchOrigin)>,
    },
    /// Dropped: the cache already holds the line.
    DroppedPresent,
    /// Dropped: the write-back queue holds a (newer) copy of the line.
    DroppedWriteback,
    /// Dropped: all MSHRs are busy.
    DroppedNoMshr,
    /// Dropped: every line in the target set is transaction-pending.
    DroppedSetPending,
}

/// Aggregate counters exposed for the evaluation figures.
#[derive(Debug, Clone, Copy, Default)]
pub struct CacheStats {
    /// Demand accesses (loads/stores from the processor).
    pub demand_accesses: u64,
    /// Demand accesses that hit.
    pub demand_hits: u64,
    /// Demand accesses that missed (true misses, excluding merges).
    pub demand_misses: u64,
    /// Demand accesses that merged into an in-flight fill.
    pub demand_merged: u64,
    /// Accesses rejected for lack of MSHRs / evictable ways.
    pub blocked: u64,
    /// First demand touches of pushed-prefetched lines (`Hits`, Figure 9).
    pub prefetch_first_touches: u64,
    /// First demand touches of processor-side prefetched lines.
    pub cpu_prefetch_first_touches: u64,
    /// Pushed-prefetched lines evicted without ever being referenced
    /// (`Replaced`, Figure 9).
    pub prefetch_replaced_untouched: u64,
    /// Processor-side prefetched lines evicted untouched.
    pub cpu_prefetch_replaced_untouched: u64,
    /// Pushes that stole a pending MSHR.
    pub pushes_stole_mshr: u64,
    /// Pushes installed as new prefetched lines.
    pub pushes_accepted: u64,
    /// Pushes dropped because the line was present (`Redundant`, Figure 9).
    pub pushes_dropped_present: u64,
    /// Pushes dropped because the write-back queue held the line.
    pub pushes_dropped_writeback: u64,
    /// Pushes dropped for lack of a free MSHR.
    pub pushes_dropped_no_mshr: u64,
    /// Pushes dropped because the whole set was transaction-pending.
    pub pushes_dropped_set_pending: u64,
    /// Dirty evictions (write-back traffic).
    pub writebacks: u64,
}

impl CacheStats {
    /// Total pushes dropped, for any reason.
    pub fn pushes_dropped(&self) -> u64 {
        self.pushes_dropped_present
            + self.pushes_dropped_writeback
            + self.pushes_dropped_no_mshr
            + self.pushes_dropped_set_pending
    }

    /// Demand miss ratio (misses + merges over accesses).
    pub fn miss_ratio(&self) -> f64 {
        if self.demand_accesses == 0 {
            0.0
        } else {
            (self.demand_misses + self.demand_merged) as f64 / self.demand_accesses as f64
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WayState {
    Invalid,
    Valid,
    /// Reserved by an MSHR; data in flight.
    Pending,
}

#[derive(Debug, Clone, Copy)]
struct Way {
    line: LineAddr,
    state: WayState,
    dirty: bool,
    /// Line was installed by a prefetch and not yet demanded.
    prefetched: Option<PrefetchOrigin>,
    lru: u64,
}

impl Way {
    fn invalid() -> Self {
        Way {
            line: LineAddr::new(0),
            state: WayState::Invalid,
            dirty: false,
            prefetched: None,
            lru: 0,
        }
    }
}

/// A set-associative, write-back cache with MSHRs, a write-back queue, LRU
/// replacement and push-prefetch support.
///
/// See the [crate documentation](crate) for an end-to-end example.
#[derive(Debug, Clone)]
pub struct Cache {
    cfg: CacheConfig,
    ways: Vec<Way>, // num_sets * assoc, row-major by set
    mshrs: MshrFile,
    wb: WriteBackQueue,
    stats: CacheStats,
    lru_clock: u64,
}

impl Cache {
    /// Creates an empty cache with the given geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is invalid (see [`CacheConfig::validate`]).
    pub fn new(cfg: CacheConfig) -> Self {
        cfg.checked();
        Cache {
            ways: vec![Way::invalid(); cfg.num_lines()],
            mshrs: MshrFile::new(cfg.mshrs),
            wb: WriteBackQueue::new(cfg.wb_capacity),
            cfg,
            stats: CacheStats::default(),
            lru_clock: 0,
        }
    }

    /// The cache geometry.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Aggregate counters.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// The write-back queue (drained by the memory system).
    pub fn writeback_queue_mut(&mut self) -> &mut WriteBackQueue {
        &mut self.wb
    }

    /// Shared view of the write-back queue.
    pub fn writeback_queue(&self) -> &WriteBackQueue {
        &self.wb
    }

    /// The MSHR file.
    pub fn mshrs(&self) -> &MshrFile {
        &self.mshrs
    }

    /// Returns `true` if the cache currently holds `line` in valid state.
    pub fn contains(&self, line: LineAddr) -> bool {
        self.find_valid(line).is_some()
    }

    /// Demand access (load or store) to `line`.
    pub fn access(&mut self, line: LineAddr, is_write: bool) -> AccessOutcome {
        self.stats.demand_accesses += 1;
        self.access_inner(
            line, is_write, /*demand=*/ true, /*prefetch=*/ false,
        )
    }

    /// Access initiated by a processor-side prefetcher. Does not count as a
    /// demand access; on a miss, the resulting fill is marked
    /// prefetch-initiated so that a later demand merge counts as a delayed
    /// hit.
    pub fn access_prefetch(&mut self, line: LineAddr) -> AccessOutcome {
        self.access_inner(line, false, /*demand=*/ false, /*prefetch=*/ true)
    }

    fn access_inner(
        &mut self,
        line: LineAddr,
        is_write: bool,
        demand: bool,
        prefetch: bool,
    ) -> AccessOutcome {
        self.lru_clock += 1;
        if let Some(idx) = self.find_valid(line) {
            let clock = self.lru_clock;
            let way = &mut self.ways[idx];
            way.lru = clock;
            if is_write {
                way.dirty = true;
            }
            let first_touch = if demand { way.prefetched.take() } else { None };
            match first_touch {
                Some(PrefetchOrigin::Push) => self.stats.prefetch_first_touches += 1,
                Some(PrefetchOrigin::CpuSide) => self.stats.cpu_prefetch_first_touches += 1,
                None => {}
            }
            if demand {
                self.stats.demand_hits += 1;
            }
            return AccessOutcome::Hit {
                first_touch_of_prefetch: first_touch,
            };
        }

        if let Some(mshr) = self.mshrs.find(line) {
            let prefetch_initiated = self.mshrs.prefetch_initiated(mshr);
            if demand {
                self.mshrs.mark_demand(mshr);
                self.stats.demand_merged += 1;
            }
            if is_write {
                if let Some(idx) = self.find_pending(line) {
                    self.ways[idx].dirty = true;
                }
            }
            return AccessOutcome::MissMerged {
                mshr,
                prefetch_initiated,
            };
        }

        if !self.mshrs.has_free() {
            self.stats.blocked += 1;
            return AccessOutcome::Blocked;
        }
        let Some(victim) = self.pick_victim(line) else {
            self.stats.blocked += 1;
            return AccessOutcome::Blocked;
        };

        let (evicted_dirty, evicted_prefetch) = self.evict(victim);
        let mshr = self
            .mshrs
            .allocate(line, demand, prefetch)
            .expect("free MSHR checked above");
        let clock = self.lru_clock;
        let way = &mut self.ways[victim];
        *way = Way {
            line,
            state: WayState::Pending,
            // A write miss dirties the line as soon as the fill lands.
            dirty: is_write,
            prefetched: None,
            lru: clock,
        };
        if demand {
            self.stats.demand_misses += 1;
        }
        AccessOutcome::Miss {
            mshr,
            evicted_dirty,
            evicted_prefetch,
        }
    }

    /// Completes the in-flight fill of `line`. Returns `true` if a demand
    /// access was waiting on the fill.
    ///
    /// Fills for lines whose MSHR disappeared (e.g. a push stole it) are
    /// ignored and return `false`.
    pub fn fill(&mut self, line: LineAddr, install_as_prefetched: bool) -> bool {
        let Some(mshr) = self.mshrs.find(line) else {
            return false; // push already satisfied this fill
        };
        let demand_waiting = self.mshrs.demand_waiting(mshr);
        let prefetch_initiated = self.mshrs.prefetch_initiated(mshr);
        self.mshrs.release(mshr);
        let idx = self
            .find_pending(line)
            .expect("MSHR existed, so a pending way must be reserved");
        self.lru_clock += 1;
        let clock = self.lru_clock;
        let way = &mut self.ways[idx];
        way.state = WayState::Valid;
        way.lru = clock;
        // A line fetched purely by a prefetch (no demand merged in yet)
        // carries the prefetched bit so a later eviction without a touch
        // counts as Replaced.
        way.prefetched = if install_as_prefetched {
            Some(PrefetchOrigin::Push)
        } else if prefetch_initiated && !demand_waiting {
            Some(PrefetchOrigin::CpuSide)
        } else {
            None
        };
        demand_waiting
    }

    /// Delivers a memory-side prefetched line (push), applying the paper's
    /// accept/steal/drop rules in order.
    pub fn push(&mut self, line: LineAddr) -> PushOutcome {
        // Rule: a pending request with the same address steals the MSHR and
        // the push acts as the reply.
        if let Some(mshr) = self.mshrs.find(line) {
            let demand_was_waiting = self.mshrs.demand_waiting(mshr);
            let prefetch_initiated = self.mshrs.prefetch_initiated(mshr);
            self.mshrs.release(mshr);
            let idx = self
                .find_pending(line)
                .expect("MSHR existed, so a pending way must be reserved");
            self.lru_clock += 1;
            let clock = self.lru_clock;
            let way = &mut self.ways[idx];
            way.state = WayState::Valid;
            way.lru = clock;
            way.prefetched =
                (!demand_was_waiting && prefetch_initiated).then_some(PrefetchOrigin::Push);
            let installed_as_prefetch = way.prefetched.is_some();
            self.stats.pushes_stole_mshr += 1;
            return PushOutcome::StoleMshr {
                demand_was_waiting,
                installed_as_prefetch,
            };
        }
        if self.find_valid(line).is_some() {
            self.stats.pushes_dropped_present += 1;
            return PushOutcome::DroppedPresent;
        }
        if self.wb.contains(line) {
            self.stats.pushes_dropped_writeback += 1;
            return PushOutcome::DroppedWriteback;
        }
        if !self.mshrs.has_free() {
            self.stats.pushes_dropped_no_mshr += 1;
            return PushOutcome::DroppedNoMshr;
        }
        let Some(victim) = self.pick_victim(line) else {
            self.stats.pushes_dropped_set_pending += 1;
            return PushOutcome::DroppedSetPending;
        };
        let (evicted_dirty, evicted_prefetch) = self.evict(victim);
        self.lru_clock += 1;
        let clock = self.lru_clock;
        let way = &mut self.ways[victim];
        *way = Way {
            line,
            state: WayState::Valid,
            dirty: false,
            prefetched: Some(PrefetchOrigin::Push),
            lru: clock,
        };
        self.stats.pushes_accepted += 1;
        PushOutcome::Accepted {
            evicted_dirty,
            evicted_prefetch,
        }
    }

    /// Number of valid lines currently carrying the prefetched bit.
    pub fn prefetched_lines(&self) -> usize {
        self.ways
            .iter()
            .filter(|w| w.state == WayState::Valid && w.prefetched.is_some())
            .count()
    }

    /// Number of valid lines carrying the prefetched bit of one origin —
    /// e.g. pushed lines still resident and untouched at end of run, the
    /// residual term of the push-accounting identity.
    pub fn prefetched_lines_of(&self, origin: PrefetchOrigin) -> usize {
        self.ways
            .iter()
            .filter(|w| w.state == WayState::Valid && w.prefetched == Some(origin))
            .count()
    }

    fn set_range(&self, line: LineAddr) -> std::ops::Range<usize> {
        let set = (line.raw() as usize) & (self.cfg.num_sets() - 1);
        let start = set * self.cfg.assoc;
        start..start + self.cfg.assoc
    }

    fn find_valid(&self, line: LineAddr) -> Option<usize> {
        self.set_range(line)
            .find(|&i| self.ways[i].state == WayState::Valid && self.ways[i].line == line)
    }

    fn find_pending(&self, line: LineAddr) -> Option<usize> {
        self.set_range(line)
            .find(|&i| self.ways[i].state == WayState::Pending && self.ways[i].line == line)
    }

    /// Picks the LRU way among non-pending ways of the target set.
    fn pick_victim(&self, line: LineAddr) -> Option<usize> {
        self.set_range(line)
            .filter(|&i| self.ways[i].state != WayState::Pending)
            .min_by_key(|&i| (self.ways[i].state == WayState::Valid, self.ways[i].lru))
    }

    /// Evicts the way at `idx`, enqueueing a write-back if dirty. Returns
    /// the evicted dirty line (if any) and a never-touched prefetched
    /// victim with its origin (if any).
    fn evict(&mut self, idx: usize) -> (Option<LineAddr>, Option<(LineAddr, PrefetchOrigin)>) {
        let way = self.ways[idx];
        if way.state != WayState::Valid {
            return (None, None);
        }
        match way.prefetched {
            Some(PrefetchOrigin::Push) => self.stats.prefetch_replaced_untouched += 1,
            Some(PrefetchOrigin::CpuSide) => self.stats.cpu_prefetch_replaced_untouched += 1,
            None => {}
        }
        let dirty = if way.dirty {
            self.stats.writebacks += 1;
            self.wb.enqueue(way.line);
            Some(way.line)
        } else {
            None
        };
        (dirty, way.prefetched.map(|origin| (way.line, origin)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 2 sets x 2 ways x 64 B lines = 256 B, 2 MSHRs.
        Cache::new(CacheConfig {
            size_bytes: 256,
            assoc: 2,
            line_size: 64,
            mshrs: 2,
            wb_capacity: 4,
        })
    }

    fn line(n: u64) -> LineAddr {
        LineAddr::new(n)
    }

    #[test]
    fn hit_after_fill() {
        let mut c = tiny();
        assert!(matches!(
            c.access(line(0), false),
            AccessOutcome::Miss { .. }
        ));
        assert!(c.fill(line(0), false));
        assert!(matches!(
            c.access(line(0), false),
            AccessOutcome::Hit {
                first_touch_of_prefetch: None
            }
        ));
        assert_eq!(c.stats().demand_hits, 1);
        assert_eq!(c.stats().demand_misses, 1);
    }

    #[test]
    fn merge_into_inflight_fill() {
        let mut c = tiny();
        let AccessOutcome::Miss { mshr, .. } = c.access(line(0), false) else {
            panic!("expected miss");
        };
        let out = c.access(line(0), false);
        assert_eq!(
            out,
            AccessOutcome::MissMerged {
                mshr,
                prefetch_initiated: false
            }
        );
        assert_eq!(c.stats().demand_merged, 1);
    }

    #[test]
    fn blocked_when_mshrs_exhausted() {
        let mut c = tiny();
        assert!(matches!(
            c.access(line(0), false),
            AccessOutcome::Miss { .. }
        ));
        assert!(matches!(
            c.access(line(1), false),
            AccessOutcome::Miss { .. }
        ));
        assert_eq!(c.access(line(4), false), AccessOutcome::Blocked);
        assert_eq!(c.stats().blocked, 1);
    }

    #[test]
    fn blocked_when_set_fully_pending() {
        // 4 MSHRs but only 2 ways per set: two pending fills to set 0 block
        // a third access to the same set.
        let mut c = Cache::new(CacheConfig {
            size_bytes: 256,
            assoc: 2,
            line_size: 64,
            mshrs: 4,
            wb_capacity: 4,
        });
        assert!(matches!(
            c.access(line(0), false),
            AccessOutcome::Miss { .. }
        ));
        assert!(matches!(
            c.access(line(2), false),
            AccessOutcome::Miss { .. }
        ));
        assert_eq!(c.access(line(4), false), AccessOutcome::Blocked);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny();
        // Set 0 holds even lines. Fill lines 0 and 2, touch 0, then miss 4:
        // victim must be 2.
        for l in [0, 2] {
            c.access(line(l), false);
            c.fill(line(l), false);
        }
        c.access(line(0), false);
        c.access(line(4), false);
        c.fill(line(4), false);
        assert!(c.contains(line(0)));
        assert!(!c.contains(line(2)));
        assert!(c.contains(line(4)));
    }

    #[test]
    fn dirty_eviction_enqueues_writeback() {
        let mut c = tiny();
        c.access(line(0), true);
        c.fill(line(0), false);
        c.access(line(2), false);
        c.fill(line(2), false);
        let out = c.access(line(4), false);
        match out {
            AccessOutcome::Miss { evicted_dirty, .. } => {
                assert_eq!(evicted_dirty, Some(line(0)));
            }
            other => panic!("expected miss, got {other:?}"),
        }
        assert!(c.writeback_queue().contains(line(0)));
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn push_accepts_and_first_touch_counts() {
        let mut c = tiny();
        assert!(matches!(c.push(line(0)), PushOutcome::Accepted { .. }));
        assert_eq!(c.prefetched_lines(), 1);
        let out = c.access(line(0), false);
        assert_eq!(
            out,
            AccessOutcome::Hit {
                first_touch_of_prefetch: Some(PrefetchOrigin::Push)
            }
        );
        assert_eq!(c.stats().prefetch_first_touches, 1);
        // Second touch is an ordinary hit.
        assert_eq!(
            c.access(line(0), false),
            AccessOutcome::Hit {
                first_touch_of_prefetch: None
            }
        );
        assert_eq!(c.stats().prefetch_first_touches, 1);
    }

    #[test]
    fn push_steals_pending_mshr() {
        let mut c = tiny();
        assert!(matches!(
            c.access(line(0), false),
            AccessOutcome::Miss { .. }
        ));
        let out = c.push(line(0));
        assert_eq!(
            out,
            PushOutcome::StoleMshr {
                demand_was_waiting: true,
                installed_as_prefetch: false
            }
        );
        assert!(c.contains(line(0)));
        // The original reply arrives later and is ignored.
        assert!(!c.fill(line(0), false));
        assert!(c.mshrs().has_free());
    }

    #[test]
    fn push_drop_rules() {
        let mut c = tiny();
        // Present.
        c.access(line(0), false);
        c.fill(line(0), false);
        assert_eq!(c.push(line(0)), PushOutcome::DroppedPresent);

        // Write-back queue holds the line.
        c.access(line(0), true); // dirty it
        c.access(line(2), false);
        c.fill(line(2), false);
        c.access(line(4), false); // evicts dirty line 0
        assert_eq!(c.push(line(0)), PushOutcome::DroppedWriteback);

        // No MSHR free: line 4's fill is outstanding; start another.
        c.access(line(1), false);
        assert_eq!(c.push(line(3)), PushOutcome::DroppedNoMshr);
        assert_eq!(c.stats().pushes_dropped(), 3);
    }

    #[test]
    fn push_dropped_when_set_pending() {
        let mut c = Cache::new(CacheConfig {
            size_bytes: 256,
            assoc: 2,
            line_size: 64,
            mshrs: 4,
            wb_capacity: 4,
        });
        c.access(line(0), false);
        c.access(line(2), false);
        assert_eq!(c.push(line(4)), PushOutcome::DroppedSetPending);
    }

    #[test]
    fn replaced_untouched_prefetch_counts() {
        let mut c = tiny();
        assert!(matches!(c.push(line(0)), PushOutcome::Accepted { .. }));
        assert!(matches!(c.push(line(2)), PushOutcome::Accepted { .. }));
        // Demand misses evict both prefetched lines without touching them.
        c.access(line(4), false);
        c.fill(line(4), false);
        c.access(line(6), false);
        c.fill(line(6), false);
        assert_eq!(c.stats().prefetch_replaced_untouched, 2);
    }

    #[test]
    fn processor_prefetch_then_demand_is_delayed_hit() {
        let mut c = tiny();
        assert!(matches!(
            c.access_prefetch(line(0)),
            AccessOutcome::Miss { .. }
        ));
        let out = c.access(line(0), false);
        assert!(matches!(
            out,
            AccessOutcome::MissMerged {
                prefetch_initiated: true,
                ..
            }
        ));
        // Fill completes; demand was waiting.
        assert!(c.fill(line(0), false));
        // Line is not marked prefetched: the demand already claimed it.
        assert_eq!(
            c.access(line(0), false),
            AccessOutcome::Hit {
                first_touch_of_prefetch: None
            }
        );
    }

    #[test]
    fn push_stealing_cpu_prefetch_mshr_installs_as_prefetch() {
        // A push that steals the MSHR of a processor-side prefetch (no
        // demand merged in) leaves an untouched prefetched line behind —
        // it must be reported so the push accounting can count it as an
        // accepted push rather than losing it.
        let mut c = tiny();
        assert!(matches!(
            c.access_prefetch(line(0)),
            AccessOutcome::Miss { .. }
        ));
        assert_eq!(
            c.push(line(0)),
            PushOutcome::StoleMshr {
                demand_was_waiting: false,
                installed_as_prefetch: true
            }
        );
        assert_eq!(c.prefetched_lines_of(PrefetchOrigin::Push), 1);
        assert_eq!(c.prefetched_lines_of(PrefetchOrigin::CpuSide), 0);
    }

    #[test]
    fn eviction_reports_untouched_prefetch_victims() {
        let mut c = tiny();
        assert!(matches!(c.push(line(0)), PushOutcome::Accepted { .. }));
        assert!(matches!(c.push(line(2)), PushOutcome::Accepted { .. }));
        // A demand miss evicting a pushed line reports the victim origin.
        match c.access(line(4), false) {
            AccessOutcome::Miss {
                evicted_prefetch, ..
            } => assert_eq!(evicted_prefetch, Some((line(0), PrefetchOrigin::Push))),
            other => panic!("expected miss, got {other:?}"),
        }
        c.fill(line(4), false);
        // A push evicting a pushed line reports it too.
        match c.push(line(6)) {
            PushOutcome::Accepted {
                evicted_prefetch, ..
            } => assert_eq!(evicted_prefetch, Some((line(2), PrefetchOrigin::Push))),
            other => panic!("expected accept, got {other:?}"),
        }
    }

    #[test]
    fn prefetch_initiated_fill_without_demand_sets_bit() {
        let mut c = tiny();
        assert!(matches!(
            c.access_prefetch(line(0)),
            AccessOutcome::Miss { .. }
        ));
        assert!(!c.fill(line(0), false));
        assert_eq!(c.prefetched_lines(), 1);
        // A processor-side prefetch fill carries the CpuSide origin.
        assert_eq!(
            c.access(line(0), false),
            AccessOutcome::Hit {
                first_touch_of_prefetch: Some(PrefetchOrigin::CpuSide)
            }
        );
        assert_eq!(c.stats().cpu_prefetch_first_touches, 1);
        assert_eq!(c.stats().prefetch_first_touches, 0);
    }
}
