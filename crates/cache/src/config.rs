//! Cache geometry configuration.

/// Geometry and resource limits of one cache.
///
/// The defaults mirror Table 3 of the paper; see [`CacheConfig::l1`],
/// [`CacheConfig::l2`] and [`CacheConfig::memproc_l1`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity (ways per set).
    pub assoc: usize,
    /// Line size in bytes (power of two).
    pub line_size: u64,
    /// Number of Miss Status Handling Registers.
    pub mshrs: usize,
    /// Capacity of the write-back queue in lines.
    pub wb_capacity: usize,
}

impl CacheConfig {
    /// Main processor L1 data cache: 16 KB, 2-way, 32 B lines (Table 3).
    pub fn l1() -> Self {
        CacheConfig {
            size_bytes: 16 * 1024,
            assoc: 2,
            line_size: 32,
            mshrs: 16,
            wb_capacity: 8,
        }
    }

    /// Main processor L2 data cache: 512 KB, 4-way, 64 B lines (Table 3).
    pub fn l2() -> Self {
        CacheConfig {
            size_bytes: 512 * 1024,
            assoc: 4,
            line_size: 64,
            mshrs: 16,
            wb_capacity: 16,
        }
    }

    /// Memory processor L1 data cache: 32 KB, 2-way, 32 B lines (Table 3).
    pub fn memproc_l1() -> Self {
        CacheConfig {
            size_bytes: 32 * 1024,
            assoc: 2,
            line_size: 32,
            mshrs: 4,
            wb_capacity: 4,
        }
    }

    /// Number of sets implied by the geometry.
    pub fn num_sets(&self) -> usize {
        (self.size_bytes / (self.line_size * self.assoc as u64)) as usize
    }

    /// Total number of lines the cache can hold.
    pub fn num_lines(&self) -> usize {
        self.num_sets() * self.assoc
    }

    /// Checks the geometry without panicking, returning a descriptive
    /// message for the first inconsistency found.
    pub fn check(&self) -> Result<(), String> {
        if !self.line_size.is_power_of_two() {
            return Err("line size must be a power of two".to_string());
        }
        if self.assoc == 0 {
            return Err("associativity must be positive".to_string());
        }
        if self.mshrs == 0 {
            return Err("MSHR count must be positive".to_string());
        }
        let set_bytes = self.line_size * self.assoc as u64;
        if !self.size_bytes.is_multiple_of(set_bytes) {
            return Err("capacity must be a whole number of sets".to_string());
        }
        if self.num_sets() == 0 || !self.num_sets().is_power_of_two() {
            return Err("set count must be a power of two".to_string());
        }
        Ok(())
    }

    /// Validates the geometry, panicking with a descriptive message on
    /// inconsistent parameters. Prefer [`CacheConfig::check`] where a
    /// recoverable error is wanted.
    ///
    /// # Panics
    ///
    /// Panics if the line size is not a power of two, if the capacity is not
    /// divisible into whole sets, or if associativity/MSHR count is zero.
    pub fn validate(&self) {
        self.check().unwrap_or_else(|e| panic!("{e}"));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_geometries() {
        let l1 = CacheConfig::l1();
        l1.validate();
        assert_eq!(l1.num_sets(), 256);
        assert_eq!(l1.num_lines(), 512);

        let l2 = CacheConfig::l2();
        l2.validate();
        assert_eq!(l2.num_sets(), 2048);
        assert_eq!(l2.num_lines(), 8192);

        let mp = CacheConfig::memproc_l1();
        mp.validate();
        assert_eq!(mp.num_sets(), 512);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_pow2_line() {
        CacheConfig {
            line_size: 48,
            ..CacheConfig::l1()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "whole number of sets")]
    fn rejects_ragged_capacity() {
        CacheConfig {
            size_bytes: 1000,
            ..CacheConfig::l1()
        }
        .validate();
    }

    #[test]
    fn check_reports_without_panicking() {
        assert!(CacheConfig::l2().check().is_ok());
        let zero_ways = CacheConfig {
            assoc: 0,
            ..CacheConfig::l1()
        };
        assert!(zero_ways.check().unwrap_err().contains("associativity"));
        let zero_sets = CacheConfig {
            size_bytes: 0,
            ..CacheConfig::l1()
        };
        assert!(zero_sets.check().unwrap_err().contains("power of two"));
        let zero_mshrs = CacheConfig {
            mshrs: 0,
            ..CacheConfig::l1()
        };
        assert!(zero_mshrs.check().unwrap_err().contains("MSHR"));
    }
}
