//! Cache geometry configuration.

use ulmt_simcore::ConfigError;

/// Geometry and resource limits of one cache.
///
/// The defaults mirror Table 3 of the paper; see [`CacheConfig::l1`],
/// [`CacheConfig::l2`] and [`CacheConfig::memproc_l1`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity (ways per set).
    pub assoc: usize,
    /// Line size in bytes (power of two).
    pub line_size: u64,
    /// Number of Miss Status Handling Registers.
    pub mshrs: usize,
    /// Capacity of the write-back queue in lines.
    pub wb_capacity: usize,
}

impl CacheConfig {
    /// Main processor L1 data cache: 16 KB, 2-way, 32 B lines (Table 3).
    pub fn l1() -> Self {
        CacheConfig {
            size_bytes: 16 * 1024,
            assoc: 2,
            line_size: 32,
            mshrs: 16,
            wb_capacity: 8,
        }
    }

    /// Main processor L2 data cache: 512 KB, 4-way, 64 B lines (Table 3).
    pub fn l2() -> Self {
        CacheConfig {
            size_bytes: 512 * 1024,
            assoc: 4,
            line_size: 64,
            mshrs: 16,
            wb_capacity: 16,
        }
    }

    /// Memory processor L1 data cache: 32 KB, 2-way, 32 B lines (Table 3).
    pub fn memproc_l1() -> Self {
        CacheConfig {
            size_bytes: 32 * 1024,
            assoc: 2,
            line_size: 32,
            mshrs: 4,
            wb_capacity: 4,
        }
    }

    /// Number of sets implied by the geometry.
    pub fn num_sets(&self) -> usize {
        (self.size_bytes / (self.line_size * self.assoc as u64)) as usize
    }

    /// Total number of lines the cache can hold.
    pub fn num_lines(&self) -> usize {
        self.num_sets() * self.assoc
    }

    /// Validates the geometry, returning the first inconsistency found as
    /// a typed [`ConfigError`].
    pub fn validate(&self) -> Result<(), ConfigError> {
        let err = |reason: &str| Err(ConfigError::new("cache", reason));
        if !self.line_size.is_power_of_two() {
            return err("line size must be a power of two");
        }
        if self.assoc == 0 {
            return err("associativity must be positive");
        }
        if self.mshrs == 0 {
            return err("MSHR count must be positive");
        }
        let set_bytes = self.line_size * self.assoc as u64;
        if !self.size_bytes.is_multiple_of(set_bytes) {
            return err("capacity must be a whole number of sets");
        }
        if self.num_sets() == 0 || !self.num_sets().is_power_of_two() {
            return err("set count must be a power of two");
        }
        Ok(())
    }

    /// Infallible assertion form of [`CacheConfig::validate`], used by
    /// constructors.
    ///
    /// # Panics
    ///
    /// Panics with the [`ConfigError`] message if the geometry is invalid.
    pub fn checked(&self) {
        if let Err(e) = self.validate() {
            panic!("{e}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_geometries() {
        let l1 = CacheConfig::l1();
        l1.checked();
        assert_eq!(l1.num_sets(), 256);
        assert_eq!(l1.num_lines(), 512);

        let l2 = CacheConfig::l2();
        l2.checked();
        assert_eq!(l2.num_sets(), 2048);
        assert_eq!(l2.num_lines(), 8192);

        let mp = CacheConfig::memproc_l1();
        mp.checked();
        assert_eq!(mp.num_sets(), 512);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_pow2_line() {
        CacheConfig {
            line_size: 48,
            ..CacheConfig::l1()
        }
        .checked();
    }

    #[test]
    #[should_panic(expected = "whole number of sets")]
    fn rejects_ragged_capacity() {
        CacheConfig {
            size_bytes: 1000,
            ..CacheConfig::l1()
        }
        .checked();
    }

    #[test]
    fn validate_reports_without_panicking() {
        assert!(CacheConfig::l2().validate().is_ok());
        let zero_ways = CacheConfig {
            assoc: 0,
            ..CacheConfig::l1()
        };
        let e = zero_ways.validate().unwrap_err();
        assert_eq!(e.component(), "cache");
        assert!(e.reason().contains("associativity"));
        let zero_sets = CacheConfig {
            size_bytes: 0,
            ..CacheConfig::l1()
        };
        assert!(zero_sets
            .validate()
            .unwrap_err()
            .reason()
            .contains("power of two"));
        let zero_mshrs = CacheConfig {
            mshrs: 0,
            ..CacheConfig::l1()
        };
        assert!(zero_mshrs.validate().unwrap_err().reason().contains("MSHR"));
    }
}
