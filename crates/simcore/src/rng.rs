//! Small deterministic pseudo-random number generator.
//!
//! The workload generators and the randomized tests need reproducible
//! randomness without pulling an external crate into the (offline) build.
//! [`Pcg32`] is an implementation of the PCG-XSH-RR generator: 64 bits of
//! state, 32 bits of output per step, excellent statistical quality for
//! its size, and a trivially auditable transition function.

/// PCG-XSH-RR 64/32 pseudo-random number generator.
///
/// # Example
///
/// ```
/// use ulmt_simcore::rng::Pcg32;
///
/// let mut a = Pcg32::seed_from_u64(42);
/// let mut b = Pcg32::seed_from_u64(42);
/// assert_eq!(a.next_u64(), b.next_u64()); // same seed, same stream
/// let x = a.gen_range_u64(0..10);
/// assert!(x < 10);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pcg32 {
    state: u64,
    inc: u64,
}

const PCG_MULT: u64 = 6_364_136_223_846_793_005;

/// SplitMix64 step, used to spread a user seed over the PCG state space.
fn splitmix64(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl Pcg32 {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let initstate = splitmix64(&mut sm);
        let initseq = splitmix64(&mut sm);
        let mut rng = Pcg32 {
            state: 0,
            inc: (initseq << 1) | 1,
        };
        rng.next_u32();
        rng.state = rng.state.wrapping_add(initstate);
        rng.next_u32();
        rng
    }

    /// The next 32 random bits.
    pub fn next_u32(&mut self) -> u32 {
        let old = self.state;
        self.state = old.wrapping_mul(PCG_MULT).wrapping_add(self.inc);
        let xorshifted = (((old >> 18) ^ old) >> 27) as u32;
        let rot = (old >> 59) as u32;
        xorshifted.rotate_right(rot)
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let hi = self.next_u32() as u64;
        let lo = self.next_u32() as u64;
        (hi << 32) | lo
    }

    /// A uniform `u64` in `range` (widening-multiply method).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn gen_range_u64(&mut self, range: std::ops::Range<u64>) -> u64 {
        let span = range
            .end
            .checked_sub(range.start)
            .expect("range start <= end");
        assert!(span > 0, "empty range");
        range.start + ((self.next_u64() as u128 * span as u128) >> 64) as u64
    }

    /// A uniform `u32` in `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn gen_range_u32(&mut self, range: std::ops::Range<u32>) -> u32 {
        self.gen_range_u64(range.start as u64..range.end as u64) as u32
    }

    /// A uniform `usize` in `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn gen_range_usize(&mut self, range: std::ops::Range<usize>) -> usize {
        self.gen_range_u64(range.start as u64..range.end as u64) as usize
    }

    /// A uniform `f64` in `[0, 1)`.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} out of [0,1]");
        self.gen_f64() < p
    }

    /// Fisher-Yates shuffles `slice` in place.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.gen_range_usize(0..i + 1);
            slice.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = Pcg32::seed_from_u64(7);
        let mut b = Pcg32::seed_from_u64(7);
        let mut c = Pcg32::seed_from_u64(8);
        let xs: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..32).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Pcg32::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.gen_range_u64(5..17);
            assert!((5..17).contains(&x));
        }
        // Every value of a small range is eventually hit.
        let mut seen = [false; 12];
        let mut rng = Pcg32::seed_from_u64(2);
        for _ in 0..10_000 {
            seen[rng.gen_range_usize(0..12)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = Pcg32::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.3).abs() < 0.01, "frac {frac}");
        let mut rng = Pcg32::seed_from_u64(4);
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn output_is_roughly_uniform() {
        let mut rng = Pcg32::seed_from_u64(5);
        let mut buckets = [0u32; 16];
        for _ in 0..160_000 {
            buckets[(rng.next_u32() >> 28) as usize] += 1;
        }
        for &b in &buckets {
            assert!((9_000..11_000).contains(&b), "bucket {b}");
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Pcg32::seed_from_u64(6);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(
            v,
            (0..100).collect::<Vec<_>>(),
            "shuffle left input in order"
        );
    }
}
