//! Deterministic fault injection for the simulated system.
//!
//! The paper's design is defined by how it behaves under pressure: queue 2
//! drops observations on overflow, queue 3 prefetches are squashed by
//! matching demand requests, and the Filter suppresses redundant traffic.
//! This module generates *adverse* conditions on demand so those paths can
//! be exercised deliberately instead of waiting for a workload to produce
//! them.
//!
//! A [`FaultPlan`] is seeded with a [`Pcg32`] stream and consulted at a
//! fixed set of hook points inside the system simulator (observation
//! arrival, memory-processor dispatch, DRAM channel dispatch). Because the
//! simulator itself is deterministic, the sequence of hook calls — and
//! therefore the sequence of injected faults — is a pure function of the
//! seed and the workload: two runs with the same seed inject *exactly* the
//! same faults at the same points.
//!
//! Faults never bypass the simulator's normal mechanisms. A dropped
//! observation goes through the same accounting as a queue-2 overflow; a
//! duplicated observation competes for queue-2 space like any other; a
//! delayed observation re-enters the normal delivery path later; stalls
//! and DRAM busy spikes only add latency that downstream components
//! already tolerate. Graceful degradation, not special cases.
//!
//! # Example
//!
//! ```
//! use ulmt_simcore::fault::{FaultConfig, FaultPlan, ObservationFault};
//!
//! let mut a = FaultPlan::new(FaultConfig::stress(42));
//! let mut b = FaultPlan::new(FaultConfig::stress(42));
//! for _ in 0..100 {
//!     assert_eq!(a.on_observation(), b.on_observation()); // same seed, same faults
//! }
//! assert_eq!(a.counts(), b.counts());
//! ```

use crate::rng::Pcg32;
use crate::Cycle;

/// What happens to one observation entering queue 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObservationFault {
    /// The observation is lost (routed through the queue-2 drop path).
    Drop,
    /// The observation is delivered twice (duplicate traffic; the second
    /// copy competes for queue-2 space like any other).
    Duplicate,
    /// The observation is delivered after the given extra delay.
    Delay(Cycle),
}

/// Fault-injection parameters: per-hook probabilities and magnitudes.
///
/// All probabilities are in `[0, 1]`; a disabled fault has probability 0.
/// The default configuration injects nothing — use the builder methods or
/// [`FaultConfig::stress`] to enable faults.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Seed of the fault stream.
    pub seed: u64,
    /// Probability an observation is dropped.
    pub drop_observation: f64,
    /// Probability an observation is duplicated.
    pub duplicate_observation: f64,
    /// Probability an observation is delayed.
    pub delay_observation: f64,
    /// Maximum extra delay for a delayed observation, in cycles.
    pub max_observation_delay: Cycle,
    /// Probability the memory processor stalls before taking an
    /// observation.
    pub memproc_stall: f64,
    /// Maximum memory-processor stall, in cycles.
    pub max_memproc_stall: Cycle,
    /// Probability a DRAM transaction hits a transient bank-busy spike.
    pub dram_busy: f64,
    /// Maximum extra bank-busy latency, in cycles.
    pub max_dram_busy: Cycle,
    /// After this many observation hooks, queue depths are halved once
    /// (clamped to 1) — a forced mid-run capacity loss.
    pub queue_reduction_after: Option<u64>,
    /// Test-only poison pill: `panic!` at this observation hook. Used by
    /// the harness-resilience tests to prove that a panicking job cannot
    /// take down a sweep. Never set this outside tests.
    pub panic_after_observations: Option<u64>,
}

impl FaultConfig {
    /// A configuration that injects nothing (all probabilities zero).
    pub fn disabled(seed: u64) -> Self {
        FaultConfig {
            seed,
            drop_observation: 0.0,
            duplicate_observation: 0.0,
            delay_observation: 0.0,
            max_observation_delay: 200,
            memproc_stall: 0.0,
            max_memproc_stall: 400,
            dram_busy: 0.0,
            max_dram_busy: 100,
            queue_reduction_after: None,
            panic_after_observations: None,
        }
    }

    /// A moderately adversarial preset: every fault class enabled at
    /// rates high enough to exercise each path on small workloads while
    /// keeping the slowdown bounded.
    pub fn stress(seed: u64) -> Self {
        FaultConfig {
            drop_observation: 0.05,
            duplicate_observation: 0.05,
            delay_observation: 0.10,
            memproc_stall: 0.05,
            dram_busy: 0.10,
            queue_reduction_after: Some(200),
            ..Self::disabled(seed)
        }
    }

    /// Reads `ULMT_FAULT_SEED` from the environment: when set to an
    /// integer, returns [`FaultConfig::stress`] with that seed; `None`
    /// when unset or unparseable.
    pub fn from_env() -> Option<Self> {
        let raw = std::env::var("ULMT_FAULT_SEED").ok()?;
        raw.trim().parse::<u64>().ok().map(Self::stress)
    }

    /// Clamps every probability into `[0, 1]` so arbitrary (e.g.
    /// randomized-test) parameters can never panic the plan.
    fn sanitized(mut self) -> Self {
        let clamp = |p: f64| {
            if p.is_finite() {
                p.clamp(0.0, 1.0)
            } else {
                0.0
            }
        };
        self.drop_observation = clamp(self.drop_observation);
        self.duplicate_observation = clamp(self.duplicate_observation);
        self.delay_observation = clamp(self.delay_observation);
        self.memproc_stall = clamp(self.memproc_stall);
        self.dram_busy = clamp(self.dram_busy);
        self
    }
}

/// How many faults of each class a [`FaultPlan`] injected.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct FaultCounts {
    /// Observations dropped.
    pub dropped_observations: u64,
    /// Observations duplicated.
    pub duplicated_observations: u64,
    /// Observations delayed.
    pub delayed_observations: u64,
    /// Total extra delay injected into observations, in cycles.
    pub observation_delay_cycles: u64,
    /// Memory-processor stalls injected.
    pub memproc_stalls: u64,
    /// Total memory-processor stall cycles injected.
    pub memproc_stall_cycles: u64,
    /// Transient DRAM bank-busy spikes injected.
    pub dram_busy_events: u64,
    /// Total extra DRAM latency injected, in cycles.
    pub dram_busy_cycles: u64,
    /// Forced queue-depth reductions applied (0 or 1).
    pub queue_reductions: u64,
}

impl FaultCounts {
    /// Total number of discrete fault events injected.
    pub fn total(&self) -> u64 {
        self.dropped_observations
            + self.duplicated_observations
            + self.delayed_observations
            + self.memproc_stalls
            + self.dram_busy_events
            + self.queue_reductions
    }
}

/// A deterministic stream of fault decisions.
///
/// Hook methods are called by the simulator at fixed points; each draws
/// from the seeded [`Pcg32`] stream, so with the simulator's own
/// determinism the whole fault schedule is reproducible from the seed.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    cfg: FaultConfig,
    rng: Pcg32,
    observation_hooks: u64,
    reduction_pending: bool,
    counts: FaultCounts,
}

impl FaultPlan {
    /// Creates a plan from `cfg` (probabilities are clamped into `[0,1]`).
    pub fn new(cfg: FaultConfig) -> Self {
        let cfg = cfg.sanitized();
        FaultPlan {
            rng: Pcg32::seed_from_u64(cfg.seed),
            observation_hooks: 0,
            reduction_pending: cfg.queue_reduction_after.is_some(),
            counts: FaultCounts::default(),
            cfg,
        }
    }

    /// The configuration the plan was built from (after sanitization).
    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }

    /// Injected-fault counters so far.
    pub fn counts(&self) -> FaultCounts {
        self.counts
    }

    /// Observation hook: decides the fate of one queue-2 observation.
    ///
    /// # Panics
    ///
    /// Panics deliberately when the test-only
    /// [`FaultConfig::panic_after_observations`] pill fires.
    pub fn on_observation(&mut self) -> Option<ObservationFault> {
        self.observation_hooks += 1;
        if let Some(n) = self.cfg.panic_after_observations {
            if self.observation_hooks > n {
                panic!(
                    "fault-injection poison pill: observation {} exceeded limit {n}",
                    self.observation_hooks
                );
            }
        }
        // One draw decides the class via cumulative probability, so the
        // three observation faults are mutually exclusive per observation.
        let roll = self.rng.gen_f64();
        let drop_p = self.cfg.drop_observation;
        let dup_p = drop_p + self.cfg.duplicate_observation;
        let delay_p = dup_p + self.cfg.delay_observation;
        if roll < drop_p {
            self.counts.dropped_observations += 1;
            Some(ObservationFault::Drop)
        } else if roll < dup_p {
            self.counts.duplicated_observations += 1;
            Some(ObservationFault::Duplicate)
        } else if roll < delay_p {
            let max = self.cfg.max_observation_delay.max(1);
            let d = self.rng.gen_range_u64(1..max + 1);
            self.counts.delayed_observations += 1;
            self.counts.observation_delay_cycles += d;
            Some(ObservationFault::Delay(d))
        } else {
            None
        }
    }

    /// Memory-processor hook: extra cycles the processor stalls before
    /// taking the next observation (0 = no fault).
    pub fn memproc_stall(&mut self) -> Cycle {
        if self.cfg.memproc_stall > 0.0 && self.rng.gen_bool(self.cfg.memproc_stall) {
            let max = self.cfg.max_memproc_stall.max(1);
            let s = self.rng.gen_range_u64(1..max + 1);
            self.counts.memproc_stalls += 1;
            self.counts.memproc_stall_cycles += s;
            s
        } else {
            0
        }
    }

    /// DRAM dispatch hook: extra transient bank-busy latency for one
    /// transaction (0 = no fault).
    pub fn dram_busy(&mut self) -> Cycle {
        if self.cfg.dram_busy > 0.0 && self.rng.gen_bool(self.cfg.dram_busy) {
            let max = self.cfg.max_dram_busy.max(1);
            let b = self.rng.gen_range_u64(1..max + 1);
            self.counts.dram_busy_events += 1;
            self.counts.dram_busy_cycles += b;
            b
        } else {
            0
        }
    }

    /// Returns `true` exactly once, when the configured number of
    /// observation hooks has passed: the simulator then halves its queue
    /// depths (clamped to 1).
    pub fn take_queue_reduction(&mut self) -> bool {
        match self.cfg.queue_reduction_after {
            Some(after) if self.reduction_pending && self.observation_hooks >= after => {
                self.reduction_pending = false;
                self.counts.queue_reductions += 1;
                true
            }
            _ => false,
        }
    }
}

/// A fault injected into the *service* layer (shard workers of the
/// online prefetch service), as opposed to the per-observation faults of
/// [`FaultPlan`]. Evaluated once per accepted batch, before the batch is
/// processed or acknowledged — a killed or wedged shard therefore never
/// acks the triggering batch, which is what lets clients treat a lost
/// reply as "safe to resubmit".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServiceFault {
    /// The shard worker dies by panic (caught by the supervisor).
    KillShard,
    /// The shard worker wedges: it stops consuming its queue and stops
    /// heartbeating, but does not die, until the supervisor fences it.
    WedgeShard,
    /// The shard consumes this batch slowly: the given extra virtual
    /// cycles are added to its clock before processing.
    SlowConsumer(Cycle),
}

/// Parameters of the service-level chaos schedule.
///
/// Kill and wedge are **one-shot, targeted** faults ("kill shard S at its
/// N-th accepted batch") so chaos tests can place a crash at an exact,
/// seeded point in the stream; their once-only budget lives in the shared
/// [`ServiceFaultState`] so a restarted worker cannot re-fire the same
/// fault and crash-loop. Slow-consumer is probabilistic per batch, drawn
/// from a [`Pcg32`] stream seeded by `(seed, shard, epoch)` — fully
/// deterministic for a deterministic restart sequence.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServiceFaultConfig {
    /// Seed of the per-shard fault streams.
    pub seed: u64,
    /// Kill this shard... (None = never kill).
    pub kill_shard: Option<u32>,
    /// ...when it accepts its batch with this 1-based index.
    pub kill_at_batch: u64,
    /// Wedge this shard... (None = never wedge).
    pub wedge_shard: Option<u32>,
    /// ...when it accepts its batch with this 1-based index.
    pub wedge_at_batch: u64,
    /// Per-batch probability of a slow-consumer stall, in `[0, 1]`.
    pub slow_consumer: f64,
    /// Maximum slow-consumer stall, in virtual cycles.
    pub max_slow_cycles: Cycle,
    /// Hot-tenant burst: this tenant's batches periodically turn
    /// expensive (None = no bursts). Deterministic — no RNG draw — so a
    /// starvation bench can reproduce the exact same hot-tenant pressure
    /// under every scheduling policy it compares.
    pub burst_tenant: Option<u32>,
    /// A burst starts every `burst_every`-th batch of the hot tenant
    /// (1-based count of that tenant's batches on its shard).
    pub burst_every: u64,
    /// Number of consecutive hot-tenant batches each burst covers.
    pub burst_len: u64,
    /// Extra virtual cycles each burst-covered batch costs the shard.
    pub burst_cycles: Cycle,
}

impl ServiceFaultConfig {
    /// A schedule that injects nothing.
    pub fn disabled(seed: u64) -> Self {
        ServiceFaultConfig {
            seed,
            kill_shard: None,
            kill_at_batch: 1,
            wedge_shard: None,
            wedge_at_batch: 1,
            slow_consumer: 0.0,
            max_slow_cycles: 64,
            burst_tenant: None,
            burst_every: 8,
            burst_len: 4,
            burst_cycles: 0,
        }
    }

    /// Kill `shard` at its `batch`-th accepted batch (1-based).
    pub fn kill(mut self, shard: u32, batch: u64) -> Self {
        self.kill_shard = Some(shard);
        self.kill_at_batch = batch.max(1);
        self
    }

    /// Wedge `shard` at its `batch`-th accepted batch (1-based).
    pub fn wedge(mut self, shard: u32, batch: u64) -> Self {
        self.wedge_shard = Some(shard);
        self.wedge_at_batch = batch.max(1);
        self
    }

    /// Enable probabilistic slow-consumer stalls.
    pub fn slow(mut self, probability: f64, max_cycles: Cycle) -> Self {
        self.slow_consumer = probability;
        self.max_slow_cycles = max_cycles.max(1);
        self
    }

    /// Make `tenant` a hot tenant: every `every`-th of its batches opens
    /// a burst of `len` consecutive batches, each costing `cycles` extra
    /// virtual cycles on its shard.
    pub fn burst(mut self, tenant: u32, every: u64, len: u64, cycles: Cycle) -> Self {
        self.burst_tenant = Some(tenant);
        self.burst_every = every.max(1);
        self.burst_len = len.max(1);
        self.burst_cycles = cycles;
        self
    }

    fn sanitized(mut self) -> Self {
        self.slow_consumer = if self.slow_consumer.is_finite() {
            self.slow_consumer.clamp(0.0, 1.0)
        } else {
            0.0
        };
        self
    }
}

/// Shared once-only budgets of the targeted service faults. One instance
/// lives per shard *slot* (not per worker epoch), so it survives restarts:
/// a kill that already fired stays fired for every later epoch.
#[derive(Debug, Default)]
pub struct ServiceFaultState {
    kills: std::sync::atomic::AtomicU64,
    wedges: std::sync::atomic::AtomicU64,
}

impl ServiceFaultState {
    /// Fresh budgets: nothing has fired yet.
    pub fn new() -> Self {
        Self::default()
    }

    /// Kills fired so far (0 or 1).
    pub fn kills_fired(&self) -> u64 {
        self.kills.load(std::sync::atomic::Ordering::SeqCst)
    }

    /// Wedges fired so far (0 or 1).
    pub fn wedges_fired(&self) -> u64 {
        self.wedges.load(std::sync::atomic::Ordering::SeqCst)
    }

    fn try_fire(counter: &std::sync::atomic::AtomicU64) -> bool {
        counter
            .compare_exchange(
                0,
                1,
                std::sync::atomic::Ordering::SeqCst,
                std::sync::atomic::Ordering::SeqCst,
            )
            .is_ok()
    }
}

/// How many service-level faults one worker epoch injected.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceFaultCounts {
    /// Kill faults fired by this plan.
    pub kills: u64,
    /// Wedge faults fired by this plan.
    pub wedges: u64,
    /// Slow-consumer stalls injected.
    pub slow_batches: u64,
    /// Total slow-consumer cycles injected.
    pub slow_cycles: u64,
    /// Hot-tenant batches covered by a burst.
    pub burst_batches: u64,
    /// Total burst cycles injected.
    pub burst_cycles: u64,
}

/// The per-worker-epoch view of a [`ServiceFaultConfig`] schedule.
///
/// `on_batch` takes the shard's **absolute** accepted-batch sequence
/// number (which the supervisor restores across crashes), so the targeted
/// faults key on a stable stream position rather than a per-epoch count.
#[derive(Debug)]
pub struct ServiceFaultPlan {
    cfg: ServiceFaultConfig,
    shard: u32,
    rng: Pcg32,
    counts: ServiceFaultCounts,
    /// Batches of the hot tenant seen by this plan (per worker epoch;
    /// the burst pattern is periodic, so an epoch boundary only shifts
    /// its phase, never its duty cycle).
    burst_seen: u64,
}

impl ServiceFaultPlan {
    /// A plan for one worker epoch of one shard.
    pub fn new(cfg: ServiceFaultConfig, shard: u32, epoch: u64) -> Self {
        let cfg = cfg.sanitized();
        let stream_seed = cfg
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add((shard as u64) << 32 | epoch);
        ServiceFaultPlan {
            cfg,
            shard,
            rng: Pcg32::seed_from_u64(stream_seed),
            counts: ServiceFaultCounts::default(),
            burst_seen: 0,
        }
    }

    /// Injected-fault counters for this plan (this worker epoch only).
    pub fn counts(&self) -> ServiceFaultCounts {
        self.counts
    }

    /// Decides the fate of the batch with absolute sequence number `seq`
    /// (1-based; the next batch this shard would accept). Targeted faults
    /// consult the shared `state` budget so they fire at most once per
    /// shard across all epochs.
    pub fn on_batch(&mut self, seq: u64, state: &ServiceFaultState) -> Option<ServiceFault> {
        if self.cfg.kill_shard == Some(self.shard)
            && seq >= self.cfg.kill_at_batch
            && ServiceFaultState::try_fire(&state.kills)
        {
            self.counts.kills += 1;
            return Some(ServiceFault::KillShard);
        }
        if self.cfg.wedge_shard == Some(self.shard)
            && seq >= self.cfg.wedge_at_batch
            && ServiceFaultState::try_fire(&state.wedges)
        {
            self.counts.wedges += 1;
            return Some(ServiceFault::WedgeShard);
        }
        if self.cfg.slow_consumer > 0.0 && self.rng.gen_bool(self.cfg.slow_consumer) {
            let max = self.cfg.max_slow_cycles.max(1);
            let c = self.rng.gen_range_u64(1..max + 1);
            self.counts.slow_batches += 1;
            self.counts.slow_cycles += c;
            return Some(ServiceFault::SlowConsumer(c));
        }
        None
    }

    /// Hot-tenant burst hook: extra cycles one batch of `tenant` costs
    /// (0 for every tenant but the configured hot one). Deterministic: of
    /// every [`burst_every`](ServiceFaultConfig::burst_every) consecutive
    /// hot-tenant batches, the first [`burst_len`](ServiceFaultConfig::burst_len)
    /// cost [`burst_cycles`](ServiceFaultConfig::burst_cycles) extra.
    pub fn burst_stall(&mut self, tenant: u32) -> Cycle {
        if self.cfg.burst_tenant != Some(tenant) || self.cfg.burst_cycles == 0 {
            return 0;
        }
        let pos = self.burst_seen % self.cfg.burst_every;
        self.burst_seen += 1;
        if pos < self.cfg.burst_len {
            self.counts.burst_batches += 1;
            self.counts.burst_cycles += self.cfg.burst_cycles;
            self.cfg.burst_cycles
        } else {
            0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_schedule() {
        let mut a = FaultPlan::new(FaultConfig::stress(7));
        let mut b = FaultPlan::new(FaultConfig::stress(7));
        for _ in 0..500 {
            assert_eq!(a.on_observation(), b.on_observation());
            assert_eq!(a.memproc_stall(), b.memproc_stall());
            assert_eq!(a.dram_busy(), b.dram_busy());
            assert_eq!(a.take_queue_reduction(), b.take_queue_reduction());
        }
        assert_eq!(a.counts(), b.counts());
        assert!(a.counts().total() > 0, "stress preset injected nothing");
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = FaultPlan::new(FaultConfig::stress(1));
        let mut b = FaultPlan::new(FaultConfig::stress(2));
        let fa: Vec<_> = (0..200).map(|_| a.on_observation()).collect();
        let fb: Vec<_> = (0..200).map(|_| b.on_observation()).collect();
        assert_ne!(fa, fb);
    }

    #[test]
    fn disabled_plan_injects_nothing() {
        let mut p = FaultPlan::new(FaultConfig::disabled(9));
        for _ in 0..1000 {
            assert_eq!(p.on_observation(), None);
            assert_eq!(p.memproc_stall(), 0);
            assert_eq!(p.dram_busy(), 0);
            assert!(!p.take_queue_reduction());
        }
        assert_eq!(p.counts().total(), 0);
    }

    #[test]
    fn queue_reduction_fires_exactly_once() {
        let cfg = FaultConfig {
            queue_reduction_after: Some(3),
            ..FaultConfig::disabled(0)
        };
        let mut p = FaultPlan::new(cfg);
        let mut fired = 0;
        for _ in 0..10 {
            p.on_observation();
            if p.take_queue_reduction() {
                fired += 1;
            }
        }
        assert_eq!(fired, 1);
        assert_eq!(p.counts().queue_reductions, 1);
    }

    #[test]
    fn pathological_probabilities_are_sanitized() {
        let cfg = FaultConfig {
            drop_observation: 17.0,
            duplicate_observation: -3.0,
            delay_observation: f64::NAN,
            memproc_stall: f64::INFINITY,
            max_observation_delay: 0,
            max_memproc_stall: 0,
            max_dram_busy: 0,
            ..FaultConfig::disabled(3)
        };
        let mut p = FaultPlan::new(cfg);
        // Never panics, and drop probability saturated at 1.
        for _ in 0..100 {
            assert_eq!(p.on_observation(), Some(ObservationFault::Drop));
            let _ = p.memproc_stall();
            let _ = p.dram_busy();
        }
    }

    #[test]
    fn delay_magnitudes_respect_bounds() {
        let cfg = FaultConfig {
            delay_observation: 1.0,
            max_observation_delay: 8,
            ..FaultConfig::disabled(11)
        };
        let mut p = FaultPlan::new(cfg);
        for _ in 0..200 {
            match p.on_observation() {
                Some(ObservationFault::Delay(d)) => assert!((1..=8).contains(&d)),
                other => panic!("expected delay, got {other:?}"),
            }
        }
    }

    #[test]
    fn targeted_kill_fires_once_across_epochs() {
        let cfg = ServiceFaultConfig::disabled(3).kill(1, 5);
        let state = ServiceFaultState::new();
        // Epoch 0 reaches batch 5 and dies.
        let mut plan = ServiceFaultPlan::new(cfg, 1, 0);
        for seq in 1..=4 {
            assert_eq!(plan.on_batch(seq, &state), None);
        }
        assert_eq!(plan.on_batch(5, &state), Some(ServiceFault::KillShard));
        assert_eq!(plan.counts().kills, 1);
        // Epoch 1 resumes at the same stream position: the budget is
        // spent, so the resubmitted batch does not crash-loop the shard.
        let mut plan = ServiceFaultPlan::new(cfg, 1, 1);
        for seq in 5..=20 {
            assert_eq!(plan.on_batch(seq, &state), None);
        }
        assert_eq!(state.kills_fired(), 1);
        // Other shards never fire it.
        let mut other = ServiceFaultPlan::new(cfg, 0, 0);
        assert_eq!(other.on_batch(5, &ServiceFaultState::new()), None);
    }

    #[test]
    fn wedge_and_kill_are_independent_budgets() {
        let cfg = ServiceFaultConfig::disabled(3).kill(0, 2).wedge(0, 4);
        let state = ServiceFaultState::new();
        let mut plan = ServiceFaultPlan::new(cfg, 0, 0);
        assert_eq!(plan.on_batch(1, &state), None);
        assert_eq!(plan.on_batch(2, &state), Some(ServiceFault::KillShard));
        let mut plan = ServiceFaultPlan::new(cfg, 0, 1);
        assert_eq!(plan.on_batch(3, &state), None);
        assert_eq!(plan.on_batch(4, &state), Some(ServiceFault::WedgeShard));
        assert_eq!((state.kills_fired(), state.wedges_fired()), (1, 1));
    }

    #[test]
    fn slow_consumer_is_seed_deterministic_and_bounded() {
        let cfg = ServiceFaultConfig::disabled(11).slow(0.5, 16);
        let state = ServiceFaultState::new();
        let mut a = ServiceFaultPlan::new(cfg, 2, 0);
        let mut b = ServiceFaultPlan::new(cfg, 2, 0);
        let mut stalls = 0u64;
        for seq in 1..=400 {
            let fa = a.on_batch(seq, &state);
            assert_eq!(fa, b.on_batch(seq, &state));
            if let Some(ServiceFault::SlowConsumer(c)) = fa {
                assert!((1..=16).contains(&c));
                stalls += 1;
            }
        }
        assert!(stalls > 0, "p=0.5 over 400 batches must stall sometimes");
        assert_eq!(a.counts(), b.counts());
        // A different epoch draws a different (still deterministic) stream.
        let mut c = ServiceFaultPlan::new(cfg, 2, 1);
        let diverged = (1..=400).any(|seq| c.on_batch(seq, &state) != b.on_batch(seq, &state));
        assert!(diverged, "epochs should not replay the same slow stream");
    }

    #[test]
    fn burst_hits_only_the_hot_tenant_on_a_fixed_period() {
        let cfg = ServiceFaultConfig::disabled(0).burst(7, 4, 2, 100);
        let mut plan = ServiceFaultPlan::new(cfg, 0, 0);
        // Other tenants never stall and never advance the hot counter.
        for _ in 0..10 {
            assert_eq!(plan.burst_stall(3), 0);
        }
        // Hot tenant: of every 4 batches, the first 2 are expensive.
        let stalls: Vec<Cycle> = (0..8).map(|_| plan.burst_stall(7)).collect();
        assert_eq!(stalls, vec![100, 100, 0, 0, 100, 100, 0, 0]);
        assert_eq!(plan.counts().burst_batches, 4);
        assert_eq!(plan.counts().burst_cycles, 400);
    }

    #[test]
    fn burst_disabled_is_free_for_everyone() {
        let cfg = ServiceFaultConfig::disabled(0);
        let mut plan = ServiceFaultPlan::new(cfg, 0, 0);
        for t in 0..4 {
            assert_eq!(plan.burst_stall(t), 0);
        }
        assert_eq!(plan.counts().burst_batches, 0);
    }

    #[test]
    fn pathological_service_probabilities_are_sanitized() {
        let cfg = ServiceFaultConfig::disabled(0).slow(f64::NAN, 0);
        let mut plan = ServiceFaultPlan::new(cfg, 0, 0);
        let state = ServiceFaultState::new();
        for seq in 1..=100 {
            assert_eq!(plan.on_batch(seq, &state), None);
        }
    }

    #[test]
    #[should_panic(expected = "poison pill")]
    fn poison_pill_panics_on_schedule() {
        let cfg = FaultConfig {
            panic_after_observations: Some(2),
            ..FaultConfig::disabled(0)
        };
        let mut p = FaultPlan::new(cfg);
        for _ in 0..5 {
            p.on_observation();
        }
    }
}
