//! Fast non-cryptographic hashing for simulator-internal maps.
//!
//! The full-system simulator keys several hot hash maps by line addresses
//! and small integer ids. `std`'s default SipHash is DoS-resistant but
//! costly for these 8-byte keys; [`FxHasher`] (the multiply-xor scheme
//! used by rustc) hashes a `u64` in a handful of instructions. Simulator
//! inputs are synthetic, so hash-flooding resistance buys nothing here.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiply-xor hasher (the `rustc-hash` algorithm, 64-bit variant).
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

const FX_SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(FX_SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `BuildHasher` producing [`FxHasher`]s.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

/// An empty [`FxHashMap`] pre-sized for `cap` entries.
pub fn fx_map_with_capacity<K, V>(cap: usize) -> FxHashMap<K, V> {
    FxHashMap::with_capacity_and_hasher(cap, FxBuildHasher::default())
}

/// An empty [`FxHashSet`] pre-sized for `cap` entries.
pub fn fx_set_with_capacity<T>(cap: usize) -> FxHashSet<T> {
    FxHashSet::with_capacity_and_hasher(cap, FxBuildHasher::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::BuildHasher;

    fn hash_of(x: u64) -> u64 {
        FxBuildHasher::default().hash_one(x)
    }

    #[test]
    fn u64_hashing_is_deterministic_and_spreads() {
        assert_eq!(hash_of(1234), hash_of(1234));
        assert_ne!(hash_of(0), hash_of(1));
        // Consecutive keys (the common line-address pattern) should not
        // collide in the low bits used by the table index.
        let mut low_bits = std::collections::HashSet::new();
        for i in 0..256u64 {
            low_bits.insert(hash_of(i) & 0xff);
        }
        assert!(
            low_bits.len() > 128,
            "only {} distinct low bytes",
            low_bits.len()
        );
    }

    #[test]
    fn byte_stream_matches_incremental_words() {
        // write() must consume trailing partial words too.
        let mut h = FxHasher::default();
        h.write(&[1, 2, 3]);
        let partial = h.finish();
        let mut h2 = FxHasher::default();
        h2.write(&[1, 2, 3, 0, 0]);
        assert_ne!(partial, FxHasher::default().finish());
        let _ = h2.finish(); // different-length streams may collide or not; just exercise it
    }

    #[test]
    fn map_and_set_roundtrip() {
        let mut m: FxHashMap<u64, u32> = fx_map_with_capacity(64);
        assert!(m.capacity() >= 64);
        for i in 0..1000u64 {
            m.insert(i, (i * 2) as u32);
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m.get(&500), Some(&1000));
        let mut s: FxHashSet<u64> = fx_set_with_capacity(16);
        for i in 0..100 {
            s.insert(i % 10);
        }
        assert_eq!(s.len(), 10);
    }
}
