//! First-come-first-served resource occupancy model.
//!
//! Buses, DRAM channels and the memory processor serve one request at a
//! time. [`Server`] models such a resource: a request arriving at time `t`
//! with service time `d` starts at `max(t, next_free)` and completes `d`
//! cycles later. The server also tracks total busy time, from which the
//! utilization figures of the paper (Figure 11) are derived.

use crate::Cycle;

/// The complete state of a [`Server`], as captured by [`Server::state`].
/// Plain `Copy` data so checkpoints can embed it directly.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerState {
    /// Earliest cycle a new request could start service.
    pub next_free: Cycle,
    /// Total cycles spent servicing requests.
    pub busy_cycles: Cycle,
    /// Number of requests served.
    pub requests: u64,
}

/// A single-ported FCFS resource with busy-time accounting.
///
/// # Example
///
/// ```
/// use ulmt_simcore::Server;
///
/// let mut bus = Server::new();
/// assert_eq!(bus.serve(100, 10), 110); // idle: starts immediately
/// assert_eq!(bus.serve(105, 10), 120); // queued behind the first request
/// assert_eq!(bus.busy_cycles(), 20);
/// assert!((bus.utilization(120) - 20.0 / 120.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Server {
    next_free: Cycle,
    busy: Cycle,
    requests: u64,
}

impl Server {
    /// Creates an idle server.
    pub fn new() -> Self {
        Server::default()
    }

    /// Serves a request arriving at `now` that occupies the resource for
    /// `duration` cycles. Returns the completion time.
    pub fn serve(&mut self, now: Cycle, duration: Cycle) -> Cycle {
        let start = self.next_free.max(now);
        self.next_free = start + duration;
        self.busy += duration;
        self.requests += 1;
        self.next_free
    }

    /// Like [`Server::serve`] but also returns the start time, which callers
    /// use to account queuing delay separately from service time.
    pub fn serve_with_start(&mut self, now: Cycle, duration: Cycle) -> (Cycle, Cycle) {
        let start = self.next_free.max(now);
        self.next_free = start + duration;
        self.busy += duration;
        self.requests += 1;
        (start, self.next_free)
    }

    /// Earliest time a new request could start service.
    pub fn next_free(&self) -> Cycle {
        self.next_free
    }

    /// Captures the server's complete state, so a supervisor can
    /// checkpoint a virtual-time resource and later resume it with
    /// [`Server::from_state`] as if service had never been interrupted.
    pub fn state(&self) -> ServerState {
        ServerState {
            next_free: self.next_free,
            busy_cycles: self.busy,
            requests: self.requests,
        }
    }

    /// Rebuilds a server from a captured [`ServerState`]. The restored
    /// server continues bit-identically: same `next_free`, same busy
    /// accounting, same request count.
    pub fn from_state(state: ServerState) -> Self {
        Server {
            next_free: state.next_free,
            busy: state.busy_cycles,
            requests: state.requests,
        }
    }

    /// Returns `true` if the server would be idle at `now`.
    pub fn is_idle_at(&self, now: Cycle) -> bool {
        self.next_free <= now
    }

    /// Total cycles spent servicing requests.
    pub fn busy_cycles(&self) -> Cycle {
        self.busy
    }

    /// Number of requests served.
    pub fn requests(&self) -> u64 {
        self.requests
    }

    /// Fraction of `elapsed` cycles this server was busy. Returns 0 for an
    /// empty interval.
    pub fn utilization(&self, elapsed: Cycle) -> f64 {
        if elapsed == 0 {
            0.0
        } else {
            self.busy as f64 / elapsed as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_server_starts_immediately() {
        let mut s = Server::new();
        let (start, end) = s.serve_with_start(50, 7);
        assert_eq!((start, end), (50, 57));
    }

    #[test]
    fn busy_server_queues() {
        let mut s = Server::new();
        s.serve(0, 100);
        let (start, end) = s.serve_with_start(10, 5);
        assert_eq!((start, end), (100, 105));
        assert_eq!(s.busy_cycles(), 105);
        assert_eq!(s.requests(), 2);
    }

    #[test]
    fn late_arrival_after_idle_gap() {
        let mut s = Server::new();
        s.serve(0, 10);
        // Arrives long after the server drained; no queuing.
        let (start, _) = s.serve_with_start(1000, 10);
        assert_eq!(start, 1000);
        assert_eq!(s.busy_cycles(), 20);
    }

    #[test]
    fn utilization_empty_interval() {
        let s = Server::new();
        assert_eq!(s.utilization(0), 0.0);
    }

    #[test]
    fn idle_check() {
        let mut s = Server::new();
        assert!(s.is_idle_at(0));
        s.serve(0, 10);
        assert!(!s.is_idle_at(5));
        assert!(s.is_idle_at(10));
    }

    #[test]
    fn state_round_trip_continues_bit_identically() {
        let mut a = Server::new();
        a.serve(0, 10);
        a.serve(5, 7);
        let mut b = Server::from_state(a.state());
        assert_eq!(b.state(), a.state());
        // Both servers evolve identically from the shared state.
        assert_eq!(a.serve(30, 4), b.serve(30, 4));
        assert_eq!(a.state(), b.state());
    }
}
