//! Physical address newtypes.
//!
//! The simulator distinguishes three granularities of address:
//!
//! * [`Addr`] — a byte address, as issued by the main processor.
//! * [`LineAddr`] — a cache-line address (byte address divided by the line
//!   size). The correlation tables of the paper operate exclusively on L2
//!   line addresses (64 B lines in Table 3).
//! * [`PageAddr`] — a page address, used by the page re-mapping support of
//!   Section 3.4 of the paper.
//!
//! Keeping the granularities as distinct types prevents the classic
//! byte-vs-line unit confusion that plagues cache simulators, at zero
//! runtime cost.

use std::fmt;

/// Default page size used by the page re-mapping support (4 KiB).
pub const PAGE_SIZE: u64 = 4096;

/// A physical byte address.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Addr(u64);

impl Addr {
    /// Creates an address from a raw byte value.
    pub const fn new(raw: u64) -> Self {
        Addr(raw)
    }

    /// Returns the raw byte value.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Returns the cache-line address for a given line size.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `line_size` is not a power of two.
    pub fn line(self, line_size: u64) -> LineAddr {
        debug_assert!(
            line_size.is_power_of_two(),
            "line size must be a power of two"
        );
        LineAddr(self.0 / line_size)
    }

    /// Returns the page address of this byte address.
    pub fn page(self) -> PageAddr {
        PageAddr(self.0 / PAGE_SIZE)
    }

    /// Returns the address offset by `bytes`.
    pub fn offset(self, bytes: i64) -> Addr {
        Addr(self.0.wrapping_add(bytes as u64))
    }
}

impl From<u64> for Addr {
    fn from(raw: u64) -> Self {
        Addr(raw)
    }
}

impl fmt::LowerHex for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{:x}", self.0)
    }
}

/// A cache-line address: a byte address divided by the line size.
///
/// The line size is *not* carried in the value; the component that produced
/// the `LineAddr` defines it. Converting back to a byte address requires the
/// same line size (see [`LineAddr::byte_addr`]). The 64-byte variant used by
/// the L2 cache and the correlation tables has a shorthand,
/// [`LineAddr::to_byte_addr`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LineAddr(u64);

impl LineAddr {
    /// Line size of the main processor's L2 cache (Table 3), which is also
    /// the granularity of the correlation tables and all prefetches.
    pub const L2_LINE: u64 = 64;

    /// Creates a line address from a raw line number.
    pub const fn new(raw: u64) -> Self {
        LineAddr(raw)
    }

    /// Returns the raw line number.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Returns the first byte address of the line for a given line size.
    pub fn byte_addr(self, line_size: u64) -> Addr {
        Addr(self.0 * line_size)
    }

    /// Returns the first byte address assuming the L2 line size (64 B).
    pub fn to_byte_addr(self) -> Addr {
        self.byte_addr(Self::L2_LINE)
    }

    /// Returns the page this line belongs to, assuming the L2 line size.
    pub fn page(self) -> PageAddr {
        self.to_byte_addr().page()
    }

    /// Returns the line offset by `delta` lines (may be negative).
    pub fn offset(self, delta: i64) -> LineAddr {
        LineAddr(self.0.wrapping_add(delta as u64))
    }

    /// Returns the distance in lines from `other` to `self`
    /// (`self - other`), as a signed value.
    pub fn delta(self, other: LineAddr) -> i64 {
        self.0.wrapping_sub(other.0) as i64
    }
}

impl From<u64> for LineAddr {
    fn from(raw: u64) -> Self {
        LineAddr(raw)
    }
}

impl fmt::Display for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L0x{:x}", self.0)
    }
}

/// A page address: a byte address divided by [`PAGE_SIZE`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PageAddr(u64);

impl PageAddr {
    /// Creates a page address from a raw page number.
    pub const fn new(raw: u64) -> Self {
        PageAddr(raw)
    }

    /// Returns the raw page number.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Returns the first L2 line of this page.
    pub fn first_line(self) -> LineAddr {
        LineAddr(self.0 * (PAGE_SIZE / LineAddr::L2_LINE))
    }

    /// Number of L2 lines per page.
    pub fn lines_per_page() -> u64 {
        PAGE_SIZE / LineAddr::L2_LINE
    }
}

impl fmt::Display for PageAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P0x{:x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_rounding() {
        let a = Addr::new(0x12345);
        assert_eq!(a.line(64).raw(), 0x12345 / 64);
        assert_eq!(a.line(32).raw(), 0x12345 / 32);
        assert_eq!(a.line(64).to_byte_addr().raw(), (0x12345 / 64) * 64);
    }

    #[test]
    fn line_offsets_and_delta() {
        let l = LineAddr::new(100);
        assert_eq!(l.offset(5).raw(), 105);
        assert_eq!(l.offset(-5).raw(), 95);
        assert_eq!(l.offset(5).delta(l), 5);
        assert_eq!(l.delta(l.offset(5)), -5);
    }

    #[test]
    fn page_of_line() {
        // 64 lines per 4 KiB page.
        assert_eq!(PageAddr::lines_per_page(), 64);
        let l = LineAddr::new(64 * 7 + 3);
        assert_eq!(l.page().raw(), 7);
        assert_eq!(l.page().first_line().raw(), 64 * 7);
    }

    #[test]
    fn display_formats_are_nonempty() {
        assert_eq!(format!("{}", Addr::new(0x40)), "0x40");
        assert_eq!(format!("{}", LineAddr::new(1)), "L0x1");
        assert_eq!(format!("{}", PageAddr::new(2)), "P0x2");
    }

    #[test]
    fn addr_byte_offset() {
        let a = Addr::new(1000);
        assert_eq!(a.offset(24).raw(), 1024);
        assert_eq!(a.offset(-1000).raw(), 0);
    }
}
