//! Cycle-stamped structured event tracing.
//!
//! Every per-event statistic of the evaluation — the Figure 9 prefetch
//! categories, queue pressure, ULMT response/occupancy, bus and DRAM
//! behavior — is an aggregate counter bumped inline somewhere in the
//! system simulator. This module records the *events themselves*, so
//! those aggregates can be independently re-derived and cross-checked
//! (see `ulmt_system::validate`), and so a run can be inspected on a
//! timeline (JSONL, or Chrome `trace_event` JSON for Perfetto).
//!
//! The design is a bounded ring buffer behind a cheap shared handle:
//!
//! * [`TraceEvent`] — a small `Copy` enum, one variant per event class;
//! * [`TraceBuffer`] — the cycle-stamped ring buffer with overwrite
//!   accounting and the machine-readable exporters;
//! * [`TraceSink`] — the sink trait; [`NullSink`] is the zero-cost
//!   disabled implementation;
//! * [`SharedTracer`] — a clonable `Rc<RefCell<TraceBuffer>>` handle the
//!   system simulator distributes to the FSB and memory-processor models
//!   so every component stamps into one ordered stream.
//!
//! Tracing is off by default. Components hold an `Option<SharedTracer>`
//! that is `None` unless installed, so the disabled cost is one branch
//! per hook — nothing is formatted, allocated, or stored.
//!
//! # Example
//!
//! ```
//! use ulmt_simcore::trace::{SharedTracer, TraceConfig, TraceEvent};
//! use ulmt_simcore::LineAddr;
//!
//! let tracer = SharedTracer::new(TraceConfig::with_capacity(128));
//! tracer.record(10, TraceEvent::Q3Enqueue { line: LineAddr::new(7) });
//! tracer.record(12, TraceEvent::Q3Overflow { line: LineAddr::new(8) });
//! let buf = tracer.take();
//! assert_eq!(buf.len(), 2);
//! assert_eq!(buf.count(|e| matches!(e, TraceEvent::Q3Enqueue { .. })), 1);
//! assert!(buf.to_jsonl().contains("\"ev\":\"q3_enqueue\""));
//! ```

use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

use crate::{Addr, Cycle, LineAddr};

/// Why the L2 rejected a pushed line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushRejectReason {
    /// The cache already held the line (`Redundant` in Figure 9).
    Present,
    /// The write-back queue held a newer copy of the line.
    Writeback,
    /// No MSHR was free to stage the fill.
    NoMshr,
    /// Every way of the target set was transaction-pending.
    SetPending,
}

impl PushRejectReason {
    /// Stable lower-case label used in exports.
    pub fn label(self) -> &'static str {
        match self {
            PushRejectReason::Present => "present",
            PushRejectReason::Writeback => "writeback",
            PushRejectReason::NoMshr => "no_mshr",
            PushRejectReason::SetPending => "set_pending",
        }
    }
}

/// Which fault class an injected fault belongs to (mirrors the hooks of
/// [`crate::fault::FaultPlan`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// An observation was dropped before reaching queue 2.
    DropObservation,
    /// An observation was delivered twice.
    DuplicateObservation,
    /// An observation was delivered late.
    DelayObservation,
    /// The memory processor stalled before its next step.
    MemprocStall,
    /// A DRAM transaction hit a transient bank-busy spike.
    DramBusy,
    /// Queue depths were halved mid-run.
    QueueReduction,
}

impl FaultKind {
    /// Stable lower-case label used in exports.
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::DropObservation => "drop_observation",
            FaultKind::DuplicateObservation => "duplicate_observation",
            FaultKind::DelayObservation => "delay_observation",
            FaultKind::MemprocStall => "memproc_stall",
            FaultKind::DramBusy => "dram_busy",
            FaultKind::QueueReduction => "queue_reduction",
        }
    }
}

/// FSB traffic class as seen by the tracer (mirrors `ulmt_dram`'s
/// `TrafficClass` without the crate dependency, which would be circular).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BusClass {
    /// Demand miss requests and replies.
    Demand,
    /// Memory-side prefetch pushes.
    Prefetch,
    /// Dirty-line write-backs.
    WriteBack,
}

impl BusClass {
    /// Stable lower-case label used in exports.
    pub fn label(self) -> &'static str {
        match self {
            BusClass::Demand => "demand",
            BusClass::Prefetch => "prefetch",
            BusClass::WriteBack => "writeback",
        }
    }
}

/// One traced event. All variants are `Copy` and carry only what the
/// cross-validator and timeline views need.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// The CPU picked up one workload reference.
    Ref {
        /// Byte address referenced.
        addr: Addr,
        /// `true` for a store.
        is_write: bool,
    },
    /// A demand access missed the L2 and a memory request was sent.
    L2Miss {
        /// Missing line.
        line: LineAddr,
    },
    /// A demand/processor-prefetch reply filled the L2.
    L2Fill {
        /// Filled line.
        line: LineAddr,
        /// `true` if a demand access was waiting on the fill (a miss that
        /// paid full latency — `NonPrefMisses` in Figure 9).
        demand_waiting: bool,
    },
    /// An observation entered queue 2 (or went straight to the idle ULMT).
    ObsEnqueue {
        /// Observed miss line.
        line: LineAddr,
    },
    /// An observation was dropped: queue-2 overflow, or a drop fault.
    ObsDrop {
        /// Dropped line.
        line: LineAddr,
    },
    /// Queued observations were squashed because a prefetch for the same
    /// line was just issued (Section 3.2 cross-queue squashing).
    ObsSquash {
        /// Squashed line.
        line: LineAddr,
        /// How many queue-2 entries matched and were removed.
        removed: u32,
    },
    /// The ULMT processed one observation.
    UlmtStep {
        /// Observed miss line.
        line: LineAddr,
        /// Response time (cycles until the prefetch addresses were ready).
        response: Cycle,
        /// Occupancy time (cycles until the Learning step finished).
        occupancy: Cycle,
    },
    /// The Filter admitted a prefetch request.
    FilterAdmit {
        /// Admitted line.
        line: LineAddr,
    },
    /// The Filter dropped a recently-issued prefetch request.
    FilterDrop {
        /// Dropped line.
        line: LineAddr,
    },
    /// A prefetch entered queue 3 — from here on it is bus-bound.
    Q3Enqueue {
        /// Enqueued line.
        line: LineAddr,
    },
    /// A prefetch was squashed before queue 3: a demand request for the
    /// line was already queued or in flight.
    Q3SquashDemand {
        /// Squashed line.
        line: LineAddr,
    },
    /// A prefetch was squashed before queue 3: the line was already
    /// queued there.
    Q3SquashDuplicate {
        /// Squashed line.
        line: LineAddr,
    },
    /// A queued prefetch was removed from queue 3 by a matching demand
    /// miss arriving at the North Bridge.
    Q3SquashByDemand {
        /// Squashed line.
        line: LineAddr,
    },
    /// A prefetch was dropped because queue 3 was full.
    Q3Overflow {
        /// Dropped line.
        line: LineAddr,
    },
    /// A queued prefetch won arbitration and started its DRAM access.
    PushDispatch {
        /// Dispatched line.
        line: LineAddr,
        /// DRAM channel serving it.
        channel: u32,
    },
    /// A pushed line arrived at the L2 and was installed as prefetched.
    PushAccept {
        /// Installed line.
        line: LineAddr,
    },
    /// A pushed line arrived at the L2 and stole a pending MSHR.
    PushStoleMshr {
        /// The line.
        line: LineAddr,
        /// `true` if a demand access was waiting (`DelayedHit`, Figure 9).
        demand_waiting: bool,
        /// `true` if the line was installed with the prefetched bit set
        /// (the stolen MSHR belonged to a processor-side prefetch).
        installed_prefetched: bool,
    },
    /// A pushed line arrived at the L2 and was rejected.
    PushReject {
        /// The line.
        line: LineAddr,
        /// Why it was rejected.
        reason: PushRejectReason,
    },
    /// First demand touch of a pushed line (`Hit`, Figure 9).
    PushFirstTouch {
        /// The line.
        line: LineAddr,
    },
    /// A pushed line was evicted before any demand touch (`Replaced`).
    PushReplaced {
        /// The evicted line.
        line: LineAddr,
    },
    /// A demand request found queue 1 at or beyond its configured depth.
    DemandOverflow {
        /// The line whose arrival observed the overflow.
        line: LineAddr,
    },
    /// One DRAM core access.
    DramAccess {
        /// Accessed line.
        line: LineAddr,
        /// Channel serving it.
        channel: u32,
        /// `true` if the open row buffer was hit.
        row_hit: bool,
    },
    /// The FSB was occupied for one request or data phase.
    FsbTransfer {
        /// Traffic class occupying the bus.
        class: BusClass,
        /// Bus-busy cycles of the phase.
        busy: Cycle,
    },
    /// A fault-injection hook fired.
    FaultInjected {
        /// Class of the injected fault.
        kind: FaultKind,
        /// Magnitude in cycles for delay/stall/busy faults, 0 otherwise.
        magnitude: Cycle,
    },
    /// End-of-run snapshot of state that never resolved: what is still
    /// sitting in queues or on the bus when the simulation drains.
    RunEnd {
        /// Observations left in queue 2.
        queue2: u32,
        /// Prefetches left in queue 3.
        queue3: u32,
        /// Pushes dispatched to DRAM whose L2 arrival never happened.
        pushes_in_flight: u32,
    },
    /// A prefetch-service shard processed one ingestion batch.
    ShardBatch {
        /// Shard that processed the batch.
        shard: u32,
        /// Tenant the batch belongs to.
        tenant: u32,
        /// Observations in the batch.
        len: u32,
    },
    /// A prefetch-service shard learned of rejected submissions: the
    /// tenant's session hit a full ingestion queue (`TrySubmit::Full`)
    /// `count` times since its previous accepted batch.
    ShardReject {
        /// Shard whose queue was full.
        shard: u32,
        /// Tenant whose submission bounced.
        tenant: u32,
        /// Rejections since the last accepted batch.
        count: u32,
    },
}

impl TraceEvent {
    /// Stable snake_case event name used by both exporters.
    pub fn name(&self) -> &'static str {
        match self {
            TraceEvent::Ref { .. } => "ref",
            TraceEvent::L2Miss { .. } => "l2_miss",
            TraceEvent::L2Fill { .. } => "l2_fill",
            TraceEvent::ObsEnqueue { .. } => "obs_enqueue",
            TraceEvent::ObsDrop { .. } => "obs_drop",
            TraceEvent::ObsSquash { .. } => "obs_squash",
            TraceEvent::UlmtStep { .. } => "ulmt_step",
            TraceEvent::FilterAdmit { .. } => "filter_admit",
            TraceEvent::FilterDrop { .. } => "filter_drop",
            TraceEvent::Q3Enqueue { .. } => "q3_enqueue",
            TraceEvent::Q3SquashDemand { .. } => "q3_squash_demand",
            TraceEvent::Q3SquashDuplicate { .. } => "q3_squash_duplicate",
            TraceEvent::Q3SquashByDemand { .. } => "q3_squash_by_demand",
            TraceEvent::Q3Overflow { .. } => "q3_overflow",
            TraceEvent::PushDispatch { .. } => "push_dispatch",
            TraceEvent::PushAccept { .. } => "push_accept",
            TraceEvent::PushStoleMshr { .. } => "push_stole_mshr",
            TraceEvent::PushReject { .. } => "push_reject",
            TraceEvent::PushFirstTouch { .. } => "push_first_touch",
            TraceEvent::PushReplaced { .. } => "push_replaced",
            TraceEvent::DemandOverflow { .. } => "demand_overflow",
            TraceEvent::DramAccess { .. } => "dram_access",
            TraceEvent::FsbTransfer { .. } => "fsb_transfer",
            TraceEvent::FaultInjected { .. } => "fault_injected",
            TraceEvent::RunEnd { .. } => "run_end",
            TraceEvent::ShardBatch { .. } => "shard_batch",
            TraceEvent::ShardReject { .. } => "shard_reject",
        }
    }

    /// Perfetto lane (`tid`) grouping related events on one timeline row.
    fn lane(&self) -> u32 {
        match self {
            TraceEvent::Ref { .. }
            | TraceEvent::L2Miss { .. }
            | TraceEvent::L2Fill { .. }
            | TraceEvent::PushAccept { .. }
            | TraceEvent::PushStoleMshr { .. }
            | TraceEvent::PushReject { .. }
            | TraceEvent::PushFirstTouch { .. }
            | TraceEvent::PushReplaced { .. }
            | TraceEvent::RunEnd { .. } => 0,
            TraceEvent::ObsEnqueue { .. }
            | TraceEvent::ObsDrop { .. }
            | TraceEvent::ObsSquash { .. }
            | TraceEvent::UlmtStep { .. } => 1,
            TraceEvent::FilterAdmit { .. }
            | TraceEvent::FilterDrop { .. }
            | TraceEvent::Q3Enqueue { .. }
            | TraceEvent::Q3SquashDemand { .. }
            | TraceEvent::Q3SquashDuplicate { .. }
            | TraceEvent::Q3SquashByDemand { .. }
            | TraceEvent::Q3Overflow { .. } => 2,
            TraceEvent::PushDispatch { .. }
            | TraceEvent::DemandOverflow { .. }
            | TraceEvent::DramAccess { .. }
            | TraceEvent::FsbTransfer { .. } => 3,
            TraceEvent::FaultInjected { .. } => 4,
            TraceEvent::ShardBatch { .. } | TraceEvent::ShardReject { .. } => 5,
        }
    }

    /// Appends the event's payload as JSON object fields (no braces, no
    /// leading comma) onto `out`.
    fn write_json_fields(&self, out: &mut String) {
        use std::fmt::Write as _;
        match *self {
            TraceEvent::Ref { addr, is_write } => {
                let _ = write!(out, "\"addr\":{},\"write\":{is_write}", addr.raw());
            }
            TraceEvent::L2Miss { line }
            | TraceEvent::ObsEnqueue { line }
            | TraceEvent::ObsDrop { line }
            | TraceEvent::FilterAdmit { line }
            | TraceEvent::FilterDrop { line }
            | TraceEvent::Q3Enqueue { line }
            | TraceEvent::Q3SquashDemand { line }
            | TraceEvent::Q3SquashDuplicate { line }
            | TraceEvent::Q3SquashByDemand { line }
            | TraceEvent::Q3Overflow { line }
            | TraceEvent::PushAccept { line }
            | TraceEvent::PushFirstTouch { line }
            | TraceEvent::PushReplaced { line }
            | TraceEvent::DemandOverflow { line } => {
                let _ = write!(out, "\"line\":{}", line.raw());
            }
            TraceEvent::L2Fill {
                line,
                demand_waiting,
            } => {
                let _ = write!(out, "\"line\":{},\"demand\":{demand_waiting}", line.raw());
            }
            TraceEvent::ObsSquash { line, removed } => {
                let _ = write!(out, "\"line\":{},\"removed\":{removed}", line.raw());
            }
            TraceEvent::UlmtStep {
                line,
                response,
                occupancy,
            } => {
                let _ = write!(
                    out,
                    "\"line\":{},\"response\":{response},\"occupancy\":{occupancy}",
                    line.raw()
                );
            }
            TraceEvent::PushDispatch { line, channel } => {
                let _ = write!(out, "\"line\":{},\"channel\":{channel}", line.raw());
            }
            TraceEvent::PushStoleMshr {
                line,
                demand_waiting,
                installed_prefetched,
            } => {
                let _ = write!(
                    out,
                    "\"line\":{},\"demand\":{demand_waiting},\"installed\":{installed_prefetched}",
                    line.raw()
                );
            }
            TraceEvent::PushReject { line, reason } => {
                let _ = write!(
                    out,
                    "\"line\":{},\"reason\":\"{}\"",
                    line.raw(),
                    reason.label()
                );
            }
            TraceEvent::DramAccess {
                line,
                channel,
                row_hit,
            } => {
                let _ = write!(
                    out,
                    "\"line\":{},\"channel\":{channel},\"row_hit\":{row_hit}",
                    line.raw()
                );
            }
            TraceEvent::FsbTransfer { class, busy } => {
                let _ = write!(out, "\"class\":\"{}\",\"busy\":{busy}", class.label());
            }
            TraceEvent::FaultInjected { kind, magnitude } => {
                let _ = write!(
                    out,
                    "\"kind\":\"{}\",\"magnitude\":{magnitude}",
                    kind.label()
                );
            }
            TraceEvent::RunEnd {
                queue2,
                queue3,
                pushes_in_flight,
            } => {
                let _ = write!(
                    out,
                    "\"queue2\":{queue2},\"queue3\":{queue3},\"pushes_in_flight\":{pushes_in_flight}"
                );
            }
            TraceEvent::ShardBatch { shard, tenant, len } => {
                let _ = write!(out, "\"shard\":{shard},\"tenant\":{tenant},\"len\":{len}");
            }
            TraceEvent::ShardReject {
                shard,
                tenant,
                count,
            } => {
                let _ = write!(
                    out,
                    "\"shard\":{shard},\"tenant\":{tenant},\"count\":{count}"
                );
            }
        }
    }
}

/// A [`TraceEvent`] plus the cycle it happened at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TracedEvent {
    /// Simulated cycle of the event.
    pub at: Cycle,
    /// The event.
    pub event: TraceEvent,
}

/// Tracer parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceConfig {
    /// Ring-buffer capacity in events. Once full, the oldest events are
    /// overwritten (and counted, so consumers can detect truncation).
    pub capacity: usize,
}

impl TraceConfig {
    /// Default ring capacity: 1 Mi events (~40 MB), enough for every
    /// small/mid-profile run to trace without truncation.
    pub const DEFAULT_CAPACITY: usize = 1 << 20;

    /// A configuration with an explicit ring capacity (clamped to ≥ 1).
    pub fn with_capacity(capacity: usize) -> Self {
        TraceConfig {
            capacity: capacity.max(1),
        }
    }

    /// Reads the `ULMT_TRACE` environment variable: unset, empty, or `0`
    /// disables tracing (`None`); `1`/`on` enables it at the default
    /// capacity; any other integer sets the ring capacity in events.
    pub fn from_env() -> Option<Self> {
        let raw = std::env::var("ULMT_TRACE").ok()?;
        let raw = raw.trim();
        match raw {
            "" | "0" | "off" => None,
            "1" | "on" => Some(Self::default()),
            other => other
                .parse::<usize>()
                .ok()
                .filter(|&n| n > 1)
                .map(Self::with_capacity),
        }
    }
}

impl Default for TraceConfig {
    fn default() -> Self {
        Self::with_capacity(Self::DEFAULT_CAPACITY)
    }
}

/// Destination of traced events.
///
/// The system simulator emits through `Option<SharedTracer>` handles, so
/// the disabled path never constructs an event. The trait exists so tests
/// and tools can supply alternative sinks (counting, filtering, etc.).
pub trait TraceSink {
    /// Records one event at simulated cycle `at`.
    fn record(&mut self, at: Cycle, event: TraceEvent);

    /// `false` if recorded events are discarded; callers may skip
    /// constructing events entirely.
    fn is_enabled(&self) -> bool {
        true
    }
}

/// The zero-cost disabled sink: every call is an inlined no-op.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    #[inline(always)]
    fn record(&mut self, _at: Cycle, _event: TraceEvent) {}

    #[inline(always)]
    fn is_enabled(&self) -> bool {
        false
    }
}

/// Cycle-stamped bounded ring buffer of traced events.
#[derive(Debug, Clone, Default)]
pub struct TraceBuffer {
    events: VecDeque<TracedEvent>,
    capacity: usize,
    overwritten: u64,
    total: u64,
}

impl TraceBuffer {
    /// Creates an empty buffer with the configured ring capacity.
    pub fn new(cfg: TraceConfig) -> Self {
        TraceBuffer {
            // Lazily grown: huge default capacities should not allocate
            // 40 MB for a run that emits a thousand events.
            events: VecDeque::new(),
            capacity: cfg.capacity.max(1),
            overwritten: 0,
            total: 0,
        }
    }

    /// Appends one event, overwriting the oldest once the ring is full.
    pub fn record(&mut self, at: Cycle, event: TraceEvent) {
        if self.events.len() >= self.capacity {
            self.events.pop_front();
            self.overwritten += 1;
        }
        self.events.push_back(TracedEvent { at, event });
        self.total += 1;
    }

    /// Events currently held.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` if nothing has been recorded (or everything was drained).
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Ring capacity in events.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Events lost to ring overwrite. A consumer that needs the *complete*
    /// stream (e.g. the trace/counter cross-validator) must check this is
    /// zero.
    pub fn overwritten(&self) -> u64 {
        self.overwritten
    }

    /// Total events ever recorded (held + overwritten).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Iterates the held events oldest-first.
    pub fn iter(&self) -> impl Iterator<Item = &TracedEvent> {
        self.events.iter()
    }

    /// Counts held events matching `pred`.
    pub fn count(&self, mut pred: impl FnMut(&TraceEvent) -> bool) -> u64 {
        self.events.iter().filter(|e| pred(&e.event)).count() as u64
    }

    /// Renders the buffer as JSON Lines: one `{"at":..,"ev":"..",..}`
    /// object per line, oldest first.
    pub fn to_jsonl(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(self.events.len() * 48);
        for e in &self.events {
            let _ = write!(out, "{{\"at\":{},\"ev\":\"{}\"", e.at, e.event.name());
            let mut fields = String::new();
            e.event.write_json_fields(&mut fields);
            if !fields.is_empty() {
                out.push(',');
                out.push_str(&fields);
            }
            out.push_str("}\n");
        }
        out
    }

    /// Renders the buffer in Chrome `trace_event` JSON (the format
    /// Perfetto and `chrome://tracing` load). Each event becomes a
    /// thread-scoped instant event whose `ts` is the simulated cycle
    /// (displayed as microseconds); related event classes share a lane.
    pub fn to_chrome_trace(&self) -> String {
        use std::fmt::Write as _;
        let lanes = [
            (0, "cpu / L2"),
            (1, "queue2 / ULMT"),
            (2, "filter / queue3"),
            (3, "NB / DRAM / FSB"),
            (4, "faults"),
            (5, "service shards"),
        ];
        let mut out = String::with_capacity(self.events.len() * 96 + 512);
        out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
        let mut first = true;
        for (tid, name) in lanes {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(
                out,
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{tid},\
                 \"args\":{{\"name\":\"{name}\"}}}}"
            );
        }
        for e in &self.events {
            let _ = write!(
                out,
                ",{{\"name\":\"{}\",\"ph\":\"i\",\"s\":\"t\",\"pid\":0,\"tid\":{},\"ts\":{}",
                e.event.name(),
                e.event.lane(),
                e.at
            );
            let mut fields = String::new();
            e.event.write_json_fields(&mut fields);
            if fields.is_empty() {
                out.push('}');
            } else {
                let _ = write!(out, ",\"args\":{{{fields}}}}}");
            }
        }
        out.push_str("]}\n");
        out
    }
}

impl TraceSink for TraceBuffer {
    fn record(&mut self, at: Cycle, event: TraceEvent) {
        TraceBuffer::record(self, at, event);
    }
}

/// A clonable handle to one shared [`TraceBuffer`].
///
/// The system simulator installs clones of one handle into the FSB and
/// memory-processor models so every component writes into a single
/// time-ordered stream. Cloning is an `Rc` bump; recording is a
/// `RefCell` borrow. The handle is deliberately *not* `Send`: a tracer
/// belongs to exactly one single-threaded simulation.
#[derive(Debug, Clone)]
pub struct SharedTracer(Rc<RefCell<TraceBuffer>>);

impl SharedTracer {
    /// Creates a tracer with an empty buffer.
    pub fn new(cfg: TraceConfig) -> Self {
        SharedTracer(Rc::new(RefCell::new(TraceBuffer::new(cfg))))
    }

    /// Records one event.
    ///
    /// # Panics
    ///
    /// Panics if called re-entrantly from within [`SharedTracer::with`].
    pub fn record(&self, at: Cycle, event: TraceEvent) {
        self.0.borrow_mut().record(at, event);
    }

    /// Runs `f` with a shared view of the buffer.
    ///
    /// # Panics
    ///
    /// Panics if called re-entrantly while recording.
    pub fn with<R>(&self, f: impl FnOnce(&TraceBuffer) -> R) -> R {
        f(&self.0.borrow())
    }

    /// Takes the buffer out of the handle, leaving an empty one (with the
    /// same capacity) behind for any remaining clones.
    ///
    /// # Panics
    ///
    /// Panics if called re-entrantly while recording.
    pub fn take(&self) -> TraceBuffer {
        let mut buf = self.0.borrow_mut();
        let capacity = buf.capacity;
        std::mem::replace(
            &mut *buf,
            TraceBuffer::new(TraceConfig::with_capacity(capacity)),
        )
    }
}

impl TraceSink for SharedTracer {
    fn record(&mut self, at: Cycle, event: TraceEvent) {
        SharedTracer::record(self, at, event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(n: u64) -> LineAddr {
        LineAddr::new(n)
    }

    #[test]
    fn ring_overwrites_oldest_and_counts() {
        let mut buf = TraceBuffer::new(TraceConfig::with_capacity(3));
        for i in 0..5u64 {
            buf.record(i, TraceEvent::Q3Enqueue { line: line(i) });
        }
        assert_eq!(buf.len(), 3);
        assert_eq!(buf.overwritten(), 2);
        assert_eq!(buf.total(), 5);
        let first = buf.iter().next().expect("non-empty");
        assert_eq!(first.at, 2, "oldest two events were overwritten");
    }

    #[test]
    fn jsonl_one_line_per_event_with_fields() {
        let mut buf = TraceBuffer::new(TraceConfig::default());
        buf.record(
            7,
            TraceEvent::UlmtStep {
                line: line(3),
                response: 40,
                occupancy: 120,
            },
        );
        buf.record(
            9,
            TraceEvent::PushReject {
                line: line(4),
                reason: PushRejectReason::Present,
            },
        );
        let text = buf.to_jsonl();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(
            lines[0],
            "{\"at\":7,\"ev\":\"ulmt_step\",\"line\":3,\"response\":40,\"occupancy\":120}"
        );
        assert_eq!(
            lines[1],
            "{\"at\":9,\"ev\":\"push_reject\",\"line\":4,\"reason\":\"present\"}"
        );
    }

    #[test]
    fn chrome_trace_contains_lanes_and_events() {
        let mut buf = TraceBuffer::new(TraceConfig::default());
        buf.record(5, TraceEvent::FilterDrop { line: line(1) });
        buf.record(
            6,
            TraceEvent::FaultInjected {
                kind: FaultKind::DramBusy,
                magnitude: 33,
            },
        );
        let text = buf.to_chrome_trace();
        assert!(text.starts_with("{\"displayTimeUnit\""));
        assert!(text.contains("\"thread_name\""));
        assert!(text.contains("\"name\":\"filter_drop\""));
        assert!(text.contains("\"ts\":5"));
        assert!(text.contains("\"kind\":\"dram_busy\",\"magnitude\":33"));
        // Balanced braces/brackets — a cheap well-formedness check that
        // catches missed separators without a JSON parser.
        let opens = text.matches('{').count();
        let closes = text.matches('}').count();
        assert_eq!(opens, closes);
        assert_eq!(text.matches('[').count(), text.matches(']').count());
    }

    #[test]
    fn shared_tracer_take_leaves_empty_buffer() {
        let tracer = SharedTracer::new(TraceConfig::with_capacity(16));
        let second = tracer.clone();
        second.record(
            1,
            TraceEvent::Ref {
                addr: Addr::new(64),
                is_write: false,
            },
        );
        let buf = tracer.take();
        assert_eq!(buf.len(), 1);
        assert_eq!(buf.capacity(), 16);
        assert!(second.with(|b| b.is_empty()));
        assert_eq!(second.with(|b| b.capacity()), 16);
    }

    #[test]
    fn null_sink_reports_disabled() {
        let mut sink = NullSink;
        assert!(!sink.is_enabled());
        sink.record(0, TraceEvent::L2Miss { line: line(9) });
    }

    #[test]
    fn config_from_env_parsing() {
        // Uses the raw parsing logic indirectly: from_env reads the real
        // environment, so only exercise the unset path here (the knob
        // itself is covered end-to-end by the system crate's tests).
        std::env::remove_var("ULMT_TRACE");
        assert!(TraceConfig::from_env().is_none());
    }

    #[test]
    fn every_event_serializes_under_its_name() {
        let all = [
            TraceEvent::Ref {
                addr: Addr::new(128),
                is_write: true,
            },
            TraceEvent::L2Miss { line: line(1) },
            TraceEvent::L2Fill {
                line: line(1),
                demand_waiting: true,
            },
            TraceEvent::ObsEnqueue { line: line(1) },
            TraceEvent::ObsDrop { line: line(1) },
            TraceEvent::ObsSquash {
                line: line(1),
                removed: 2,
            },
            TraceEvent::UlmtStep {
                line: line(1),
                response: 1,
                occupancy: 2,
            },
            TraceEvent::FilterAdmit { line: line(1) },
            TraceEvent::FilterDrop { line: line(1) },
            TraceEvent::Q3Enqueue { line: line(1) },
            TraceEvent::Q3SquashDemand { line: line(1) },
            TraceEvent::Q3SquashDuplicate { line: line(1) },
            TraceEvent::Q3SquashByDemand { line: line(1) },
            TraceEvent::Q3Overflow { line: line(1) },
            TraceEvent::PushDispatch {
                line: line(1),
                channel: 1,
            },
            TraceEvent::PushAccept { line: line(1) },
            TraceEvent::PushStoleMshr {
                line: line(1),
                demand_waiting: false,
                installed_prefetched: true,
            },
            TraceEvent::PushReject {
                line: line(1),
                reason: PushRejectReason::NoMshr,
            },
            TraceEvent::PushFirstTouch { line: line(1) },
            TraceEvent::PushReplaced { line: line(1) },
            TraceEvent::DemandOverflow { line: line(1) },
            TraceEvent::DramAccess {
                line: line(1),
                channel: 0,
                row_hit: true,
            },
            TraceEvent::FsbTransfer {
                class: BusClass::WriteBack,
                busy: 4,
            },
            TraceEvent::FaultInjected {
                kind: FaultKind::QueueReduction,
                magnitude: 0,
            },
            TraceEvent::RunEnd {
                queue2: 1,
                queue3: 2,
                pushes_in_flight: 3,
            },
            TraceEvent::ShardBatch {
                shard: 0,
                tenant: 7,
                len: 64,
            },
            TraceEvent::ShardReject {
                shard: 1,
                tenant: 7,
                count: 2,
            },
        ];
        let mut buf = TraceBuffer::new(TraceConfig::default());
        for (i, ev) in all.iter().enumerate() {
            buf.record(i as Cycle, *ev);
        }
        let text = buf.to_jsonl();
        for ev in &all {
            assert!(
                text.contains(&format!("\"ev\":\"{}\"", ev.name())),
                "missing {} in jsonl",
                ev.name()
            );
        }
        assert_eq!(text.lines().count(), all.len());
    }
}
