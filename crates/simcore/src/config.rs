//! The shared configuration-error type.
//!
//! Every configuration struct in the workspace exposes the same pair of
//! entry points:
//!
//! * `validate(&self) -> Result<(), ConfigError>` — the fallible check,
//!   returning the first inconsistency found as a typed error;
//! * `checked(&self)` — the infallible assertion form, panicking with the
//!   error's message. Constructors use it so an invalid configuration
//!   fails loudly at the point of construction.
//!
//! [`ConfigError`] deliberately stays structural rather than enumerating
//! every possible mistake: a component label plus a human-readable reason
//! is what call sites actually need (error messages, test assertions),
//! and it lets sub-crates share one type without a dependency cycle.

/// A configuration inconsistency reported by a `validate()` method.
///
/// # Example
///
/// ```
/// use ulmt_simcore::ConfigError;
///
/// let e = ConfigError::new("cache", "line size must be a power of two");
/// assert_eq!(e.component(), "cache");
/// assert_eq!(e.to_string(), "cache: line size must be a power of two");
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    component: &'static str,
    reason: String,
}

impl ConfigError {
    /// Creates an error for `component` with a human-readable `reason`.
    pub fn new(component: &'static str, reason: impl Into<String>) -> Self {
        ConfigError {
            component,
            reason: reason.into(),
        }
    }

    /// The component whose configuration is inconsistent (e.g. `"cache"`).
    pub fn component(&self) -> &'static str {
        self.component
    }

    /// The human-readable description of the inconsistency.
    pub fn reason(&self) -> &str {
        &self.reason
    }

    /// Consumes the error, yielding the bare reason string (used by
    /// wrappers that carry their own component context).
    pub fn into_reason(self) -> String {
        self.reason
    }
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.component, self.reason)
    }
}

impl std::error::Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_and_display() {
        let e = ConfigError::new("DRAM", "channel count must be a power of two");
        assert_eq!(e.component(), "DRAM");
        assert_eq!(e.reason(), "channel count must be a power of two");
        assert_eq!(e.clone().into_reason(), e.reason());
        assert_eq!(e.to_string(), "DRAM: channel count must be a power of two");
    }
}
