#![warn(missing_docs)]

//! Deterministic event-driven simulation kernel for the ULMT simulator.
//!
//! This crate provides the timing substrate shared by every other crate in
//! the workspace:
//!
//! * [`Cycle`] — the global time unit (1.6 GHz main-processor cycles, as in
//!   Table 3 of the paper: *"All cycles are 1.6 GHz cycles"*).
//! * [`Addr`] — a physical byte address with line/page arithmetic helpers.
//! * [`EventQueue`] — a deterministic time-ordered event queue with FIFO
//!   tie-breaking, the heart of the discrete-event engine.
//! * [`Server`] — a first-come-first-served resource used to model occupancy
//!   of buses, DRAM channels and the memory processor.
//! * [`stats`] — counters, histograms and utilization trackers used to
//!   produce every figure of the evaluation.
//! * [`fault`] — deterministic, seeded fault injection consulted by the
//!   system simulator to exercise its overflow/drop/squash paths.
//! * [`CancelToken`] — cooperative cancellation polled by the simulation
//!   main loop so watchdogs can stop runaway runs gracefully.
//! * [`trace`] — a cycle-stamped, bounded ring-buffer event tracer with
//!   JSONL / Chrome `trace_event` export, used to audit every aggregate
//!   counter against the event stream that produced it.
//!
//! # Example
//!
//! ```
//! use ulmt_simcore::{EventQueue, Addr};
//!
//! let mut q: EventQueue<&'static str> = EventQueue::new();
//! q.push(10, "b");
//! q.push(5, "a");
//! q.push(10, "c"); // same time as "b": FIFO order is preserved
//! assert_eq!(q.pop(), Some((5, "a")));
//! assert_eq!(q.pop(), Some((10, "b")));
//! assert_eq!(q.pop(), Some((10, "c")));
//!
//! let a = Addr::new(0x1234);
//! assert_eq!(a.line(64).to_byte_addr().raw(), 0x1200);
//! ```

pub mod addr;
pub mod cancel;
pub mod config;
pub mod event;
pub mod fault;
pub mod hash;
pub mod rng;
pub mod server;
pub mod stats;
pub mod trace;

pub use addr::{Addr, LineAddr, PageAddr};
pub use cancel::CancelToken;
pub use config::ConfigError;
pub use event::EventQueue;
pub use fault::{
    FaultConfig, FaultCounts, FaultPlan, ObservationFault, ServiceFault, ServiceFaultConfig,
    ServiceFaultCounts, ServiceFaultPlan, ServiceFaultState,
};
pub use hash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use rng::Pcg32;
pub use server::{Server, ServerState};
pub use trace::{SharedTracer, TraceBuffer, TraceConfig, TraceEvent, TraceSink};

/// Global simulation time, measured in 1.6 GHz main-processor cycles.
///
/// The paper expresses every latency in main-processor cycles (Table 3),
/// including those of the 800 MHz memory processor, so a plain alias keeps
/// the arithmetic friction-free while staying faithful to the source.
pub type Cycle = u64;
