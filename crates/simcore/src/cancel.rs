//! Cooperative cancellation for long-running simulations.
//!
//! A [`CancelToken`] is a cheap, cloneable flag shared between a watchdog
//! (the experiment harness, a timeout thread, a user interrupt) and the
//! simulation main loop, which polls it between events and winds down
//! gracefully instead of being killed mid-state.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A shared cancellation flag.
///
/// Clones observe the same underlying flag; once cancelled, a token stays
/// cancelled forever.
///
/// # Example
///
/// ```
/// use ulmt_simcore::CancelToken;
///
/// let token = CancelToken::new();
/// let watcher = token.clone();
/// assert!(!watcher.is_cancelled());
/// token.cancel();
/// assert!(watcher.is_cancelled());
/// ```
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// Creates a fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation. Idempotent.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Release);
    }

    /// Returns `true` once [`CancelToken::cancel`] has been called on any
    /// clone of this token.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_state() {
        let t = CancelToken::new();
        let c = t.clone();
        assert!(!t.is_cancelled() && !c.is_cancelled());
        c.cancel();
        assert!(t.is_cancelled() && c.is_cancelled());
        c.cancel(); // idempotent
        assert!(t.is_cancelled());
    }

    #[test]
    fn visible_across_threads() {
        let t = CancelToken::new();
        let c = t.clone();
        std::thread::spawn(move || c.cancel())
            .join()
            .expect("no panic");
        assert!(t.is_cancelled());
    }
}
