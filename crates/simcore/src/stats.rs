//! Statistics primitives used to produce the paper's figures.
//!
//! * [`BinnedHistogram`] — fixed-edge histogram; Figure 6 of the paper bins
//!   inter-miss times into `[0,80) [80,200) [200,280) [280,inf)` cycles.
//! * [`Mean`] — online arithmetic mean, used for response/occupancy times
//!   (Figure 10).
//! * [`Summary`] — count/min/max/mean in one value.

use std::fmt;

use crate::Cycle;

/// Histogram over `u64` samples with caller-supplied bin upper edges.
///
/// A sample `x` falls into the first bin whose (exclusive) upper edge is
/// greater than `x`; samples at or above the last edge fall into a final
/// overflow bin. With edges `[80, 200, 280]` the bins are exactly those of
/// Figure 6 of the paper.
///
/// # Example
///
/// ```
/// use ulmt_simcore::stats::BinnedHistogram;
///
/// let mut h = BinnedHistogram::new(&[80, 200, 280]);
/// for x in [10, 79, 80, 250, 1000] {
///     h.record(x);
/// }
/// assert_eq!(h.counts(), &[2, 1, 1, 1]);
/// assert_eq!(h.total(), 5);
/// ```
#[derive(Debug, Clone)]
pub struct BinnedHistogram {
    edges: Vec<u64>,
    counts: Vec<u64>,
    total: u64,
}

impl BinnedHistogram {
    /// Creates a histogram with the given strictly increasing upper edges.
    ///
    /// # Panics
    ///
    /// Panics if `edges` is empty or not strictly increasing.
    pub fn new(edges: &[u64]) -> Self {
        assert!(!edges.is_empty(), "histogram needs at least one edge");
        assert!(
            edges.windows(2).all(|w| w[0] < w[1]),
            "histogram edges must be strictly increasing"
        );
        BinnedHistogram {
            edges: edges.to_vec(),
            counts: vec![0; edges.len() + 1],
            total: 0,
        }
    }

    /// The histogram used by Figure 6: `[0,80) [80,200) [200,280) [280,inf)`.
    pub fn inter_miss() -> Self {
        Self::new(&[80, 200, 280])
    }

    /// Records one sample.
    pub fn record(&mut self, x: u64) {
        let bin = self
            .edges
            .iter()
            .position(|&e| x < e)
            .unwrap_or(self.edges.len());
        self.counts[bin] += 1;
        self.total += 1;
    }

    /// Per-bin counts; the last entry is the overflow bin.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Per-bin fractions of the total (all zero if nothing recorded).
    pub fn fractions(&self) -> Vec<f64> {
        if self.total == 0 {
            return vec![0.0; self.counts.len()];
        }
        self.counts
            .iter()
            .map(|&c| c as f64 / self.total as f64)
            .collect()
    }

    /// Total number of recorded samples.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Bin upper edges.
    pub fn edges(&self) -> &[u64] {
        &self.edges
    }

    /// Human-readable bin labels, e.g. `[0,80)`, `[280,inf)`.
    pub fn labels(&self) -> Vec<String> {
        let mut labels = Vec::with_capacity(self.counts.len());
        let mut lo = 0u64;
        for &e in &self.edges {
            labels.push(format!("[{lo},{e})"));
            lo = e;
        }
        labels.push(format!("[{lo},inf)"));
        labels
    }
}

/// Online arithmetic mean over `f64` samples.
///
/// # Example
///
/// ```
/// use ulmt_simcore::stats::Mean;
///
/// let mut m = Mean::new();
/// m.add(10.0);
/// m.add(20.0);
/// assert_eq!(m.mean(), 15.0);
/// assert_eq!(m.count(), 2);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct Mean {
    sum: f64,
    count: u64,
}

impl Mean {
    /// Creates an empty mean.
    pub fn new() -> Self {
        Mean::default()
    }

    /// Adds one sample.
    pub fn add(&mut self, x: f64) {
        self.sum += x;
        self.count += 1;
    }

    /// Current mean (0.0 when no samples have been added).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Sum of all samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }
}

impl fmt::Display for Mean {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2} (n={})", self.mean(), self.count)
    }
}

/// Count, minimum, maximum and mean of a stream of cycle values.
#[derive(Debug, Clone, Copy)]
pub struct Summary {
    count: u64,
    min: Cycle,
    max: Cycle,
    sum: u128,
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Summary {
            count: 0,
            min: Cycle::MAX,
            max: 0,
            sum: 0,
        }
    }

    /// Records one value.
    pub fn record(&mut self, x: Cycle) {
        self.count += 1;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
        self.sum += x as u128;
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Smallest recorded value, or `None` if empty.
    pub fn min(&self) -> Option<Cycle> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest recorded value, or `None` if empty.
    pub fn max(&self) -> Option<Cycle> {
        (self.count > 0).then_some(self.max)
    }

    /// Mean of the recorded values (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

impl Default for Summary {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.count == 0 {
            write!(f, "empty")
        } else {
            write!(
                f,
                "n={} min={} mean={:.1} max={}",
                self.count,
                self.min,
                self.mean(),
                self.max
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_bin_assignment() {
        let mut h = BinnedHistogram::inter_miss();
        h.record(0);
        h.record(79);
        h.record(80);
        h.record(199);
        h.record(200);
        h.record(279);
        h.record(280);
        h.record(u64::MAX);
        assert_eq!(h.counts(), &[2, 2, 2, 2]);
        let fr = h.fractions();
        assert!(fr.iter().all(|&f| (f - 0.25).abs() < 1e-12));
    }

    #[test]
    fn histogram_labels() {
        let h = BinnedHistogram::inter_miss();
        assert_eq!(
            h.labels(),
            vec!["[0,80)", "[80,200)", "[200,280)", "[280,inf)"]
        );
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn histogram_rejects_bad_edges() {
        let _ = BinnedHistogram::new(&[10, 10]);
    }

    #[test]
    fn empty_histogram_fractions_are_zero() {
        let h = BinnedHistogram::new(&[5]);
        assert_eq!(h.fractions(), vec![0.0, 0.0]);
    }

    #[test]
    fn mean_basic() {
        let mut m = Mean::new();
        assert_eq!(m.mean(), 0.0);
        m.add(1.0);
        m.add(2.0);
        m.add(3.0);
        assert!((m.mean() - 2.0).abs() < 1e-12);
        assert_eq!(m.count(), 3);
    }

    #[test]
    fn summary_tracks_min_max_mean() {
        let mut s = Summary::new();
        assert_eq!(s.min(), None);
        for x in [5u64, 1, 9] {
            s.record(x);
        }
        assert_eq!(s.min(), Some(1));
        assert_eq!(s.max(), Some(9));
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert_eq!(format!("{s}"), "n=3 min=1 mean=5.0 max=9");
    }
}
