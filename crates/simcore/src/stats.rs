//! Statistics primitives used to produce the paper's figures.
//!
//! * [`BinnedHistogram`] — fixed-edge histogram; Figure 6 of the paper bins
//!   inter-miss times into `[0,80) [80,200) [200,280) [280,inf)` cycles.
//! * [`Log2Histogram`] — fixed-size power-of-two-bucketed histogram for
//!   latency/size distributions; allocation-free record and merge.
//! * [`Mean`] — online arithmetic mean, used for response/occupancy times
//!   (Figure 10).
//! * [`Summary`] — count/min/max/mean in one value.

use std::fmt;

use crate::Cycle;

/// Histogram over `u64` samples with caller-supplied bin upper edges.
///
/// A sample `x` falls into the first bin whose (exclusive) upper edge is
/// greater than `x`; samples at or above the last edge fall into a final
/// overflow bin. With edges `[80, 200, 280]` the bins are exactly those of
/// Figure 6 of the paper.
///
/// # Example
///
/// ```
/// use ulmt_simcore::stats::BinnedHistogram;
///
/// let mut h = BinnedHistogram::new(&[80, 200, 280]);
/// for x in [10, 79, 80, 250, 1000] {
///     h.record(x);
/// }
/// assert_eq!(h.counts(), &[2, 1, 1, 1]);
/// assert_eq!(h.total(), 5);
/// ```
#[derive(Debug, Clone)]
pub struct BinnedHistogram {
    edges: Vec<u64>,
    counts: Vec<u64>,
    total: u64,
}

impl BinnedHistogram {
    /// Creates a histogram with the given strictly increasing upper edges.
    ///
    /// # Panics
    ///
    /// Panics if `edges` is empty or not strictly increasing.
    pub fn new(edges: &[u64]) -> Self {
        assert!(!edges.is_empty(), "histogram needs at least one edge");
        assert!(
            edges.windows(2).all(|w| w[0] < w[1]),
            "histogram edges must be strictly increasing"
        );
        BinnedHistogram {
            edges: edges.to_vec(),
            counts: vec![0; edges.len() + 1],
            total: 0,
        }
    }

    /// The histogram used by Figure 6: `[0,80) [80,200) [200,280) [280,inf)`.
    pub fn inter_miss() -> Self {
        Self::new(&[80, 200, 280])
    }

    /// Records one sample.
    pub fn record(&mut self, x: u64) {
        let bin = self
            .edges
            .iter()
            .position(|&e| x < e)
            .unwrap_or(self.edges.len());
        self.counts[bin] += 1;
        self.total += 1;
    }

    /// Per-bin counts; the last entry is the overflow bin.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Per-bin fractions of the total (all zero if nothing recorded).
    pub fn fractions(&self) -> Vec<f64> {
        if self.total == 0 {
            return vec![0.0; self.counts.len()];
        }
        self.counts
            .iter()
            .map(|&c| c as f64 / self.total as f64)
            .collect()
    }

    /// Total number of recorded samples.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Bin upper edges.
    pub fn edges(&self) -> &[u64] {
        &self.edges
    }

    /// Human-readable bin labels, e.g. `[0,80)`, `[280,inf)`.
    pub fn labels(&self) -> Vec<String> {
        let mut labels = Vec::with_capacity(self.counts.len());
        let mut lo = 0u64;
        for &e in &self.edges {
            labels.push(format!("[{lo},{e})"));
            lo = e;
        }
        labels.push(format!("[{lo},inf)"));
        labels
    }
}

/// Number of buckets in a [`Log2Histogram`]: one for zero plus one per
/// power of two up to `2^63`.
pub const LOG2_BUCKETS: usize = 65;

/// Fixed-size histogram whose bucket boundaries are the powers of two.
///
/// Bucket 0 holds exactly the value `0`; bucket `k >= 1` holds values in
/// `[2^(k-1), 2^k)` (the last bucket runs to `u64::MAX`). The layout is a
/// flat `[u64; 65]`, so recording, merging and snapshotting never
/// allocate — the shape the service's hot-path metrics need.
///
/// # Example
///
/// ```
/// use ulmt_simcore::stats::Log2Histogram;
///
/// let mut h = Log2Histogram::new();
/// for x in [0, 1, 2, 3, 4, 1000] {
///     h.record(x);
/// }
/// assert_eq!(h.total(), 6);
/// assert_eq!(h.percentile(50), 3); // nearest rank falls in [2,4)
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Log2Histogram {
    counts: [u64; LOG2_BUCKETS],
    total: u64,
}

impl Log2Histogram {
    /// Creates an empty histogram.
    pub const fn new() -> Self {
        Log2Histogram {
            counts: [0; LOG2_BUCKETS],
            total: 0,
        }
    }

    /// The bucket a value falls into: 0 for `0`, otherwise the value's
    /// bit width (so `2^(k-1) <= x < 2^k` lands in bucket `k`).
    #[inline]
    pub fn bucket_of(x: u64) -> usize {
        (u64::BITS - x.leading_zeros()) as usize
    }

    /// The inclusive `[lo, hi]` range of values bucket `i` holds.
    ///
    /// # Panics
    ///
    /// Panics if `i >= LOG2_BUCKETS`.
    pub fn bucket_bounds(i: usize) -> (u64, u64) {
        assert!(i < LOG2_BUCKETS, "bucket index {i} out of range");
        match i {
            0 => (0, 0),
            64 => (1 << 63, u64::MAX),
            k => (1 << (k - 1), (1 << k) - 1),
        }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, x: u64) {
        self.counts[Self::bucket_of(x)] += 1;
        self.total += 1;
    }

    /// Total number of recorded samples.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Per-bucket counts, bucket 0 first.
    pub fn counts(&self) -> &[u64; LOG2_BUCKETS] {
        &self.counts
    }

    /// Folds another histogram into this one. Merging is commutative and
    /// associative: any merge tree over the same set of records yields
    /// the same histogram.
    pub fn merge(&mut self, other: &Self) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.total += other.total;
    }

    /// Rebuilds a histogram from a per-bucket count slice (for wire
    /// decoding). Returns `None` if the slice has more than
    /// [`LOG2_BUCKETS`] entries; shorter slices are zero-padded.
    pub fn from_counts(counts: &[u64]) -> Option<Self> {
        if counts.len() > LOG2_BUCKETS {
            return None;
        }
        let mut h = Log2Histogram::new();
        for (i, &c) in counts.iter().enumerate() {
            h.counts[i] = c;
            h.total += c;
        }
        Some(h)
    }

    /// Nearest-rank percentile, reported as the inclusive upper bound of
    /// the bucket containing the ranked sample (an upper estimate no more
    /// than 2x the true value). Returns 0 when empty; `pct` is clamped to
    /// `[0, 100]`, with p0 the lowest non-empty bucket's bound.
    pub fn percentile(&self, pct: u64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let rank = (pct.min(100) * self.total)
            .div_ceil(100)
            .clamp(1, self.total);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::bucket_bounds(i).1;
            }
        }
        Self::bucket_bounds(LOG2_BUCKETS - 1).1
    }
}

impl Default for Log2Histogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Online arithmetic mean over `f64` samples.
///
/// # Example
///
/// ```
/// use ulmt_simcore::stats::Mean;
///
/// let mut m = Mean::new();
/// m.add(10.0);
/// m.add(20.0);
/// assert_eq!(m.mean(), 15.0);
/// assert_eq!(m.count(), 2);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct Mean {
    sum: f64,
    count: u64,
}

impl Mean {
    /// Creates an empty mean.
    pub fn new() -> Self {
        Mean::default()
    }

    /// Adds one sample.
    pub fn add(&mut self, x: f64) {
        self.sum += x;
        self.count += 1;
    }

    /// Current mean (0.0 when no samples have been added).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Sum of all samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }
}

impl fmt::Display for Mean {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2} (n={})", self.mean(), self.count)
    }
}

/// Count, minimum, maximum and mean of a stream of cycle values.
#[derive(Debug, Clone, Copy)]
pub struct Summary {
    count: u64,
    min: Cycle,
    max: Cycle,
    sum: u128,
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Summary {
            count: 0,
            min: Cycle::MAX,
            max: 0,
            sum: 0,
        }
    }

    /// Records one value.
    pub fn record(&mut self, x: Cycle) {
        self.count += 1;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
        self.sum += x as u128;
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Smallest recorded value, or `None` if empty.
    pub fn min(&self) -> Option<Cycle> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest recorded value, or `None` if empty.
    pub fn max(&self) -> Option<Cycle> {
        (self.count > 0).then_some(self.max)
    }

    /// Mean of the recorded values (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

impl Default for Summary {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.count == 0 {
            write!(f, "empty")
        } else {
            write!(
                f,
                "n={} min={} mean={:.1} max={}",
                self.count,
                self.min,
                self.mean(),
                self.max
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_bin_assignment() {
        let mut h = BinnedHistogram::inter_miss();
        h.record(0);
        h.record(79);
        h.record(80);
        h.record(199);
        h.record(200);
        h.record(279);
        h.record(280);
        h.record(u64::MAX);
        assert_eq!(h.counts(), &[2, 2, 2, 2]);
        let fr = h.fractions();
        assert!(fr.iter().all(|&f| (f - 0.25).abs() < 1e-12));
    }

    #[test]
    fn histogram_labels() {
        let h = BinnedHistogram::inter_miss();
        assert_eq!(
            h.labels(),
            vec!["[0,80)", "[80,200)", "[200,280)", "[280,inf)"]
        );
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn histogram_rejects_bad_edges() {
        let _ = BinnedHistogram::new(&[10, 10]);
    }

    #[test]
    fn empty_histogram_fractions_are_zero() {
        let h = BinnedHistogram::new(&[5]);
        assert_eq!(h.fractions(), vec![0.0, 0.0]);
    }

    #[test]
    fn log2_bucket_boundaries_sit_at_powers_of_two() {
        // Zero is its own bucket; every other boundary is exactly a power
        // of two: 2^k - 1 and 2^k always land in adjacent buckets.
        assert_eq!(Log2Histogram::bucket_of(0), 0);
        assert_eq!(Log2Histogram::bucket_of(1), 1);
        for k in 1..64u32 {
            let p = 1u64 << k;
            assert_eq!(
                Log2Histogram::bucket_of(p),
                Log2Histogram::bucket_of(p - 1) + 1,
                "2^{k} starts a new bucket"
            );
            let (lo, hi) = Log2Histogram::bucket_bounds(Log2Histogram::bucket_of(p));
            assert_eq!(lo, p, "bucket lower bound is the power itself");
            assert!(hi >= p && (hi == u64::MAX || hi == 2 * p - 1));
        }
        assert_eq!(Log2Histogram::bucket_of(u64::MAX), LOG2_BUCKETS - 1);
        // Property over random values: every sample is inside the bounds
        // of the bucket it was assigned to.
        let mut rng = crate::rng::Pcg32::seed_from_u64(0xB0B5);
        for _ in 0..10_000 {
            let x = rng.next_u64() >> rng.gen_range_u32(0..64);
            let (lo, hi) = Log2Histogram::bucket_bounds(Log2Histogram::bucket_of(x));
            assert!(lo <= x && x <= hi, "{x} outside [{lo},{hi}]");
        }
    }

    #[test]
    fn log2_merge_is_associative_and_conserves_counts() {
        let mut rng = crate::rng::Pcg32::seed_from_u64(0x1157);
        for trial in 0..50 {
            let mut parts = [
                Log2Histogram::new(),
                Log2Histogram::new(),
                Log2Histogram::new(),
            ];
            let mut reference = Log2Histogram::new();
            let n = rng.gen_range_usize(0..200);
            for _ in 0..n {
                let x = rng.next_u64() >> rng.gen_range_u32(0..64);
                parts[rng.gen_range_usize(0..3)].record(x);
                reference.record(x);
            }
            // (a ⊕ b) ⊕ c
            let mut left = parts[0].clone();
            left.merge(&parts[1]);
            left.merge(&parts[2]);
            // a ⊕ (b ⊕ c)
            let mut bc = parts[1].clone();
            bc.merge(&parts[2]);
            let mut right = parts[0].clone();
            right.merge(&bc);
            assert_eq!(left, right, "merge associativity, trial {trial}");
            assert_eq!(left, reference, "merge equals direct recording");
            // Count conservation: totals add, and the total is the sum
            // of the buckets.
            let part_total: u64 = parts.iter().map(|p| p.total()).sum();
            assert_eq!(left.total(), part_total);
            assert_eq!(left.total(), n as u64);
            assert_eq!(left.counts().iter().sum::<u64>(), left.total());
        }
    }

    #[test]
    fn log2_percentiles_are_bucket_upper_bounds() {
        let mut h = Log2Histogram::new();
        assert_eq!(h.percentile(50), 0, "empty histogram reports 0");
        for x in [0u64, 1, 2, 3, 4, 1000] {
            h.record(x);
        }
        assert_eq!(h.percentile(0), 0, "p0 is the lowest non-empty bucket");
        assert_eq!(h.percentile(50), 3);
        assert_eq!(h.percentile(99), 1023, "1000 sits in [512,1024)");
        assert_eq!(h.percentile(100), 1023);
        // The estimate is an upper bound and within 2x of the true value.
        let mut one = Log2Histogram::new();
        one.record(700);
        let p = one.percentile(50);
        assert!((700..1400).contains(&p), "upper estimate within 2x: {p}");
    }

    #[test]
    fn log2_round_trips_through_counts() {
        let mut h = Log2Histogram::new();
        for x in [0u64, 5, 5, 1 << 40, u64::MAX] {
            h.record(x);
        }
        let back = Log2Histogram::from_counts(h.counts()).expect("65 buckets fit");
        assert_eq!(back, h);
        assert!(Log2Histogram::from_counts(&[0; 66]).is_none());
        let short = Log2Histogram::from_counts(&[1, 2]).expect("short slices pad");
        assert_eq!(short.total(), 3);
    }

    #[test]
    fn mean_basic() {
        let mut m = Mean::new();
        assert_eq!(m.mean(), 0.0);
        m.add(1.0);
        m.add(2.0);
        m.add(3.0);
        assert!((m.mean() - 2.0).abs() < 1e-12);
        assert_eq!(m.count(), 3);
    }

    #[test]
    fn summary_tracks_min_max_mean() {
        let mut s = Summary::new();
        assert_eq!(s.min(), None);
        for x in [5u64, 1, 9] {
            s.record(x);
        }
        assert_eq!(s.min(), Some(1));
        assert_eq!(s.max(), Some(9));
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert_eq!(format!("{s}"), "n=3 min=1 mean=5.0 max=9");
    }
}
