//! Deterministic time-ordered event queue.
//!
//! A discrete-event simulator is only reproducible if events scheduled for
//! the same cycle are dispatched in a well-defined order. [`EventQueue`]
//! guarantees FIFO order among same-cycle events by pairing every entry with
//! a monotonically increasing sequence number.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::Cycle;

/// A time-ordered queue of events with deterministic FIFO tie-breaking.
///
/// Events pushed for the same cycle are popped in push order. This makes
/// whole-system simulations bit-reproducible across runs, which the test
/// suite and the experiment harness rely on.
///
/// # Example
///
/// ```
/// use ulmt_simcore::EventQueue;
///
/// let mut q = EventQueue::new();
/// q.push(3, 'c');
/// q.push(1, 'a');
/// q.push(3, 'd');
/// assert_eq!(q.peek_time(), Some(1));
/// assert_eq!(q.pop(), Some((1, 'a')));
/// assert_eq!(q.pop(), Some((3, 'c')));
/// assert_eq!(q.pop(), Some((3, 'd')));
/// assert!(q.is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    next_seq: u64,
}

#[derive(Debug, Clone)]
struct Entry<E> {
    time: Cycle,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Creates an empty queue with space for `cap` events.
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(cap),
            next_seq: 0,
        }
    }

    /// Schedules `event` to fire at `time`.
    pub fn push(&mut self, time: Cycle, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(Entry { time, seq, event }));
    }

    /// Removes and returns the earliest event, or `None` if empty.
    pub fn pop(&mut self) -> Option<(Cycle, E)> {
        self.heap.pop().map(|Reverse(e)| (e.time, e.event))
    }

    /// Returns the firing time of the earliest event without removing it.
    pub fn peek_time(&self) -> Option<Cycle> {
        self.heap.peek().map(|Reverse(e)| e.time)
    }

    /// Returns the number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Removes all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_by_time() {
        let mut q = EventQueue::new();
        for (t, e) in [(30u64, 3u32), (10, 1), (20, 2)] {
            q.push(t, e);
        }
        assert_eq!(q.pop(), Some((10, 1)));
        assert_eq!(q.pop(), Some((20, 2)));
        assert_eq!(q.pop(), Some((30, 3)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn fifo_among_equal_times() {
        let mut q = EventQueue::new();
        for i in 0..100u32 {
            q.push(7, i);
        }
        for i in 0..100u32 {
            assert_eq!(q.pop(), Some((7, i)));
        }
    }

    #[test]
    fn interleaved_push_pop_remains_ordered() {
        let mut q = EventQueue::new();
        q.push(5, "a");
        q.push(1, "b");
        assert_eq!(q.pop(), Some((1, "b")));
        q.push(2, "c");
        q.push(5, "d");
        assert_eq!(q.pop(), Some((2, "c")));
        assert_eq!(q.pop(), Some((5, "a")));
        assert_eq!(q.pop(), Some((5, "d")));
    }

    #[test]
    fn len_and_clear() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.push(1, ());
        q.push(2, ());
        assert_eq!(q.len(), 2);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }
}
