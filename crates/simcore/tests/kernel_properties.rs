//! Property tests of the simulation kernel against reference models.

use proptest::prelude::*;
use ulmt_simcore::stats::{BinnedHistogram, Summary};
use ulmt_simcore::{EventQueue, Server};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The event queue pops in nondecreasing time order, and same-time
    /// events pop in push order (stable priority queue).
    #[test]
    fn event_queue_is_a_stable_priority_queue(times in proptest::collection::vec(0u64..32, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(t, i);
        }
        // Reference: stable sort by time.
        let mut expected: Vec<(u64, usize)> =
            times.iter().copied().zip(0..times.len()).collect();
        expected.sort_by_key(|&(t, _)| t);
        let mut popped = Vec::new();
        while let Some(item) = q.pop() {
            popped.push(item);
        }
        prop_assert_eq!(popped, expected);
    }

    /// A server never overlaps service intervals, never goes backwards,
    /// and its busy time equals the sum of durations.
    #[test]
    fn server_intervals_are_disjoint(reqs in proptest::collection::vec((0u64..1000, 1u64..50), 1..100)) {
        let mut reqs = reqs;
        reqs.sort_by_key(|&(t, _)| t); // arrivals in time order
        let mut server = Server::new();
        let mut last_end = 0u64;
        let mut total = 0u64;
        for &(t, d) in &reqs {
            let (start, end) = server.serve_with_start(t, d);
            prop_assert!(start >= t, "service before arrival");
            prop_assert!(start >= last_end, "overlapping service");
            prop_assert_eq!(end, start + d);
            last_end = end;
            total += d;
        }
        prop_assert_eq!(server.busy_cycles(), total);
        prop_assert_eq!(server.requests(), reqs.len() as u64);
    }

    /// Histogram bin counts always sum to the number of samples, and each
    /// sample lands in the bin a reference search would pick.
    #[test]
    fn histogram_matches_reference_binning(samples in proptest::collection::vec(0u64..500, 1..200)) {
        let edges = [80u64, 200, 280];
        let mut h = BinnedHistogram::new(&edges);
        let mut reference = [0u64; 4];
        for &x in &samples {
            h.record(x);
            let bin = edges.iter().position(|&e| x < e).unwrap_or(3);
            reference[bin] += 1;
        }
        prop_assert_eq!(h.counts(), &reference[..]);
        prop_assert_eq!(h.total(), samples.len() as u64);
        let frac_sum: f64 = h.fractions().iter().sum();
        prop_assert!((frac_sum - 1.0).abs() < 1e-9);
    }

    /// Summary agrees with direct min/max/mean computation.
    #[test]
    fn summary_matches_direct_computation(samples in proptest::collection::vec(0u64..10_000, 1..200)) {
        let mut s = Summary::new();
        for &x in &samples {
            s.record(x);
        }
        prop_assert_eq!(s.min(), samples.iter().copied().min());
        prop_assert_eq!(s.max(), samples.iter().copied().max());
        let mean = samples.iter().sum::<u64>() as f64 / samples.len() as f64;
        prop_assert!((s.mean() - mean).abs() < 1e-9);
    }
}
