//! Randomized property tests of the simulation kernel against reference
//! models, driven by the in-repo deterministic PRNG.

use ulmt_simcore::rng::Pcg32;
use ulmt_simcore::stats::{BinnedHistogram, Summary};
use ulmt_simcore::{EventQueue, Server};

const CASES: u64 = 128;

fn random_vec(rng: &mut Pcg32, max_len: usize, bound: u64) -> Vec<u64> {
    let len = rng.gen_range_usize(1..max_len);
    (0..len).map(|_| rng.gen_range_u64(0..bound)).collect()
}

/// The event queue pops in nondecreasing time order, and same-time
/// events pop in push order (stable priority queue).
#[test]
fn event_queue_is_a_stable_priority_queue() {
    let mut rng = Pcg32::seed_from_u64(0xe0e0);
    for _ in 0..CASES {
        let times = random_vec(&mut rng, 200, 32);
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(t, i);
        }
        // Reference: stable sort by time.
        let mut expected: Vec<(u64, usize)> = times.iter().copied().zip(0..times.len()).collect();
        expected.sort_by_key(|&(t, _)| t);
        let mut popped = Vec::new();
        while let Some(item) = q.pop() {
            popped.push(item);
        }
        assert_eq!(popped, expected);
    }
}

/// A server never overlaps service intervals, never goes backwards, and
/// its busy time equals the sum of durations.
#[test]
fn server_intervals_are_disjoint() {
    let mut rng = Pcg32::seed_from_u64(0x5e4e4);
    for _ in 0..CASES {
        let len = rng.gen_range_usize(1..100);
        let mut reqs: Vec<(u64, u64)> = (0..len)
            .map(|_| (rng.gen_range_u64(0..1000), rng.gen_range_u64(1..50)))
            .collect();
        reqs.sort_by_key(|&(t, _)| t); // arrivals in time order
        let mut server = Server::new();
        let mut last_end = 0u64;
        let mut total = 0u64;
        for &(t, d) in &reqs {
            let (start, end) = server.serve_with_start(t, d);
            assert!(start >= t, "service before arrival");
            assert!(start >= last_end, "overlapping service");
            assert_eq!(end, start + d);
            last_end = end;
            total += d;
        }
        assert_eq!(server.busy_cycles(), total);
        assert_eq!(server.requests(), reqs.len() as u64);
    }
}

/// Histogram bin counts always sum to the number of samples, and each
/// sample lands in the bin a reference search would pick.
#[test]
fn histogram_matches_reference_binning() {
    let mut rng = Pcg32::seed_from_u64(0x415706);
    for _ in 0..CASES {
        let samples = random_vec(&mut rng, 200, 500);
        let edges = [80u64, 200, 280];
        let mut h = BinnedHistogram::new(&edges);
        let mut reference = [0u64; 4];
        for &x in &samples {
            h.record(x);
            let bin = edges.iter().position(|&e| x < e).unwrap_or(3);
            reference[bin] += 1;
        }
        assert_eq!(h.counts(), &reference[..]);
        assert_eq!(h.total(), samples.len() as u64);
        let frac_sum: f64 = h.fractions().iter().sum();
        assert!((frac_sum - 1.0).abs() < 1e-9);
    }
}

/// Summary agrees with direct min/max/mean computation.
#[test]
fn summary_matches_direct_computation() {
    let mut rng = Pcg32::seed_from_u64(0x50332a);
    for _ in 0..CASES {
        let samples = random_vec(&mut rng, 200, 10_000);
        let mut s = Summary::new();
        for &x in &samples {
            s.record(x);
        }
        assert_eq!(s.min(), samples.iter().copied().min());
        assert_eq!(s.max(), samples.iter().copied().max());
        let mean = samples.iter().sum::<u64>() as f64 / samples.len() as f64;
        assert!((s.mean() - mean).abs() < 1e-9);
    }
}
