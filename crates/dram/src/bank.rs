//! Banked DRAM with open-row policy.

use ulmt_simcore::{ConfigError, Cycle, LineAddr};

/// DRAM geometry and timing (Table 3 of the paper; cycles are 1.6 GHz
/// main-processor cycles).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramConfig {
    /// Number of independent channels (Table 3: dual channel).
    pub channels: usize,
    /// Banks per channel.
    pub banks_per_channel: usize,
    /// Row-buffer size in bytes.
    pub row_bytes: u64,
    /// Core access latency on a row-buffer hit.
    pub t_row_hit: Cycle,
    /// Core access latency on a row-buffer miss (includes activation,
    /// ~tRAC).
    pub t_row_miss: Cycle,
    /// Channel occupancy to transfer one 64 B line to/from an external
    /// requester (each channel is 2 B @ 800 MHz = 1.6 GB/s, so 64 B takes
    /// 40 ns = 64 main cycles).
    pub t_transfer: Cycle,
}

impl Default for DramConfig {
    fn default() -> Self {
        DramConfig {
            channels: 2,
            banks_per_channel: 8,
            row_bytes: 4096,
            t_row_hit: 21,
            t_row_miss: 56,
            t_transfer: 64,
        }
    }
}

impl DramConfig {
    /// Total number of banks.
    pub fn num_banks(&self) -> usize {
        self.channels * self.banks_per_channel
    }

    /// Validates the geometry, returning the first inconsistency found as
    /// a typed [`ConfigError`].
    pub fn validate(&self) -> Result<(), ConfigError> {
        let err = |reason: &str| Err(ConfigError::new("DRAM", reason));
        if !self.channels.is_power_of_two() {
            return err("channel count must be a power of two");
        }
        if !self.banks_per_channel.is_power_of_two() {
            return err("bank count must be a power of two");
        }
        if !self.row_bytes.is_power_of_two() {
            return err("row size must be a power of two");
        }
        if self.t_row_miss < self.t_row_hit {
            return err("row miss cannot be faster than row hit");
        }
        if self.t_transfer == 0 {
            return err("channel transfer time must be positive");
        }
        Ok(())
    }

    /// Infallible assertion form of [`DramConfig::validate`].
    ///
    /// # Panics
    ///
    /// Panics with the [`ConfigError`] message if any dimension is zero or
    /// not a power of two where required.
    pub fn checked(&self) {
        if let Err(e) = self.validate() {
            panic!("{e}");
        }
    }
}

/// Outcome of one DRAM core access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramAccess {
    /// Core latency (row hit or miss), excluding channel transfer.
    pub latency: Cycle,
    /// `true` if the access hit in the open row.
    pub row_hit: bool,
    /// Channel the line maps to.
    pub channel: usize,
}

/// Counters for DRAM behavior.
#[derive(Debug, Clone, Copy, Default)]
pub struct DramStats {
    /// Total accesses.
    pub accesses: u64,
    /// Row-buffer hits.
    pub row_hits: u64,
}

impl DramStats {
    /// Fraction of accesses that hit the open row.
    pub fn row_hit_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.row_hits as f64 / self.accesses as f64
        }
    }
}

/// Banked DRAM with one open row per bank.
///
/// Consecutive lines interleave across channels (for bandwidth), then
/// across banks, so sequential streams enjoy row hits while random traffic
/// mostly misses — reproducing the 208 vs 243-cycle split of Table 3.
#[derive(Debug, Clone)]
pub struct Dram {
    cfg: DramConfig,
    /// Open row per bank, `None` when closed (cold).
    open_rows: Vec<Option<u64>>,
    stats: DramStats,
}

impl Dram {
    /// Creates a DRAM with all rows closed.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(cfg: DramConfig) -> Self {
        cfg.checked();
        Dram {
            open_rows: vec![None; cfg.num_banks()],
            cfg,
            stats: DramStats::default(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &DramConfig {
        &self.cfg
    }

    /// Aggregate counters.
    pub fn stats(&self) -> &DramStats {
        &self.stats
    }

    /// Channel index the line maps to.
    pub fn channel_of(&self, line: LineAddr) -> usize {
        (line.raw() as usize) & (self.cfg.channels - 1)
    }

    /// Performs one core access: updates the bank's open row and returns
    /// the resulting latency. Channel occupancy is accounted separately by
    /// the memory controller.
    pub fn access(&mut self, line: LineAddr) -> DramAccess {
        let channel = self.channel_of(line);
        let within_channel = line.raw() >> self.cfg.channels.trailing_zeros();
        let bank_in_channel = (within_channel as usize) & (self.cfg.banks_per_channel - 1);
        let bank = channel * self.cfg.banks_per_channel + bank_in_channel;
        let lines_per_row = self.cfg.row_bytes / LineAddr::L2_LINE;
        let row = (within_channel >> self.cfg.banks_per_channel.trailing_zeros()) / lines_per_row;

        let row_hit = self.open_rows[bank] == Some(row);
        self.open_rows[bank] = Some(row);
        self.stats.accesses += 1;
        if row_hit {
            self.stats.row_hits += 1;
        }
        DramAccess {
            latency: if row_hit {
                self.cfg.t_row_hit
            } else {
                self.cfg.t_row_miss
            },
            row_hit,
            channel,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_access_misses_then_hits() {
        let mut d = Dram::new(DramConfig::default());
        let a = d.access(LineAddr::new(0));
        assert!(!a.row_hit);
        assert_eq!(a.latency, 56);
        let b = d.access(LineAddr::new(0));
        assert!(b.row_hit);
        assert_eq!(b.latency, 21);
    }

    #[test]
    fn channel_interleaving_by_line() {
        let d = Dram::new(DramConfig::default());
        assert_eq!(d.channel_of(LineAddr::new(0)), 0);
        assert_eq!(d.channel_of(LineAddr::new(1)), 1);
        assert_eq!(d.channel_of(LineAddr::new(2)), 0);
    }

    #[test]
    fn different_rows_same_bank_conflict() {
        let cfg = DramConfig::default();
        let mut d = Dram::new(cfg);
        // Two lines in the same channel and bank but different rows.
        let lines_per_row = cfg.row_bytes / 64;
        let stride = (cfg.channels as u64) * (cfg.banks_per_channel as u64) * lines_per_row;
        let a = LineAddr::new(0);
        let b = LineAddr::new(stride);
        d.access(a);
        let hit_a = d.access(a);
        assert!(hit_a.row_hit);
        let miss_b = d.access(b);
        assert!(!miss_b.row_hit);
        // And the row buffer now holds b's row.
        let back_to_a = d.access(a);
        assert!(!back_to_a.row_hit);
    }

    #[test]
    fn sequential_stream_mostly_row_hits() {
        let mut d = Dram::new(DramConfig::default());
        for i in 0..1024u64 {
            d.access(LineAddr::new(i));
        }
        // 16 banks cold + occasional row crossings; overwhelmingly hits.
        assert!(
            d.stats().row_hit_ratio() > 0.9,
            "ratio {}",
            d.stats().row_hit_ratio()
        );
    }

    #[test]
    fn stats_count() {
        let mut d = Dram::new(DramConfig::default());
        d.access(LineAddr::new(0));
        d.access(LineAddr::new(0));
        assert_eq!(d.stats().accesses, 2);
        assert_eq!(d.stats().row_hits, 1);
    }
}
