#![warn(missing_docs)]

//! DRAM and front-side-bus timing models.
//!
//! Implements the memory system of Table 3 of the paper:
//!
//! * dual-channel DRAM (2 B @ 800 MHz per channel, 3.2 GB/s peak), with
//!   per-bank open-row state — a row hit costs 21 main-processor cycles at
//!   the DRAM core, a row miss 56 (the difference, 35 cycles, matches the
//!   243 − 208 row-miss penalty seen from the main processor);
//! * a split-transaction front-side bus (8 B @ 400 MHz, 3.2 GB/s peak) with
//!   utilization accounting split between demand and prefetch traffic
//!   (Figure 11);
//! * latency constants for the three request origins: the main processor,
//!   a memory processor in the North Bridge chip, and a memory processor
//!   integrated in the DRAM chip (Figure 8's `ReplMC` vs `Repl`).
//!
//! Arbitration between demand (queue 1) and prefetch (queue 3) requests is
//! performed by the system-level memory controller, which consults
//! [`Dram::channel_of`] and dispatches one transaction per channel at a
//! time.
//!
//! # Example
//!
//! ```
//! use ulmt_dram::{Dram, DramConfig};
//! use ulmt_simcore::LineAddr;
//!
//! let mut dram = Dram::new(DramConfig::default());
//! let first = dram.access(LineAddr::new(0)); // cold: row miss
//! let second = dram.access(LineAddr::new(32)); // same bank & row: row hit
//! assert!(first.latency > second.latency);
//! assert!(second.row_hit);
//! ```

pub mod bank;
pub mod fsb;

pub use bank::{Dram, DramAccess, DramConfig, DramStats};
pub use fsb::{Fsb, FsbConfig, TrafficClass};
