//! Front-side (main memory) bus model.
//!
//! The FSB is split-transaction: the request phase and the data phase
//! occupy the bus separately. Utilization is tracked per traffic class so
//! Figure 11 can attribute the increase to prefetching vs. faster
//! execution.

use ulmt_simcore::trace::BusClass;
use ulmt_simcore::{ConfigError, Cycle, Server, SharedTracer, TraceEvent};

/// Classes of FSB traffic, for the Figure 11 breakdown.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TrafficClass {
    /// Demand miss requests and their replies.
    Demand,
    /// Memory-side prefetched lines pushed to the L2 cache.
    Prefetch,
    /// Dirty line write-backs.
    WriteBack,
}

/// FSB timing parameters (Table 3: split-transaction, 8 B, 400 MHz,
/// 3.2 GB/s peak; cycles are 1.6 GHz main-processor cycles).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FsbConfig {
    /// Bus occupancy of an address/request phase (one 400 MHz bus cycle).
    pub t_request: Cycle,
    /// Bus occupancy of a 64 B data phase (64 B at 3.2 GB/s = 20 ns = 32
    /// main cycles).
    pub t_data: Cycle,
    /// One-way propagation latency between the processor and the North
    /// Bridge, *not* occupying the bus (pipelined). Chosen so the
    /// contention-free round trip from the main processor matches the
    /// 208/243-cycle figures of Table 3.
    pub t_propagate: Cycle,
}

impl Default for FsbConfig {
    fn default() -> Self {
        // Main-processor round trip = 2 * t_propagate + t_request + t_data
        //   + NB overhead (44) + DRAM row hit (21) = 208
        // => 2 * t_propagate = 208 - 4 - 32 - 44 - 21 = 107 ≈ 2 * 53.
        FsbConfig {
            t_request: 4,
            t_data: 32,
            t_propagate: 53,
        }
    }
}

impl FsbConfig {
    /// Validates the timing parameters: the bus phases must take time (a
    /// zero-occupancy phase would give the bus infinite bandwidth and
    /// break utilization accounting).
    pub fn validate(&self) -> Result<(), ConfigError> {
        let err = |reason: &str| Err(ConfigError::new("FSB", reason));
        if self.t_request == 0 {
            return err("FSB request phase must take at least one cycle");
        }
        if self.t_data == 0 {
            return err("FSB data phase must take at least one cycle");
        }
        Ok(())
    }

    /// Infallible assertion form of [`FsbConfig::validate`].
    ///
    /// # Panics
    ///
    /// Panics with the [`ConfigError`] message if a bus phase takes zero
    /// cycles.
    pub fn checked(&self) {
        if let Err(e) = self.validate() {
            panic!("{e}");
        }
    }
}

/// The front-side bus: a single FCFS resource with per-class accounting.
///
/// # Example
///
/// ```
/// use ulmt_dram::{Fsb, FsbConfig, TrafficClass};
///
/// let mut fsb = Fsb::new(FsbConfig::default());
/// let done = fsb.transfer_data(0, TrafficClass::Demand);
/// assert_eq!(done, 32);
/// assert_eq!(fsb.busy_cycles(TrafficClass::Demand), 32);
/// ```
#[derive(Debug, Clone)]
pub struct Fsb {
    cfg: FsbConfig,
    bus: Server,
    busy_by_class: [Cycle; 3],
    tracer: Option<SharedTracer>,
}

impl Fsb {
    /// Creates an idle bus.
    pub fn new(cfg: FsbConfig) -> Self {
        Fsb {
            cfg,
            bus: Server::new(),
            busy_by_class: [0; 3],
            tracer: None,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &FsbConfig {
        &self.cfg
    }

    /// Installs a shared event tracer: every bus occupancy is then
    /// recorded as a [`TraceEvent::FsbTransfer`].
    pub fn set_tracer(&mut self, tracer: SharedTracer) {
        self.tracer = Some(tracer);
    }

    /// Occupies the bus for a request phase arriving at `now`; returns the
    /// time the request has crossed the bus (excluding propagation — add
    /// [`FsbConfig::t_propagate`] for end-to-end latency).
    pub fn transfer_request(&mut self, now: Cycle, class: TrafficClass) -> Cycle {
        self.occupy(now, self.cfg.t_request, class)
    }

    /// Occupies the bus for a 64 B data phase arriving at `now`; returns
    /// the completion time.
    pub fn transfer_data(&mut self, now: Cycle, class: TrafficClass) -> Cycle {
        self.occupy(now, self.cfg.t_data, class)
    }

    fn occupy(&mut self, now: Cycle, duration: Cycle, class: TrafficClass) -> Cycle {
        self.busy_by_class[class_index(class)] += duration;
        if let Some(tracer) = &self.tracer {
            tracer.record(
                now,
                TraceEvent::FsbTransfer {
                    class: bus_class(class),
                    busy: duration,
                },
            );
        }
        self.bus.serve(now, duration)
    }

    /// Busy cycles attributed to one traffic class.
    pub fn busy_cycles(&self, class: TrafficClass) -> Cycle {
        self.busy_by_class[class_index(class)]
    }

    /// Total busy cycles across classes.
    pub fn total_busy_cycles(&self) -> Cycle {
        self.busy_by_class.iter().sum()
    }

    /// Overall utilization over `elapsed` cycles.
    pub fn utilization(&self, elapsed: Cycle) -> f64 {
        if elapsed == 0 {
            0.0
        } else {
            self.total_busy_cycles() as f64 / elapsed as f64
        }
    }

    /// Utilization attributable to one class over `elapsed` cycles.
    pub fn utilization_of(&self, class: TrafficClass, elapsed: Cycle) -> f64 {
        if elapsed == 0 {
            0.0
        } else {
            self.busy_cycles(class) as f64 / elapsed as f64
        }
    }
}

fn class_index(class: TrafficClass) -> usize {
    match class {
        TrafficClass::Demand => 0,
        TrafficClass::Prefetch => 1,
        TrafficClass::WriteBack => 2,
    }
}

/// The tracer's crate-independent mirror of [`TrafficClass`].
fn bus_class(class: TrafficClass) -> BusClass {
    match class {
        TrafficClass::Demand => BusClass::Demand,
        TrafficClass::Prefetch => BusClass::Prefetch,
        TrafficClass::WriteBack => BusClass::WriteBack,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serializes_transfers() {
        let mut fsb = Fsb::new(FsbConfig::default());
        let a = fsb.transfer_data(0, TrafficClass::Demand);
        let b = fsb.transfer_data(0, TrafficClass::Prefetch);
        assert_eq!(a, 32);
        assert_eq!(b, 64);
    }

    #[test]
    fn per_class_accounting() {
        let mut fsb = Fsb::new(FsbConfig::default());
        fsb.transfer_data(0, TrafficClass::Demand);
        fsb.transfer_data(0, TrafficClass::Demand);
        fsb.transfer_data(0, TrafficClass::Prefetch);
        fsb.transfer_request(0, TrafficClass::WriteBack);
        assert_eq!(fsb.busy_cycles(TrafficClass::Demand), 64);
        assert_eq!(fsb.busy_cycles(TrafficClass::Prefetch), 32);
        assert_eq!(fsb.busy_cycles(TrafficClass::WriteBack), 4);
        assert_eq!(fsb.total_busy_cycles(), 100);
        assert!((fsb.utilization(1000) - 0.1).abs() < 1e-12);
        assert!((fsb.utilization_of(TrafficClass::Prefetch, 1000) - 0.032).abs() < 1e-12);
    }

    #[test]
    fn contention_free_round_trip_matches_table3() {
        // 2 * propagate + request + data + NB overhead + DRAM row hit = 208.
        let cfg = FsbConfig::default();
        let rt = 2 * cfg.t_propagate + cfg.t_request + cfg.t_data + 44 + 21;
        assert_eq!(rt, 207); // 1 cycle of rounding slack vs. the paper's 208
        let rt_miss = 2 * cfg.t_propagate + cfg.t_request + cfg.t_data + 44 + 56;
        assert_eq!(rt_miss, 242); // vs. the paper's 243
    }
}
