//! DRAM and FSB behavioral tests beyond the unit basics: address-mapping
//! coverage, row-locality regimes, and bus accounting invariants.

use ulmt_dram::{Dram, DramConfig, Fsb, FsbConfig, TrafficClass};
use ulmt_simcore::LineAddr;

#[test]
fn channel_mapping_is_balanced_for_dense_ranges() {
    let d = Dram::new(DramConfig::default());
    let mut per_channel = [0u64; 2];
    for l in 0..4096u64 {
        per_channel[d.channel_of(LineAddr::new(l))] += 1;
    }
    assert_eq!(per_channel[0], per_channel[1]);
}

#[test]
fn random_traffic_mostly_row_misses() {
    let mut d = Dram::new(DramConfig::default());
    for i in 0..4096u64 {
        // A large-stride pseudo-random walk.
        d.access(LineAddr::new((i * 7919) % (1 << 22)));
    }
    assert!(
        d.stats().row_hit_ratio() < 0.2,
        "random traffic should thrash rows: {}",
        d.stats().row_hit_ratio()
    );
}

#[test]
fn blocked_sequential_traffic_mostly_row_hits() {
    let mut d = Dram::new(DramConfig::default());
    for l in 0..4096u64 {
        d.access(LineAddr::new(l));
    }
    assert!(
        d.stats().row_hit_ratio() > 0.9,
        "sequential traffic should hit rows: {}",
        d.stats().row_hit_ratio()
    );
}

#[test]
fn interleaved_streams_thrash_shared_banks() {
    // Two streams far apart, interleaved reference-by-reference: each
    // access to a bank alternates rows.
    let mut d = Dram::new(DramConfig::default());
    for i in 0..2048u64 {
        d.access(LineAddr::new(i));
        d.access(LineAddr::new(1 << 20 | i));
    }
    assert!(
        d.stats().row_hit_ratio() < 0.1,
        "interleaved far streams must conflict: {}",
        d.stats().row_hit_ratio()
    );
}

#[test]
fn single_channel_config_routes_everything_to_zero() {
    let cfg = DramConfig {
        channels: 1,
        ..DramConfig::default()
    };
    let d = Dram::new(cfg);
    for l in [0u64, 1, 17, 4095] {
        assert_eq!(d.channel_of(LineAddr::new(l)), 0);
    }
}

#[test]
fn fsb_total_equals_sum_of_classes() {
    let mut fsb = Fsb::new(FsbConfig::default());
    let mut t = 0;
    for i in 0..300u64 {
        let class = match i % 3 {
            0 => TrafficClass::Demand,
            1 => TrafficClass::Prefetch,
            _ => TrafficClass::WriteBack,
        };
        t = fsb.transfer_data(t, class);
    }
    let sum = fsb.busy_cycles(TrafficClass::Demand)
        + fsb.busy_cycles(TrafficClass::Prefetch)
        + fsb.busy_cycles(TrafficClass::WriteBack);
    assert_eq!(sum, fsb.total_busy_cycles());
    assert_eq!(sum, 300 * FsbConfig::default().t_data);
    // Back-to-back transfers: the bus is 100% utilized over the interval.
    assert!((fsb.utilization(t) - 1.0).abs() < 1e-9);
}

#[test]
fn fsb_requests_cost_less_than_data() {
    let cfg = FsbConfig::default();
    assert!(cfg.t_request < cfg.t_data);
    let mut fsb = Fsb::new(cfg);
    let r = fsb.transfer_request(0, TrafficClass::Demand);
    let d = fsb.transfer_data(r, TrafficClass::Demand);
    assert_eq!(r, cfg.t_request);
    assert_eq!(d, cfg.t_request + cfg.t_data);
}
