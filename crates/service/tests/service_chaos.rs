//! Chaos harness for the self-healing prefetch service.
//!
//! Every test runs a *control* service (no faults) and a *chaos* service
//! (deterministic, seeded fault injection) over the same observation
//! stream, with a client that resubmits any batch whose ack never
//! arrived — at-least-once delivery on top of the shard's exactly-once
//! journal. The headline assertions:
//!
//! * a shard killed mid-stream recovers **bit-identically** (same table
//!   fingerprints, same counters, same virtual clock and utilization)
//!   whenever the journal window covers the checkpoint gap;
//! * when the window is too small, recovery is explicitly **lossy** with
//!   an exact `dropped_batches` count and the accounting identity
//!   `control.batches == recovered.batches + dropped` holds exactly.

use std::time::{Duration, Instant};

use ulmt_service::{
    PrefetchService, RecoveryCause, RecoveryOutcome, ServiceConfig, ServiceError, Session,
    ShardState, SupervisionConfig, TenantSpec, TrySubmit,
};
use ulmt_simcore::{LineAddr, ServiceFaultConfig};

const BATCH: usize = 16;

/// A deterministic per-tenant miss stream, chopped into batches.
fn batches(tenant: u32, count: usize) -> Vec<Vec<LineAddr>> {
    let mut x = 0xDEAD_BEEF_u64 ^ ((tenant as u64) << 32);
    (0..count)
        .map(|_| {
            (0..BATCH)
                .map(|_| {
                    x = x
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    LineAddr::new((x >> 40) & 0x3FF)
                })
                .collect()
        })
        .collect()
}

/// Supervision tuned for fast, deterministic tests: quick ticks, quick
/// wedge detection, tiny backoff, and *no* shedding — the client rides
/// out recoveries by resubmitting, so nothing is ever dropped.
fn fast_supervision(checkpoint_every: u64, journal_window: usize) -> SupervisionConfig {
    SupervisionConfig {
        max_restarts: 8,
        tick_ms: 2,
        wedge_ticks: 5,
        checkpoint_every,
        journal_window,
        backoff_base_ms: 1,
        backoff_max_ms: 8,
        shed_when_down: false,
        control_timeout_ms: 10_000,
    }
}

fn cfg(supervision: SupervisionConfig, fault: Option<ServiceFaultConfig>) -> ServiceConfig {
    ServiceConfig {
        shards: 1,
        queue_depth: 64,
        supervision,
        fault,
        ..ServiceConfig::default()
    }
}

/// Submits one batch and waits for its ack, resubmitting through crashes
/// and recoveries. Safe because the shard journals before acking: a
/// batch whose ack we never saw was never journaled, so replaying it
/// cannot double-count.
fn submit_until_acked(session: &mut Session, obs: &[LineAddr]) {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        assert!(
            Instant::now() < deadline,
            "batch not acked within 30s — recovery wedged?"
        );
        let pending = match session.submit(obs.to_vec()) {
            Ok(p) => p,
            Err(ServiceError::Timeout | ServiceError::Closed | ServiceError::ShardDown(_)) => {
                std::thread::sleep(Duration::from_millis(1));
                continue;
            }
            Err(e) => panic!("unrecoverable submit error: {e}"),
        };
        match pending.wait() {
            Ok(reply) if reply.error.is_none() && !reply.shed => return,
            // Rejected or shed: nothing was learned; try again.
            Ok(_) => continue,
            // The worker died with the batch unacked; resubmit.
            Err(_) => continue,
        }
    }
}

/// Blocks until the service has recorded `n` recoveries and the shard is
/// back up (or failed for good, when `n` exceeds the restart budget).
fn wait_for_recoveries(service: &PrefetchService, n: usize) {
    let deadline = Instant::now() + Duration::from_secs(30);
    while service.recovery_reports().len() < n || service.shard_state(0) != ShardState::Up {
        assert!(
            Instant::now() < deadline,
            "recovery did not complete in 30s"
        );
        std::thread::sleep(Duration::from_millis(1));
    }
}

/// Feeds two tenants' batch lists through a service in a deterministic
/// interleave (A1 B1 A2 B2 ...), ack-by-ack, and returns the per-tenant
/// fingerprints plus the shard's aggregate stats.
fn run_interleaved(
    service: &PrefetchService,
    streams: &[(u32, Vec<Vec<LineAddr>>)],
) -> (Vec<(u32, u64)>, ulmt_service::ShardStats) {
    let mut sessions: Vec<Session> = streams
        .iter()
        .map(|&(t, _)| service.open(t, TenantSpec::repl(512)).expect("open"))
        .collect();
    let rounds = streams.iter().map(|(_, b)| b.len()).max().unwrap_or(0);
    for round in 0..rounds {
        for (i, (_, stream)) in streams.iter().enumerate() {
            if let Some(obs) = stream.get(round) {
                submit_until_acked(&mut sessions[i], obs);
            }
        }
    }
    let fps = sessions
        .iter_mut()
        .map(|s| (s.tenant(), s.fingerprint().expect("fingerprint")))
        .collect();
    let stats = service.shard_stats(0).expect("shard stats");
    (fps, stats)
}

#[test]
fn kill_recovery_is_bit_identical_within_journal_window() {
    let streams = vec![(1u32, batches(1, 20)), (2u32, batches(2, 20))];
    // Checkpoint every 8 acked batches, journal the last 16: the window
    // always covers the gap, so recovery must be clean.
    let control_svc = PrefetchService::start(cfg(fast_supervision(8, 16), None));
    let (control_fps, control_stats) = run_interleaved(&control_svc, &streams);
    control_svc.shutdown();
    assert_eq!(control_stats.batches, 40);

    // Kill shard 0 the moment it would accept batch seq 21 (mid-stream,
    // past two checkpoints). The fault budget fires exactly once, so the
    // client's resubmission of the killed batch goes through.
    let fault = ServiceFaultConfig::disabled(0xC0FFEE).kill(0, 21);
    let chaos_svc = PrefetchService::start(cfg(fast_supervision(8, 16), Some(fault)));
    let (chaos_fps, chaos_stats) = run_interleaved(&chaos_svc, &streams);
    wait_for_recoveries(&chaos_svc, 1);
    let reports = chaos_svc.recovery_reports();
    let final_reports = chaos_svc.shutdown();

    assert_eq!(reports.len(), 1, "the kill budget fires exactly once");
    let r = &reports[0];
    assert_eq!(r.cause, RecoveryCause::Panic);
    assert!(r.is_clean(), "window covers the gap: {:?}", r.outcome);
    assert_eq!(r.dropped_batches(), 0);
    assert_eq!(
        r.checkpoint_seq, 16,
        "recovery starts from the seq-16 checkpoint"
    );
    assert_eq!(
        r.outcome,
        RecoveryOutcome::Clean {
            replayed_batches: 4
        },
        "batches 17..=20 replay from the journal"
    );
    assert_eq!(
        r.resumed_seq, 20,
        "resumes right after the last acked batch"
    );
    assert_eq!(r.epoch, 1);
    assert_eq!(r.tenants_restored, 2);
    assert!(r.checkpoint_bytes > 0);
    assert!(r.latency_nanos > 0);

    // The headline: every per-tenant fingerprint AND the shard's entire
    // counter block (batches, observations, prefetches, virtual clock,
    // busy cycles) are bit-identical to the uninterrupted control.
    assert_eq!(
        chaos_fps, control_fps,
        "tables bit-identical after recovery"
    );
    assert_eq!(
        chaos_stats, control_stats,
        "counters and clock bit-identical"
    );

    // The shutdown reports carry the recovery history.
    assert_eq!(final_reports[0].recoveries.len(), 1);
    assert_eq!(
        final_reports[0].epoch, 1,
        "final report comes from the restarted epoch"
    );
}

#[test]
fn wedge_recovery_fences_and_restores_bit_identically() {
    let streams = vec![(1u32, batches(1, 30))];
    let control_svc = PrefetchService::start(cfg(fast_supervision(8, 16), None));
    let (control_fps, control_stats) = run_interleaved(&control_svc, &streams);
    control_svc.shutdown();

    // Wedge (stop consuming without dying) at batch seq 12. The
    // supervisor's watermark scan must fence and rebuild the shard.
    let fault = ServiceFaultConfig::disabled(0xBAD_F00D).wedge(0, 12);
    let chaos_svc = PrefetchService::start(cfg(fast_supervision(8, 16), Some(fault)));
    let (chaos_fps, chaos_stats) = run_interleaved(&chaos_svc, &streams);
    wait_for_recoveries(&chaos_svc, 1);
    let reports = chaos_svc.recovery_reports();
    chaos_svc.shutdown();

    assert_eq!(reports.len(), 1, "the wedge budget fires exactly once");
    assert_eq!(reports[0].cause, RecoveryCause::Wedge);
    assert!(reports[0].is_clean());
    assert_eq!(chaos_fps, control_fps);
    assert_eq!(chaos_stats, control_stats);
}

#[test]
fn lossy_recovery_reports_exact_dropped_batches() {
    let stream = vec![(7u32, batches(7, 30))];
    let control_svc = PrefetchService::start(cfg(fast_supervision(8, 16), None));
    let (_, control_stats) = run_interleaved(&control_svc, &stream);
    control_svc.shutdown();
    assert_eq!(control_stats.batches, 30);

    // Checkpoint interval larger than the run (no checkpoint ever lands)
    // and a journal of only 4 batches: killing at seq 21 leaves batches
    // 1..=16 acked but unrecoverable — exactly 16 dropped.
    let fault = ServiceFaultConfig::disabled(0x10551).kill(0, 21);
    let chaos_svc = PrefetchService::start(cfg(fast_supervision(1_000, 4), Some(fault)));
    let (_, chaos_stats) = run_interleaved(&chaos_svc, &stream);
    wait_for_recoveries(&chaos_svc, 1);
    let reports = chaos_svc.recovery_reports();
    chaos_svc.shutdown();

    assert_eq!(reports.len(), 1);
    let r = &reports[0];
    assert!(!r.is_clean());
    assert_eq!(
        r.outcome,
        RecoveryOutcome::Lossy {
            replayed_batches: 4,
            dropped_batches: 16,
        },
        "journal retained seqs 17..=20; 1..=16 are the exact loss"
    );
    assert_eq!(r.checkpoint_seq, 0, "no checkpoint ever landed");

    // Conservation identity: every control batch is either in the
    // recovered counters or in the reported drop — nothing vanishes
    // silently, nothing is double-counted.
    assert_eq!(
        chaos_stats.batches + r.dropped_batches(),
        control_stats.batches,
        "accepted + dropped == control"
    );
    assert_eq!(
        chaos_stats.observed + r.dropped_batches() * BATCH as u64,
        control_stats.observed,
        "observation conservation (fixed-size batches)"
    );
}

#[test]
fn down_shard_sheds_with_immediate_acks_and_exact_counts() {
    // Long backoff keeps the shard visibly Down after the kill, so the
    // shedding path is reachable deterministically.
    let sup = SupervisionConfig {
        backoff_base_ms: 300,
        backoff_max_ms: 300,
        shed_when_down: true,
        ..fast_supervision(8, 16)
    };
    let fault = ServiceFaultConfig::disabled(0x5EED).kill(0, 3);
    let service = PrefetchService::start(cfg(sup, Some(fault)));
    let mut session = service.open(1, TenantSpec::repl(256)).unwrap();
    let stream = batches(1, 6);
    submit_until_acked(&mut session, &stream[0]);
    submit_until_acked(&mut session, &stream[1]);

    // Trip the kill (fires at seq 3) and wait until the supervisor has
    // taken the shard down; the restart backoff holds it there.
    let tripwire = session.submit(stream[2].clone()).unwrap();
    let deadline = Instant::now() + Duration::from_secs(30);
    while service.shard_state(0) != ShardState::Down {
        assert!(Instant::now() < deadline, "shard never went down");
        std::thread::sleep(Duration::from_millis(1));
    }
    assert!(
        tripwire.wait().is_err(),
        "the killed batch was never acked (safe to resubmit)"
    );

    // Degraded mode: submissions against the down shard are shed —
    // immediate ack, no learning, exactly counted.
    let reply = match session.try_submit(stream[2].clone()) {
        TrySubmit::Enqueued(p) => p.wait().unwrap(),
        other => panic!("expected an immediate shed ack, got {other:?}"),
    };
    assert!(reply.shed, "ack is flagged as shed");
    assert_eq!(reply.observed, 0, "nothing was learned");
    let reply2 = session.submit(stream[3].clone()).unwrap().wait().unwrap();
    assert!(reply2.shed, "blocking submit sheds too under the policy");

    // After recovery, the next accepted batch flushes the shed count.
    wait_for_recoveries(&service, 1);
    submit_until_acked(&mut session, &stream[4]);
    let stats = session.stats().unwrap();
    assert_eq!(stats.shed, 2, "both shed acks are counted exactly");
    assert_eq!(
        stats.batches, 3,
        "two pre-kill batches plus the post-recovery one"
    );
    service.shutdown();
}

#[test]
fn failed_shard_reports_typed_errors_on_every_control_path() {
    // Zero restart budget: the first kill parks the shard in Failed.
    let sup = SupervisionConfig {
        max_restarts: 0,
        shed_when_down: false,
        ..fast_supervision(8, 16)
    };
    let fault = ServiceFaultConfig::disabled(0xDEAD).kill(0, 2);
    let service = PrefetchService::start(cfg(sup, Some(fault)));
    let mut session = service.open(1, TenantSpec::repl(256)).unwrap();
    let stream = batches(1, 3);
    submit_until_acked(&mut session, &stream[0]);
    let tripwire = session.submit(stream[1].clone()).unwrap();
    assert!(tripwire.wait().is_err(), "killed batch is unacked");
    let deadline = Instant::now() + Duration::from_secs(30);
    while service.shard_state(0) != ShardState::Failed {
        assert!(Instant::now() < deadline, "shard never reached Failed");
        std::thread::sleep(Duration::from_millis(1));
    }

    // Every control-plane road to the dead shard ends in a *typed*
    // error — not a hang, not a dropped reply channel.
    assert!(matches!(
        session.fingerprint(),
        Err(ServiceError::ShardDown(0))
    ));
    assert!(matches!(
        session.snapshot(),
        Err(ServiceError::ShardDown(0))
    ));
    assert!(matches!(session.stats(), Err(ServiceError::ShardDown(0))));
    assert!(matches!(
        service.shard_stats(0),
        Err(ServiceError::ShardDown(0))
    ));
    assert!(matches!(
        service.pause_shard(0),
        Err(ServiceError::ShardDown(0))
    ));
    assert!(matches!(
        service.open(99, TenantSpec::base(64)),
        Err(ServiceError::ShardDown(0))
    ));
    match session.submit(stream[2].clone()) {
        Err(ServiceError::ShardDown(0)) => {}
        other => panic!("expected ShardDown from submit, got {other:?}"),
    }
    match session.try_submit(stream[2].clone()) {
        TrySubmit::Closed(obs) => assert_eq!(obs.len(), BATCH, "batch handed back"),
        other => panic!("expected Closed from try_submit, got {other:?}"),
    }
    // Shutdown still works and reports the failed shard from its last
    // checkpoint.
    let reports = service.shutdown();
    assert_eq!(reports.len(), 1);
}

#[test]
fn snapshot_under_concurrent_ingestion_is_prefix_consistent() {
    // Tenant A's queue is pipelined (no per-batch waits) while tenant B
    // floods the same shard from another thread; a snapshot of A taken
    // mid-stream must be *exactly* the table after the batches queued
    // ahead of it — an atomic batch-boundary prefix, never a torn state.
    let service = PrefetchService::start(cfg(fast_supervision(8, 16), None));
    let mut a = service.open(1, TenantSpec::repl(512)).unwrap();
    let mut b = service.open(2, TenantSpec::repl(512)).unwrap();
    let a_batches = batches(1, 40);
    let b_batches = batches(2, 40);
    let split = 17;

    let (snap, pending) = std::thread::scope(|scope| {
        scope.spawn(move || {
            for obs in &b_batches {
                submit_until_acked(&mut b, obs);
            }
        });
        let mut pending = Vec::new();
        for obs in &a_batches[..split] {
            pending.push(a.submit(obs.to_vec()).unwrap());
        }
        // FIFO pins the snapshot to exactly the `split` boundary even
        // though the worker is racing us through A's queue and B's
        // stream is interleaving on the same shard.
        let snap = a.snapshot().unwrap();
        for obs in &a_batches[split..] {
            pending.push(a.submit(obs.to_vec()).unwrap());
        }
        (snap, pending)
    });
    for p in pending {
        assert!(p.wait().unwrap().error.is_none());
    }
    service.drain().unwrap();
    let final_fp = a.fingerprint().unwrap();

    // Restoring the snapshot and replaying the suffix must land exactly
    // on the live table: the snapshot is the precise `split` prefix.
    let replay_svc = PrefetchService::start(cfg(fast_supervision(8, 16), None));
    let mut warm = replay_svc.open(1, TenantSpec::repl(512)).unwrap();
    warm.restore(snap).unwrap();
    for obs in &a_batches[split..] {
        submit_until_acked(&mut warm, obs);
    }
    assert_eq!(
        warm.fingerprint().unwrap(),
        final_fp,
        "snapshot + suffix replay == uninterrupted stream"
    );
    service.shutdown();
    replay_svc.shutdown();
}

#[test]
fn piggyback_counts_survive_an_epoch_fence_under_resubmission() {
    // Regression for the delta-flush accounting bug: the old scheme
    // zeroed the session's rejected/shed deltas the moment a batch was
    // *enqueued*. If the worker then died before processing it, the
    // deltas died with the queue — and a client retrying after
    // `TimedOut`/`ShardDown` could never report them again. Cumulative
    // piggyback counters make the merge idempotent: this test crashes
    // the shard with count-carrying batches still queued, resubmits them
    // (at-least-once), and demands the conservation identity exactly.
    let sup = fast_supervision(8, 16);
    let fault = ServiceFaultConfig::disabled(0xFE11CE).kill(0, 3);
    let service = PrefetchService::start(ServiceConfig {
        shards: 1,
        queue_depth: 4,
        supervision: sup,
        fault: Some(fault),
        ..ServiceConfig::default()
    });
    let mut session = service.open(1, TenantSpec::repl(256)).unwrap();
    let stream = batches(1, 7);

    // Two acked batches put the journal at seq 2; the kill budget fires
    // on the next accepted batch (seq 3).
    submit_until_acked(&mut session, &stream[0]);
    submit_until_acked(&mut session, &stream[1]);

    // Freeze the worker, fill the tenant's depth-4 queue, and pile up
    // exactly 5 rejections plus 1 bounded-submit timeout — 6 counts the
    // session now carries, with their flush batches *still queued*.
    let pause = service.pause_shard(0).unwrap();
    let mut queued = Vec::new();
    let mut rejected = 0u64;
    for i in 0..9 {
        match session.try_submit(stream[2 + (i % 4)].clone()) {
            TrySubmit::Enqueued(p) => queued.push(p),
            TrySubmit::Full(_) => rejected += 1,
            other => panic!("unexpected submit outcome: {other:?}"),
        }
    }
    assert_eq!(queued.len(), 4, "depth-4 tenant queue holds 4");
    assert_eq!(rejected, 5);
    match session.submit_timeout(stream[6].clone(), Duration::from_millis(20)) {
        TrySubmit::TimedOut(_) => rejected += 1,
        other => panic!("expected TimedOut, got {other:?}"),
    }
    assert_eq!(rejected, 6);

    // Resume: the first queued batch trips the kill. The worker dies
    // with all 4 count-carrying batches unacked; their reply channels
    // drop, which is the client's resubmission signal.
    drop(pause);
    for p in queued {
        assert!(
            p.wait().is_err(),
            "queued batches die with the epoch, unacked"
        );
    }
    wait_for_recoveries(&service, 1);

    // At-least-once: resubmit everything that was never acked. The
    // resubmissions carry the same cumulative totals, so the counts are
    // applied exactly once no matter how many retries it takes.
    for obs in &stream[2..6] {
        submit_until_acked(&mut session, obs);
    }
    service.drain().unwrap();

    let stats = session.stats().unwrap();
    assert_eq!(
        stats.rejected, rejected,
        "every rejection survives the fence; none double-count"
    );
    assert_eq!(stats.batches, 6, "2 pre-kill + 4 resubmitted");
    assert_eq!(stats.observed, 6 * BATCH as u64);
    assert_eq!(stats.shed, 0);
    let shard = service.shard_stats(0).unwrap();
    assert_eq!(shard.rejected, rejected, "shard aggregate agrees");
    service.shutdown();
}

#[test]
fn per_tenant_stats_sum_to_shard_totals_through_kill_and_shedding() {
    // Cross-tenant conservation: after a mixed run with a kill-recovery
    // and degraded-mode shedding, the per-tenant counter blocks must sum
    // exactly to the shard's aggregates — nothing lost in recovery,
    // nothing double-counted by resubmission, shed and rejected counted
    // to the right tenant.
    let sup = SupervisionConfig {
        backoff_base_ms: 300,
        backoff_max_ms: 300,
        shed_when_down: true,
        ..fast_supervision(8, 16)
    };
    let fault = ServiceFaultConfig::disabled(0x5CA1E).kill(0, 3);
    let service = PrefetchService::start(ServiceConfig {
        shards: 1,
        queue_depth: 4,
        supervision: sup,
        fault: Some(fault),
        ..ServiceConfig::default()
    });
    let mut a = service.open(1, TenantSpec::repl(256)).unwrap();
    let mut b = service.open(2, TenantSpec::repl(256)).unwrap();
    let a_stream = batches(1, 8);
    let b_stream = batches(2, 8);

    submit_until_acked(&mut a, &a_stream[0]);
    submit_until_acked(&mut b, &b_stream[0]);

    // Trip the kill (seq 3) and hold the shard Down on its backoff.
    let tripwire = a.submit(a_stream[1].clone()).unwrap();
    let deadline = Instant::now() + Duration::from_secs(30);
    while service.shard_state(0) != ShardState::Down {
        assert!(Instant::now() < deadline, "shard never went down");
        std::thread::sleep(Duration::from_millis(1));
    }
    let _ = tripwire.wait();

    // Degraded mode: both tenants shed — A twice, B once.
    for (session, stream, sheds) in [(&mut a, &a_stream, 2usize), (&mut b, &b_stream, 1usize)] {
        for k in 0..sheds {
            let reply = match session.try_submit(stream[2 + k].clone()) {
                TrySubmit::Enqueued(p) => p.wait().unwrap(),
                other => panic!("expected shed ack, got {other:?}"),
            };
            assert!(reply.shed);
        }
    }

    wait_for_recoveries(&service, 1);
    // Resubmit A's killed batch, then rack up rejections against a
    // paused shard: A gets 3, B gets 2 — distinct, so a cross-tenant
    // mixup cannot cancel out.
    submit_until_acked(&mut a, &a_stream[1]);
    let pause = service.pause_shard(0).unwrap();
    let mut queued = Vec::new();
    let mut a_rejected = 0u64;
    let mut b_rejected = 0u64;
    for (session, stream, want, got) in [
        (&mut a, &a_stream, 3u64, &mut a_rejected),
        (&mut b, &b_stream, 2u64, &mut b_rejected),
    ] {
        let mut i = 0;
        while *got < want {
            match session.try_submit(stream[4 + (i % 4)].clone()) {
                TrySubmit::Enqueued(p) => queued.push(p),
                TrySubmit::Full(_) => *got += 1,
                other => panic!("unexpected: {other:?}"),
            }
            i += 1;
        }
    }
    drop(pause);
    for p in queued {
        let reply = p.wait().unwrap();
        assert!(reply.error.is_none());
    }
    // One more accepted batch per tenant flushes the final tails.
    submit_until_acked(&mut a, &a_stream[7]);
    submit_until_acked(&mut b, &b_stream[7]);
    service.drain().unwrap();

    let sa = a.stats().unwrap();
    let sb = b.stats().unwrap();
    let shard = service.shard_stats(0).unwrap();
    assert_eq!(sa.shed, 2);
    assert_eq!(sb.shed, 1);
    assert_eq!(sa.rejected, a_rejected);
    assert_eq!(sb.rejected, b_rejected);
    assert_eq!(sa.batches + sb.batches, shard.batches, "batches sum");
    assert_eq!(sa.observed + sb.observed, shard.observed, "observed sum");
    assert_eq!(sa.rejected + sb.rejected, shard.rejected, "rejected sum");
    assert_eq!(sa.shed + sb.shed, shard.shed, "shed sum");
    assert_eq!(
        sa.prefetches + sb.prefetches,
        shard.prefetches,
        "prefetches sum"
    );
    service.shutdown();
}

#[test]
fn slow_consumer_fault_perturbs_timing_but_never_state() {
    let streams = vec![(3u32, batches(3, 25))];
    let control_svc = PrefetchService::start(cfg(fast_supervision(8, 16), None));
    let (control_fps, control_stats) = run_interleaved(&control_svc, &streams);
    control_svc.shutdown();

    let fault = ServiceFaultConfig::disabled(0x51_0FF).slow(0.5, 10_000);
    let chaos_svc = PrefetchService::start(cfg(fast_supervision(8, 16), Some(fault)));
    let (chaos_fps, chaos_stats) = run_interleaved(&chaos_svc, &streams);
    chaos_svc.shutdown();

    assert_eq!(chaos_fps, control_fps, "slowdowns never change learning");
    assert_eq!(chaos_stats.batches, control_stats.batches);
    assert_eq!(chaos_stats.observed, control_stats.observed);
    assert!(
        chaos_stats.elapsed_cycles > control_stats.elapsed_cycles,
        "injected stalls show up on the virtual clock"
    );
}
