//! Fairness and admission-control integration tests.
//!
//! The ingestion layer promises three things at once:
//!
//! * **isolation** — one tenant's backlog cannot consume another
//!   tenant's queue space or starve its service slot;
//! * **weighted fairness** — the deficit-round-robin scheduler serves
//!   tenants proportionally to their configured weights;
//! * **determinism** — scheduling policy and weights change only *when*
//!   a tenant's batches are served, never their per-tenant order, so
//!   table fingerprints are bit-identical across policies.
//!
//! Every test freezes the shard with a [`PauseGuard`], builds a known
//! backlog, and resumes — the drain order is then fully deterministic
//! and observable through [`TraceEvent::ShardBatch`] records.

use std::time::Duration;

use ulmt_service::{
    AdmissionQuota, PrefetchService, SchedulerPolicy, ServiceConfig, Session, SupervisionConfig,
    TenantSpec, TrySubmit,
};
use ulmt_simcore::{LineAddr, TraceConfig, TraceEvent};

const BATCH: usize = 16;

fn batches(tenant: u32, count: usize) -> Vec<Vec<LineAddr>> {
    let mut x = 0xFA1C_0DE5_u64 ^ ((tenant as u64) << 32);
    (0..count)
        .map(|_| {
            (0..BATCH)
                .map(|_| {
                    x = x
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    LineAddr::new((x >> 40) & 0x3FF)
                })
                .collect()
        })
        .collect()
}

fn traced_cfg(scheduler: SchedulerPolicy, queue_depth: usize) -> ServiceConfig {
    ServiceConfig {
        shards: 1,
        queue_depth,
        scheduler,
        // One batch costs exactly one quantum, so a weight-1 tenant is
        // served one batch per scheduler visit and a weight-w tenant w.
        quantum_obs: BATCH,
        supervision: SupervisionConfig {
            tick_ms: 2,
            control_timeout_ms: 10_000,
            ..SupervisionConfig::default()
        },
        trace: Some(TraceConfig::default()),
        ..ServiceConfig::default()
    }
}

/// Tenant ids of every `ShardBatch` trace record, oldest first.
fn served_order(service: PrefetchService) -> Vec<u32> {
    let reports = service.shutdown();
    let trace = reports[0].trace.as_ref().expect("tracing was enabled");
    assert_eq!(trace.overwritten(), 0, "ring must hold the full stream");
    trace
        .iter()
        .filter_map(|e| match e.event {
            TraceEvent::ShardBatch { tenant, .. } => Some(tenant),
            _ => None,
        })
        .collect()
}

fn enqueue(session: &mut Session, obs: &[LineAddr]) -> ulmt_service::PendingBatch {
    match session.try_submit(obs.to_vec()) {
        TrySubmit::Enqueued(p) => p,
        other => panic!("expected Enqueued, got {other:?}"),
    }
}

#[test]
fn drr_serves_backlogged_tenants_in_weighted_round_robin_order() {
    let service = PrefetchService::start(traced_cfg(SchedulerPolicy::Drr, 16));
    let mut hot = service
        .open(1, TenantSpec::repl(256).with_weight(2))
        .unwrap();
    let mut l1 = service.open(2, TenantSpec::repl(256)).unwrap();
    let mut l2 = service.open(3, TenantSpec::repl(256)).unwrap();

    let hot_stream = batches(1, 6);
    let light1 = batches(2, 2);
    let light2 = batches(3, 2);

    // Build the whole backlog behind a paused worker so the drain order
    // reflects the scheduler alone, not arrival timing.
    let pause = service.pause_shard(0).unwrap();
    let mut pending = Vec::new();
    for obs in &hot_stream {
        pending.push(enqueue(&mut hot, obs));
    }
    for (s, stream) in [(&mut l1, &light1), (&mut l2, &light2)] {
        for obs in stream.iter() {
            pending.push(enqueue(s, obs));
        }
    }
    drop(pause);
    for p in pending {
        assert!(p.wait().unwrap().error.is_none());
    }
    service.drain().unwrap();

    // Weight 2 earns the hot tenant two batches per visit; the weight-1
    // tenants get one each. Registration order fixes the visit order.
    assert_eq!(
        served_order(service),
        vec![1, 1, 2, 3, 1, 1, 2, 3, 1, 1],
        "weighted round-robin drain order"
    );
}

#[test]
fn fifo_policy_reproduces_global_arrival_order() {
    let service = PrefetchService::start(traced_cfg(SchedulerPolicy::Fifo, 16));
    let mut a = service.open(1, TenantSpec::repl(256)).unwrap();
    let mut b = service.open(2, TenantSpec::repl(256)).unwrap();
    let mut c = service.open(3, TenantSpec::repl(256)).unwrap();

    let sa = batches(1, 3);
    let sb = batches(2, 2);
    let sc = batches(3, 1);

    let arrival = [1u32, 2, 3, 2, 1, 1];
    let pause = service.pause_shard(0).unwrap();
    let mut next = [0usize; 4];
    let mut pending = Vec::new();
    for &t in &arrival {
        let (session, stream) = match t {
            1 => (&mut a, &sa),
            2 => (&mut b, &sb),
            _ => (&mut c, &sc),
        };
        pending.push(enqueue(session, &stream[next[t as usize]]));
        next[t as usize] += 1;
    }
    drop(pause);
    for p in pending {
        assert!(p.wait().unwrap().error.is_none());
    }
    service.drain().unwrap();

    assert_eq!(
        served_order(service),
        arrival.to_vec(),
        "FIFO emulation preserves global enqueue order across tenant queues"
    );
}

#[test]
fn queue_full_is_per_tenant_not_shared() {
    let service = PrefetchService::start(traced_cfg(SchedulerPolicy::Drr, 8));
    let mut small = service
        .open(1, TenantSpec::repl(256).with_queue_depth(2))
        .unwrap();
    let mut big = service.open(2, TenantSpec::repl(256)).unwrap();
    let ss = batches(1, 3);
    let bs = batches(2, 8);

    let pause = service.pause_shard(0).unwrap();
    let mut pending = Vec::new();
    pending.push(enqueue(&mut small, &ss[0]));
    pending.push(enqueue(&mut small, &ss[1]));
    // The small tenant's private queue is full...
    match small.try_submit(ss[2].clone()) {
        TrySubmit::Full(o) => assert_eq!(o.capacity(), BATCH, "buffer handed back intact"),
        other => panic!("expected Full, got {other:?}"),
    }
    // ...while the other tenant still has its entire depth available.
    for obs in &bs {
        pending.push(enqueue(&mut big, obs));
    }
    drop(pause);
    for p in pending {
        assert!(p.wait().unwrap().error.is_none());
    }
    // One more accepted batch flushes the small tenant's rejection tally
    // (counts piggyback cumulatively on the next accepted batch).
    let p = small.submit(ss[2].clone()).unwrap();
    assert!(p.wait().unwrap().error.is_none());
    service.drain().unwrap();

    assert_eq!(small.stats().unwrap().rejected, 1);
    assert_eq!(big.stats().unwrap().rejected, 0);
    service.shutdown();
}

#[test]
fn admission_quota_sheds_over_burst_and_counts_exactly() {
    let service = PrefetchService::start(traced_cfg(SchedulerPolicy::Drr, 16));
    // Two burst tokens, trickle refill (5/s = one token per 200 ms): the
    // immediate submissions below outrun the refill deterministically.
    let mut s = service
        .open(
            1,
            TenantSpec::repl(256).with_quota(AdmissionQuota::new(2, 5)),
        )
        .unwrap();
    let stream = batches(1, 4);

    let first = enqueue(&mut s, &stream[0]);
    let second = enqueue(&mut s, &stream[1]);
    let mut sheds = 0u64;
    for obs in &stream[2..] {
        match s.try_submit(obs.clone()) {
            TrySubmit::Enqueued(p) => {
                let reply = p.wait().unwrap();
                assert!(reply.shed, "over-burst submissions are shed, not queued");
                assert_eq!(reply.recycled.capacity(), BATCH, "buffer recycled on shed");
                sheds += 1;
            }
            other => panic!("expected shed ack, got {other:?}"),
        }
    }
    assert_eq!(sheds, 2);
    assert!(first.wait().unwrap().error.is_none());
    assert!(second.wait().unwrap().error.is_none());

    // Let the bucket refill, then flush the shed tally with an accepted
    // batch: quota sheds ride the same cumulative piggyback as
    // degraded-mode sheds.
    std::thread::sleep(Duration::from_millis(900));
    let p = s.submit(stream[0].clone()).unwrap();
    assert!(p.wait().unwrap().error.is_none());
    service.drain().unwrap();

    let stats = s.stats().unwrap();
    assert_eq!(stats.shed, 2, "both quota sheds counted, exactly once");
    assert_eq!(stats.batches, 3);
    assert_eq!(service.shard_stats(0).unwrap().shed, 2);
    service.shutdown();
}

#[test]
fn fingerprints_are_identical_across_policies_and_weights() {
    // Scheduling decides *when* each tenant's batches run, never their
    // per-tenant order — so the learned tables must be bit-identical
    // whatever the policy or weights. Backlogs are built behind a pause
    // so the two policies genuinely interleave tenants differently.
    fn run(scheduler: SchedulerPolicy, hot_weight: u32) -> Vec<(u32, u64)> {
        let service = PrefetchService::start(traced_cfg(scheduler, 32));
        let mut hot = service
            .open(1, TenantSpec::repl(256).with_weight(hot_weight))
            .unwrap();
        let mut cold = service.open(2, TenantSpec::repl(256)).unwrap();
        let hs = batches(1, 12);
        let cs = batches(2, 12);
        for round in 0..3 {
            let pause = service.pause_shard(0).unwrap();
            let mut pending = Vec::new();
            for i in 0..4 {
                pending.push(enqueue(&mut hot, &hs[round * 4 + i]));
                pending.push(enqueue(&mut cold, &cs[round * 4 + i]));
            }
            drop(pause);
            for p in pending {
                assert!(p.wait().unwrap().error.is_none());
            }
        }
        service.drain().unwrap();
        let fps = vec![
            (1, hot.fingerprint().unwrap()),
            (2, cold.fingerprint().unwrap()),
        ];
        service.shutdown();
        fps
    }

    let baseline = run(SchedulerPolicy::Drr, 1);
    assert_eq!(
        run(SchedulerPolicy::Drr, 4),
        baseline,
        "weights must not change table contents"
    );
    assert_eq!(
        run(SchedulerPolicy::Fifo, 1),
        baseline,
        "FIFO and DRR must learn identical tables"
    );
}
