//! Loopback integration and robustness suite for the network
//! front-end: fingerprint identity with the in-process path, NACK
//! backpressure with conservation-exact accounting, buffer recycling
//! over the wire, and typed handling of every malformed-peer behavior
//! the protocol defines.

use std::io::Write;
use std::net::TcpStream;
use std::time::Duration;

use ulmt_core::table::{Replicated, TableParams};
use ulmt_core::UlmtAlgorithm;
use ulmt_service::net::{
    read_frame_into, write_frame, FrameKind, NetClient, NetServer, WireError, MAGIC, WIRE_VERSION,
};
use ulmt_service::{
    NetConfig, NetSubmit, PrefetchService, ServiceConfig, ServiceError, TenantSpec,
};
use ulmt_simcore::LineAddr;

fn lines(ns: &[u64]) -> Vec<LineAddr> {
    ns.iter().map(|&n| LineAddr::new(n)).collect()
}

/// A deterministic per-tenant miss stream (same generator the service
/// unit tests use).
fn stream(tenant: u32, len: usize) -> Vec<LineAddr> {
    let mut x = 0x9e37_79b9_u64 ^ (tenant as u64) << 32;
    (0..len)
        .map(|_| {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            LineAddr::new((x >> 40) & 0xFFF)
        })
        .collect()
}

fn server(shards: usize) -> NetServer {
    let service = PrefetchService::start(ServiceConfig {
        shards,
        ..ServiceConfig::default()
    });
    NetServer::bind(service, NetConfig::loopback()).unwrap()
}

/// A raw TCP peer for speaking malformed protocol at the server.
struct RawPeer {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl RawPeer {
    fn connect(server: &NetServer) -> RawPeer {
        let stream = TcpStream::connect(server.local_addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        RawPeer {
            stream,
            buf: Vec::new(),
        }
    }

    /// A syntactically valid Hello payload for `tenant`, repl(64).
    fn hello_payload(tenant: u32) -> Vec<u8> {
        let mut p = Vec::new();
        p.extend_from_slice(&MAGIC.to_le_bytes());
        p.extend_from_slice(&WIRE_VERSION.to_le_bytes());
        p.extend_from_slice(&tenant.to_le_bytes());
        p.push(2); // TableKind::Repl
        let params = TableParams::repl_default(64);
        p.extend_from_slice(&(params.num_rows as u64).to_le_bytes());
        p.extend_from_slice(&(params.assoc as u32).to_le_bytes());
        p.extend_from_slice(&(params.num_succ as u32).to_le_bytes());
        p.extend_from_slice(&(params.num_levels as u32).to_le_bytes());
        p.extend_from_slice(&1u32.to_le_bytes()); // weight
        p.extend_from_slice(&0u64.to_le_bytes()); // queue_depth: default
        p.extend_from_slice(&0u32.to_le_bytes()); // quota burst: none
        p.extend_from_slice(&0u32.to_le_bytes()); // quota refill
        p
    }

    fn send(&mut self, kind: FrameKind, payload: &[u8]) {
        write_frame(&mut self.stream, kind, payload).unwrap();
    }

    fn recv(&mut self) -> Result<FrameKind, WireError> {
        read_frame_into(&mut self.stream, &mut self.buf, 8 << 20)
    }

    /// Receives a frame and asserts it is a typed `Err` whose display
    /// text contains `needle`.
    fn expect_err_containing(&mut self, needle: &str) {
        let kind = self.recv().unwrap();
        assert_eq!(kind, FrameKind::Err, "expected an Err frame");
        // Err payload: code u8, detail u32, string.
        let msg_len = u32::from_le_bytes(self.buf[5..9].try_into().unwrap()) as usize;
        let msg = std::str::from_utf8(&self.buf[9..9 + msg_len]).unwrap();
        assert!(
            msg.contains(needle),
            "error {msg:?} should mention {needle:?}"
        );
    }
}

#[test]
fn network_path_fingerprints_match_in_process_and_offline() {
    let server = server(2);
    let tenants: Vec<u32> = (0..4).collect();

    // Drive the same streams through the network path...
    let mut net_fps = Vec::new();
    for &t in &tenants {
        let mut client = NetClient::connect(server.local_addr(), t, TenantSpec::repl(512)).unwrap();
        assert_eq!(client.shard(), server.service().shard_of(t));
        for chunk in stream(t, 256).chunks(64) {
            client.submit(chunk.to_vec()).unwrap();
        }
        while client.pending() > 0 {
            assert!(client.reap().unwrap().error.is_none());
        }
        net_fps.push(client.fingerprint().unwrap());
        client.goodbye();
    }
    server.shutdown();

    // ...and through the in-process path and an offline table.
    let service = PrefetchService::start(ServiceConfig {
        shards: 2,
        ..ServiceConfig::default()
    });
    for (i, &t) in tenants.iter().enumerate() {
        let mut session = service.open(t, TenantSpec::repl(512)).unwrap();
        for chunk in stream(t, 256).chunks(64) {
            session.submit(chunk.to_vec()).unwrap().wait().unwrap();
        }
        assert_eq!(
            session.fingerprint().unwrap(),
            net_fps[i],
            "tenant {t}: network path must be bit-identical to in-process"
        );
        let mut offline = Replicated::new(TableParams::repl_default(512));
        for &m in &stream(t, 256) {
            offline.process_miss(m);
        }
        assert_eq!(net_fps[i], offline.table_fingerprint());
    }
    service.shutdown();
}

#[test]
fn predictions_and_replies_round_trip() {
    let server = server(1);
    let mut client = NetClient::connect(server.local_addr(), 1, TenantSpec::repl(1024)).unwrap();
    let obs = lines(&[1, 2, 3, 1, 2, 3, 1]);

    let mut offline = Replicated::new(TableParams::repl_default(1024));
    let mut expected = Vec::new();
    for &miss in &obs {
        expected.extend(offline.process_miss(miss).prefetches);
    }

    match client.try_submit(obs).unwrap() {
        NetSubmit::Enqueued { pending } => assert_eq!(pending, 1),
        other => panic!("expected acceptance, got {other:?}"),
    }
    let reply = client.reap().unwrap();
    assert_eq!(reply.observed, 7);
    assert_eq!(reply.prefetches, expected);
    assert!(reply.error.is_none());

    let stats = client.stats().unwrap();
    assert_eq!(stats.batches, 1);
    assert_eq!(stats.observed, 7);
    client.goodbye();
    server.shutdown();
}

#[test]
fn nack_hands_batch_back_and_accounting_stays_exact() {
    let service = PrefetchService::start(ServiceConfig {
        shards: 1,
        queue_depth: 4,
        ..ServiceConfig::default()
    });
    let server = NetServer::bind(service, NetConfig::loopback()).unwrap();
    let mut client = NetClient::connect(server.local_addr(), 9, TenantSpec::base(256)).unwrap();
    // Freeze the shard so the queue fills deterministically.
    let pause = server.service().pause_shard(0).unwrap();

    let mut accepted = 0u64;
    let mut rejected = 0u64;
    let mut buf = lines(&[1, 2, 3, 4]);
    let cap = buf.capacity();
    for _ in 0..16 {
        match client.try_submit(buf).unwrap() {
            NetSubmit::Enqueued { .. } => {
                accepted += 1;
                buf = lines(&[1, 2, 3, 4]);
            }
            NetSubmit::Full(handed_back) => {
                rejected += 1;
                assert_eq!(
                    handed_back,
                    lines(&[1, 2, 3, 4]),
                    "NACK returns the batch intact"
                );
                assert_eq!(handed_back.capacity(), cap, "same Vec, capacity intact");
                buf = handed_back;
            }
            other => panic!("unexpected submit outcome: {other:?}"),
        }
    }
    assert!(
        rejected > 0,
        "a depth-4 queue must reject some of 16 batches"
    );
    // A bounded wait against the still-paused shard times out.
    match client
        .submit_timeout(buf, Duration::from_millis(20))
        .unwrap()
    {
        NetSubmit::TimedOut(handed_back) => {
            rejected += 1;
            buf = handed_back;
        }
        other => panic!("expected TimedOut, got {other:?}"),
    }
    drop(pause);

    // Resubmit the handed-back batch so the final rejection tail is
    // flushed to the shard with the next accepted batch.
    client.submit(buf).unwrap();
    client.drain().unwrap();
    let stats = client.stats().unwrap();
    assert_eq!(
        stats.rejected, rejected,
        "rejections are conservation-exact"
    );
    assert_eq!(stats.batches, accepted + 1);
    assert_eq!(
        stats.observed,
        (accepted + 1) * 4,
        "nothing silently dropped"
    );
    while client.pending() > 0 {
        assert!(client.reap().unwrap().error.is_none());
    }
    client.goodbye();
    server.shutdown();
}

#[test]
fn recycled_buffers_survive_the_network_round_trip() {
    let server = server(1);
    let mut client = NetClient::connect(server.local_addr(), 1, TenantSpec::repl(256)).unwrap();
    let mut buf = Vec::with_capacity(64);
    let full_stream = stream(1, 192);
    for chunk in full_stream.chunks(64) {
        buf.extend_from_slice(chunk);
        let cap_before = buf.capacity();
        match client.try_submit(buf).unwrap() {
            NetSubmit::Enqueued { .. } => {}
            other => panic!("expected acceptance, got {other:?}"),
        }
        let reply = client.reap().unwrap();
        assert_eq!(reply.observed, 64);
        buf = reply.recycled;
        assert!(buf.is_empty(), "recycled buffer comes back cleared");
        assert_eq!(
            buf.capacity(),
            cap_before,
            "capacity survives the round trip"
        );
    }
    client.goodbye();
    server.shutdown();
}

#[test]
fn snapshot_restore_and_remote_errors_are_typed() {
    let server = server(2);
    let mut chain = NetClient::connect(server.local_addr(), 3, TenantSpec::chain(256)).unwrap();
    chain.submit(stream(3, 200)).unwrap();
    while chain.pending() > 0 {
        chain.reap().unwrap();
    }
    let snap = chain.snapshot().unwrap();
    let fp = chain.fingerprint().unwrap();
    assert_eq!(snap.fingerprint(), fp);

    // Warm-start a second tenant from the snapshot over the wire.
    let mut warm = NetClient::connect(server.local_addr(), 4, TenantSpec::chain(256)).unwrap();
    warm.restore(&snap).unwrap();
    assert_eq!(warm.fingerprint().unwrap(), fp);

    // Restoring into the wrong algorithm is a typed snapshot error.
    let mut repl = NetClient::connect(server.local_addr(), 5, TenantSpec::repl(256)).unwrap();
    match repl.restore(&snap) {
        Err(ServiceError::Remote(msg)) => {
            assert!(msg.contains("snapshot"), "got {msg:?}")
        }
        other => panic!("expected a remote snapshot error, got {other:?}"),
    }

    // Reaping with nothing pending is typed, not a hang.
    match repl.reap() {
        Err(ServiceError::Remote(msg)) => assert!(msg.contains("pending")),
        other => panic!("expected a remote error, got {other:?}"),
    }

    // Opening the same tenant twice keeps its exact discriminant.
    match NetClient::connect(server.local_addr(), 3, TenantSpec::chain(256)) {
        Err(ServiceError::TenantExists(3)) => {}
        other => panic!("expected TenantExists(3), got {other:?}"),
    }
    chain.goodbye();
    warm.goodbye();
    repl.goodbye();
    server.shutdown();
}

#[test]
fn bad_magic_is_rejected_before_any_state_is_touched() {
    let server = server(1);
    let mut peer = RawPeer::connect(&server);
    let mut hello = RawPeer::hello_payload(7);
    hello[0] ^= 0xFF;
    peer.send(FrameKind::Hello, &hello);
    peer.expect_err_containing("magic");
    // The tenant was never opened: a real client can still claim it.
    let client = NetClient::connect(server.local_addr(), 7, TenantSpec::repl(64)).unwrap();
    client.goodbye();
    server.shutdown();
}

#[test]
fn version_mismatch_is_typed() {
    let server = server(1);
    let mut peer = RawPeer::connect(&server);
    let mut hello = RawPeer::hello_payload(1);
    hello[4] = 0xEE; // version low byte
    peer.send(FrameKind::Hello, &hello);
    peer.expect_err_containing("version");
    server.shutdown();
}

#[test]
fn truncated_hello_and_non_hello_first_frames_are_rejected() {
    let server = server(1);
    let mut peer = RawPeer::connect(&server);
    let hello = RawPeer::hello_payload(1);
    peer.send(FrameKind::Hello, &hello[..hello.len() - 3]);
    peer.expect_err_containing("mid-structure");

    let mut peer = RawPeer::connect(&server);
    peer.send(FrameKind::Fingerprint, &[]);
    peer.expect_err_containing("Hello");
    server.shutdown();
}

#[test]
fn oversized_frames_are_refused_without_reading_them() {
    let service = PrefetchService::start(ServiceConfig::default());
    let server = NetServer::bind(
        service,
        NetConfig {
            max_frame_bytes: 256,
            ..NetConfig::loopback()
        },
    )
    .unwrap();
    let mut peer = RawPeer::connect(&server);
    // Header advertising 1 MiB: the server must answer from the header
    // alone — we never send the payload, so a server that tried to read
    // it first would stall instead of replying.
    let mut header = Vec::new();
    header.extend_from_slice(&(1u32 << 20).to_le_bytes());
    header.push(FrameKind::Hello as u8);
    peer.stream.write_all(&header).unwrap();
    peer.expect_err_containing("exceeds");
    server.shutdown();
}

#[test]
fn mid_frame_disconnect_leaves_the_server_serving() {
    let server = server(1);
    // A peer that dies mid-frame...
    {
        let mut peer = RawPeer::connect(&server);
        let hello = RawPeer::hello_payload(2);
        let mut framed = Vec::new();
        write_frame(&mut framed, FrameKind::Hello, &hello).unwrap();
        peer.stream.write_all(&framed[..framed.len() - 4]).unwrap();
        // Drop the connection with the frame incomplete.
    }
    // ...does not take the server with it.
    let mut client = NetClient::connect(server.local_addr(), 2, TenantSpec::repl(64)).unwrap();
    client.submit(lines(&[1, 2, 3, 1, 2])).unwrap();
    assert_eq!(client.reap().unwrap().observed, 5);
    client.goodbye();
    server.shutdown();
}

#[test]
fn malformed_submit_payload_is_a_typed_codec_error() {
    let server = server(1);
    let mut peer = RawPeer::connect(&server);
    peer.send(FrameKind::Hello, &RawPeer::hello_payload(1));
    assert_eq!(peer.recv().unwrap(), FrameKind::HelloOk);
    // wait_ms plus 5 bytes: not a whole number of 8-byte lines.
    let mut payload = 0u32.to_le_bytes().to_vec();
    payload.extend_from_slice(&[1, 2, 3, 4, 5]);
    peer.send(FrameKind::Submit, &payload);
    peer.expect_err_containing("mid-record");
    server.shutdown();
}

#[test]
fn connection_cap_refuses_with_typed_busy() {
    let service = PrefetchService::start(ServiceConfig::default());
    let server = NetServer::bind(
        service,
        NetConfig {
            max_connections: 1,
            ..NetConfig::loopback()
        },
    )
    .unwrap();
    let held = NetClient::connect(server.local_addr(), 1, TenantSpec::repl(64)).unwrap();
    // Wait until the handler registers, then the next connect is refused.
    while server.active_connections() == 0 {
        std::thread::sleep(Duration::from_millis(1));
    }
    match NetClient::connect(server.local_addr(), 2, TenantSpec::repl(64)) {
        Err(ServiceError::Busy) => {}
        // The refused socket may be torn down before the client's Hello
        // write completes; that surfaces as a wire error instead.
        Err(ServiceError::Wire(_)) => {}
        other => panic!("expected Busy, got {other:?}"),
    }
    held.goodbye();
    server.shutdown();
}

#[test]
fn metrics_ride_the_wire_and_counters_sum_to_shard_totals() {
    let server = server(2);
    let mut clients: Vec<NetClient> = (1u32..=2)
        .map(|t| NetClient::connect(server.local_addr(), t, TenantSpec::repl(256)).unwrap())
        .collect();
    for client in &mut clients {
        let t = client.tenant();
        for chunk in stream(t, 192).chunks(64) {
            client.submit(chunk.to_vec()).unwrap();
        }
        while client.pending() > 0 {
            assert!(client.reap().unwrap().error.is_none());
        }
    }
    clients[0].drain().unwrap();

    let report = clients[0].metrics().unwrap();
    assert!(report.enabled, "metrics are on by default");
    assert_eq!(report.shards.len(), 2, "one snapshot per live shard");
    assert_eq!(report.recoveries, 0);
    let batches: u64 = report.shards.iter().map(|m| m.batches).sum();
    let observed: u64 = report.shards.iter().map(|m| m.observed).sum();
    assert_eq!(batches, 6, "3 batches per tenant, 2 tenants");
    assert_eq!(observed, 384);
    for m in &report.shards {
        let stats = server.service().shard_stats(m.shard as usize).unwrap();
        assert_eq!(m.batches, stats.batches, "shard {}", m.shard);
        assert_eq!(m.observed, stats.observed, "shard {}", m.shard);
        assert_eq!(m.prefetches, stats.prefetches, "shard {}", m.shard);
        assert!(
            m.obs_cycles > 0 && m.obs_cycles <= stats.elapsed_cycles,
            "virtual-clock stamp is within the shard's elapsed time"
        );
        // Every accepted batch leaves one sample in each histogram.
        assert_eq!(m.batch_size.total(), m.batches);
        assert_eq!(m.queue_wait_nanos.total(), m.batches);
        assert_eq!(m.ingest_nanos.total(), m.batches);
        if m.batches > 0 {
            // All batches were 64 observations; the log2 bucket upper
            // bound for 64 is 127.
            assert_eq!(m.batch_size.percentile(50), 127);
        }
        assert!(m.wall_unix_nanos > 0);
    }
    let text = report.to_prometheus();
    assert!(text.contains("ulmt_shard_batches_total"));
    assert!(text.contains("ulmt_shard_queue_wait_nanos_bucket"));
    for client in clients {
        client.goodbye();
    }
    server.shutdown();
}

#[test]
fn disabled_metrics_answer_empty_over_the_wire() {
    let service = PrefetchService::start(ServiceConfig {
        metrics: false,
        ..ServiceConfig::default()
    });
    let server = NetServer::bind(service, NetConfig::loopback()).unwrap();
    let mut client = NetClient::connect(server.local_addr(), 1, TenantSpec::repl(64)).unwrap();
    client.submit(lines(&[1, 2, 3, 1, 2])).unwrap();
    assert_eq!(client.reap().unwrap().observed, 5);
    let report = client.metrics().unwrap();
    assert!(!report.enabled);
    assert!(report.shards.is_empty());
    client.goodbye();
    server.shutdown();
}

/// A peer that stalls mid-frame cannot stretch shutdown past the read
/// timeout: the handler's bounded read surfaces the stall as a typed
/// I/O timeout and the connection is torn down. (Before timeout
/// propagation was fixed, a socket whose timeouts failed to apply could
/// block shutdown indefinitely.)
#[test]
fn mid_frame_stall_cannot_hold_up_shutdown() {
    let service = PrefetchService::start(ServiceConfig {
        shards: 1,
        ..ServiceConfig::default()
    });
    let server = NetServer::bind(
        service,
        NetConfig {
            read_timeout_ms: 200,
            poll_tick_ms: 10,
            ..NetConfig::loopback()
        },
    )
    .unwrap();
    let mut peer = RawPeer::connect(&server);
    peer.send(FrameKind::Hello, &RawPeer::hello_payload(1));
    assert_eq!(peer.recv().unwrap(), FrameKind::HelloOk);
    // One header byte, then silence: the handler is now mid-frame.
    peer.stream.write_all(&[42]).unwrap();
    let t0 = std::time::Instant::now();
    server.shutdown();
    assert!(
        t0.elapsed() < Duration::from_secs(2),
        "shutdown with a mid-frame-stalled peer must be bounded by the \
         read timeout, took {:?}",
        t0.elapsed()
    );
}

#[test]
fn remote_shutdown_drains_and_refuses_stragglers() {
    let server = server(2);
    let mut a = NetClient::connect(server.local_addr(), 1, TenantSpec::repl(256)).unwrap();
    let mut b = NetClient::connect(server.local_addr(), 2, TenantSpec::base(256)).unwrap();
    a.submit(stream(1, 64)).unwrap();
    while a.pending() > 0 {
        assert!(a.reap().unwrap().error.is_none());
    }
    // b triggers a service-wide shutdown over the wire.
    b.shutdown_service().unwrap();
    // a's next request is refused with the shutdown notice (its idle
    // loop pushes the Err frame within a poll tick) or sees the socket
    // close — never a hang.
    let straggler = lines(&[1, 2, 3]);
    match a.try_submit(straggler) {
        Err(ServiceError::ShuttingDown)
        | Err(ServiceError::Closed)
        | Err(ServiceError::Wire(_)) => {}
        Ok(NetSubmit::Enqueued { .. }) => {
            // The submit raced ahead of the closing flag; the reply is
            // then the typed drain rejection — delivered either inside
            // the batch reply or, if the reap itself races the closing
            // flag, as the connection-level shutdown notice.
            match a.reap() {
                Ok(reply) => {
                    assert!(matches!(reply.error, Some(ServiceError::ShuttingDown)))
                }
                Err(ServiceError::ShuttingDown)
                | Err(ServiceError::Closed)
                | Err(ServiceError::Wire(_)) => {}
                other => panic!("straggler reap saw {other:?}"),
            }
        }
        other => panic!("straggler saw {other:?}"),
    }
    let reports = server.shutdown();
    assert_eq!(reports.len(), 2);
    let total: u64 = reports.iter().map(|r| r.stats.observed).sum();
    assert_eq!(total, 64, "accepted work survives the remote shutdown");
}
