//! Service and tenant configuration.

use ulmt_core::table::{SnapshotKind, TableParams};
use ulmt_simcore::{ConfigError, Cycle, ServiceFaultConfig, TraceConfig};

/// Which correlation algorithm a tenant runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TableKind {
    /// The conventional one-level table ([`ulmt_core::table::Base`]).
    Base,
    /// Multi-level walking of the conventional table
    /// ([`ulmt_core::table::Chain`]).
    Chain,
    /// The paper's Replicated table ([`ulmt_core::table::Replicated`]).
    Repl,
}

impl TableKind {
    /// The snapshot tag this kind produces and restores.
    pub fn snapshot_kind(self) -> SnapshotKind {
        match self {
            TableKind::Base => SnapshotKind::Base,
            TableKind::Chain => SnapshotKind::Chain,
            TableKind::Repl => SnapshotKind::Repl,
        }
    }

    /// Human-readable name (matches the algorithms' `name()`).
    pub fn name(self) -> &'static str {
        match self {
            TableKind::Base => "base",
            TableKind::Chain => "chain",
            TableKind::Repl => "repl",
        }
    }
}

/// A per-tenant token-bucket admission quota, enforced by the tenant's
/// [`Session`](crate::Session) *before* a batch reaches its queue.
///
/// A tenant holds up to [`burst_batches`](Self::burst_batches) tokens;
/// each submission spends one, and tokens refill at
/// [`refill_per_sec`](Self::refill_per_sec) per wall-clock second
/// (capped at the burst size). A submission finding no token is **shed**
/// — acknowledged without learning and counted exactly in
/// [`TenantStats::shed`](crate::TenantStats::shed), the same piggyback
/// path degraded-mode shedding uses. A refill rate of 0 makes the bucket
/// a pure burst allowance, which is deterministic and what the tests
/// use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionQuota {
    /// Maximum tokens the bucket holds (and its initial fill).
    pub burst_batches: u32,
    /// Tokens regained per wall-clock second (0 = never refill).
    pub refill_per_sec: u32,
}

impl AdmissionQuota {
    /// A bucket of `burst_batches` tokens refilling at `refill_per_sec`.
    pub fn new(burst_batches: u32, refill_per_sec: u32) -> Self {
        AdmissionQuota {
            burst_batches,
            refill_per_sec,
        }
    }

    /// Validates the quota.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.burst_batches == 0 {
            return Err(ConfigError::new(
                "tenant",
                "admission quota needs at least one token of burst",
            ));
        }
        Ok(())
    }
}

/// How a shard worker picks the next batch across its tenants' queues.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedulerPolicy {
    /// Global arrival order, regardless of tenant — the behavior of the
    /// pre-fairness shared queue, kept as the baseline the starvation
    /// bench and the CI fingerprint-identity gate compare against.
    Fifo,
    /// Weighted deficit round-robin across tenants (see
    /// [`crate::ingress`]): backlogged tenants get throughput
    /// proportional to their [`TenantSpec::weight`], and a hot tenant
    /// can no longer head-of-line block its neighbors.
    #[default]
    Drr,
}

/// Per-tenant table choice (which algorithm, what geometry) plus the
/// tenant's fairness knobs (scheduling weight, queue depth, admission
/// quota).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantSpec {
    /// The correlation algorithm.
    pub kind: TableKind,
    /// Table geometry (Table 4 defaults via the constructors).
    pub params: TableParams,
    /// Deficit-round-robin scheduling weight: a backlogged tenant's
    /// throughput share is proportional to its weight. Must be >= 1;
    /// the constructors default to 1 (equal shares).
    pub weight: u32,
    /// This tenant's ingestion queue depth, in batches. `None` uses the
    /// service-wide [`ServiceConfig::queue_depth`].
    pub queue_depth: Option<usize>,
    /// Optional token-bucket admission quota, enforced client-side
    /// before enqueue. `None` admits everything the queue has room for.
    pub quota: Option<AdmissionQuota>,
}

impl TenantSpec {
    /// A Base tenant with Table 4 defaults at `num_rows`.
    pub fn base(num_rows: usize) -> Self {
        TenantSpec {
            kind: TableKind::Base,
            params: TableParams::base_default(num_rows),
            weight: 1,
            queue_depth: None,
            quota: None,
        }
    }

    /// A Chain tenant with Table 4 defaults at `num_rows`.
    pub fn chain(num_rows: usize) -> Self {
        TenantSpec {
            kind: TableKind::Chain,
            params: TableParams::chain_default(num_rows),
            weight: 1,
            queue_depth: None,
            quota: None,
        }
    }

    /// A Replicated tenant with Table 4 defaults at `num_rows`.
    pub fn repl(num_rows: usize) -> Self {
        TenantSpec {
            kind: TableKind::Repl,
            params: TableParams::repl_default(num_rows),
            weight: 1,
            queue_depth: None,
            quota: None,
        }
    }

    /// Sets the DRR scheduling weight (>= 1).
    pub fn with_weight(mut self, weight: u32) -> Self {
        self.weight = weight;
        self
    }

    /// Sets a per-tenant ingestion queue depth, in batches.
    pub fn with_queue_depth(mut self, depth: usize) -> Self {
        self.queue_depth = Some(depth);
        self
    }

    /// Attaches a token-bucket admission quota.
    pub fn with_quota(mut self, quota: AdmissionQuota) -> Self {
        self.quota = Some(quota);
        self
    }

    /// Validates the spec: the geometry must be consistent and match the
    /// algorithm (Base stores exactly one level), and the fairness knobs
    /// must be positive.
    pub fn validate(&self) -> Result<(), ConfigError> {
        self.params.validate()?;
        if self.kind == TableKind::Base && self.params.num_levels != 1 {
            return Err(ConfigError::new(
                "tenant",
                "Base stores exactly one level of successors",
            ));
        }
        if self.weight == 0 {
            return Err(ConfigError::new(
                "tenant",
                "scheduling weight must be positive",
            ));
        }
        if self.queue_depth == Some(0) {
            return Err(ConfigError::new(
                "tenant",
                "per-tenant queue depth must be positive",
            ));
        }
        if let Some(q) = &self.quota {
            q.validate()?;
        }
        Ok(())
    }

    /// Infallible assertion form of [`TenantSpec::validate`].
    ///
    /// # Panics
    ///
    /// Panics with the [`ConfigError`] message if the spec is invalid.
    pub fn checked(&self) {
        if let Err(e) = self.validate() {
            panic!("{e}");
        }
    }
}

/// Supervision, checkpointing and degraded-mode policy of a
/// [`PrefetchService`](crate::PrefetchService).
///
/// The recovery window math (see [`crate::journal`]): a shard
/// checkpoints every [`checkpoint_every`](Self::checkpoint_every)
/// accepted batches and journals the last
/// [`journal_window`](Self::journal_window) of them, so
/// `journal_window >= checkpoint_every` guarantees every crash recovers
/// **cleanly** (bit-identical tables, counters and virtual clock);
/// a smaller window trades memory for a bounded lossy gap whose exact
/// size every [`RecoveryReport`](crate::RecoveryReport) carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SupervisionConfig {
    /// Restarts a single shard may consume before it is parked in
    /// [`ShardState::Failed`](crate::ShardState::Failed) for good.
    pub max_restarts: u32,
    /// Supervisor tick, in milliseconds: the cadence of the wedge scan
    /// and the poll interval of worker queue waits.
    pub tick_ms: u64,
    /// Consecutive no-progress ticks (queue behind, message counters and
    /// virtual-clock watermark unchanged) before a shard is declared
    /// wedged and fenced.
    pub wedge_ticks: u32,
    /// Accepted batches between checkpoints of a shard's full state.
    pub checkpoint_every: u64,
    /// Acked batches the observation journal retains per shard.
    pub journal_window: usize,
    /// First restart backoff, in milliseconds (doubles per restart).
    pub backoff_base_ms: u64,
    /// Backoff ceiling, in milliseconds.
    pub backoff_max_ms: u64,
    /// Degraded-mode routing: `true` makes sessions *shed* batches
    /// aimed at a down shard — acknowledge without learning, counted in
    /// [`TenantStats::shed`](crate::TenantStats::shed) — so clients
    /// keep their latency budget during recovery. `false` makes
    /// [`Session::submit`](crate::Session::submit) wait for the shard
    /// to come back (bounded by its timeout).
    pub shed_when_down: bool,
    /// Upper bound, in milliseconds, a control-plane call (open,
    /// snapshot, fingerprint, stats) waits for its shard before
    /// reporting [`ServiceError::Timeout`](crate::ServiceError::Timeout).
    pub control_timeout_ms: u64,
}

impl Default for SupervisionConfig {
    fn default() -> Self {
        SupervisionConfig {
            max_restarts: 8,
            tick_ms: 25,
            wedge_ticks: 8,
            checkpoint_every: 64,
            journal_window: 128,
            backoff_base_ms: 1,
            backoff_max_ms: 100,
            shed_when_down: true,
            control_timeout_ms: 10_000,
        }
    }
}

impl SupervisionConfig {
    /// Validates the supervision policy.
    pub fn validate(&self) -> Result<(), ConfigError> {
        let err = |reason: &str| Err(ConfigError::new("supervision", reason));
        if self.wedge_ticks == 0 {
            return err("wedge detection needs at least one tick");
        }
        if self.checkpoint_every == 0 {
            return err("checkpoint interval must be positive");
        }
        if self.journal_window == 0 {
            return err("journal window must be positive");
        }
        Ok(())
    }

    /// `true` if every crash inside this policy recovers cleanly
    /// (journal window covers the checkpoint interval).
    pub fn guarantees_clean_recovery(&self) -> bool {
        self.journal_window as u64 >= self.checkpoint_every
    }
}

/// Configuration of a [`PrefetchService`](crate::PrefetchService).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServiceConfig {
    /// Number of shard worker threads. Tenants hash onto shards; each
    /// tenant's whole stream is handled by exactly one shard, which is
    /// what makes table contents independent of the shard count.
    pub shards: usize,
    /// Default capacity of each *tenant's* ingestion queue, in batches
    /// (overridable per tenant via [`TenantSpec::queue_depth`]). A full
    /// queue makes [`Session::try_submit`](crate::Session::try_submit)
    /// return [`TrySubmit::Full`](crate::TrySubmit::Full) for that
    /// tenant only — neighbors on the shard are unaffected.
    pub queue_depth: usize,
    /// How the shard worker schedules across its tenants' queues.
    pub scheduler: SchedulerPolicy,
    /// Deficit-round-robin quantum, in observations: the service credit
    /// a weight-1 tenant replenishes per scheduler rotation. Larger
    /// quanta approach per-tenant batching (fewer switches); smaller
    /// quanta interleave more finely. Must be positive.
    pub quantum_obs: usize,
    /// Seed mixed into the tenant-to-shard hash, so different
    /// deployments can spread the same tenant IDs differently.
    pub seed: u64,
    /// Virtual cycles between consecutive observations on a shard's
    /// clock; the shard's [`Server`](ulmt_simcore::Server) utilization is
    /// measured against this arrival rate.
    pub obs_cycles: Cycle,
    /// Optional per-shard event tracing ([`TraceEvent::ShardBatch`] /
    /// [`TraceEvent::ShardReject`] records).
    ///
    /// [`TraceEvent::ShardBatch`]: ulmt_simcore::TraceEvent::ShardBatch
    /// [`TraceEvent::ShardReject`]: ulmt_simcore::TraceEvent::ShardReject
    pub trace: Option<TraceConfig>,
    /// Supervision, checkpointing and degraded-mode policy.
    pub supervision: SupervisionConfig,
    /// Deterministic service-level chaos injection (kill / wedge / slow
    /// faults), for tests and the chaos bench leg. `None` in production.
    pub fault: Option<ServiceFaultConfig>,
    /// The always-on metrics plane (see [`crate::MetricsReport`]):
    /// per-shard counters and log2 histograms for batch size,
    /// queue wait, ingest latency and recovery latency. On by default;
    /// switching it off removes every metrics-path clock read and
    /// leaves one untaken branch per batch — ingestion results are
    /// bit-identical either way (the metrics plane never touches the
    /// virtual clock or the tables).
    pub metrics: bool,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            shards: 2,
            queue_depth: 64,
            scheduler: SchedulerPolicy::Drr,
            quantum_obs: 256,
            seed: 0x5EED,
            obs_cycles: 8,
            trace: None,
            supervision: SupervisionConfig::default(),
            fault: None,
            metrics: true,
        }
    }
}

impl ServiceConfig {
    /// Validates the configuration, returning the first inconsistency
    /// found as a typed [`ConfigError`].
    pub fn validate(&self) -> Result<(), ConfigError> {
        let err = |reason: &str| Err(ConfigError::new("service", reason));
        if self.shards == 0 {
            return err("shard count must be positive");
        }
        if self.queue_depth == 0 {
            return err("queue depth must be positive");
        }
        if self.quantum_obs == 0 {
            return err("scheduler quantum must be positive");
        }
        if self.obs_cycles == 0 {
            return err("observation interval must be positive");
        }
        self.supervision.validate()?;
        Ok(())
    }

    /// Infallible assertion form of [`ServiceConfig::validate`].
    ///
    /// # Panics
    ///
    /// Panics with the [`ConfigError`] message if the configuration is
    /// invalid.
    pub fn checked(&self) {
        if let Err(e) = self.validate() {
            panic!("{e}");
        }
    }
}

/// Configuration of the TCP network front-end
/// ([`NetServer`](crate::net::NetServer)).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetConfig {
    /// Address to bind, `host:port`. Port 0 picks a free port; read the
    /// bound address back with
    /// [`NetServer::local_addr`](crate::net::NetServer::local_addr).
    pub addr: String,
    /// Connection cap of the bounded acceptor. A connection arriving at
    /// the cap is answered with a typed
    /// [`ServiceError::Busy`](crate::ServiceError::Busy) frame and
    /// closed — never silently dropped and never queued unboundedly.
    pub max_connections: usize,
    /// Per-connection bound, in milliseconds, on how long the rest of a
    /// frame may take to arrive once its first byte has (a stalled or
    /// half-dead peer is disconnected, not waited on forever).
    pub read_timeout_ms: u64,
    /// Per-connection bound, in milliseconds, on blocking writes to the
    /// peer (a reply the peer never reads cannot wedge a worker).
    pub write_timeout_ms: u64,
    /// Largest accepted frame payload, in bytes. An oversized header is
    /// rejected with a typed error *before* any payload is read, so a
    /// hostile length prefix cannot balloon server memory.
    pub max_frame_bytes: u32,
    /// Cadence, in milliseconds, at which an idle connection (waiting
    /// for the next frame) polls the server's closing flag.
    pub poll_tick_ms: u64,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            addr: "127.0.0.1:0".to_string(),
            max_connections: 64,
            read_timeout_ms: 10_000,
            write_timeout_ms: 10_000,
            max_frame_bytes: 8 << 20,
            poll_tick_ms: 25,
        }
    }
}

impl NetConfig {
    /// A loopback config binding an ephemeral port (the default).
    pub fn loopback() -> Self {
        NetConfig::default()
    }

    /// Validates the configuration.
    pub fn validate(&self) -> Result<(), ConfigError> {
        let err = |reason: &str| Err(ConfigError::new("net", reason));
        if self.max_connections == 0 {
            return err("connection cap must be positive");
        }
        if self.max_frame_bytes < 64 {
            return err("max frame size must hold at least a handshake (64 bytes)");
        }
        if self.read_timeout_ms == 0 || self.write_timeout_ms == 0 {
            return err("read/write timeouts must be positive");
        }
        if self.poll_tick_ms == 0 {
            return err("poll tick must be positive");
        }
        Ok(())
    }

    /// Infallible assertion form of [`NetConfig::validate`].
    ///
    /// # Panics
    ///
    /// Panics with the [`ConfigError`] message if the configuration is
    /// invalid.
    pub fn checked(&self) {
        if let Err(e) = self.validate() {
            panic!("{e}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        assert!(ServiceConfig::default().validate().is_ok());
        ServiceConfig::default().checked();
        NetConfig::default().checked();
        assert_eq!(NetConfig::loopback(), NetConfig::default());
    }

    #[test]
    fn net_config_validates() {
        let bad = NetConfig {
            max_connections: 0,
            ..NetConfig::default()
        };
        assert!(bad.validate().unwrap_err().reason().contains("cap"));
        let bad = NetConfig {
            max_frame_bytes: 16,
            ..NetConfig::default()
        };
        assert!(bad.validate().unwrap_err().reason().contains("frame"));
        let bad = NetConfig {
            poll_tick_ms: 0,
            ..NetConfig::default()
        };
        assert_eq!(bad.validate().unwrap_err().component(), "net");
    }

    #[test]
    fn validate_reports_without_panicking() {
        let cfg = ServiceConfig {
            shards: 0,
            ..ServiceConfig::default()
        };
        let e = cfg.validate().unwrap_err();
        assert_eq!(e.component(), "service");
        assert!(e.reason().contains("shard count"));
        let cfg = ServiceConfig {
            queue_depth: 0,
            ..ServiceConfig::default()
        };
        assert!(cfg.validate().unwrap_err().reason().contains("queue depth"));
    }

    #[test]
    fn supervision_policy_validates_and_classifies_windows() {
        let sup = SupervisionConfig::default();
        assert!(sup.validate().is_ok());
        assert!(
            sup.guarantees_clean_recovery(),
            "default window covers the gap"
        );
        let lossy = SupervisionConfig {
            checkpoint_every: 64,
            journal_window: 8,
            ..sup
        };
        assert!(lossy.validate().is_ok());
        assert!(!lossy.guarantees_clean_recovery());
        let bad = SupervisionConfig {
            journal_window: 0,
            ..sup
        };
        let e = ServiceConfig {
            supervision: bad,
            ..ServiceConfig::default()
        }
        .validate()
        .unwrap_err();
        assert_eq!(e.component(), "supervision");
    }

    #[test]
    fn tenant_spec_constructors_are_valid() {
        for spec in [
            TenantSpec::base(1024),
            TenantSpec::chain(1024),
            TenantSpec::repl(1024),
        ] {
            spec.checked();
            assert_eq!(spec.kind.name(), spec.kind.snapshot_kind().name());
        }
    }

    #[test]
    fn tenant_spec_rejects_multi_level_base() {
        let spec = TenantSpec {
            kind: TableKind::Base,
            params: TableParams::repl_default(64),
            ..TenantSpec::base(64)
        };
        let e = spec.validate().unwrap_err();
        assert!(e.reason().contains("one level"));
    }

    #[test]
    fn fairness_knobs_validate() {
        let spec = TenantSpec::repl(64)
            .with_weight(4)
            .with_queue_depth(8)
            .with_quota(AdmissionQuota::new(16, 100));
        spec.checked();
        assert!(TenantSpec::repl(64)
            .with_weight(0)
            .validate()
            .unwrap_err()
            .reason()
            .contains("weight"));
        assert!(TenantSpec::repl(64)
            .with_queue_depth(0)
            .validate()
            .unwrap_err()
            .reason()
            .contains("queue depth"));
        assert!(TenantSpec::repl(64)
            .with_quota(AdmissionQuota::new(0, 5))
            .validate()
            .unwrap_err()
            .reason()
            .contains("burst"));
        let cfg = ServiceConfig {
            quantum_obs: 0,
            ..ServiceConfig::default()
        };
        assert!(cfg.validate().unwrap_err().reason().contains("quantum"));
        assert_eq!(ServiceConfig::default().scheduler, SchedulerPolicy::Drr);
    }
}
