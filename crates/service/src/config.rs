//! Service and tenant configuration.

use ulmt_core::table::{SnapshotKind, TableParams};
use ulmt_simcore::{ConfigError, Cycle, TraceConfig};

/// Which correlation algorithm a tenant runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TableKind {
    /// The conventional one-level table ([`ulmt_core::table::Base`]).
    Base,
    /// Multi-level walking of the conventional table
    /// ([`ulmt_core::table::Chain`]).
    Chain,
    /// The paper's Replicated table ([`ulmt_core::table::Replicated`]).
    Repl,
}

impl TableKind {
    /// The snapshot tag this kind produces and restores.
    pub fn snapshot_kind(self) -> SnapshotKind {
        match self {
            TableKind::Base => SnapshotKind::Base,
            TableKind::Chain => SnapshotKind::Chain,
            TableKind::Repl => SnapshotKind::Repl,
        }
    }

    /// Human-readable name (matches the algorithms' `name()`).
    pub fn name(self) -> &'static str {
        match self {
            TableKind::Base => "base",
            TableKind::Chain => "chain",
            TableKind::Repl => "repl",
        }
    }
}

/// Per-tenant table choice: which algorithm and what geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantSpec {
    /// The correlation algorithm.
    pub kind: TableKind,
    /// Table geometry (Table 4 defaults via the constructors).
    pub params: TableParams,
}

impl TenantSpec {
    /// A Base tenant with Table 4 defaults at `num_rows`.
    pub fn base(num_rows: usize) -> Self {
        TenantSpec {
            kind: TableKind::Base,
            params: TableParams::base_default(num_rows),
        }
    }

    /// A Chain tenant with Table 4 defaults at `num_rows`.
    pub fn chain(num_rows: usize) -> Self {
        TenantSpec {
            kind: TableKind::Chain,
            params: TableParams::chain_default(num_rows),
        }
    }

    /// A Replicated tenant with Table 4 defaults at `num_rows`.
    pub fn repl(num_rows: usize) -> Self {
        TenantSpec {
            kind: TableKind::Repl,
            params: TableParams::repl_default(num_rows),
        }
    }

    /// Validates the spec: the geometry must be consistent and match the
    /// algorithm (Base stores exactly one level).
    pub fn validate(&self) -> Result<(), ConfigError> {
        self.params.validate()?;
        if self.kind == TableKind::Base && self.params.num_levels != 1 {
            return Err(ConfigError::new(
                "tenant",
                "Base stores exactly one level of successors",
            ));
        }
        Ok(())
    }

    /// Infallible assertion form of [`TenantSpec::validate`].
    ///
    /// # Panics
    ///
    /// Panics with the [`ConfigError`] message if the spec is invalid.
    pub fn checked(&self) {
        if let Err(e) = self.validate() {
            panic!("{e}");
        }
    }
}

/// Configuration of a [`PrefetchService`](crate::PrefetchService).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceConfig {
    /// Number of shard worker threads. Tenants hash onto shards; each
    /// tenant's whole stream is handled by exactly one shard, which is
    /// what makes table contents independent of the shard count.
    pub shards: usize,
    /// Capacity of each shard's ingestion queue, in messages. A full
    /// queue makes [`Session::try_submit`](crate::Session::try_submit)
    /// return [`TrySubmit::Full`](crate::TrySubmit::Full) instead of
    /// blocking or dropping.
    pub queue_depth: usize,
    /// Seed mixed into the tenant-to-shard hash, so different
    /// deployments can spread the same tenant IDs differently.
    pub seed: u64,
    /// Virtual cycles between consecutive observations on a shard's
    /// clock; the shard's [`Server`](ulmt_simcore::Server) utilization is
    /// measured against this arrival rate.
    pub obs_cycles: Cycle,
    /// Optional per-shard event tracing ([`TraceEvent::ShardBatch`] /
    /// [`TraceEvent::ShardReject`] records).
    ///
    /// [`TraceEvent::ShardBatch`]: ulmt_simcore::TraceEvent::ShardBatch
    /// [`TraceEvent::ShardReject`]: ulmt_simcore::TraceEvent::ShardReject
    pub trace: Option<TraceConfig>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            shards: 2,
            queue_depth: 64,
            seed: 0x5EED,
            obs_cycles: 8,
            trace: None,
        }
    }
}

impl ServiceConfig {
    /// Validates the configuration, returning the first inconsistency
    /// found as a typed [`ConfigError`].
    pub fn validate(&self) -> Result<(), ConfigError> {
        let err = |reason: &str| Err(ConfigError::new("service", reason));
        if self.shards == 0 {
            return err("shard count must be positive");
        }
        if self.queue_depth == 0 {
            return err("queue depth must be positive");
        }
        if self.obs_cycles == 0 {
            return err("observation interval must be positive");
        }
        Ok(())
    }

    /// Infallible assertion form of [`ServiceConfig::validate`].
    ///
    /// # Panics
    ///
    /// Panics with the [`ConfigError`] message if the configuration is
    /// invalid.
    pub fn checked(&self) {
        if let Err(e) = self.validate() {
            panic!("{e}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        assert!(ServiceConfig::default().validate().is_ok());
        ServiceConfig::default().checked();
    }

    #[test]
    fn validate_reports_without_panicking() {
        let cfg = ServiceConfig {
            shards: 0,
            ..ServiceConfig::default()
        };
        let e = cfg.validate().unwrap_err();
        assert_eq!(e.component(), "service");
        assert!(e.reason().contains("shard count"));
        let cfg = ServiceConfig {
            queue_depth: 0,
            ..ServiceConfig::default()
        };
        assert!(cfg.validate().unwrap_err().reason().contains("queue depth"));
    }

    #[test]
    fn tenant_spec_constructors_are_valid() {
        for spec in [
            TenantSpec::base(1024),
            TenantSpec::chain(1024),
            TenantSpec::repl(1024),
        ] {
            spec.checked();
            assert_eq!(spec.kind.name(), spec.kind.snapshot_kind().name());
        }
    }

    #[test]
    fn tenant_spec_rejects_multi_level_base() {
        let spec = TenantSpec {
            kind: TableKind::Base,
            params: TableParams::repl_default(64),
        };
        let e = spec.validate().unwrap_err();
        assert!(e.reason().contains("one level"));
    }
}
