//! The service front end: [`PrefetchService`] and the per-tenant
//! [`Session`] handle.
//!
//! Since the supervision layer, sessions no longer hold a raw channel to
//! a worker thread: they hold the shard's *slot*
//! ([`crate::supervisor::ShardSlot`]) and resolve the current worker
//! epoch's sender through it on demand. When a worker dies, the
//! supervisor rebuilds it (checkpoint + journal replay) and publishes a
//! fresh sender under a bumped epoch; sessions notice the stale link and
//! re-resolve. While the shard is down, the data plane either *sheds*
//! (acknowledges without learning, exactly counted) or waits, per
//! [`SupervisionConfig::shed_when_down`](crate::SupervisionConfig::shed_when_down).

use std::hash::Hasher;
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender, SyncSender};
use std::sync::Arc;
use std::time::{Duration, Instant};

use ulmt_core::table::{SnapshotError, TableSnapshot};
use ulmt_simcore::{CancelToken, ConfigError, Cycle, FxHasher, LineAddr};
use ulmt_workloads::codec::{decode_lines, TraceCodecError};

use crate::config::{AdmissionQuota, ServiceConfig, TenantSpec};
use crate::ingress::{Enqueue, Ingress, IngressParts};
use crate::metrics::MetricsReport;
use crate::net::WireError;
use crate::shard::{ShardMsg, ShardReport};
use crate::supervisor::{
    lock, start_supervisor, RecoveryReport, ShardSlot, ShardState, SupervisorHandle, SupervisorMsg,
};

/// Errors surfaced by the service API — one hierarchy for the
/// in-process and network paths alike. Every lower-level error type
/// ([`ConfigError`], [`SnapshotError`], [`TraceCodecError`],
/// [`WireError`], [`std::io::Error`]) converts `From` into it, and
/// [`std::error::Error::source`] exposes the wrapped cause.
#[derive(Debug)]
pub enum ServiceError {
    /// The target shard has shut down (or its thread died).
    Closed,
    /// The batch or request arrived after shutdown began draining the
    /// shard; nothing was learned from it.
    ShuttingDown,
    /// The target shard is down — being rebuilt after a crash, or parked
    /// in [`ShardState::Failed`] with its restart budget exhausted.
    ShardDown(u32),
    /// The request did not complete within its time bound.
    Timeout,
    /// The tenant is already registered on its shard.
    TenantExists(u32),
    /// The tenant was never opened on its shard.
    UnknownTenant(u32),
    /// A spec or configuration failed validation.
    InvalidSpec(ConfigError),
    /// A snapshot could not be restored.
    Snapshot(SnapshotError),
    /// An encoded observation batch could not be decoded.
    Codec(TraceCodecError),
    /// The network front-end's connection cap is reached; the
    /// connection was refused before any state was touched.
    Busy,
    /// A wire-protocol failure on the network path (framing, protocol
    /// version, socket I/O).
    Wire(WireError),
    /// An error the remote service reported whose exact variant does
    /// not cross the wire; carries the remote's display text.
    Remote(String),
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::Closed => write!(f, "prefetch shard has shut down"),
            ServiceError::ShuttingDown => {
                write!(f, "prefetch service is draining for shutdown")
            }
            ServiceError::ShardDown(s) => write!(f, "shard {s} is down"),
            ServiceError::Timeout => write!(f, "shard request timed out"),
            ServiceError::TenantExists(t) => write!(f, "tenant {t} is already open"),
            ServiceError::UnknownTenant(t) => write!(f, "tenant {t} is not open"),
            ServiceError::InvalidSpec(e) => write!(f, "invalid configuration: {e}"),
            ServiceError::Snapshot(e) => write!(f, "snapshot restore failed: {e}"),
            ServiceError::Codec(e) => write!(f, "bad observation batch: {e}"),
            ServiceError::Busy => write!(f, "server connection limit reached"),
            ServiceError::Wire(e) => write!(f, "wire protocol failure: {e}"),
            ServiceError::Remote(msg) => write!(f, "remote service error: {msg}"),
        }
    }
}

impl std::error::Error for ServiceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServiceError::InvalidSpec(e) => Some(e),
            ServiceError::Snapshot(e) => Some(e),
            ServiceError::Codec(e) => Some(e),
            ServiceError::Wire(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ConfigError> for ServiceError {
    fn from(e: ConfigError) -> Self {
        ServiceError::InvalidSpec(e)
    }
}

impl From<SnapshotError> for ServiceError {
    fn from(e: SnapshotError) -> Self {
        ServiceError::Snapshot(e)
    }
}

impl From<TraceCodecError> for ServiceError {
    fn from(e: TraceCodecError) -> Self {
        ServiceError::Codec(e)
    }
}

impl From<WireError> for ServiceError {
    fn from(e: WireError) -> Self {
        ServiceError::Wire(e)
    }
}

impl From<std::io::Error> for ServiceError {
    fn from(e: std::io::Error) -> Self {
        ServiceError::Wire(WireError::Io(e))
    }
}

/// Per-tenant counters, as maintained by the tenant's shard.
///
/// Conservation invariant: every batch attempt a session makes is
/// eventually counted exactly once — accepted batches in `batches` /
/// `observed`, rejected attempts in `rejected`, shed attempts in
/// `shed`. Rejections and sheds ride piggyback on the next accepted
/// batch as the session's *cumulative* totals, which the shard merges
/// idempotently — so at-least-once resubmission after a crash can never
/// double-count, and a crash between enqueue and ack can never lose
/// counts. A session that ends on a rejection or shed leaves its final
/// tail unreported until it submits (and gets accepted) again.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TenantStats {
    /// The tenant ID.
    pub tenant: u32,
    /// Accepted observation batches.
    pub batches: u64,
    /// Individual miss observations processed.
    pub observed: u64,
    /// Batch attempts rejected with [`TrySubmit::Full`].
    pub rejected: u64,
    /// Batch attempts acknowledged without learning because the shard
    /// was down (degraded-mode shedding).
    pub shed: u64,
    /// Prefetch predictions returned.
    pub prefetches: u64,
    /// Valid rows currently in the tenant's table.
    pub live_rows: u64,
    /// Size of the tenant's table in bytes.
    pub table_bytes: u64,
}

/// Per-shard aggregate counters.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ShardStats {
    /// The shard index.
    pub shard: u32,
    /// Tenants registered on this shard.
    pub tenants: u32,
    /// Accepted observation batches across tenants.
    pub batches: u64,
    /// Miss observations processed across tenants.
    pub observed: u64,
    /// Rejected batch attempts across tenants.
    pub rejected: u64,
    /// Shed batch attempts across tenants (degraded-mode acks).
    pub shed: u64,
    /// Prefetch predictions returned across tenants.
    pub prefetches: u64,
    /// Cycles the shard's table engine was busy.
    pub busy_cycles: Cycle,
    /// Virtual cycles elapsed on the shard's clock.
    pub elapsed_cycles: Cycle,
}

impl ShardStats {
    /// Fraction of the shard's virtual time spent doing table work —
    /// the occupancy figure the paper's Figure 10 reports for the
    /// memory processor, here per shard.
    pub fn utilization(&self) -> f64 {
        if self.elapsed_cycles == 0 {
            0.0
        } else {
            self.busy_cycles as f64 / self.elapsed_cycles as f64
        }
    }
}

/// The shard's response to one accepted batch.
#[derive(Debug)]
pub struct BatchReply {
    /// Miss observations processed (0 if cancelled, shed or rejected).
    pub observed: u64,
    /// Prefetch predictions, in emission order across the batch.
    pub prefetches: Vec<LineAddr>,
    /// `true` if the service was cancelled and the batch was
    /// acknowledged without learning.
    pub cancelled: bool,
    /// `true` if the batch was shed: acknowledged without learning
    /// because its shard was down and the service's policy keeps the
    /// client's latency budget ahead of completeness.
    pub shed: bool,
    /// Set if the shard could not process the batch at all.
    pub error: Option<ServiceError>,
    /// The submitted observation buffer, cleared but with its capacity
    /// intact. Every ack path hands the batch `Vec` back (accepted,
    /// cancelled, shed and rejected alike), so a client that re-fills
    /// the returned buffer for its next submission ingests in a steady
    /// state with no allocation on either side of the queue.
    pub recycled: Vec<LineAddr>,
}

impl BatchReply {
    pub(crate) fn accepted(
        observed: u64,
        prefetches: Vec<LineAddr>,
        recycled: Vec<LineAddr>,
    ) -> Self {
        BatchReply {
            observed,
            prefetches,
            cancelled: false,
            shed: false,
            error: None,
            recycled,
        }
    }

    pub(crate) fn cancelled(recycled: Vec<LineAddr>) -> Self {
        BatchReply {
            observed: 0,
            prefetches: Vec::new(),
            cancelled: true,
            shed: false,
            error: None,
            recycled,
        }
    }

    pub(crate) fn shed(recycled: Vec<LineAddr>) -> Self {
        BatchReply {
            observed: 0,
            prefetches: Vec::new(),
            cancelled: false,
            shed: true,
            error: None,
            recycled,
        }
    }

    pub(crate) fn rejected(error: ServiceError, recycled: Vec<LineAddr>) -> Self {
        BatchReply {
            observed: 0,
            prefetches: Vec::new(),
            cancelled: false,
            shed: false,
            error: Some(error),
            recycled,
        }
    }
}

/// Handle to a batch the shard has accepted but possibly not yet
/// processed.
#[derive(Debug)]
pub struct PendingBatch {
    rx: Receiver<BatchReply>,
}

impl PendingBatch {
    /// A handle whose reply is already decided (shed acks).
    fn pre_filled(reply: BatchReply) -> Self {
        let (tx, rx) = channel();
        let _ = tx.send(reply);
        PendingBatch { rx }
    }

    /// Blocks until the shard has processed the batch.
    pub fn wait(self) -> Result<BatchReply, ServiceError> {
        self.rx.recv().map_err(|_| ServiceError::Closed)
    }

    /// Waits up to `timeout` for the reply without consuming the handle:
    /// [`ServiceError::Timeout`] means "not yet", and the handle stays
    /// valid to wait on again. [`ServiceError::Closed`] means the worker
    /// died with the batch unacknowledged — the observations were never
    /// journaled, so resubmitting them is safe (at-least-once).
    pub fn wait_timeout(&self, timeout: Duration) -> Result<BatchReply, ServiceError> {
        self.rx.recv_timeout(timeout).map_err(|e| match e {
            RecvTimeoutError::Timeout => ServiceError::Timeout,
            RecvTimeoutError::Disconnected => ServiceError::Closed,
        })
    }

    /// Returns the reply if the shard has already processed the batch.
    pub fn poll(&self) -> Option<BatchReply> {
        self.rx.try_recv().ok()
    }
}

/// Outcome of a non-blocking or time-bounded submission.
#[derive(Debug)]
pub enum TrySubmit {
    /// The batch is in the shard's queue (or was shed with an immediate
    /// ack — see [`BatchReply::shed`]); the handle yields the reply.
    Enqueued(PendingBatch),
    /// The *tenant's* ingestion queue is full (or the shard is briefly
    /// unavailable). Admission is per-tenant: one tenant filling its
    /// queue never makes its neighbors see `Full`. The observations are
    /// handed back untouched — nothing was dropped — and the rejection
    /// will be counted on the shard with the next accepted batch.
    Full(Vec<LineAddr>),
    /// The submission's time bound expired before queue space appeared
    /// ([`Session::submit_timeout`] only). Observations handed back.
    TimedOut(Vec<LineAddr>),
    /// The shard has shut down (or is permanently failed); the
    /// observations are handed back.
    Closed(Vec<LineAddr>),
}

/// How long a down shard is polled for on the blocking paths.
const DOWN_POLL: Duration = Duration::from_millis(1);

/// Client-side token-bucket state for a tenant's admission quota.
/// `refill_per_sec == 0` makes the bucket deterministic: exactly
/// `burst_batches` submissions are ever admitted.
#[derive(Debug)]
struct QuotaState {
    quota: AdmissionQuota,
    tokens: u64,
    last: Instant,
}

impl QuotaState {
    fn new(quota: AdmissionQuota) -> Self {
        QuotaState {
            quota,
            tokens: quota.burst_batches as u64,
            last: Instant::now(),
        }
    }

    /// Takes one token if available, refilling first at the configured
    /// rate. Charges only the time the granted tokens cost, so
    /// fractional refill progress survives frequent calls.
    fn admit(&mut self) -> bool {
        let rate = self.quota.refill_per_sec as u128;
        if rate > 0 {
            let nanos = self.last.elapsed().as_nanos();
            let add = (nanos * rate / 1_000_000_000) as u64;
            if add > 0 {
                let cap = self.quota.burst_batches as u64;
                self.tokens = self.tokens.saturating_add(add).min(cap);
                if self.tokens == cap {
                    self.last = Instant::now();
                } else {
                    let charged = (add as u128) * 1_000_000_000 / rate;
                    self.last += Duration::from_nanos(charged as u64);
                }
            }
        }
        if self.tokens > 0 {
            self.tokens -= 1;
            true
        } else {
            false
        }
    }
}

/// A tenant's handle onto the service.
///
/// Sessions are single-owner (`&mut self` on the data plane) because
/// the handle locally accumulates the *cumulative* counts of rejected
/// and shed submissions to piggyback on the next accepted batch, plus
/// the tenant's admission-quota bucket.
#[derive(Debug)]
pub struct Session {
    tenant: u32,
    shard: u32,
    slot: Arc<ShardSlot>,
    /// Cached sender of the worker epoch last resolved.
    tx: Option<SyncSender<ShardMsg>>,
    /// Cached ingress of the worker epoch last resolved.
    ingress: Option<Arc<Ingress>>,
    epoch: u64,
    shed_when_down: bool,
    control_timeout: Duration,
    /// Cumulative totals, never reset: the shard applies the *delta*
    /// from what it has already recorded, making the piggyback
    /// idempotent under at-least-once resubmission.
    rejected_cum: u64,
    shed_cum: u64,
    quota: Option<QuotaState>,
}

impl Session {
    fn new(
        tenant: u32,
        slot: Arc<ShardSlot>,
        cfg: &ServiceConfig,
        quota: Option<AdmissionQuota>,
    ) -> Self {
        let (tx, ingress, epoch, _) = slot.resolve();
        Session {
            tenant,
            shard: slot.shard,
            slot,
            tx,
            ingress,
            epoch,
            shed_when_down: cfg.supervision.shed_when_down,
            control_timeout: Duration::from_millis(cfg.supervision.control_timeout_ms.max(1)),
            rejected_cum: 0,
            shed_cum: 0,
            quota: quota.map(QuotaState::new),
        }
    }

    /// The tenant ID this session feeds.
    pub fn tenant(&self) -> u32 {
        self.tenant
    }

    /// The shard the tenant is pinned to.
    pub fn shard(&self) -> u32 {
        self.shard
    }

    /// The cached link if it still belongs to the live epoch, else a
    /// freshly resolved one.
    #[allow(clippy::type_complexity)]
    fn link(
        &mut self,
    ) -> (
        Option<SyncSender<ShardMsg>>,
        Option<Arc<Ingress>>,
        u64,
        ShardState,
    ) {
        let state = self.slot.health.state();
        if state == ShardState::Up
            && self.tx.is_some()
            && self.ingress.is_some()
            && self.epoch == self.slot.health.epoch()
        {
            return (self.tx.clone(), self.ingress.clone(), self.epoch, state);
        }
        let (tx, ingress, epoch, state) = self.slot.resolve();
        self.tx = tx.clone();
        self.ingress = ingress.clone();
        self.epoch = epoch;
        (tx, ingress, epoch, state)
    }

    fn make_parts(&self, obs: Vec<LineAddr>, reply: Sender<BatchReply>) -> IngressParts {
        IngressParts {
            tenant: self.tenant,
            obs,
            rejected_cum: self.rejected_cum,
            shed_cum: self.shed_cum,
            reply,
        }
    }

    /// `true` if the tenant's admission quota (if any) grants this
    /// submission a token.
    fn admit_quota(&mut self) -> bool {
        match &mut self.quota {
            None => true,
            Some(q) => q.admit(),
        }
    }

    /// Shed ack: acknowledge without learning — because the shard is
    /// down and policy keeps the client's latency budget, or because the
    /// tenant's admission quota ran dry — and count the shed exactly
    /// (piggybacked cumulatively onto the next accepted batch).
    fn shed_ack(&mut self, mut obs: Vec<LineAddr>) -> PendingBatch {
        self.shed_cum = self.shed_cum.saturating_add(1);
        obs.clear();
        PendingBatch::pre_filled(BatchReply::shed(obs))
    }

    /// Immediate typed rejection for a tenant the shard doesn't know,
    /// with the (cleared) buffer recycled like every other ack path.
    fn unknown_ack(&self, mut obs: Vec<LineAddr>) -> PendingBatch {
        obs.clear();
        PendingBatch::pre_filled(BatchReply::rejected(
            ServiceError::UnknownTenant(self.tenant),
            obs,
        ))
    }

    /// Non-blocking submission of a batch of L2-miss line addresses.
    /// Never drops observations: a full queue hands the batch back as
    /// [`TrySubmit::Full`]. A down shard either sheds (immediate ack,
    /// see [`BatchReply::shed`]) or hands the batch back as `Full`,
    /// per the service's
    /// [`shed_when_down`](crate::SupervisionConfig::shed_when_down)
    /// policy.
    pub fn try_submit(&mut self, obs: Vec<LineAddr>) -> TrySubmit {
        let mut obs = obs;
        loop {
            let (_, ingress, epoch, state) = self.link();
            match state {
                ShardState::Up => {
                    let Some(ingress) = ingress else {
                        // Mid-publish race: the link isn't out yet.
                        self.rejected_cum = self.rejected_cum.saturating_add(1);
                        return TrySubmit::Full(obs);
                    };
                    if !self.admit_quota() {
                        return TrySubmit::Enqueued(self.shed_ack(obs));
                    }
                    let (reply, rx) = channel();
                    match ingress.try_enqueue(self.make_parts(obs, reply)) {
                        Enqueue::Ok => {
                            self.slot.health.note_enqueued();
                            return TrySubmit::Enqueued(PendingBatch { rx });
                        }
                        Enqueue::Full(o) => {
                            self.rejected_cum = self.rejected_cum.saturating_add(1);
                            return TrySubmit::Full(o);
                        }
                        Enqueue::Unknown(o) => {
                            return TrySubmit::Enqueued(self.unknown_ack(o));
                        }
                        Enqueue::Closed(o) => {
                            obs = o;
                            if self.stale_after_disconnect(epoch) {
                                return TrySubmit::Closed(obs);
                            }
                            // The link changed under us; retry against
                            // the replacement epoch.
                        }
                        Enqueue::TimedOut(o) => {
                            // try_enqueue never waits; defensive.
                            self.rejected_cum = self.rejected_cum.saturating_add(1);
                            return TrySubmit::Full(o);
                        }
                    }
                }
                ShardState::Down => {
                    return if self.shed_when_down {
                        TrySubmit::Enqueued(self.shed_ack(obs))
                    } else {
                        self.rejected_cum = self.rejected_cum.saturating_add(1);
                        TrySubmit::Full(obs)
                    };
                }
                ShardState::Failed | ShardState::Closed => return TrySubmit::Closed(obs),
            }
        }
    }

    /// After an enqueue against a closed ingress: `true` if the slot
    /// still claims the same epoch is Up — the worker died this instant
    /// and the supervisor hasn't reacted yet; report closed rather than
    /// spin.
    fn stale_after_disconnect(&mut self, seen_epoch: u64) -> bool {
        let (tx, ingress, epoch, state) = self.slot.resolve();
        self.tx = tx;
        self.ingress = ingress;
        self.epoch = epoch;
        state == ShardState::Up && epoch == seen_epoch
    }

    /// Blocking submission: waits for queue space instead of rejecting,
    /// and rides out shard recoveries. A down shard sheds immediately
    /// under the shedding policy; otherwise the wait — for queue space
    /// or for the shard to come back — is bounded by the service's
    /// control timeout ([`ServiceError::Timeout`]), and a permanently
    /// failed shard reports [`ServiceError::ShardDown`].
    pub fn submit(&mut self, obs: Vec<LineAddr>) -> Result<PendingBatch, ServiceError> {
        let deadline = Instant::now() + self.control_timeout;
        let mut obs = obs;
        loop {
            let (_, ingress, epoch, state) = self.link();
            match state {
                ShardState::Up => {
                    let Some(ingress) = ingress else {
                        if Instant::now() >= deadline {
                            return Err(ServiceError::Timeout);
                        }
                        std::thread::sleep(DOWN_POLL);
                        continue;
                    };
                    if !self.admit_quota() {
                        return Ok(self.shed_ack(obs));
                    }
                    let (reply, rx) = channel();
                    match ingress.enqueue_deadline(self.make_parts(obs, reply), deadline) {
                        Enqueue::Ok => {
                            self.slot.health.note_enqueued();
                            return Ok(PendingBatch { rx });
                        }
                        Enqueue::TimedOut(_) | Enqueue::Full(_) => {
                            // Count the failed attempt like every other
                            // rejection so conservation holds.
                            self.rejected_cum = self.rejected_cum.saturating_add(1);
                            return Err(ServiceError::Timeout);
                        }
                        Enqueue::Unknown(o) => return Ok(self.unknown_ack(o)),
                        Enqueue::Closed(o) => {
                            obs = o;
                            if self.stale_after_disconnect(epoch) {
                                return Err(ServiceError::Closed);
                            }
                        }
                    }
                }
                ShardState::Down => {
                    if self.shed_when_down {
                        return Ok(self.shed_ack(obs));
                    }
                    if Instant::now() >= deadline {
                        return Err(ServiceError::Timeout);
                    }
                    std::thread::sleep(DOWN_POLL);
                }
                ShardState::Failed => return Err(ServiceError::ShardDown(self.shard)),
                ShardState::Closed => return Err(ServiceError::Closed),
            }
        }
    }

    /// Time-bounded submission: waits up to `timeout` for queue space
    /// (and across shard recoveries), then hands the batch back as
    /// [`TrySubmit::TimedOut`] instead of blocking further. Never drops
    /// observations.
    pub fn submit_timeout(&mut self, obs: Vec<LineAddr>, timeout: Duration) -> TrySubmit {
        let deadline = Instant::now() + timeout;
        let mut obs = obs;
        loop {
            let (_, ingress, epoch, state) = self.link();
            match state {
                ShardState::Up => {
                    if let Some(ingress) = ingress {
                        if !self.admit_quota() {
                            return TrySubmit::Enqueued(self.shed_ack(obs));
                        }
                        let (reply, rx) = channel();
                        match ingress.enqueue_deadline(self.make_parts(obs, reply), deadline) {
                            Enqueue::Ok => {
                                self.slot.health.note_enqueued();
                                return TrySubmit::Enqueued(PendingBatch { rx });
                            }
                            Enqueue::TimedOut(o) | Enqueue::Full(o) => {
                                self.rejected_cum = self.rejected_cum.saturating_add(1);
                                return TrySubmit::TimedOut(o);
                            }
                            Enqueue::Unknown(o) => {
                                return TrySubmit::Enqueued(self.unknown_ack(o));
                            }
                            Enqueue::Closed(o) => {
                                obs = o;
                                if self.stale_after_disconnect(epoch) {
                                    return TrySubmit::Closed(obs);
                                }
                                continue;
                            }
                        }
                    }
                }
                ShardState::Down => {
                    if self.shed_when_down {
                        return TrySubmit::Enqueued(self.shed_ack(obs));
                    }
                }
                ShardState::Failed | ShardState::Closed => return TrySubmit::Closed(obs),
            }
            if Instant::now() >= deadline {
                self.rejected_cum = self.rejected_cum.saturating_add(1);
                return TrySubmit::TimedOut(obs);
            }
            std::thread::sleep(DOWN_POLL);
        }
    }

    /// Blocking submission of a batch in the
    /// [`encode_lines`](ulmt_workloads::codec::encode_lines) wire format.
    pub fn submit_encoded(&mut self, bytes: &[u8]) -> Result<PendingBatch, ServiceError> {
        let obs = decode_lines(bytes).map_err(ServiceError::Codec)?;
        self.submit(obs)
    }

    /// Captures the tenant's learned table, after everything already
    /// queued for it has been processed (the captured per-tenant
    /// barrier; the worker drains the tenant's queue to it first).
    pub fn snapshot(&mut self) -> Result<TableSnapshot, ServiceError> {
        let (reply, rx) = channel();
        let tenant = self.tenant;
        self.control(|barrier| ShardMsg::Snapshot {
            tenant,
            barrier,
            reply,
        })?;
        self.control_recv(&rx)?
    }

    /// Replaces the tenant's table with a previously captured snapshot
    /// (warm start). The snapshot must come from the same algorithm.
    pub fn restore(&mut self, snap: TableSnapshot) -> Result<(), ServiceError> {
        let (reply, rx) = channel();
        let tenant = self.tenant;
        self.control(move |barrier| ShardMsg::Restore {
            tenant,
            barrier,
            snap: Box::new(snap),
            reply,
        })?;
        self.control_recv(&rx)?
    }

    /// Fingerprint of the tenant's learned table (see
    /// [`TableSnapshot::fingerprint`]).
    pub fn fingerprint(&mut self) -> Result<u64, ServiceError> {
        let (reply, rx) = channel();
        let tenant = self.tenant;
        self.control(|barrier| ShardMsg::Fingerprint {
            tenant,
            barrier,
            reply,
        })?;
        self.control_recv(&rx)?
    }

    /// The tenant's counters.
    pub fn stats(&mut self) -> Result<TenantStats, ServiceError> {
        let (reply, rx) = channel();
        let tenant = self.tenant;
        self.control(|barrier| ShardMsg::TenantStats {
            tenant,
            barrier,
            reply,
        })?;
        self.control_recv(&rx)?
    }

    /// Sends a control-plane message to the live worker, handing the
    /// constructor this tenant's current ingress barrier (batches
    /// enqueued so far — what "everything already submitted" means for
    /// the operation's ordering guarantee), and kicks the worker so it
    /// doesn't sleep out its poll tick. A down or failed shard reports
    /// [`ServiceError::ShardDown`] instead of queueing into the void.
    fn control(&mut self, make: impl FnOnce(u64) -> ShardMsg) -> Result<(), ServiceError> {
        let (tx, ingress, epoch, state) = self.link();
        match state {
            ShardState::Up => {
                let Some(tx) = tx else {
                    return Err(ServiceError::ShardDown(self.shard));
                };
                let barrier = ingress
                    .as_ref()
                    .map(|i| i.barrier(self.tenant))
                    .unwrap_or(0);
                match tx.send(make(barrier)) {
                    Ok(()) => {
                        self.slot.health.note_enqueued();
                        if let Some(i) = &ingress {
                            i.kick();
                        }
                        Ok(())
                    }
                    Err(_) => {
                        if self.stale_after_disconnect(epoch) {
                            Err(ServiceError::Closed)
                        } else {
                            Err(ServiceError::ShardDown(self.shard))
                        }
                    }
                }
            }
            ShardState::Down | ShardState::Failed => Err(ServiceError::ShardDown(self.shard)),
            ShardState::Closed => Err(ServiceError::Closed),
        }
    }

    /// Receives a control reply within the control timeout, mapping a
    /// died-while-we-waited worker to a typed error.
    fn control_recv<T>(&self, rx: &Receiver<T>) -> Result<T, ServiceError> {
        rx.recv_timeout(self.control_timeout).map_err(|e| match e {
            RecvTimeoutError::Timeout => ServiceError::Timeout,
            RecvTimeoutError::Disconnected => match self.slot.health.state() {
                ShardState::Closed => ServiceError::Closed,
                _ => ServiceError::ShardDown(self.shard),
            },
        })
    }

    /// Test-only: a session on the same shard for a tenant that was
    /// never opened, to exercise the rejected ack path.
    #[cfg(test)]
    pub(crate) fn test_clone_for_tenant(other: &Session, tenant: u32) -> Session {
        Session {
            tenant,
            shard: other.shard,
            slot: Arc::clone(&other.slot),
            tx: other.tx.clone(),
            ingress: other.ingress.clone(),
            epoch: other.epoch,
            shed_when_down: other.shed_when_down,
            control_timeout: other.control_timeout,
            rejected_cum: 0,
            shed_cum: 0,
            quota: None,
        }
    }
}

/// Holds a shard paused; dropping it resumes the shard. Produced by
/// [`PrefetchService::pause_shard`], primarily so tests can fill an
/// ingestion queue deterministically and observe backpressure.
#[derive(Debug)]
pub struct PauseGuard {
    _resume: Sender<()>,
}

/// A long-lived, sharded, multi-tenant, *self-healing* prefetch service.
///
/// `N` shard worker threads each own the correlation tables of the
/// tenants hashed to them. Clients open a [`Session`] per tenant and
/// feed batches of L2-miss observations; the shard learns on them and
/// returns prefetch predictions plus per-tenant statistics.
///
/// # Determinism
///
/// A tenant's table state after a given observation stream is
/// bit-identical (equal [`TableSnapshot::fingerprint`]) for any shard
/// count, scheduler policy, weights, and any interleaving with other
/// tenants: the tenant's stream flows in order through its own bounded
/// queue on exactly one shard — the scheduler decides only *when* a
/// tenant's batches run, never their order — and observations only
/// touch their own tenant's table.
///
/// # Fault tolerance
///
/// A supervisor thread watches every shard for death (panic) and wedging
/// (alive but not consuming). A failed shard is rebuilt from its last
/// checkpoint plus a replay of the journaled batches past it — see
/// [`crate::journal`] for the exact recovery contract — and every
/// restart is recorded as a [`RecoveryReport`]. While a shard is down,
/// sessions shed or wait per
/// [`SupervisionConfig::shed_when_down`](crate::SupervisionConfig::shed_when_down).
///
/// # Example
///
/// ```
/// use ulmt_service::{PrefetchService, ServiceConfig, TenantSpec, TrySubmit};
/// use ulmt_simcore::LineAddr;
///
/// let service = PrefetchService::start(ServiceConfig::default());
/// let mut session = service.open(7, TenantSpec::repl(1024)).unwrap();
/// let obs: Vec<LineAddr> = [1u64, 2, 3, 1, 2, 3, 1].iter().map(|&n| LineAddr::new(n)).collect();
/// let reply = match session.try_submit(obs) {
///     TrySubmit::Enqueued(pending) => pending.wait().unwrap(),
///     other => panic!("queue unexpectedly unavailable: {other:?}"),
/// };
/// assert_eq!(reply.observed, 7);
/// assert!(!reply.prefetches.is_empty());
/// service.shutdown();
/// ```
pub struct PrefetchService {
    cfg: ServiceConfig,
    slots: Vec<Arc<ShardSlot>>,
    supervisor: SupervisorHandle,
    cancel: CancelToken,
}

impl PrefetchService {
    /// Spawns the shard workers and their supervisor, and returns the
    /// running service.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` is invalid (see [`ServiceConfig::validate`]).
    pub fn start(cfg: ServiceConfig) -> Self {
        cfg.checked();
        let cancel = CancelToken::new();
        let slots: Vec<Arc<ShardSlot>> = (0..cfg.shards as u32)
            .map(|shard| Arc::new(ShardSlot::new(shard, &cfg)))
            .collect();
        let supervisor = start_supervisor(cfg, cancel.clone(), slots.clone());
        PrefetchService {
            cfg,
            slots,
            supervisor,
            cancel,
        }
    }

    /// The configuration the service was started with.
    pub fn config(&self) -> &ServiceConfig {
        &self.cfg
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.slots.len()
    }

    /// The shard `tenant` is pinned to: a seeded hash, stable for the
    /// service's lifetime.
    pub fn shard_of(&self, tenant: u32) -> u32 {
        let mut h = FxHasher::default();
        h.write_u64(self.cfg.seed);
        h.write_u32(tenant);
        (h.finish() % self.slots.len() as u64) as u32
    }

    /// The service's cancellation token. Cancelling makes shards
    /// acknowledge further batches without learning, so clients can
    /// drain their pipelines and the service can shut down promptly.
    pub fn cancel_token(&self) -> CancelToken {
        self.cancel.clone()
    }

    /// Current availability of one shard.
    pub fn shard_state(&self, shard: usize) -> ShardState {
        self.slots[shard].health.state()
    }

    /// Every recovery any shard has gone through so far, oldest first
    /// per shard.
    pub fn recovery_reports(&self) -> Vec<RecoveryReport> {
        self.slots
            .iter()
            .flat_map(|slot| lock(&slot.recoveries).clone())
            .collect()
    }

    /// Registers `tenant` on its shard and returns its session.
    pub fn open(&self, tenant: u32, spec: TenantSpec) -> Result<Session, ServiceError> {
        let shard = self.shard_of(tenant);
        let slot = &self.slots[shard as usize];
        // Register the spec before telling the worker: the spec registry
        // is what recovery recreates tenants from, so a tenant whose
        // open was acked can never be lost by a crash.
        {
            let mut specs = lock(&slot.specs);
            if specs.iter().any(|&(t, _)| t == tenant) {
                return Err(ServiceError::TenantExists(tenant));
            }
            spec.validate().map_err(ServiceError::InvalidSpec)?;
            specs.push((tenant, spec));
        }
        let mut session = Session::new(tenant, Arc::clone(slot), &self.cfg, spec.quota);
        let (reply, rx) = channel();
        let result = session
            .control(|_barrier| ShardMsg::Open {
                tenant,
                spec,
                reply,
            })
            .and_then(|()| session.control_recv(&rx)?);
        if let Err(e) = result {
            // The worker never acked the open; withdraw the spec so a
            // later retry (or a recovery) doesn't resurrect a tenant the
            // client believes was never created.
            lock(&slot.specs).retain(|&(t, _)| t != tenant);
            return Err(e);
        }
        Ok(session)
    }

    /// Aggregate counters of one shard.
    pub fn shard_stats(&self, shard: usize) -> Result<ShardStats, ServiceError> {
        let slot = &self.slots[shard];
        let (tx, ingress, _, state) = slot.resolve();
        let tx = match (state, tx) {
            (ShardState::Up, Some(tx)) => tx,
            (ShardState::Closed, _) => return Err(ServiceError::Closed),
            _ => return Err(ServiceError::ShardDown(shard as u32)),
        };
        let (reply, rx) = channel();
        tx.send(ShardMsg::ShardStats { reply })
            .map_err(|_| ServiceError::ShardDown(shard as u32))?;
        slot.health.note_enqueued();
        if let Some(i) = &ingress {
            i.kick();
        }
        rx.recv().map_err(|_| ServiceError::ShardDown(shard as u32))
    }

    /// The service-wide metrics view: one snapshot per live shard,
    /// collected through each shard's FIFO control plane (so every
    /// snapshot is a prefix of that shard's ingestion stream; pair with
    /// [`PrefetchService::drain`] for an all-submitted view), plus the
    /// supervisor's recovery-latency history. Down or failed shards are
    /// skipped, like [`PrefetchService::drain`]. With
    /// [`ServiceConfig::metrics`] off this returns
    /// [`MetricsReport::disabled`] without touching any shard.
    pub fn metrics(&self) -> Result<MetricsReport, ServiceError> {
        if !self.cfg.metrics {
            return Ok(MetricsReport::disabled());
        }
        let mut waits = Vec::with_capacity(self.slots.len());
        for slot in &self.slots {
            let (tx, ingress, _, state) = slot.resolve();
            match (state, tx) {
                (ShardState::Up, Some(tx)) => {
                    let (reply, rx) = channel();
                    tx.send(ShardMsg::Metrics { reply })
                        .map_err(|_| ServiceError::ShardDown(slot.shard))?;
                    slot.health.note_enqueued();
                    if let Some(i) = &ingress {
                        i.kick();
                    }
                    waits.push(rx);
                }
                (ShardState::Closed, _) => return Err(ServiceError::Closed),
                _ => {}
            }
        }
        let mut report = MetricsReport {
            enabled: true,
            recoveries: 0,
            recovery_nanos: ulmt_simcore::stats::Log2Histogram::new(),
            shards: Vec::with_capacity(waits.len()),
        };
        for rx in waits {
            if let Some(m) = rx.recv().map_err(|_| ServiceError::Closed)? {
                report.shards.push(m);
            }
        }
        report.shards.sort_by_key(|m| m.shard);
        for r in self.recovery_reports() {
            report.recoveries += 1;
            report.recovery_nanos.record(r.latency_nanos);
        }
        Ok(report)
    }

    /// Blocks the given shard until the returned guard is dropped.
    /// While paused, the shard's ingestion queue fills up and
    /// [`Session::try_submit`] surfaces backpressure as
    /// [`TrySubmit::Full`]. The supervisor's wedge detector knows a
    /// paused shard is deliberate and leaves it alone.
    pub fn pause_shard(&self, shard: usize) -> Result<PauseGuard, ServiceError> {
        let (tx, ingress, _, state) = self.slots[shard].resolve();
        let tx = match (state, tx) {
            (ShardState::Up, Some(tx)) => tx,
            (ShardState::Closed, _) => return Err(ServiceError::Closed),
            _ => return Err(ServiceError::ShardDown(shard as u32)),
        };
        let (resume, gate) = channel();
        tx.send(ShardMsg::Pause(gate))
            .map_err(|_| ServiceError::ShardDown(shard as u32))?;
        self.slots[shard].health.note_enqueued();
        if let Some(i) = &ingress {
            i.kick();
        }
        Ok(PauseGuard { _resume: resume })
    }

    /// Barrier: returns once every *live* shard has processed everything
    /// queued before this call. Down shards have no queue to drain (it
    /// died with their worker) and are skipped.
    pub fn drain(&self) -> Result<(), ServiceError> {
        let mut waits = Vec::with_capacity(self.slots.len());
        for slot in &self.slots {
            let (tx, ingress, _, state) = slot.resolve();
            match (state, tx) {
                (ShardState::Up, Some(tx)) => {
                    let barriers = ingress.as_ref().map(|i| i.barriers()).unwrap_or_default();
                    let (reply, rx) = channel();
                    tx.send(ShardMsg::Drain { barriers, reply })
                        .map_err(|_| ServiceError::ShardDown(slot.shard))?;
                    slot.health.note_enqueued();
                    if let Some(i) = &ingress {
                        i.kick();
                    }
                    waits.push(rx);
                }
                (ShardState::Closed, _) => return Err(ServiceError::Closed),
                _ => {}
            }
        }
        for rx in waits {
            rx.recv().map_err(|_| ServiceError::Closed)?;
        }
        Ok(())
    }

    /// Starts the shutdown drain without consuming the service: a
    /// `Shutdown` marker is queued behind everything already submitted,
    /// and anything arriving after it is rejected with
    /// [`ServiceError::ShuttingDown`] instead of being silently dropped.
    /// Call [`PrefetchService::shutdown`] afterwards to join the workers
    /// and collect reports.
    pub fn begin_shutdown(&self) {
        for slot in &self.slots {
            let (tx, ingress, _, _) = slot.resolve();
            if let Some(tx) = tx {
                let barriers = ingress.as_ref().map(|i| i.barriers()).unwrap_or_default();
                let _ = tx.send(ShardMsg::Shutdown { barriers });
                if let Some(i) = &ingress {
                    i.kick();
                }
            }
        }
    }

    /// Graceful shutdown: every shard processes its remaining queue,
    /// then exits; returns each shard's final report (counters, trace
    /// buffer if tracing was on, and its recovery history). Batches that
    /// race in behind the shutdown marker are rejected with
    /// [`ServiceError::ShuttingDown`]; sessions still holding the
    /// service see [`ServiceError::Closed`] / [`TrySubmit::Closed`]
    /// afterwards.
    pub fn shutdown(mut self) -> Vec<ShardReport> {
        let (reply, rx) = channel();
        let _ = self
            .supervisor
            .tx
            .send(SupervisorMsg::Stop { reply: Some(reply) });
        let reports = rx.recv().unwrap_or_default();
        if let Some(thread) = self.supervisor.thread.take() {
            let _ = thread.join();
        }
        reports
    }
}

impl Drop for PrefetchService {
    /// Dropping without [`PrefetchService::shutdown`] cancels the token
    /// (so in-flight work winds down) and stops the supervisor without
    /// joining the workers; they exit once their queues disconnect.
    fn drop(&mut self) {
        self.cancel.cancel();
        if self.supervisor.thread.take().is_some() {
            let _ = self.supervisor.tx.send(SupervisorMsg::Stop { reply: None });
        }
    }
}
