//! The service front end: [`PrefetchService`] and the per-tenant
//! [`Session`] handle.

use std::hash::Hasher;
use std::sync::mpsc::{channel, sync_channel, Receiver, Sender, SyncSender, TrySendError};
use std::thread::JoinHandle;

use ulmt_core::table::{SnapshotError, TableSnapshot};
use ulmt_simcore::{CancelToken, ConfigError, Cycle, FxHasher, LineAddr};
use ulmt_workloads::codec::{decode_lines, TraceCodecError};

use crate::config::{ServiceConfig, TenantSpec};
use crate::shard::{run_shard, ShardMsg, ShardReport};

/// Errors surfaced by the service API.
#[derive(Debug)]
pub enum ServiceError {
    /// The target shard has shut down (or its thread died).
    Closed,
    /// The tenant is already registered on its shard.
    TenantExists(u32),
    /// The tenant was never opened on its shard.
    UnknownTenant(u32),
    /// The tenant spec failed validation.
    InvalidSpec(ConfigError),
    /// A snapshot could not be restored.
    Snapshot(SnapshotError),
    /// An encoded observation batch could not be decoded.
    Codec(TraceCodecError),
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::Closed => write!(f, "prefetch shard has shut down"),
            ServiceError::TenantExists(t) => write!(f, "tenant {t} is already open"),
            ServiceError::UnknownTenant(t) => write!(f, "tenant {t} is not open"),
            ServiceError::InvalidSpec(e) => write!(f, "invalid tenant spec: {e}"),
            ServiceError::Snapshot(e) => write!(f, "snapshot restore failed: {e}"),
            ServiceError::Codec(e) => write!(f, "bad observation batch: {e}"),
        }
    }
}

impl std::error::Error for ServiceError {}

/// Per-tenant counters, as maintained by the tenant's shard.
///
/// Conservation invariant: every batch attempt a session makes is
/// eventually counted exactly once — accepted batches in `batches` /
/// `observed`, rejected attempts in `rejected` (reported on the next
/// accepted batch; a session that ends on a rejection leaves its final
/// rejections unflushed until it submits again).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TenantStats {
    /// The tenant ID.
    pub tenant: u32,
    /// Accepted observation batches.
    pub batches: u64,
    /// Individual miss observations processed.
    pub observed: u64,
    /// Batch attempts rejected with [`TrySubmit::Full`].
    pub rejected: u64,
    /// Prefetch predictions returned.
    pub prefetches: u64,
    /// Valid rows currently in the tenant's table.
    pub live_rows: u64,
    /// Size of the tenant's table in bytes.
    pub table_bytes: u64,
}

/// Per-shard aggregate counters.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ShardStats {
    /// The shard index.
    pub shard: u32,
    /// Tenants registered on this shard.
    pub tenants: u32,
    /// Accepted observation batches across tenants.
    pub batches: u64,
    /// Miss observations processed across tenants.
    pub observed: u64,
    /// Rejected batch attempts across tenants.
    pub rejected: u64,
    /// Prefetch predictions returned across tenants.
    pub prefetches: u64,
    /// Cycles the shard's table engine was busy.
    pub busy_cycles: Cycle,
    /// Virtual cycles elapsed on the shard's clock.
    pub elapsed_cycles: Cycle,
}

impl ShardStats {
    /// Fraction of the shard's virtual time spent doing table work —
    /// the occupancy figure the paper's Figure 10 reports for the
    /// memory processor, here per shard.
    pub fn utilization(&self) -> f64 {
        if self.elapsed_cycles == 0 {
            0.0
        } else {
            self.busy_cycles as f64 / self.elapsed_cycles as f64
        }
    }
}

/// The shard's response to one accepted batch.
#[derive(Debug)]
pub struct BatchReply {
    /// Miss observations processed (0 if cancelled or rejected).
    pub observed: u64,
    /// Prefetch predictions, in emission order across the batch.
    pub prefetches: Vec<LineAddr>,
    /// `true` if the service was cancelled and the batch was
    /// acknowledged without learning.
    pub cancelled: bool,
    /// Set if the shard could not process the batch at all.
    pub error: Option<ServiceError>,
    /// The submitted observation buffer, cleared but with its capacity
    /// intact. Every ack path hands the batch `Vec` back (accepted,
    /// cancelled and rejected alike), so a client that re-fills the
    /// returned buffer for its next submission ingests in a steady
    /// state with no allocation on either side of the queue.
    pub recycled: Vec<LineAddr>,
}

impl BatchReply {
    pub(crate) fn accepted(
        observed: u64,
        prefetches: Vec<LineAddr>,
        recycled: Vec<LineAddr>,
    ) -> Self {
        BatchReply {
            observed,
            prefetches,
            cancelled: false,
            error: None,
            recycled,
        }
    }

    pub(crate) fn cancelled(recycled: Vec<LineAddr>) -> Self {
        BatchReply {
            observed: 0,
            prefetches: Vec::new(),
            cancelled: true,
            error: None,
            recycled,
        }
    }

    pub(crate) fn rejected(error: ServiceError, recycled: Vec<LineAddr>) -> Self {
        BatchReply {
            observed: 0,
            prefetches: Vec::new(),
            cancelled: false,
            error: Some(error),
            recycled,
        }
    }
}

/// Handle to a batch the shard has accepted but possibly not yet
/// processed.
#[derive(Debug)]
pub struct PendingBatch {
    rx: Receiver<BatchReply>,
}

impl PendingBatch {
    /// Blocks until the shard has processed the batch.
    pub fn wait(self) -> Result<BatchReply, ServiceError> {
        self.rx.recv().map_err(|_| ServiceError::Closed)
    }

    /// Returns the reply if the shard has already processed the batch.
    pub fn poll(&self) -> Option<BatchReply> {
        self.rx.try_recv().ok()
    }
}

/// Outcome of a non-blocking submission.
#[derive(Debug)]
pub enum TrySubmit {
    /// The batch is in the shard's queue; the handle yields the reply.
    Enqueued(PendingBatch),
    /// The shard's ingestion queue is full. The observations are handed
    /// back untouched — nothing was dropped — and the rejection will be
    /// counted on the shard with the next accepted batch.
    Full(Vec<LineAddr>),
    /// The shard has shut down; the observations are handed back.
    Closed(Vec<LineAddr>),
}

/// A tenant's handle onto the service.
///
/// Sessions are single-owner (`&mut self` on the data plane) because
/// the handle locally accumulates the count of rejected submissions to
/// piggyback on the next accepted batch.
#[derive(Debug)]
pub struct Session {
    tenant: u32,
    shard: u32,
    tx: SyncSender<ShardMsg>,
    rejected_since_last: u32,
}

impl Session {
    /// The tenant ID this session feeds.
    pub fn tenant(&self) -> u32 {
        self.tenant
    }

    /// The shard the tenant is pinned to.
    pub fn shard(&self) -> u32 {
        self.shard
    }

    /// Non-blocking submission of a batch of L2-miss line addresses.
    /// Never drops observations: a full queue hands the batch back as
    /// [`TrySubmit::Full`].
    pub fn try_submit(&mut self, obs: Vec<LineAddr>) -> TrySubmit {
        let (reply, rx) = channel();
        let msg = ShardMsg::Batch {
            tenant: self.tenant,
            obs,
            rejected_since_last: self.rejected_since_last,
            reply,
        };
        match self.tx.try_send(msg) {
            Ok(()) => {
                self.rejected_since_last = 0;
                TrySubmit::Enqueued(PendingBatch { rx })
            }
            Err(TrySendError::Full(msg)) => {
                self.rejected_since_last = self.rejected_since_last.saturating_add(1);
                TrySubmit::Full(take_obs(msg))
            }
            Err(TrySendError::Disconnected(msg)) => TrySubmit::Closed(take_obs(msg)),
        }
    }

    /// Blocking submission: waits for queue space instead of rejecting.
    pub fn submit(&mut self, obs: Vec<LineAddr>) -> Result<PendingBatch, ServiceError> {
        let (reply, rx) = channel();
        let msg = ShardMsg::Batch {
            tenant: self.tenant,
            obs,
            rejected_since_last: self.rejected_since_last,
            reply,
        };
        self.tx.send(msg).map_err(|_| ServiceError::Closed)?;
        self.rejected_since_last = 0;
        Ok(PendingBatch { rx })
    }

    /// Blocking submission of a batch in the
    /// [`encode_lines`](ulmt_workloads::codec::encode_lines) wire format.
    pub fn submit_encoded(&mut self, bytes: &[u8]) -> Result<PendingBatch, ServiceError> {
        let obs = decode_lines(bytes).map_err(ServiceError::Codec)?;
        self.submit(obs)
    }

    /// Captures the tenant's learned table, after everything already
    /// queued for it has been processed (FIFO ordering is the barrier).
    pub fn snapshot(&self) -> Result<TableSnapshot, ServiceError> {
        let (reply, rx) = channel();
        self.control(ShardMsg::Snapshot {
            tenant: self.tenant,
            reply,
        })?;
        rx.recv().map_err(|_| ServiceError::Closed)?
    }

    /// Replaces the tenant's table with a previously captured snapshot
    /// (warm start). The snapshot must come from the same algorithm.
    pub fn restore(&self, snap: TableSnapshot) -> Result<(), ServiceError> {
        let (reply, rx) = channel();
        self.control(ShardMsg::Restore {
            tenant: self.tenant,
            snap: Box::new(snap),
            reply,
        })?;
        rx.recv().map_err(|_| ServiceError::Closed)?
    }

    /// Fingerprint of the tenant's learned table (see
    /// [`TableSnapshot::fingerprint`]).
    pub fn fingerprint(&self) -> Result<u64, ServiceError> {
        let (reply, rx) = channel();
        self.control(ShardMsg::Fingerprint {
            tenant: self.tenant,
            reply,
        })?;
        rx.recv().map_err(|_| ServiceError::Closed)?
    }

    /// The tenant's counters.
    pub fn stats(&self) -> Result<TenantStats, ServiceError> {
        let (reply, rx) = channel();
        self.control(ShardMsg::TenantStats {
            tenant: self.tenant,
            reply,
        })?;
        rx.recv().map_err(|_| ServiceError::Closed)?
    }

    fn control(&self, msg: ShardMsg) -> Result<(), ServiceError> {
        self.tx.send(msg).map_err(|_| ServiceError::Closed)
    }

    /// Test-only: a session on the same shard queue for a tenant that
    /// was never opened, to exercise the rejected ack path.
    #[cfg(test)]
    pub(crate) fn test_clone_for_tenant(other: &Session, tenant: u32) -> Session {
        Session {
            tenant,
            shard: other.shard,
            tx: other.tx.clone(),
            rejected_since_last: 0,
        }
    }
}

fn take_obs(msg: ShardMsg) -> Vec<LineAddr> {
    match msg {
        ShardMsg::Batch { obs, .. } => obs,
        _ => unreachable!("only Batch messages are submitted non-blockingly"),
    }
}

/// Holds a shard paused; dropping it resumes the shard. Produced by
/// [`PrefetchService::pause_shard`], primarily so tests can fill an
/// ingestion queue deterministically and observe backpressure.
#[derive(Debug)]
pub struct PauseGuard {
    _resume: Sender<()>,
}

/// A long-lived, sharded, multi-tenant prefetch service.
///
/// `N` shard worker threads each own the correlation tables of the
/// tenants hashed to them. Clients open a [`Session`] per tenant and
/// feed batches of L2-miss observations; the shard learns on them and
/// returns prefetch predictions plus per-tenant statistics.
///
/// # Determinism
///
/// A tenant's table state after a given observation stream is
/// bit-identical (equal [`TableSnapshot::fingerprint`]) for any shard
/// count and any interleaving with other tenants: the tenant's stream
/// flows FIFO through exactly one shard queue, and observations only
/// touch their own tenant's table.
///
/// # Example
///
/// ```
/// use ulmt_service::{PrefetchService, ServiceConfig, TenantSpec, TrySubmit};
/// use ulmt_simcore::LineAddr;
///
/// let service = PrefetchService::start(ServiceConfig::default());
/// let mut session = service.open(7, TenantSpec::repl(1024)).unwrap();
/// let obs: Vec<LineAddr> = [1u64, 2, 3, 1, 2, 3, 1].iter().map(|&n| LineAddr::new(n)).collect();
/// let reply = match session.try_submit(obs) {
///     TrySubmit::Enqueued(pending) => pending.wait().unwrap(),
///     other => panic!("queue unexpectedly unavailable: {other:?}"),
/// };
/// assert_eq!(reply.observed, 7);
/// assert!(!reply.prefetches.is_empty());
/// service.shutdown();
/// ```
pub struct PrefetchService {
    cfg: ServiceConfig,
    senders: Vec<SyncSender<ShardMsg>>,
    handles: Vec<JoinHandle<ShardReport>>,
    cancel: CancelToken,
}

impl PrefetchService {
    /// Spawns the shard workers and returns the running service.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` is invalid (see [`ServiceConfig::validate`]).
    pub fn start(cfg: ServiceConfig) -> Self {
        cfg.checked();
        let cancel = CancelToken::new();
        let mut senders = Vec::with_capacity(cfg.shards);
        let mut handles = Vec::with_capacity(cfg.shards);
        for shard in 0..cfg.shards as u32 {
            let (tx, rx) = sync_channel(cfg.queue_depth);
            let token = cancel.clone();
            handles.push(
                std::thread::Builder::new()
                    .name(format!("ulmt-shard-{shard}"))
                    .spawn(move || run_shard(shard, cfg, token, rx))
                    .expect("spawning a shard worker thread"),
            );
            senders.push(tx);
        }
        PrefetchService {
            cfg,
            senders,
            handles,
            cancel,
        }
    }

    /// The configuration the service was started with.
    pub fn config(&self) -> &ServiceConfig {
        &self.cfg
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.senders.len()
    }

    /// The shard `tenant` is pinned to: a seeded hash, stable for the
    /// service's lifetime.
    pub fn shard_of(&self, tenant: u32) -> u32 {
        let mut h = FxHasher::default();
        h.write_u64(self.cfg.seed);
        h.write_u32(tenant);
        (h.finish() % self.senders.len() as u64) as u32
    }

    /// The service's cancellation token. Cancelling makes shards
    /// acknowledge further batches without learning, so clients can
    /// drain their pipelines and the service can shut down promptly.
    pub fn cancel_token(&self) -> CancelToken {
        self.cancel.clone()
    }

    /// Registers `tenant` on its shard and returns its session.
    pub fn open(&self, tenant: u32, spec: TenantSpec) -> Result<Session, ServiceError> {
        let shard = self.shard_of(tenant);
        let tx = self.senders[shard as usize].clone();
        let (reply, rx) = channel();
        tx.send(ShardMsg::Open {
            tenant,
            spec,
            reply,
        })
        .map_err(|_| ServiceError::Closed)?;
        rx.recv().map_err(|_| ServiceError::Closed)??;
        Ok(Session {
            tenant,
            shard,
            tx,
            rejected_since_last: 0,
        })
    }

    /// Aggregate counters of one shard.
    pub fn shard_stats(&self, shard: usize) -> Result<ShardStats, ServiceError> {
        let (reply, rx) = channel();
        self.senders[shard]
            .send(ShardMsg::ShardStats { reply })
            .map_err(|_| ServiceError::Closed)?;
        rx.recv().map_err(|_| ServiceError::Closed)
    }

    /// Blocks the given shard until the returned guard is dropped.
    /// While paused, the shard's ingestion queue fills up and
    /// [`Session::try_submit`] surfaces backpressure as
    /// [`TrySubmit::Full`].
    pub fn pause_shard(&self, shard: usize) -> Result<PauseGuard, ServiceError> {
        let (resume, gate) = channel();
        self.senders[shard]
            .send(ShardMsg::Pause(gate))
            .map_err(|_| ServiceError::Closed)?;
        Ok(PauseGuard { _resume: resume })
    }

    /// Barrier: returns once every shard has processed everything queued
    /// before this call.
    pub fn drain(&self) -> Result<(), ServiceError> {
        let mut waits = Vec::with_capacity(self.senders.len());
        for tx in &self.senders {
            let (reply, rx) = channel();
            tx.send(ShardMsg::Drain { reply })
                .map_err(|_| ServiceError::Closed)?;
            waits.push(rx);
        }
        for rx in waits {
            rx.recv().map_err(|_| ServiceError::Closed)?;
        }
        Ok(())
    }

    /// Graceful shutdown: every shard processes its remaining queue,
    /// then exits; returns each shard's final report (counters plus
    /// trace buffer, if tracing was on). Sessions still holding the
    /// service see [`ServiceError::Closed`] / [`TrySubmit::Closed`]
    /// afterwards.
    pub fn shutdown(mut self) -> Vec<ShardReport> {
        for tx in &self.senders {
            let _ = tx.send(ShardMsg::Shutdown);
        }
        self.senders.clear();
        let mut reports = Vec::with_capacity(self.handles.len());
        for handle in self.handles.drain(..) {
            reports.push(handle.join().expect("shard worker panicked"));
        }
        reports
    }
}

impl Drop for PrefetchService {
    /// Dropping without [`PrefetchService::shutdown`] cancels the token
    /// (so in-flight work winds down) but does not join the workers;
    /// they exit once every session's sender is dropped.
    fn drop(&mut self) {
        self.cancel.cancel();
    }
}
