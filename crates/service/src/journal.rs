//! The per-shard observation journal: a bounded ring of recently-acked
//! batches that makes crash recovery bit-identical whenever the window
//! suffices.
//!
//! # Recovery contract
//!
//! Each shard assigns every **accepted** batch a monotonically increasing
//! sequence number `seq` (1-based, shared across the shard's tenants in
//! stream order) and journals `(seq, tenant, piggybacked counters, obs)`
//! *before* acknowledging the batch to its client. The supervisor also
//! keeps a periodic checkpoint: snapshots of every tenant table plus the
//! shard's counters and virtual clock, stamped with the checkpoint `seq`.
//!
//! On a crash, recovery restores the checkpoint and replays every
//! journaled batch with `seq > checkpoint.seq` through the same
//! `process_misses` batch kernel the live shard uses. Because the journal
//! is pushed in seq order and evicts oldest-first, its contents always
//! form one contiguous range `[lo, hi]`:
//!
//! * if `lo <= checkpoint.seq + 1`, the journal covers the whole gap and
//!   recovery is **clean** — the rebuilt shard is bit-identical (same
//!   table fingerprints, same counters, same virtual clock) to a shard
//!   that never died;
//! * otherwise the batches in `(checkpoint.seq, lo)` were evicted before
//!   the crash and recovery is **lossy** — it still replays the surviving
//!   suffix, and reports the exact number of acked-but-unrecoverable
//!   batches (and observations) so the accounting identity
//!   `control.accepted == recovered.accepted + dropped` stays exact.
//!
//! Window math: a shard that checkpoints every `C` accepted batches and
//! journals `W >= C` of them can always recover cleanly, because at most
//! `C` acked batches ever sit past the newest checkpoint. `W < C` buys a
//! smaller memory bound at the price of a lossy window of up to `C - W`
//! batches. Batches that were *in the ingestion queue* (not yet acked) at
//! the crash are not the journal's problem: their reply channels error
//! out and the client resubmits — at-least-once delivery on top of an
//! exactly-once journal.

use std::collections::VecDeque;

use ulmt_simcore::LineAddr;

/// One acked batch, as the shard journaled it before replying.
#[derive(Debug, Clone)]
pub(crate) struct JournalEntry {
    /// Shard-global accepted-batch sequence number (1-based).
    pub seq: u64,
    /// Tenant the batch belongs to.
    pub tenant: u32,
    /// The submitting session's *cumulative* rejected-submission count
    /// as of this batch. Cumulative (not a delta) so that replay and
    /// at-least-once resubmission apply it idempotently: the shard
    /// merges `max(applied, cum)`, never a blind add.
    pub rejected_cum: u64,
    /// The session's cumulative shed-submission count (same scheme).
    pub shed_cum: u64,
    /// The observations themselves.
    pub obs: Vec<LineAddr>,
}

/// What a journal replay could reconstruct.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct JournalCoverage {
    /// Entries with `seq > checkpoint_seq`, i.e. replayable work.
    pub replayable: u64,
    /// Acked batches in the gap `(checkpoint_seq, oldest_journaled)` that
    /// were evicted and cannot be replayed.
    pub dropped_batches: u64,
    /// Observations inside those dropped batches are unknown (the entries
    /// are gone); this is the count of *surviving* replayable
    /// observations, for conservation reporting.
    pub replayable_obs: u64,
    /// True when the checkpoint claimed a seq *ahead* of everything the
    /// journal ever acked — recovery state is corrupt (a checkpoint can
    /// only ever cover acked batches). Distinct from the legitimate
    /// zero-gap case where the checkpoint exactly matches `last_acked()`.
    pub checkpoint_ahead: bool,
}

/// A bounded, seq-ordered ring of recently-acked observation batches.
#[derive(Debug)]
pub(crate) struct ObservationJournal {
    window: usize,
    next_seq: u64,
    ring: VecDeque<JournalEntry>,
}

impl ObservationJournal {
    /// An empty journal retaining at most `window` acked batches.
    pub fn new(window: usize) -> Self {
        ObservationJournal {
            window: window.max(1),
            next_seq: 1,
            ring: VecDeque::with_capacity(window.clamp(1, 1024)),
        }
    }

    /// The seq the next accepted batch will get.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// The seq of the last acked batch (0 if none yet).
    pub fn last_acked(&self) -> u64 {
        self.next_seq - 1
    }

    /// Number of batches currently retained.
    #[cfg(test)]
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Assigns the next seq to an acked batch and retains it, evicting
    /// the oldest entry if the window is full. Returns the assigned seq.
    ///
    /// The evicted entry's observation buffer is recycled into the new
    /// entry, so once the window is full the per-ack hot path allocates
    /// only when a batch outgrows the recycled capacity — the journal
    /// reaches the same steady-state zero-allocation regime as the reply
    /// buffers.
    pub fn push(&mut self, tenant: u32, rejected_cum: u64, shed_cum: u64, obs: &[LineAddr]) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        let mut buf = if self.ring.len() == self.window {
            let mut recycled = self.ring.pop_front().expect("window >= 1").obs;
            recycled.clear();
            recycled
        } else {
            Vec::new()
        };
        buf.extend_from_slice(obs);
        self.ring.push_back(JournalEntry {
            seq,
            tenant,
            rejected_cum,
            shed_cum,
            obs: buf,
        });
        seq
    }

    /// Used by recovery to resume the seq counter on a rebuilt shard: the
    /// journal object itself survives the crash (it lives outside the
    /// worker thread), so this only needs to exist for tests constructing
    /// journals by hand.
    #[cfg(test)]
    pub fn set_next_seq(&mut self, next: u64) {
        self.next_seq = next;
    }

    /// The replayable entries after `checkpoint_seq`, in seq order, plus
    /// the exact coverage accounting.
    pub fn replay_from(&self, checkpoint_seq: u64) -> (Vec<&JournalEntry>, JournalCoverage) {
        // A checkpoint is always taken at an acked seq, so a checkpoint
        // ahead of `last_acked()` means the recovery state is corrupt.
        // Flag it (and fail fast in debug builds) instead of letting a
        // saturating subtraction quietly report a clean zero-batch gap.
        let checkpoint_ahead = checkpoint_seq > self.last_acked();
        debug_assert!(
            !checkpoint_ahead,
            "journal: checkpoint seq {checkpoint_seq} is ahead of last acked {}",
            self.last_acked()
        );
        let entries: Vec<&JournalEntry> = self
            .ring
            .iter()
            .filter(|e| e.seq > checkpoint_seq)
            .collect();
        let oldest_needed = checkpoint_seq + 1;
        let dropped_batches = match entries.first() {
            Some(first) => first.seq - oldest_needed,
            // Nothing retained past the checkpoint: everything acked
            // after it (if anything) is gone.
            None if !checkpoint_ahead => self.last_acked() - checkpoint_seq,
            None => 0,
        };
        let coverage = JournalCoverage {
            replayable: entries.len() as u64,
            dropped_batches,
            replayable_obs: entries.iter().map(|e| e.obs.len() as u64).sum(),
            checkpoint_ahead,
        };
        (entries, coverage)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lines(ns: std::ops::Range<u64>) -> Vec<LineAddr> {
        ns.map(LineAddr::new).collect()
    }

    #[test]
    fn seqs_are_contiguous_and_window_bounded() {
        let mut j = ObservationJournal::new(3);
        for i in 0..5 {
            let seq = j.push(7, 0, 0, &lines(0..i + 1));
            assert_eq!(seq, i + 1);
        }
        assert_eq!(j.len(), 3);
        assert_eq!(j.last_acked(), 5);
        let seqs: Vec<u64> = j.ring.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![3, 4, 5], "ring keeps the newest contiguous run");
    }

    #[test]
    fn full_coverage_is_clean() {
        let mut j = ObservationJournal::new(8);
        for i in 0..6u64 {
            j.push(1, 0, 0, &lines(0..4));
            let _ = i;
        }
        // Checkpoint at seq 2: batches 3..=6 are all retained.
        let (entries, cov) = j.replay_from(2);
        assert_eq!(entries.len(), 4);
        assert_eq!(cov.dropped_batches, 0);
        assert_eq!(cov.replayable, 4);
        assert_eq!(cov.replayable_obs, 16);
        assert!(entries.windows(2).all(|w| w[0].seq + 1 == w[1].seq));
    }

    #[test]
    fn evicted_gap_is_counted_exactly() {
        let mut j = ObservationJournal::new(2);
        for _ in 0..7 {
            j.push(1, 0, 0, &lines(0..3));
        }
        // Retained: seqs 6, 7. Checkpoint at seq 1 → batches 2..=5 gone.
        let (entries, cov) = j.replay_from(1);
        assert_eq!(entries.iter().map(|e| e.seq).collect::<Vec<_>>(), [6, 7]);
        assert_eq!(cov.dropped_batches, 4);
        assert_eq!(cov.replayable, 2);
    }

    #[test]
    fn empty_journal_after_checkpoint_reports_whole_gap() {
        let mut j = ObservationJournal::new(4);
        j.set_next_seq(10); // 9 batches acked, none retained
        let (entries, cov) = j.replay_from(5);
        assert!(entries.is_empty());
        assert_eq!(cov.dropped_batches, 4, "seqs 6..=9 unrecoverable");
        // Checkpoint newer than everything acked: nothing to do.
        let (_, cov) = j.replay_from(9);
        assert_eq!(cov.dropped_batches, 0);
    }

    #[test]
    fn checkpoint_at_last_acked_is_a_legitimate_zero_gap() {
        let mut j = ObservationJournal::new(4);
        for _ in 0..6 {
            j.push(1, 0, 0, &lines(0..2));
        }
        // Exactly at the boundary: nothing to replay, nothing dropped,
        // and the recovery state is sound.
        let (entries, cov) = j.replay_from(j.last_acked());
        assert!(entries.is_empty());
        assert_eq!(cov.dropped_batches, 0);
        assert!(!cov.checkpoint_ahead);
    }

    #[test]
    #[cfg_attr(debug_assertions, should_panic(expected = "ahead of last acked"))]
    fn checkpoint_ahead_of_acked_is_flagged_as_corrupt() {
        let mut j = ObservationJournal::new(4);
        j.set_next_seq(10); // 9 batches acked
                            // One past the boundary: a checkpoint the shard never acked. In
                            // debug builds the assertion fires; in release the coverage is
                            // flagged instead of masquerading as a clean zero-batch gap.
        let (entries, cov) = j.replay_from(10);
        assert!(entries.is_empty());
        assert!(cov.checkpoint_ahead, "corrupt state must be flagged");
        assert_eq!(cov.dropped_batches, 0);
    }

    #[test]
    fn steady_state_push_recycles_the_evicted_buffer() {
        let mut j = ObservationJournal::new(2);
        let obs = lines(0..64);
        for _ in 0..2 {
            j.push(1, 0, 0, &obs);
        }
        // Window full: every further push must reuse the evicted entry's
        // buffer rather than allocating a fresh one.
        let recycled_ptr = j.ring.front().expect("full window").obs.as_ptr();
        let recycled_cap = j.ring.front().expect("full window").obs.capacity();
        j.push(1, 0, 0, &obs);
        let newest = &j.ring.back().expect("just pushed").obs;
        assert_eq!(newest.as_ptr(), recycled_ptr, "evicted buffer is reused");
        assert_eq!(newest.capacity(), recycled_cap, "capacity is preserved");
        assert_eq!(newest.len(), 64);
        // Smaller follow-up batches keep riding recycled capacity.
        for _ in 0..8 {
            j.push(1, 0, 0, &lines(0..16));
        }
        assert!(
            j.ring.iter().all(|e| e.obs.capacity() >= 64),
            "recycled capacity survives smaller batches"
        );
    }

    #[test]
    fn piggybacked_counters_ride_the_entry() {
        let mut j = ObservationJournal::new(4);
        j.push(3, 2, 1, &lines(0..1));
        let (entries, _) = j.replay_from(0);
        assert_eq!(entries[0].rejected_cum, 2);
        assert_eq!(entries[0].shed_cum, 1);
        assert_eq!(entries[0].tenant, 3);
    }
}
