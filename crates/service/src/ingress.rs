//! Per-tenant bounded ingestion queues and the weighted deficit-round-
//! robin scheduler that drains them — the shard's fairness layer.
//!
//! Before this layer, every tenant on a shard shared one bounded
//! `sync_channel`: a single hot tenant could fill it and head-of-line
//! block its neighbors, and backpressure (`TrySubmit::Full`) punished
//! whichever tenant happened to submit next rather than the one causing
//! the pressure. Now each tenant owns a bounded queue inside the shard's
//! [`Ingress`], so
//!
//! * **admission** is per-tenant: a full queue rejects only that
//!   tenant's submissions, and
//! * **service** is scheduled: the worker picks the next batch by
//!   weighted deficit round-robin ([`SchedulerPolicy::Drr`]) or by
//!   global arrival order ([`SchedulerPolicy::Fifo`], which reproduces
//!   the old shared-queue behavior for baseline comparison).
//!
//! # Why fingerprints don't change
//!
//! The scheduler only reorders batches *across* tenants. Within one
//! tenant the queue is FIFO and the worker always takes the head, so a
//! tenant's observation stream reaches its table in submission order no
//! matter the policy, the weights, or what its neighbors do. Table state
//! is a pure function of that per-tenant stream — which is the service's
//! existing determinism argument, now extended across scheduling
//! policies.
//!
//! # DRR invariants
//!
//! Each tenant holds a *deficit* of observation credit. A visit to a
//! tenant that was not served on the previous pick replenishes its
//! deficit by `weight * quantum_obs` once; a batch is served when the
//! deficit covers its cost (`max(len, 1)` observations) and the cost is
//! then deducted. An emptied queue forfeits its deficit, so idle tenants
//! cannot hoard credit. Every full rotation grows every backlogged
//! tenant's deficit by at least one quantum, so the scheduler always
//! makes progress, and over any backlogged interval tenant throughput is
//! proportional to weight (the classic DRR O(1) fairness bound).
//!
//! # Lifecycle
//!
//! An `Ingress` belongs to one worker *epoch*. When the epoch dies —
//! crash, wedge fence, or shutdown — the ingress is closed and its
//! queued batches drained: on the crash path their reply channels are
//! dropped (clients observe `Closed` and resubmit, the at-least-once
//! half of the recovery contract), on the graceful path the worker
//! answers them with a typed `ShuttingDown` error. Queued batches are
//! *never* carried into the next epoch: the client resubmits the
//! in-flight batch it never got an ack for, and letting queued
//! successors survive would reorder them behind that resubmission,
//! breaking per-tenant stream order.

use std::collections::VecDeque;
use std::sync::mpsc::Sender;
use std::sync::{Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use ulmt_simcore::{FxHashMap, LineAddr};

use crate::config::SchedulerPolicy;
use crate::service::BatchReply;

/// One queued observation batch, with everything the worker needs to
/// process and acknowledge it.
pub(crate) struct IngressBatch {
    /// The tenant the batch belongs to.
    pub tenant: u32,
    /// The observations.
    pub obs: Vec<LineAddr>,
    /// The session's *cumulative* count of rejected submissions —
    /// totals, not deltas, so applying them is idempotent under
    /// at-least-once resubmission and journal replay.
    pub rejected_cum: u64,
    /// The session's cumulative count of shed submissions.
    pub shed_cum: u64,
    /// Where the ack goes.
    pub reply: Sender<BatchReply>,
    /// When the batch entered its queue, for the metrics plane's
    /// queue-wait histogram. `None` when metrics are disabled: the
    /// clock is never even read, so the disabled path costs nothing.
    pub enqueued_at: Option<Instant>,
    /// Global arrival ticket (used by the FIFO policy).
    ticket: u64,
}

struct TenantQueue {
    weight: u64,
    depth: usize,
    deficit: u64,
    /// `true` when the next visit should replenish the deficit: set on
    /// registration, when the queue empties, and whenever the scheduler
    /// moves past this tenant.
    fresh: bool,
    /// Batches ever enqueued for this tenant on this epoch.
    enq: u64,
    /// Batches handed to the worker (per-tenant barrier watermark).
    done: u64,
    q: VecDeque<IngressBatch>,
}

struct IngressInner {
    tenants: FxHashMap<u32, TenantQueue>,
    /// Round-robin visit order (tenant registration order).
    round: Vec<u32>,
    cursor: usize,
    next_ticket: u64,
    queued: usize,
    /// Set by [`Ingress::kick`] so a control message sent while the
    /// worker sleeps on the `work` condvar wakes it promptly.
    kicked: bool,
    closed: bool,
}

/// Outcome of an enqueue attempt. The failing variants hand the
/// observation buffer back untouched.
pub(crate) enum Enqueue {
    /// The batch is queued; the worker will pick it up.
    Ok,
    /// The *tenant's* queue is full (its neighbors are unaffected).
    Full(Vec<LineAddr>),
    /// The deadline expired before the tenant's queue had space.
    TimedOut(Vec<LineAddr>),
    /// The ingress is closed (worker epoch ended).
    Closed(Vec<LineAddr>),
    /// The tenant was never registered on this shard.
    Unknown(Vec<LineAddr>),
}

enum TryEnqueue {
    Ok,
    Full(IngressParts),
    Closed(IngressParts),
    Unknown(IngressParts),
}

/// The caller-supplied fields of a batch ([`Ingress`] assigns tickets).
pub(crate) struct IngressParts {
    pub tenant: u32,
    pub obs: Vec<LineAddr>,
    pub rejected_cum: u64,
    pub shed_cum: u64,
    pub reply: Sender<BatchReply>,
}

/// One worker epoch's ingestion front: per-tenant bounded queues, the
/// scheduler state, and the condvars producers and the worker sleep on.
pub(crate) struct Ingress {
    policy: SchedulerPolicy,
    quantum: u64,
    default_depth: usize,
    /// Stamp each batch's enqueue time (metrics enabled)?
    stamp: bool,
    inner: Mutex<IngressInner>,
    /// Worker waits here for data or a kick.
    work: Condvar,
    /// Producers wait here for queue space.
    space: Condvar,
}

impl std::fmt::Debug for Ingress {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = guard(&self.inner);
        f.debug_struct("Ingress")
            .field("policy", &self.policy)
            .field("tenants", &inner.round.len())
            .field("queued", &inner.queued)
            .field("closed", &inner.closed)
            .finish_non_exhaustive()
    }
}

fn guard<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl Ingress {
    /// An ingress without enqueue timestamping (tests only; the service
    /// always picks per its metrics config).
    #[cfg(test)]
    pub fn new(policy: SchedulerPolicy, quantum_obs: usize, default_depth: usize) -> Self {
        Self::with_stamp(policy, quantum_obs, default_depth, false)
    }

    /// Builds an ingress, with enqueue timestamping (the metrics
    /// plane's queue-wait source) switched on or off.
    pub fn with_stamp(
        policy: SchedulerPolicy,
        quantum_obs: usize,
        default_depth: usize,
        stamp: bool,
    ) -> Self {
        Ingress {
            policy,
            quantum: (quantum_obs as u64).max(1),
            default_depth: default_depth.max(1),
            stamp,
            inner: Mutex::new(IngressInner {
                tenants: FxHashMap::default(),
                round: Vec::new(),
                cursor: 0,
                next_ticket: 0,
                queued: 0,
                kicked: false,
                closed: false,
            }),
            work: Condvar::new(),
            space: Condvar::new(),
        }
    }

    /// Registers a tenant's queue (idempotent). `depth` of `None` uses
    /// the service-wide default.
    pub fn register(&self, tenant: u32, weight: u32, depth: Option<usize>) {
        let mut inner = guard(&self.inner);
        if inner.tenants.contains_key(&tenant) {
            return;
        }
        inner.tenants.insert(
            tenant,
            TenantQueue {
                weight: (weight as u64).max(1),
                depth: depth.unwrap_or(self.default_depth).max(1),
                deficit: 0,
                fresh: true,
                enq: 0,
                done: 0,
                q: VecDeque::new(),
            },
        );
        inner.round.push(tenant);
    }

    fn push_locked(inner: &mut IngressInner, parts: IngressParts, stamp: bool) -> TryEnqueue {
        if inner.closed {
            return TryEnqueue::Closed(parts);
        }
        let Some(t) = inner.tenants.get_mut(&parts.tenant) else {
            return TryEnqueue::Unknown(parts);
        };
        if t.q.len() >= t.depth {
            return TryEnqueue::Full(parts);
        }
        let ticket = inner.next_ticket;
        inner.next_ticket += 1;
        let t = inner.tenants.get_mut(&parts.tenant).expect("checked above");
        t.q.push_back(IngressBatch {
            tenant: parts.tenant,
            obs: parts.obs,
            rejected_cum: parts.rejected_cum,
            shed_cum: parts.shed_cum,
            reply: parts.reply,
            enqueued_at: stamp.then(Instant::now),
            ticket,
        });
        t.enq += 1;
        inner.queued += 1;
        TryEnqueue::Ok
    }

    /// Non-blocking enqueue.
    pub fn try_enqueue(&self, parts: IngressParts) -> Enqueue {
        let outcome = Self::push_locked(&mut guard(&self.inner), parts, self.stamp);
        match outcome {
            TryEnqueue::Ok => {
                self.work.notify_all();
                Enqueue::Ok
            }
            TryEnqueue::Full(p) => Enqueue::Full(p.obs),
            TryEnqueue::Closed(p) => Enqueue::Closed(p.obs),
            TryEnqueue::Unknown(p) => Enqueue::Unknown(p.obs),
        }
    }

    /// Enqueue that waits (on the `space` condvar) for the tenant's
    /// queue to have room, up to `deadline`.
    pub fn enqueue_deadline(&self, parts: IngressParts, deadline: Instant) -> Enqueue {
        let mut parts = parts;
        let mut inner = guard(&self.inner);
        loop {
            match Self::push_locked(&mut inner, parts, self.stamp) {
                TryEnqueue::Ok => {
                    drop(inner);
                    self.work.notify_all();
                    return Enqueue::Ok;
                }
                TryEnqueue::Closed(p) => return Enqueue::Closed(p.obs),
                TryEnqueue::Unknown(p) => return Enqueue::Unknown(p.obs),
                TryEnqueue::Full(p) => {
                    let now = Instant::now();
                    if now >= deadline {
                        return Enqueue::TimedOut(p.obs);
                    }
                    parts = p;
                    let (g, _timeout) = self
                        .space
                        .wait_timeout(inner, deadline - now)
                        .unwrap_or_else(|e| e.into_inner());
                    inner = g;
                }
            }
        }
    }

    /// The scheduler: hands the worker the next batch, or `None` if
    /// nothing is queued. Never blocks.
    pub fn next_batch(&self) -> Option<IngressBatch> {
        let mut inner = guard(&self.inner);
        if inner.queued == 0 {
            return None;
        }
        let batch = match self.policy {
            SchedulerPolicy::Drr => Self::pick_drr(&mut inner, self.quantum),
            SchedulerPolicy::Fifo => Self::pick_fifo(&mut inner),
        };
        if batch.is_some() {
            drop(inner);
            self.space.notify_all();
        }
        batch
    }

    /// Weighted deficit round-robin. Serves the tenant under the cursor
    /// for as long as its deficit covers batch costs, then rotates;
    /// terminates because every full rotation of a backlogged ingress
    /// replenishes at least one quantum per backlogged tenant.
    fn pick_drr(inner: &mut IngressInner, quantum: u64) -> Option<IngressBatch> {
        let n = inner.round.len();
        if n == 0 {
            return None;
        }
        loop {
            let id = inner.round[inner.cursor];
            let mut advance = true;
            let mut picked = None;
            {
                let t = inner.tenants.get_mut(&id).expect("round lists tenants");
                if t.q.is_empty() {
                    t.deficit = 0;
                    t.fresh = true;
                } else {
                    if t.fresh {
                        t.deficit = t.deficit.saturating_add(t.weight.saturating_mul(quantum));
                        t.fresh = false;
                    }
                    let cost = (t.q.front().expect("non-empty").obs.len() as u64).max(1);
                    if t.deficit >= cost {
                        t.deficit -= cost;
                        picked = t.q.pop_front();
                        t.done += 1;
                        if t.q.is_empty() {
                            t.deficit = 0;
                            t.fresh = true;
                        } else {
                            // Keep spending this tenant's remaining
                            // deficit on the next pick.
                            advance = false;
                        }
                    } else {
                        t.fresh = true;
                    }
                }
            }
            if advance {
                inner.cursor = (inner.cursor + 1) % n;
            }
            if let Some(b) = picked {
                inner.queued -= 1;
                return Some(b);
            }
        }
    }

    /// Global arrival order: the head batch with the smallest ticket —
    /// exactly what the old shared queue would have served next.
    fn pick_fifo(inner: &mut IngressInner) -> Option<IngressBatch> {
        let id = inner
            .tenants
            .iter()
            .filter_map(|(id, t)| t.q.front().map(|b| (b.ticket, *id)))
            .min()?
            .1;
        let t = inner.tenants.get_mut(&id).expect("picked above");
        let b = t.q.pop_front()?;
        t.done += 1;
        inner.queued -= 1;
        Some(b)
    }

    /// Pops the head of one specific tenant's queue, bypassing the
    /// scheduler. Used by barrier drains: per-tenant order is all that
    /// matters for correctness, and a control operation on tenant `t`
    /// must not wait on other tenants' backlogs.
    pub fn pop_tenant(&self, tenant: u32) -> Option<IngressBatch> {
        let mut inner = guard(&self.inner);
        let t = inner.tenants.get_mut(&tenant)?;
        let b = t.q.pop_front()?;
        t.done += 1;
        if t.q.is_empty() {
            t.deficit = 0;
            t.fresh = true;
        }
        inner.queued -= 1;
        drop(inner);
        self.space.notify_all();
        Some(b)
    }

    /// Batches ever enqueued for `tenant` on this epoch — the barrier
    /// value a control message captures at send time.
    pub fn barrier(&self, tenant: u32) -> u64 {
        guard(&self.inner)
            .tenants
            .get(&tenant)
            .map(|t| t.enq)
            .unwrap_or(0)
    }

    /// Batches the worker has taken for `tenant` so far.
    pub fn done(&self, tenant: u32) -> u64 {
        guard(&self.inner)
            .tenants
            .get(&tenant)
            .map(|t| t.done)
            .unwrap_or(0)
    }

    /// Barrier values for every registered tenant (registration order).
    pub fn barriers(&self) -> Vec<(u32, u64)> {
        let inner = guard(&self.inner);
        inner
            .round
            .iter()
            .map(|&id| (id, inner.tenants[&id].enq))
            .collect()
    }

    /// Wakes the worker so it notices a freshly sent control message
    /// instead of sleeping out its poll tick.
    pub fn kick(&self) {
        guard(&self.inner).kicked = true;
        self.work.notify_all();
    }

    /// Worker-side wait: returns when data is queued, a kick arrived,
    /// the ingress closed, or `timeout` elapsed (the supervision tick,
    /// so wedge heartbeats and fence checks keep their cadence).
    pub fn wait_work(&self, timeout: Duration) {
        let mut inner = guard(&self.inner);
        if inner.queued > 0 || inner.kicked || inner.closed {
            inner.kicked = false;
            return;
        }
        let deadline = Instant::now() + timeout;
        loop {
            let now = Instant::now();
            if now >= deadline {
                return;
            }
            let (g, _) = self
                .work
                .wait_timeout(inner, deadline - now)
                .unwrap_or_else(|e| e.into_inner());
            inner = g;
            if inner.queued > 0 || inner.kicked || inner.closed {
                inner.kicked = false;
                return;
            }
        }
    }

    /// `true` once [`Ingress::close`] ran.
    #[cfg(test)]
    pub fn is_closed(&self) -> bool {
        guard(&self.inner).closed
    }

    /// Closes the ingress and drains every queued batch, in per-tenant
    /// FIFO order (registration order across tenants). New enqueues fail
    /// with [`Enqueue::Closed`]; blocked producers and the worker wake.
    /// The caller decides the drained batches' fate: drop them (crash
    /// path — clients resubmit) or answer with a typed error (graceful
    /// shutdown). Idempotent; a second close drains nothing.
    pub fn close(&self) -> Vec<IngressBatch> {
        let mut inner = guard(&self.inner);
        inner.closed = true;
        let mut drained = Vec::with_capacity(inner.queued);
        let round = inner.round.clone();
        for id in round {
            let t = inner.tenants.get_mut(&id).expect("round lists tenants");
            while let Some(b) = t.q.pop_front() {
                t.done += 1;
                drained.push(b);
            }
        }
        inner.queued = 0;
        drop(inner);
        self.work.notify_all();
        self.space.notify_all();
        drained
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc::channel;

    fn parts(tenant: u32, len: usize) -> (IngressParts, std::sync::mpsc::Receiver<BatchReply>) {
        let (reply, rx) = channel();
        (
            IngressParts {
                tenant,
                obs: (0..len as u64).map(LineAddr::new).collect(),
                rejected_cum: 0,
                shed_cum: 0,
                reply,
            },
            rx,
        )
    }

    fn push(ing: &Ingress, tenant: u32, len: usize) {
        let (p, rx) = parts(tenant, len);
        assert!(matches!(ing.try_enqueue(p), Enqueue::Ok));
        std::mem::forget(rx);
    }

    fn drain_order(ing: &Ingress) -> Vec<u32> {
        let mut order = Vec::new();
        while let Some(b) = ing.next_batch() {
            order.push(b.tenant);
        }
        order
    }

    #[test]
    fn drr_interleaves_a_hot_tenant_with_a_light_one() {
        let ing = Ingress::new(SchedulerPolicy::Drr, 64, 16);
        ing.register(1, 1, None); // hot
        ing.register(2, 1, None); // light
        for _ in 0..4 {
            push(&ing, 1, 64);
        }
        push(&ing, 2, 64);
        // Visit hot (quantum 64, serve 1), deficit spent -> visit light
        // (serve its only batch), then hot drains.
        assert_eq!(drain_order(&ing), vec![1, 2, 1, 1, 1]);
    }

    #[test]
    fn drr_weight_doubles_a_tenants_share() {
        let ing = Ingress::new(SchedulerPolicy::Drr, 64, 16);
        ing.register(1, 2, None); // hot, weight 2
        ing.register(2, 1, None);
        for _ in 0..4 {
            push(&ing, 1, 64);
        }
        push(&ing, 2, 64);
        // Hot replenishes 128: serves two batches before rotating.
        assert_eq!(drain_order(&ing), vec![1, 1, 2, 1, 1]);
    }

    #[test]
    fn fifo_policy_reproduces_global_arrival_order() {
        let ing = Ingress::new(SchedulerPolicy::Fifo, 64, 16);
        ing.register(1, 1, None);
        ing.register(2, 1, None);
        push(&ing, 1, 64);
        push(&ing, 1, 64);
        push(&ing, 2, 8);
        push(&ing, 1, 64);
        push(&ing, 2, 8);
        assert_eq!(drain_order(&ing), vec![1, 1, 2, 1, 2]);
    }

    #[test]
    fn per_tenant_order_is_fifo_under_both_policies() {
        for policy in [SchedulerPolicy::Drr, SchedulerPolicy::Fifo] {
            let ing = Ingress::new(policy, 16, 64);
            ing.register(1, 1, None);
            ing.register(2, 3, None);
            for i in 0..10 {
                let (mut p, rx) = parts(1, 4);
                p.rejected_cum = i; // stamp submission order
                assert!(matches!(ing.try_enqueue(p), Enqueue::Ok));
                std::mem::forget(rx);
                push(&ing, 2, 31);
            }
            let mut seen = Vec::new();
            while let Some(b) = ing.next_batch() {
                if b.tenant == 1 {
                    seen.push(b.rejected_cum);
                }
            }
            assert_eq!(seen, (0..10).collect::<Vec<u64>>());
        }
    }

    #[test]
    fn full_queue_rejects_only_its_own_tenant() {
        let ing = Ingress::new(SchedulerPolicy::Drr, 64, 2);
        ing.register(1, 1, Some(2));
        ing.register(2, 1, Some(2));
        push(&ing, 1, 4);
        push(&ing, 1, 4);
        let (p, _rx) = parts(1, 4);
        assert!(matches!(ing.try_enqueue(p), Enqueue::Full(_)));
        // Tenant 2 still has room.
        let (p, _rx2) = parts(2, 4);
        assert!(matches!(ing.try_enqueue(p), Enqueue::Ok));
    }

    #[test]
    fn unknown_tenant_and_closed_ingress_hand_the_batch_back() {
        let ing = Ingress::new(SchedulerPolicy::Drr, 64, 4);
        ing.register(1, 1, None);
        let (p, _rx) = parts(99, 3);
        match ing.try_enqueue(p) {
            Enqueue::Unknown(obs) => assert_eq!(obs.len(), 3),
            _ => panic!("expected Unknown"),
        }
        push(&ing, 1, 3);
        let drained = ing.close();
        assert_eq!(drained.len(), 1);
        assert!(ing.is_closed());
        let (p, _rx2) = parts(1, 3);
        assert!(matches!(ing.try_enqueue(p), Enqueue::Closed(_)));
        assert!(ing.close().is_empty(), "second close drains nothing");
    }

    #[test]
    fn barriers_track_enqueues_and_pops() {
        let ing = Ingress::new(SchedulerPolicy::Drr, 64, 8);
        ing.register(1, 1, None);
        ing.register(2, 1, None);
        push(&ing, 1, 2);
        push(&ing, 1, 2);
        push(&ing, 2, 2);
        assert_eq!(ing.barrier(1), 2);
        assert_eq!(ing.barriers(), vec![(1, 2), (2, 1)]);
        assert_eq!(ing.done(1), 0);
        let b = ing.pop_tenant(1).expect("queued");
        assert_eq!(b.tenant, 1);
        assert_eq!(ing.done(1), 1);
        assert_eq!(ing.done(2), 0);
        // Draining tenant 1 to its barrier never touches tenant 2.
        while ing.done(1) < ing.barrier(1) {
            ing.pop_tenant(1).expect("barrier covered");
        }
        assert_eq!(ing.barrier(2), 1);
        assert_eq!(ing.done(2), 0);
    }

    #[test]
    fn enqueue_deadline_times_out_and_unblocks_on_space() {
        let ing = std::sync::Arc::new(Ingress::new(SchedulerPolicy::Drr, 64, 1));
        ing.register(1, 1, Some(1));
        push(&ing, 1, 1);
        let (p, _rx) = parts(1, 1);
        let t0 = Instant::now();
        match ing.enqueue_deadline(p, Instant::now() + Duration::from_millis(20)) {
            Enqueue::TimedOut(obs) => assert_eq!(obs.len(), 1),
            _ => panic!("expected TimedOut"),
        }
        assert!(t0.elapsed() >= Duration::from_millis(20));
        // With a consumer, the blocked producer gets through.
        let ing2 = std::sync::Arc::clone(&ing);
        let consumer = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(10));
            ing2.next_batch().expect("one batch queued")
        });
        let (p, _rx2) = parts(1, 1);
        match ing.enqueue_deadline(p, Instant::now() + Duration::from_secs(5)) {
            Enqueue::Ok => {}
            _ => panic!("expected Ok after space opened"),
        }
        consumer.join().expect("consumer");
    }

    #[test]
    fn wait_work_wakes_on_kick() {
        let ing = std::sync::Arc::new(Ingress::new(SchedulerPolicy::Drr, 64, 4));
        let ing2 = std::sync::Arc::clone(&ing);
        let kicker = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(5));
            ing2.kick();
        });
        let t0 = Instant::now();
        ing.wait_work(Duration::from_secs(10));
        assert!(t0.elapsed() < Duration::from_secs(5), "kick must wake");
        kicker.join().expect("kicker");
    }
}
