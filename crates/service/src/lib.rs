#![warn(missing_docs)]

//! # ULMT online prefetch service
//!
//! Turns the batch simulator's correlation tables into a long-lived,
//! sharded, multi-tenant **online** system. The paper runs its
//! prefetcher as a user-level thread on the memory controller; this
//! crate runs the same [`Base`]/[`Chain`]/[`Replicated`] tables behind
//! a service API:
//!
//! * [`PrefetchService::start`] spawns `N` shard worker threads, each
//!   owning the per-tenant tables of the applications hashed to it;
//! * clients [`open`](PrefetchService::open) a [`Session`] per tenant
//!   and feed batches of L2-miss observations (plain [`LineAddr`]s or
//!   the [`encode_lines`](ulmt_workloads::codec::encode_lines) wire
//!   format), getting back prefetch predictions and per-tenant stats;
//! * ingestion queues are **bounded and per-tenant**: each tenant owns
//!   a bounded queue on its shard, drained by a weighted
//!   deficit-round-robin scheduler ([`SchedulerPolicy`]) so one hot
//!   tenant cannot starve its neighbors; a full queue surfaces as
//!   [`TrySubmit::Full`] *to that tenant only*, with the batch handed
//!   back — observations are never silently dropped, and rejections are
//!   counted exactly. An optional per-tenant [`AdmissionQuota`] sheds
//!   (acknowledges without learning, exactly counted) before enqueue;
//! * tables can be [`snapshot`](Session::snapshot)ted and
//!   [`restore`](Session::restore)d for warm starts, and fingerprinted
//!   to prove **determinism**: a tenant's table after a given stream is
//!   bit-identical for 1, 2 or 4 shards;
//! * shutdown is graceful ([`PrefetchService::shutdown`] drains every
//!   queue, and anything racing in behind the drain is rejected with a
//!   typed [`ServiceError::ShuttingDown`] — never silently dropped) and
//!   cooperative cancellation uses the simulator's existing
//!   [`CancelToken`](ulmt_simcore::CancelToken);
//! * the service is **self-healing**: a supervisor thread detects dead
//!   (panicked) and wedged (alive but not consuming) shards, rebuilds
//!   them from periodic checkpoints plus a bounded observation
//!   [`journal`] replay — bit-identical when the journal window covers
//!   the gap, explicitly [`Lossy`](RecoveryOutcome::Lossy) with an exact
//!   dropped-batch count when it does not — and every restart is
//!   recorded as a [`RecoveryReport`]. While a shard is down, sessions
//!   shed (acknowledge-without-learning, exactly counted in
//!   [`TenantStats::shed`]) or wait, per
//!   [`SupervisionConfig::shed_when_down`]. Deterministic chaos faults
//!   ([`ServiceFaultConfig`](ulmt_simcore::ServiceFaultConfig)) exercise
//!   all of it under test.
//!
//! [`Base`]: ulmt_core::table::Base
//! [`Chain`]: ulmt_core::table::Chain
//! [`Replicated`]: ulmt_core::table::Replicated
//! [`LineAddr`]: ulmt_simcore::LineAddr

mod config;
mod ingress;
mod journal;
pub mod metrics;
pub mod net;
mod service;
mod shard;
mod supervisor;

pub use config::{
    AdmissionQuota, NetConfig, SchedulerPolicy, ServiceConfig, SupervisionConfig, TableKind,
    TenantSpec,
};
pub use metrics::{MetricsReport, ShardMetrics};
pub use net::{NetClient, NetServer, NetSubmit, WireError};
pub use service::{
    BatchReply, PauseGuard, PendingBatch, PrefetchService, ServiceError, Session, ShardStats,
    TenantStats, TrySubmit,
};
pub use shard::ShardReport;
pub use supervisor::{RecoveryCause, RecoveryOutcome, RecoveryReport, ShardState};

#[cfg(test)]
mod tests {
    use super::*;
    use ulmt_core::table::{Replicated, TableParams};
    use ulmt_core::UlmtAlgorithm;
    use ulmt_simcore::{LineAddr, TraceConfig};

    fn lines(ns: &[u64]) -> Vec<LineAddr> {
        ns.iter().map(|&n| LineAddr::new(n)).collect()
    }

    /// A deterministic per-tenant miss stream.
    fn stream(tenant: u32, len: usize) -> Vec<LineAddr> {
        let mut x = 0x9e37_79b9_u64 ^ (tenant as u64) << 32;
        (0..len)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                LineAddr::new((x >> 40) & 0xFFF)
            })
            .collect()
    }

    fn cfg(shards: usize) -> ServiceConfig {
        ServiceConfig {
            shards,
            ..ServiceConfig::default()
        }
    }

    #[test]
    fn predictions_match_offline_table() {
        let service = PrefetchService::start(cfg(1));
        let mut session = service.open(1, TenantSpec::repl(1024)).unwrap();
        let obs = lines(&[1, 2, 3, 1, 2, 3, 1]);

        let mut offline = Replicated::new(TableParams::repl_default(1024));
        let mut expected = Vec::new();
        for &miss in &obs {
            expected.extend(offline.process_miss(miss).prefetches);
        }

        let reply = session.submit(obs).unwrap().wait().unwrap();
        assert_eq!(reply.observed, 7);
        assert_eq!(reply.prefetches, expected);
        assert_eq!(
            session.fingerprint().unwrap(),
            offline.table_fingerprint(),
            "online table must equal the offline replay"
        );
        service.shutdown();
    }

    #[test]
    fn fingerprints_are_shard_count_invariant() {
        let tenants: Vec<u32> = (0..6).collect();
        let mut per_count: Vec<Vec<u64>> = Vec::new();
        for shards in [1usize, 2, 4] {
            let service = PrefetchService::start(cfg(shards));
            let mut sessions: Vec<Session> = tenants
                .iter()
                .map(|&t| service.open(t, TenantSpec::repl(512)).unwrap())
                .collect();
            // Interleave tenants batch by batch to exercise shard sharing.
            for round in 0..4 {
                for (i, session) in sessions.iter_mut().enumerate() {
                    let obs = stream(tenants[i], 64)[round * 16..(round + 1) * 16].to_vec();
                    session.submit(obs).unwrap();
                }
            }
            service.drain().unwrap();
            per_count.push(
                sessions
                    .iter_mut()
                    .map(|s| s.fingerprint().unwrap())
                    .collect(),
            );
            service.shutdown();
        }
        assert_eq!(per_count[0], per_count[1], "1 vs 2 shards");
        assert_eq!(per_count[0], per_count[2], "1 vs 4 shards");
    }

    #[test]
    fn snapshot_restore_warm_start_round_trip() {
        let service = PrefetchService::start(cfg(2));
        let mut session = service.open(3, TenantSpec::chain(256)).unwrap();
        session.submit(stream(3, 200)).unwrap().wait().unwrap();
        let snap = session.snapshot().unwrap();
        let fp = session.fingerprint().unwrap();
        assert_eq!(snap.fingerprint(), fp);

        // Warm-start a second tenant from the snapshot: bit-identical.
        let mut warm = service.open(4, TenantSpec::chain(256)).unwrap();
        warm.restore(snap.clone()).unwrap();
        assert_eq!(warm.fingerprint().unwrap(), fp);
        // Byte codec round trip preserves the fingerprint too.
        let decoded = ulmt_core::table::TableSnapshot::from_bytes(&snap.to_bytes()).unwrap();
        assert_eq!(decoded.fingerprint(), fp);
        service.shutdown();
    }

    #[test]
    fn restore_rejects_wrong_algorithm() {
        let service = PrefetchService::start(cfg(1));
        let mut chain = service.open(1, TenantSpec::chain(256)).unwrap();
        chain.submit(stream(1, 50)).unwrap().wait().unwrap();
        let snap = chain.snapshot().unwrap();
        let mut repl = service.open(2, TenantSpec::repl(256)).unwrap();
        match repl.restore(snap) {
            Err(ServiceError::Snapshot(_)) => {}
            other => panic!("expected a snapshot kind mismatch, got {other:?}"),
        }
        service.shutdown();
    }

    #[test]
    fn backpressure_full_queue_hands_batch_back_and_counts_exactly() {
        let service = PrefetchService::start(ServiceConfig {
            shards: 1,
            queue_depth: 4,
            ..ServiceConfig::default()
        });
        let mut session = service.open(9, TenantSpec::base(256)).unwrap();
        // Freeze the shard so the queue fills deterministically.
        let pause = service.pause_shard(0).unwrap();

        let mut accepted = 0u64;
        let mut rejected = 0u64;
        let mut pending = Vec::new();
        let mut handed_back = None;
        for _ in 0..16 {
            match session.try_submit(lines(&[1, 2, 3, 4])) {
                TrySubmit::Enqueued(p) => {
                    accepted += 1;
                    pending.push(p);
                }
                TrySubmit::Full(obs) => {
                    rejected += 1;
                    assert_eq!(obs.len(), 4, "rejected batch is handed back intact");
                    handed_back = Some(obs);
                }
                other => panic!("service unavailable unexpectedly: {other:?}"),
            }
        }
        assert!(
            rejected > 0,
            "a depth-4 queue must reject some of 16 batches"
        );
        drop(pause);

        // Resubmit the last handed-back batch (blocking) so the final
        // rejection count is flushed to the shard.
        session.submit(handed_back.unwrap()).unwrap();
        service.drain().unwrap();

        let stats = session.stats().unwrap();
        assert_eq!(
            stats.rejected, rejected,
            "rejections are conservation-exact"
        );
        assert_eq!(stats.batches, accepted + 1);
        assert_eq!(
            stats.observed,
            (accepted + 1) * 4,
            "nothing silently dropped"
        );
        for p in pending {
            assert!(p.wait().unwrap().error.is_none());
        }
        service.shutdown();
    }

    #[test]
    fn recycled_buffers_flow_back_through_every_ack_path() {
        let service = PrefetchService::start(cfg(1));
        let mut session = service.open(1, TenantSpec::repl(256)).unwrap();

        // Accepted: the submitted Vec comes back cleared, capacity intact,
        // and can be refilled for the next batch — steady state allocates
        // no observation buffers.
        let mut buf = Vec::with_capacity(64);
        let full_stream = stream(1, 192);
        let mut offline = Replicated::new(TableParams::repl_default(256));
        for chunk in full_stream.chunks(64) {
            buf.extend_from_slice(chunk);
            let cap_before = buf.capacity();
            let reply = session.submit(buf).unwrap().wait().unwrap();
            assert_eq!(reply.observed, 64);
            buf = reply.recycled;
            assert!(buf.is_empty(), "recycled buffer comes back cleared");
            assert_eq!(buf.capacity(), cap_before, "capacity survives the trip");
        }
        for &m in &full_stream {
            offline.process_miss(m);
        }
        assert_eq!(session.fingerprint().unwrap(), offline.table_fingerprint());

        // Rejected (unknown tenant): still hands the buffer back.
        let mut ghost = Session::test_clone_for_tenant(&session, 999);
        buf.extend_from_slice(&full_stream[..8]);
        let cap = buf.capacity();
        let reply = ghost.submit(buf).unwrap().wait().unwrap();
        assert!(matches!(
            reply.error,
            Some(ServiceError::UnknownTenant(999))
        ));
        assert_eq!(reply.recycled.capacity(), cap);

        // Cancelled: same.
        service.cancel_token().cancel();
        let mut buf = reply.recycled;
        buf.extend_from_slice(&full_stream[..8]);
        let cap = buf.capacity();
        let reply = session.submit(buf).unwrap().wait().unwrap();
        assert!(reply.cancelled);
        assert_eq!(reply.recycled.capacity(), cap);
        service.shutdown();
    }

    #[test]
    fn cancel_acknowledges_without_learning() {
        let service = PrefetchService::start(cfg(1));
        let mut session = service.open(5, TenantSpec::repl(256)).unwrap();
        session.submit(stream(5, 32)).unwrap().wait().unwrap();
        let fp = session.fingerprint().unwrap();
        service.cancel_token().cancel();
        let reply = session.submit(stream(5, 32)).unwrap().wait().unwrap();
        assert!(reply.cancelled);
        assert_eq!(reply.observed, 0);
        assert_eq!(
            session.fingerprint().unwrap(),
            fp,
            "no learning after cancel"
        );
        service.shutdown();
    }

    #[test]
    fn shutdown_drains_and_reports() {
        let service = PrefetchService::start(ServiceConfig {
            shards: 2,
            trace: Some(TraceConfig::with_capacity(1024)),
            ..ServiceConfig::default()
        });
        let mut a = service.open(0, TenantSpec::repl(256)).unwrap();
        let mut b = service.open(1, TenantSpec::base(256)).unwrap();
        a.submit(stream(0, 64)).unwrap();
        b.submit(stream(1, 64)).unwrap();
        let reports = service.shutdown();
        assert_eq!(reports.len(), 2);
        let total: u64 = reports.iter().map(|r| r.stats.observed).sum();
        assert_eq!(total, 128, "shutdown processes everything still queued");
        let traced: usize = reports
            .iter()
            .map(|r| r.trace.as_ref().map_or(0, |t| t.len()))
            .sum();
        assert!(
            traced >= 2,
            "each accepted batch leaves a shard_batch event"
        );
        // Utilization is measured and sane.
        for r in &reports {
            if r.stats.observed > 0 {
                assert!(r.stats.busy_cycles > 0);
                assert!(r.stats.utilization() > 0.0);
            }
        }
        // The session now sees the closed service.
        match a.try_submit(lines(&[1])) {
            TrySubmit::Closed(obs) => assert_eq!(obs.len(), 1),
            other => panic!("expected Closed, got {other:?}"),
        }
    }

    #[test]
    fn open_twice_fails_and_unknown_errors_are_typed() {
        let service = PrefetchService::start(cfg(1));
        let _s = service.open(1, TenantSpec::base(64)).unwrap();
        match service.open(1, TenantSpec::base(64)) {
            Err(ServiceError::TenantExists(1)) => {}
            other => panic!("expected TenantExists, got {other:?}"),
        }
        match service.open(
            2,
            TenantSpec {
                kind: TableKind::Base,
                params: TableParams::repl_default(64),
                ..TenantSpec::base(64)
            },
        ) {
            Err(ServiceError::InvalidSpec(e)) => assert!(e.reason().contains("one level")),
            other => panic!("expected InvalidSpec, got {other:?}"),
        }
        service.shutdown();
    }

    #[test]
    fn shutdown_race_rejects_late_batches_with_typed_error() {
        // Deterministic ordering: pause the shard, queue real work, queue
        // the shutdown marker, queue a late batch *behind* it, resume.
        // The late batch must get a typed ShuttingDown rejection — not a
        // silently dropped reply channel.
        let service = PrefetchService::start(ServiceConfig {
            shards: 1,
            queue_depth: 16,
            ..ServiceConfig::default()
        });
        let mut session = service.open(1, TenantSpec::repl(256)).unwrap();
        let pause = service.pause_shard(0).unwrap();
        let early = match session.try_submit(stream(1, 32)) {
            TrySubmit::Enqueued(p) => p,
            other => panic!("queue should have space: {other:?}"),
        };
        service.begin_shutdown();
        let late = match session.try_submit(stream(1, 32)) {
            TrySubmit::Enqueued(p) => p,
            other => panic!("queue should still have space: {other:?}"),
        };
        drop(pause);

        let early_reply = early.wait().unwrap();
        assert!(early_reply.error.is_none());
        assert_eq!(early_reply.observed, 32, "work before the marker lands");
        let late_reply = late.wait().unwrap();
        assert!(
            matches!(late_reply.error, Some(ServiceError::ShuttingDown)),
            "late batch gets the typed drain rejection: {late_reply:?}"
        );
        assert_eq!(late_reply.observed, 0, "nothing was learned from it");
        assert!(
            late_reply.recycled.capacity() >= 32,
            "rejected batch buffer still comes back"
        );

        let reports = service.shutdown();
        assert_eq!(reports[0].stats.batches, 1, "only the early batch counted");
    }

    #[test]
    fn submit_timeout_hands_batch_back_when_queue_stays_full() {
        let service = PrefetchService::start(ServiceConfig {
            shards: 1,
            queue_depth: 1,
            ..ServiceConfig::default()
        });
        let mut session = service.open(2, TenantSpec::base(64)).unwrap();
        let pause = service.pause_shard(0).unwrap();
        // Fill the depth-1 queue, then a bounded submit must time out and
        // hand the observations back intact.
        let pending = loop {
            match session.try_submit(stream(2, 8)) {
                TrySubmit::Enqueued(p) => break p,
                TrySubmit::Full(_) => continue,
                other => panic!("unexpected: {other:?}"),
            }
        };
        match session.submit_timeout(stream(2, 8), std::time::Duration::from_millis(20)) {
            TrySubmit::TimedOut(obs) => assert_eq!(obs.len(), 8),
            other => panic!("expected TimedOut, got {other:?}"),
        }
        drop(pause);
        assert!(pending.wait().unwrap().error.is_none());
        // With the queue flowing again the bounded submit succeeds.
        match session.submit_timeout(stream(2, 8), std::time::Duration::from_secs(5)) {
            TrySubmit::Enqueued(p) => assert!(p.wait().unwrap().error.is_none()),
            other => panic!("expected Enqueued, got {other:?}"),
        }
        service.shutdown();
    }

    #[test]
    fn encoded_submission_round_trips() {
        let service = PrefetchService::start(cfg(1));
        let mut session = service.open(1, TenantSpec::repl(256)).unwrap();
        let obs = stream(1, 40);
        let bytes = ulmt_workloads::codec::encode_lines(&obs);
        let reply = session.submit_encoded(&bytes).unwrap().wait().unwrap();
        assert_eq!(reply.observed, 40);
        assert!(matches!(
            session.submit_encoded(&bytes[..5]),
            Err(ServiceError::Codec(_))
        ));
        service.shutdown();
    }
}
