//! The always-on metrics plane: per-shard counters and log2 histograms,
//! merged into a service-wide [`MetricsReport`].
//!
//! # Registry layout
//!
//! Each shard worker owns one [`MetricsRegistry`]: three monotone
//! counters (accepted batches, observations, prefetches) plus three
//! fixed-size [`Log2Histogram`]s — batch size (observations), queue
//! wait (nanoseconds from enqueue to dequeue) and ingest latency
//! (nanoseconds inside the batch kernel). Everything is flat `u64`
//! arrays: recording a batch never allocates, and snapshotting is a
//! memcpy-sized clone.
//!
//! # Clock domains
//!
//! A snapshot is stamped on **both** clocks the service runs on: the
//! shard's virtual `obs_cycles` clock ([`ShardMetrics::obs_cycles`] —
//! the deterministic simulation time the paper's occupancy model uses)
//! and the wall clock ([`ShardMetrics::wall_unix_nanos`]). Histogram
//! samples for queue wait, ingest latency and recovery latency are wall
//! time; batch size is dimensionless. The virtual clock is *read*, never
//! written, by the metrics plane — which is why metrics can never
//! perturb fingerprints.
//!
//! # Consistency
//!
//! Snapshots ride the shard's FIFO control plane as a `ShardMsg::Metrics`
//! message, so a snapshot
//! observes a *prefix* of the shard's ingestion stream: every batch
//! processed before the message, nothing after it. Pair with
//! [`PrefetchService::drain`](crate::PrefetchService::drain) for an
//! "everything submitted so far" view, exactly like `ShardStats`.
//!
//! # Crossing a recovery
//!
//! Counters are seeded from the rebuilt shard's recovered totals, so
//! they stay equal to [`ShardStats`] across crashes. Histograms restart
//! empty with the replacement epoch (samples are wall-clock facts about
//! a worker that no longer exists); recovery latency itself is recorded
//! service-side from the supervisor's
//! [`RecoveryReport`](crate::RecoveryReport)s.

use std::fmt::Write as _;
use std::time::SystemTime;

use ulmt_simcore::stats::Log2Histogram;
use ulmt_simcore::Cycle;

use crate::service::ShardStats;

/// The per-shard, allocation-free metrics registry a worker owns while
/// metrics are enabled. All recording happens on the worker thread; the
/// control plane sees it only through [`MetricsRegistry::snapshot`].
#[derive(Debug, Clone)]
pub(crate) struct MetricsRegistry {
    batches: u64,
    observed: u64,
    prefetches: u64,
    batch_size: Log2Histogram,
    queue_wait_nanos: Log2Histogram,
    ingest_nanos: Log2Histogram,
}

impl MetricsRegistry {
    /// A registry whose counters resume from recovered shard totals
    /// (zero on a fresh shard), keeping the `metrics == stats` counter
    /// identity across restarts. Histograms start empty: they describe
    /// the live epoch.
    pub fn resumed(stats: &ShardStats) -> Self {
        MetricsRegistry {
            batches: stats.batches,
            observed: stats.observed,
            prefetches: stats.prefetches,
            batch_size: Log2Histogram::new(),
            queue_wait_nanos: Log2Histogram::new(),
            ingest_nanos: Log2Histogram::new(),
        }
    }

    /// Records one accepted batch. `queue_wait_nanos` is `None` when the
    /// batch predates metrics enablement (never in practice: the stamp
    /// and the registry are switched by the same config bit).
    pub fn note_batch(
        &mut self,
        observed: u64,
        prefetches: u64,
        queue_wait_nanos: Option<u64>,
        ingest_nanos: u64,
    ) {
        self.batches += 1;
        self.observed += observed;
        self.prefetches += prefetches;
        self.batch_size.record(observed);
        if let Some(wait) = queue_wait_nanos {
            self.queue_wait_nanos.record(wait);
        }
        self.ingest_nanos.record(ingest_nanos);
    }

    /// A public snapshot stamped on both clock domains: the shard's
    /// virtual clock (`now`) and the wall clock (read here, snapshot
    /// time).
    pub fn snapshot(&self, shard: u32, epoch: u64, stats: &ShardStats, now: Cycle) -> ShardMetrics {
        ShardMetrics {
            shard,
            epoch,
            batches: self.batches,
            observed: self.observed,
            prefetches: self.prefetches,
            rejected: stats.rejected,
            shed: stats.shed,
            obs_cycles: now,
            wall_unix_nanos: unix_nanos(),
            batch_size: self.batch_size.clone(),
            queue_wait_nanos: self.queue_wait_nanos.clone(),
            ingest_nanos: self.ingest_nanos.clone(),
        }
    }
}

fn unix_nanos() -> u64 {
    SystemTime::now()
        .duration_since(SystemTime::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0)
}

/// One shard's metrics snapshot, as captured through its control plane.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardMetrics {
    /// The shard index.
    pub shard: u32,
    /// Worker epoch the snapshot came from (histograms cover this epoch;
    /// counters cover the shard's whole life).
    pub epoch: u64,
    /// Accepted observation batches (equals `ShardStats::batches`).
    pub batches: u64,
    /// Observations processed (equals `ShardStats::observed`).
    pub observed: u64,
    /// Prefetch predictions returned (equals `ShardStats::prefetches`).
    pub prefetches: u64,
    /// Rejected batch attempts across tenants.
    pub rejected: u64,
    /// Shed batch attempts across tenants.
    pub shed: u64,
    /// The shard's virtual `obs_cycles` clock at snapshot time.
    pub obs_cycles: Cycle,
    /// Wall clock at snapshot time, nanoseconds since the Unix epoch.
    pub wall_unix_nanos: u64,
    /// Distribution of accepted batch sizes, in observations.
    pub batch_size: Log2Histogram,
    /// Distribution of queue wait (enqueue to dequeue), wall nanoseconds.
    pub queue_wait_nanos: Log2Histogram,
    /// Distribution of batch-kernel ingest latency, wall nanoseconds.
    pub ingest_nanos: Log2Histogram,
}

/// The service-wide metrics view: every live shard's snapshot plus the
/// supervisor's recovery-latency history.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricsReport {
    /// `false` when the service runs with
    /// [`ServiceConfig::metrics`](crate::ServiceConfig::metrics) off; the
    /// report is then empty.
    pub enabled: bool,
    /// Shard restarts recorded so far.
    pub recoveries: u64,
    /// Distribution of recovery latency (fence to republish), wall
    /// nanoseconds, across every restart of every shard.
    pub recovery_nanos: Log2Histogram,
    /// Per-shard snapshots, sorted by shard index. Shards that are down
    /// or failed at collection time are absent.
    pub shards: Vec<ShardMetrics>,
}

impl MetricsReport {
    /// The report a metrics-disabled service returns.
    pub fn disabled() -> Self {
        MetricsReport {
            enabled: false,
            recoveries: 0,
            recovery_nanos: Log2Histogram::new(),
            shards: Vec::new(),
        }
    }

    /// Renders the report in Prometheus text exposition style:
    /// `# TYPE` comments, `name{labels} value` samples, histograms as
    /// cumulative `_bucket{le="..."}` series with a `_count` total.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "# TYPE ulmt_metrics_enabled gauge");
        let _ = writeln!(out, "ulmt_metrics_enabled {}", u8::from(self.enabled));
        let _ = writeln!(out, "# TYPE ulmt_recoveries_total counter");
        let _ = writeln!(out, "ulmt_recoveries_total {}", self.recoveries);
        prom_histogram(
            &mut out,
            "ulmt_recovery_latency_nanos",
            "",
            &self.recovery_nanos,
        );
        for (name, kind, get) in COUNTER_SERIES {
            let _ = writeln!(out, "# TYPE {name} {kind}");
            for s in &self.shards {
                let _ = writeln!(out, "{name}{{shard=\"{}\"}} {}", s.shard, get(s));
            }
        }
        for (name, get) in HISTOGRAM_SERIES {
            let _ = writeln!(out, "# TYPE {name} histogram");
            for s in &self.shards {
                prom_histogram(&mut out, name, &format!("shard=\"{}\"", s.shard), get(s));
            }
        }
        out
    }
}

type CounterGet = fn(&ShardMetrics) -> u64;
type HistogramGet = fn(&ShardMetrics) -> &Log2Histogram;

const COUNTER_SERIES: [(&str, &str, CounterGet); 8] = [
    ("ulmt_shard_epoch", "gauge", |s| s.epoch),
    ("ulmt_shard_batches_total", "counter", |s| s.batches),
    ("ulmt_shard_observations_total", "counter", |s| s.observed),
    ("ulmt_shard_prefetches_total", "counter", |s| s.prefetches),
    ("ulmt_shard_rejected_total", "counter", |s| s.rejected),
    ("ulmt_shard_shed_total", "counter", |s| s.shed),
    ("ulmt_shard_obs_cycles", "gauge", |s| s.obs_cycles),
    ("ulmt_shard_wall_unix_nanos", "gauge", |s| s.wall_unix_nanos),
];

const HISTOGRAM_SERIES: [(&str, HistogramGet); 3] = [
    ("ulmt_shard_batch_size", |s| &s.batch_size),
    ("ulmt_shard_queue_wait_nanos", |s| &s.queue_wait_nanos),
    ("ulmt_shard_ingest_nanos", |s| &s.ingest_nanos),
];

/// Emits one histogram as cumulative `_bucket` samples (non-empty
/// buckets plus the `+Inf` catch-all) and a `_count` total.
fn prom_histogram(out: &mut String, name: &str, labels: &str, h: &Log2Histogram) {
    let sep = if labels.is_empty() { "" } else { "," };
    let mut cum = 0u64;
    for (i, &c) in h.counts().iter().enumerate() {
        if c == 0 {
            continue;
        }
        cum += c;
        let le = Log2Histogram::bucket_bounds(i).1;
        let _ = writeln!(out, "{name}_bucket{{{labels}{sep}le=\"{le}\"}} {cum}");
    }
    let _ = writeln!(out, "{name}_bucket{{{labels}{sep}le=\"+Inf\"}} {cum}");
    let _ = writeln!(out, "{name}_count{{{labels}}} {}", h.total());
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> MetricsReport {
        let mut reg = MetricsRegistry::resumed(&ShardStats::default());
        reg.note_batch(256, 12, Some(1_500), 90_000);
        reg.note_batch(64, 3, Some(700), 20_000);
        let stats = ShardStats {
            shard: 0,
            rejected: 2,
            shed: 1,
            ..ShardStats::default()
        };
        let mut recovery_nanos = Log2Histogram::new();
        recovery_nanos.record(3_000_000);
        MetricsReport {
            enabled: true,
            recoveries: 1,
            recovery_nanos,
            shards: vec![reg.snapshot(0, 0, &stats, 4096)],
        }
    }

    #[test]
    fn registry_counts_and_histograms_agree() {
        let mut reg = MetricsRegistry::resumed(&ShardStats {
            batches: 5,
            observed: 1000,
            prefetches: 40,
            ..ShardStats::default()
        });
        reg.note_batch(256, 10, Some(1_000), 50_000);
        let snap = reg.snapshot(3, 2, &ShardStats::default(), 777);
        assert_eq!(snap.batches, 6, "counters resume from recovered totals");
        assert_eq!(snap.observed, 1256);
        assert_eq!(snap.prefetches, 50);
        assert_eq!(snap.batch_size.total(), 1, "histograms restart per epoch");
        assert_eq!(snap.queue_wait_nanos.total(), 1);
        assert_eq!(snap.ingest_nanos.total(), 1);
        assert_eq!(snap.obs_cycles, 777);
        assert_eq!(snap.shard, 3);
        assert_eq!(snap.epoch, 2);
    }

    #[test]
    fn exposition_is_parseable_name_value_lines() {
        let text = sample_report().to_prometheus();
        assert!(text.contains("# TYPE ulmt_shard_queue_wait_nanos histogram"));
        assert!(text.contains("ulmt_shard_batches_total{shard=\"0\"} 2"));
        assert!(text.contains("le=\"+Inf\""));
        for line in text.lines() {
            if line.starts_with('#') {
                assert!(line.starts_with("# TYPE "), "comment is a TYPE line");
                continue;
            }
            let (name_part, value) = line.rsplit_once(' ').expect("name value");
            assert!(value.parse::<u64>().is_ok(), "numeric value in {line:?}");
            let metric = name_part.split('{').next().expect("metric name");
            assert!(
                metric
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '_'),
                "metric name {metric:?}"
            );
        }
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_end_at_count() {
        let text = sample_report().to_prometheus();
        let buckets: Vec<u64> = text
            .lines()
            .filter(|l| l.starts_with("ulmt_shard_batch_size_bucket"))
            .map(|l| l.rsplit_once(' ').expect("value").1.parse().expect("u64"))
            .collect();
        assert!(!buckets.is_empty());
        assert!(buckets.windows(2).all(|w| w[0] <= w[1]), "cumulative");
        assert_eq!(*buckets.last().expect("inf bucket"), 2, "+Inf holds all");
    }

    #[test]
    fn disabled_report_is_empty_but_renders() {
        let r = MetricsReport::disabled();
        assert!(!r.enabled);
        let text = r.to_prometheus();
        assert!(text.contains("ulmt_metrics_enabled 0"));
        assert!(!text.contains("shard=\""));
    }
}
