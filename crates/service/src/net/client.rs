//! The blocking TCP client of the network front-end.
//!
//! [`NetClient`] mirrors the in-process [`Session`](crate::Session) API
//! over a socket: `try_submit`/`submit`/`submit_timeout` for the data
//! plane and snapshot/restore/fingerprint/stats/drain/shutdown for the
//! control plane. The differences forced by the wire are explicit:
//! acceptance is split from completion (an accepted batch is later
//! collected with [`NetClient::reap`], enabling the same pipelined
//! submission the bench drives in-process), and a backpressure NACK
//! hands the caller's own `Vec` straight back — content and capacity
//! untouched — because the server echoed the batch instead of keeping
//! it.

use std::collections::VecDeque;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use ulmt_core::table::TableSnapshot;
use ulmt_simcore::LineAddr;
use ulmt_workloads::codec::{decode_lines_into, encode_lines_into, LINE_BYTES};

use crate::config::{NetConfig, TenantSpec};
use crate::net::wire::{self, FrameKind, NackReason, Payload, WireError, WIRE_VERSION};
use crate::service::{BatchReply, ServiceError, TenantStats};

/// Outcome of a non-blocking or time-bounded network submission — the
/// wire twin of [`TrySubmit`](crate::TrySubmit). `Enqueued` carries the
/// connection's pending depth instead of a reply handle; the reply is
/// collected with [`NetClient::reap`] in submission order.
#[derive(Debug)]
pub enum NetSubmit {
    /// The batch was accepted; `pending` batches now await reaping.
    Enqueued {
        /// Batches accepted on this connection and not yet reaped.
        pending: usize,
    },
    /// The tenant's queue was full; the observations come back intact.
    Full(Vec<LineAddr>),
    /// The wait bound expired; the observations come back intact.
    TimedOut(Vec<LineAddr>),
}

/// Wait bound (per attempt) used by the blocking [`NetClient::submit`],
/// mirroring the in-process session's control-timeout-bounded submit.
const SUBMIT_WAIT: Duration = Duration::from_secs(10);

/// A blocking client connection speaking for one tenant.
///
/// See [`NetServer`](crate::net::NetServer) for a round-trip example.
#[derive(Debug)]
pub struct NetClient {
    stream: TcpStream,
    tenant: u32,
    shard: u32,
    /// Reply payload buffer, reused across frames.
    buf: Vec<u8>,
    /// Request payload buffer, reused across frames.
    out: Vec<u8>,
    /// The cleared submission buffers of accepted-but-unreaped batches,
    /// oldest first: each [`NetClient::reap`] hands the front one back
    /// as [`BatchReply::recycled`], preserving the zero-alloc recycling
    /// contract across the network.
    recycle: VecDeque<Vec<LineAddr>>,
    max_frame: u32,
}

impl NetClient {
    /// Connects, performs the `Hello` handshake for `tenant` with
    /// `spec`, and returns the bound client. Timeouts and the frame cap
    /// come from [`NetConfig::default`]; use
    /// [`NetClient::connect_with`] to override them.
    pub fn connect(
        addr: impl ToSocketAddrs,
        tenant: u32,
        spec: TenantSpec,
    ) -> Result<NetClient, ServiceError> {
        NetClient::connect_with(addr, tenant, spec, &NetConfig::default())
    }

    /// [`NetClient::connect`] with explicit timeouts and frame cap
    /// (`cfg.addr` is ignored; the connection goes to `addr`).
    pub fn connect_with(
        addr: impl ToSocketAddrs,
        tenant: u32,
        spec: TenantSpec,
        cfg: &NetConfig,
    ) -> Result<NetClient, ServiceError> {
        let stream = TcpStream::connect(addr).map_err(WireError::Io)?;
        stream.set_nodelay(true).map_err(WireError::Io)?;
        stream
            .set_read_timeout(Some(Duration::from_millis(cfg.read_timeout_ms)))
            .map_err(WireError::Io)?;
        stream
            .set_write_timeout(Some(Duration::from_millis(cfg.write_timeout_ms)))
            .map_err(WireError::Io)?;
        let mut client = NetClient {
            stream,
            tenant,
            shard: 0,
            buf: Vec::new(),
            out: Vec::new(),
            recycle: VecDeque::new(),
            max_frame: cfg.max_frame_bytes,
        };
        client.out.clear();
        wire::encode_hello(&mut client.out, tenant, &spec);
        let kind = client.round_trip(FrameKind::Hello)?;
        client.expect(kind, FrameKind::HelloOk, "HelloOk handshake reply")?;
        let mut p = Payload::new(&client.buf, "HelloOk");
        let version = p.u16()?;
        if version != WIRE_VERSION {
            return Err(WireError::VersionMismatch {
                got: version,
                want: WIRE_VERSION,
            }
            .into());
        }
        client.shard = p.u32()?;
        p.finish()?;
        Ok(client)
    }

    /// The tenant this connection speaks for.
    pub fn tenant(&self) -> u32 {
        self.tenant
    }

    /// The shard the tenant is pinned to, as reported by the server.
    pub fn shard(&self) -> u32 {
        self.shard
    }

    /// Batches accepted on this connection and not yet reaped.
    pub fn pending(&self) -> usize {
        self.recycle.len()
    }

    /// Sends the frame staged in `self.out` and reads the reply frame
    /// into `self.buf`. An `Err` frame is decoded into the typed
    /// [`ServiceError`] it carries.
    fn round_trip(&mut self, kind: FrameKind) -> Result<FrameKind, ServiceError> {
        wire::write_frame(&mut self.stream, kind, &self.out)?;
        let got = wire::read_frame_into(&mut self.stream, &mut self.buf, self.max_frame)?;
        if got == FrameKind::Err {
            return Err(wire::decode_error(&self.buf)?);
        }
        Ok(got)
    }

    fn expect(
        &self,
        got: FrameKind,
        want: FrameKind,
        context: &'static str,
    ) -> Result<(), ServiceError> {
        if got == want {
            Ok(())
        } else {
            Err(WireError::UnexpectedFrame { got, context }.into())
        }
    }

    /// Stages and sends a `Submit` frame, returning the raw reply kind.
    fn send_submit(&mut self, obs: &[LineAddr], wait_ms: u32) -> Result<FrameKind, ServiceError> {
        self.out.clear();
        wire::put_u32(&mut self.out, wait_ms);
        encode_lines_into(obs, &mut self.out);
        self.round_trip(FrameKind::Submit)
    }

    /// Digests a `SubmitOk`/`Nack` reply. On acceptance the submission
    /// buffer is cleared and queued for recycling at reap time; on NACK
    /// the caller gets it back untouched (the server echoes the batch,
    /// and the echo's length is checked against what was sent).
    fn digest_submit(
        &mut self,
        kind: FrameKind,
        mut obs: Vec<LineAddr>,
    ) -> Result<NetSubmit, ServiceError> {
        match kind {
            FrameKind::SubmitOk => {
                let mut p = Payload::new(&self.buf, "SubmitOk");
                let pending = p.u32()? as usize;
                p.finish()?;
                obs.clear();
                self.recycle.push_back(obs);
                debug_assert_eq!(pending, self.recycle.len());
                Ok(NetSubmit::Enqueued { pending })
            }
            FrameKind::Nack => {
                let mut p = Payload::new(&self.buf, "Nack");
                let reason = NackReason::from_u8(p.u8()?)?;
                let echoed = p.rest();
                if echoed.len() != obs.len() * LINE_BYTES {
                    return Err(WireError::BadPayload {
                        context: "NACK echo does not match the submitted batch",
                    }
                    .into());
                }
                Ok(match reason {
                    NackReason::Full => NetSubmit::Full(obs),
                    NackReason::TimedOut => NetSubmit::TimedOut(obs),
                })
            }
            other => Err(WireError::UnexpectedFrame {
                got: other,
                context: "a submit reply",
            }
            .into()),
        }
    }

    /// Non-blocking submission: the wire twin of
    /// [`Session::try_submit`](crate::Session::try_submit). A full
    /// queue hands the batch back as [`NetSubmit::Full`] — nothing is
    /// dropped, and the rejection is counted exactly (the server-side
    /// session piggybacks it onto the next accepted batch).
    pub fn try_submit(&mut self, obs: Vec<LineAddr>) -> Result<NetSubmit, ServiceError> {
        let kind = self.send_submit(&obs, 0)?;
        self.digest_submit(kind, obs)
    }

    /// Time-bounded submission: the wire twin of
    /// [`Session::submit_timeout`](crate::Session::submit_timeout).
    /// `timeout` is rounded up to a whole millisecond (0 would mean
    /// "don't wait").
    pub fn submit_timeout(
        &mut self,
        obs: Vec<LineAddr>,
        timeout: Duration,
    ) -> Result<NetSubmit, ServiceError> {
        let wait_ms = timeout.as_millis().clamp(1, u32::MAX as u128) as u32;
        let kind = self.send_submit(&obs, wait_ms)?;
        self.digest_submit(kind, obs)
    }

    /// Blocking submission: the wire twin of
    /// [`Session::submit`](crate::Session::submit) — waits for queue
    /// space up to the same order of bound and reports
    /// [`ServiceError::Timeout`] past it.
    pub fn submit(&mut self, obs: Vec<LineAddr>) -> Result<(), ServiceError> {
        match self.submit_timeout(obs, SUBMIT_WAIT)? {
            NetSubmit::Enqueued { .. } => Ok(()),
            NetSubmit::Full(_) | NetSubmit::TimedOut(_) => Err(ServiceError::Timeout),
        }
    }

    /// Collects the oldest accepted batch's reply (submission order).
    /// [`BatchReply::recycled`] is that batch's own submission buffer,
    /// cleared with capacity intact — the recycling loop in-process
    /// clients run works identically over the network.
    pub fn reap(&mut self) -> Result<BatchReply, ServiceError> {
        self.out.clear();
        let kind = self.round_trip(FrameKind::Reap)?;
        self.expect(kind, FrameKind::Batch, "a Batch reply")?;
        let wire_reply = wire::decode_batch_reply(&self.buf)?;
        let mut prefetches = Vec::with_capacity(wire_reply.prefetch_bytes.len() / LINE_BYTES);
        decode_lines_into(wire_reply.prefetch_bytes, &mut prefetches).map_err(WireError::Codec)?;
        Ok(BatchReply {
            observed: wire_reply.observed,
            prefetches,
            cancelled: wire_reply.cancelled,
            shed: wire_reply.shed,
            error: wire_reply.error,
            recycled: self.recycle.pop_front().unwrap_or_default(),
        })
    }

    /// Captures the tenant's learned table (see
    /// [`Session::snapshot`](crate::Session::snapshot)).
    pub fn snapshot(&mut self) -> Result<TableSnapshot, ServiceError> {
        self.out.clear();
        let kind = self.round_trip(FrameKind::Snapshot)?;
        self.expect(kind, FrameKind::SnapshotOk, "a SnapshotOk reply")?;
        TableSnapshot::from_bytes(&self.buf).map_err(ServiceError::Snapshot)
    }

    /// Restores the tenant's table from a snapshot (see
    /// [`Session::restore`](crate::Session::restore)).
    pub fn restore(&mut self, snap: &TableSnapshot) -> Result<(), ServiceError> {
        self.out.clear();
        self.out.extend_from_slice(&snap.to_bytes());
        let kind = self.round_trip(FrameKind::Restore)?;
        self.expect(kind, FrameKind::RestoreOk, "a RestoreOk reply")
    }

    /// Fingerprint of the tenant's learned table. Bit-identical to what
    /// the in-process session reports for the same observation stream —
    /// the determinism gate the `serve --net` bench leg enforces.
    pub fn fingerprint(&mut self) -> Result<u64, ServiceError> {
        self.out.clear();
        let kind = self.round_trip(FrameKind::Fingerprint)?;
        self.expect(kind, FrameKind::FingerprintOk, "a FingerprintOk reply")?;
        let mut p = Payload::new(&self.buf, "FingerprintOk");
        let fp = p.u64()?;
        p.finish()?;
        Ok(fp)
    }

    /// The tenant's counters.
    pub fn stats(&mut self) -> Result<TenantStats, ServiceError> {
        self.out.clear();
        let kind = self.round_trip(FrameKind::Stats)?;
        self.expect(kind, FrameKind::StatsOk, "a StatsOk reply")?;
        Ok(wire::decode_stats(&self.buf)?)
    }

    /// The service-wide metrics report (see
    /// [`PrefetchService::metrics`](crate::PrefetchService::metrics)).
    /// Carries `enabled: false` and no shards when the server runs with
    /// metrics off.
    pub fn metrics(&mut self) -> Result<crate::metrics::MetricsReport, ServiceError> {
        self.out.clear();
        let kind = self.round_trip(FrameKind::Metrics)?;
        self.expect(kind, FrameKind::MetricsOk, "a MetricsOk reply")?;
        Ok(wire::decode_metrics(&self.buf)?)
    }

    /// Service-wide barrier: returns once every live shard has
    /// processed everything queued before the call.
    pub fn drain(&mut self) -> Result<(), ServiceError> {
        self.out.clear();
        let kind = self.round_trip(FrameKind::Drain)?;
        self.expect(kind, FrameKind::DrainOk, "a DrainOk reply")
    }

    /// Begins graceful shutdown of the *service* behind the server. The
    /// server acks and then closes this connection.
    pub fn shutdown_service(&mut self) -> Result<(), ServiceError> {
        self.out.clear();
        let kind = self.round_trip(FrameKind::Shutdown)?;
        self.expect(kind, FrameKind::ShutdownOk, "a ShutdownOk reply")
    }

    /// Closes the connection cleanly (best effort).
    pub fn goodbye(mut self) {
        self.out.clear();
        let _ = wire::write_frame(&mut self.stream, FrameKind::Goodbye, &self.out);
    }
}
