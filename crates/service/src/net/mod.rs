//! Network front-end: the prefetch service over TCP.
//!
//! The paper's premise is that correlation prefetching pays off when
//! miss observations reach the memory-side engine cheaply; once the
//! engine is a shared service, the observation-delivery path *is* the
//! product. This module is that path, built on `std::net` alone: a
//! length-prefixed, versioned binary wire protocol ([`wire`]) framing
//! the existing [`encode_lines`](ulmt_workloads::codec::encode_lines)
//! batch encoding and the service control ops, a thread-per-connection
//! [`NetServer`] behind a bounded acceptor, and a blocking [`NetClient`]
//! mirroring the in-process [`Session`](crate::Session) API.
//!
//! Invariants carried over the wire, verbatim from the in-process path:
//!
//! * **nothing is silently dropped** — backpressure surfaces as a NACK
//!   frame that echoes the entire batch back to the client;
//! * **counts are conservation-exact** — each connection is backed by a
//!   real server-side session, so rejected/shed piggyback accounting
//!   works unchanged;
//! * **determinism** — the bytes a client frames are the bytes the
//!   shard learns from, so network-path table fingerprints are
//!   bit-identical to in-process ones (gated by `serve --net`).

mod client;
mod server;
pub mod wire;

pub use client::{NetClient, NetSubmit};
pub use server::NetServer;
pub use wire::{
    read_frame_into, read_frame_rest, write_frame, FrameKind, NackReason, WireError, HEADER_BYTES,
    MAGIC, WIRE_VERSION,
};
