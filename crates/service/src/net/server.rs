//! The TCP server side of the network front-end.
//!
//! [`NetServer::bind`] wraps a running [`PrefetchService`] in a
//! listener. Each accepted connection gets its own handler thread (the
//! service's data plane is already sharded and thread-safe, so
//! thread-per-connection keeps the front-end dependency-free without a
//! reactor) behind a **bounded acceptor**: once
//! [`NetConfig::max_connections`] handlers are live, further connects
//! are answered with a typed [`ServiceError::Busy`] frame and dropped —
//! the service never accumulates unserviced sockets.
//!
//! A connection speaks for exactly one tenant: its first frame must be
//! a `Hello` naming the tenant and spec, which the server turns into a
//! server-side [`Session`](crate::Session). Everything the in-process
//! session guarantees therefore holds verbatim over the network —
//! per-tenant bounded queues, NACKed batches handed back instead of
//! dropped, and the cumulative rejected/shed piggyback accounting that
//! makes those counts conservation-exact.

use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use ulmt_core::table::TableSnapshot;
use ulmt_simcore::LineAddr;
use ulmt_workloads::codec::decode_lines_into;

use crate::config::NetConfig;
use crate::net::wire::{self, FrameKind, NackReason, Payload, WireError, WIRE_VERSION};
use crate::service::{PrefetchService, ServiceError, Session, TrySubmit};
use crate::shard::ShardReport;
use crate::supervisor::lock;

/// State shared between the acceptor, the connection handlers and the
/// owning [`NetServer`] handle.
struct Shared {
    service: PrefetchService,
    cfg: NetConfig,
    addr: SocketAddr,
    /// Set once shutdown begins; the acceptor stops accepting and idle
    /// connections notice within one poll tick.
    closing: AtomicBool,
    /// Live connection handlers, bounded by `cfg.max_connections`.
    active: AtomicUsize,
    conns: Mutex<Vec<JoinHandle<()>>>,
}

/// Decrements the live-connection count when a handler exits, however
/// it exits.
struct ActiveGuard<'a>(&'a AtomicUsize);

impl Drop for ActiveGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

/// A [`PrefetchService`] listening on a TCP socket.
///
/// # Example
///
/// ```
/// use ulmt_service::net::{NetClient, NetServer};
/// use ulmt_service::{NetConfig, PrefetchService, ServiceConfig, TenantSpec};
/// use ulmt_simcore::LineAddr;
///
/// let service = PrefetchService::start(ServiceConfig::default());
/// let server = NetServer::bind(service, NetConfig::loopback()).unwrap();
/// let mut client =
///     NetClient::connect(server.local_addr(), 7, TenantSpec::repl(1024)).unwrap();
/// let obs: Vec<LineAddr> = (1u64..=64).map(|n| LineAddr::new(n % 8)).collect();
/// client.submit(obs).unwrap();
/// let reply = client.reap().unwrap();
/// assert_eq!(reply.observed, 64);
/// client.goodbye();
/// server.shutdown();
/// ```
pub struct NetServer {
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
}

impl NetServer {
    /// Binds `cfg.addr` and starts accepting connections for `service`.
    ///
    /// # Errors
    ///
    /// Returns [`ServiceError::InvalidSpec`] if `cfg` fails validation
    /// and [`ServiceError::Wire`] if the listener cannot bind.
    pub fn bind(service: PrefetchService, cfg: NetConfig) -> Result<NetServer, ServiceError> {
        cfg.validate()?;
        let listener = TcpListener::bind(&cfg.addr).map_err(WireError::Io)?;
        let addr = listener.local_addr().map_err(WireError::Io)?;
        let shared = Arc::new(Shared {
            service,
            cfg,
            addr,
            closing: AtomicBool::new(false),
            active: AtomicUsize::new(0),
            conns: Mutex::new(Vec::new()),
        });
        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("ulmt-net-acceptor".into())
                .spawn(move || accept_loop(&shared, &listener))
                .map_err(WireError::Io)?
        };
        Ok(NetServer {
            shared,
            acceptor: Some(acceptor),
        })
    }

    /// The address the listener actually bound (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// The wrapped service, for host-side control (pausing shards,
    /// shard stats, recovery reports).
    pub fn service(&self) -> &PrefetchService {
        &self.shared.service
    }

    /// Live connection count.
    pub fn active_connections(&self) -> usize {
        self.shared.active.load(Ordering::SeqCst)
    }

    /// Graceful shutdown: stops accepting, tells idle connections the
    /// service is shutting down (within one poll tick), joins every
    /// handler, then drains and shuts down the wrapped service,
    /// returning its shard reports.
    pub fn shutdown(mut self) -> Vec<ShardReport> {
        self.shared.closing.store(true, Ordering::SeqCst);
        // The acceptor is parked in accept(); poke it awake.
        let _ = TcpStream::connect(self.shared.addr);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        let conns = std::mem::take(&mut *lock(&self.shared.conns));
        for conn in conns {
            let _ = conn.join();
        }
        match Arc::try_unwrap(self.shared) {
            Ok(shared) => shared.service.shutdown(),
            // Unreachable once every handler is joined; degrade to a
            // drain-only shutdown rather than panic.
            Err(shared) => {
                shared.service.begin_shutdown();
                Vec::new()
            }
        }
    }
}

/// Accepts until shutdown, enforcing the connection cap.
fn accept_loop(shared: &Arc<Shared>, listener: &TcpListener) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if shared.closing.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
        };
        if shared.closing.load(Ordering::SeqCst) {
            return;
        }
        // Reap finished handlers so the vec stays proportional to the
        // live set, not connection history.
        lock(&shared.conns).retain(|h| !h.is_finished());
        if shared.active.load(Ordering::SeqCst) >= shared.cfg.max_connections {
            refuse_busy(shared, stream);
            continue;
        }
        shared.active.fetch_add(1, Ordering::SeqCst);
        let conn_shared = Arc::clone(shared);
        let spawned = std::thread::Builder::new()
            .name("ulmt-net-conn".into())
            .spawn(move || {
                let _guard = ActiveGuard(&conn_shared.active);
                handle_conn(&conn_shared, stream);
            });
        match spawned {
            Ok(handle) => lock(&shared.conns).push(handle),
            Err(_) => {
                shared.active.fetch_sub(1, Ordering::SeqCst);
            }
        }
    }
}

/// Best-effort typed refusal when the connection cap is reached. A
/// socket that cannot take its write timeout gets no goodbye frame —
/// writing to it unbounded could wedge the acceptor thread — so it is
/// simply dropped (which closes it).
fn refuse_busy(shared: &Shared, mut stream: TcpStream) {
    if setup_stream(&shared.cfg, &stream).is_err() {
        return;
    }
    let mut payload = Vec::new();
    wire::encode_error(&mut payload, &ServiceError::Busy);
    let _ = wire::write_frame(&mut stream, FrameKind::Err, &payload);
}

/// Per-connection scratch state: reusable frame/observation buffers and
/// the FIFO of batches accepted but not yet reaped.
struct Conn {
    /// Incoming frame payloads, reused across frames.
    buf: Vec<u8>,
    /// Outgoing frame payloads, reused across replies.
    out: Vec<u8>,
    /// Observation buffers recycled through the service's ack paths
    /// (see [`crate::BatchReply::recycled`]); steady state allocates
    /// nothing per frame.
    obs_pool: Vec<Vec<LineAddr>>,
    /// Accepted-but-unreaped batches, oldest first. `Reap` pops the
    /// front, mirroring pipelined in-process clients.
    pending: std::collections::VecDeque<crate::service::PendingBatch>,
}

/// Applies a connection's socket options. `set_nodelay` is a latency
/// tweak and allowed to fail; the write timeout is a correctness bound
/// (it is what keeps a stalled peer from wedging its handler thread),
/// so failure to set it is a typed connection-setup error — the caller
/// closes the connection instead of serving it with unbounded writes.
fn setup_stream(cfg: &NetConfig, stream: &TcpStream) -> Result<(), WireError> {
    let _ = stream.set_nodelay(true);
    stream.set_write_timeout(Some(Duration::from_millis(cfg.write_timeout_ms)))?;
    Ok(())
}

fn handle_conn(shared: &Shared, mut stream: TcpStream) {
    let mut conn = Conn {
        buf: Vec::new(),
        out: Vec::new(),
        obs_pool: Vec::new(),
        pending: std::collections::VecDeque::new(),
    };
    let served = setup_stream(&shared.cfg, &stream)
        .and_then(|()| serve_conn(shared, &mut stream, &mut conn));
    match served {
        Ok(()) => {}
        Err(e) => {
            // Best-effort typed goodbye; a peer that already vanished
            // simply doesn't get one.
            conn.out.clear();
            wire::encode_error(&mut conn.out, &ServiceError::Wire(e));
            let _ = wire::write_frame(&mut stream, FrameKind::Err, &conn.out);
        }
    }
    let _ = stream.flush();
}

/// Waits for the next frame's first header byte, polling the closing
/// flag every `poll_tick` while idle. `Ok(None)` means the peer
/// disconnected cleanly at a frame boundary or shutdown began.
fn await_frame(
    shared: &Shared,
    stream: &mut TcpStream,
    conn: &mut Conn,
) -> Result<Option<FrameKind>, WireError> {
    use std::io::Read;
    let poll_tick = Duration::from_millis(shared.cfg.poll_tick_ms);
    let read_timeout = Duration::from_millis(shared.cfg.read_timeout_ms);
    let mut first = [0u8; 1];
    loop {
        if shared.closing.load(Ordering::SeqCst) {
            conn.out.clear();
            wire::encode_error(&mut conn.out, &ServiceError::ShuttingDown);
            let _ = wire::write_frame(stream, FrameKind::Err, &conn.out);
            return Ok(None);
        }
        stream.set_read_timeout(Some(poll_tick))?;
        match stream.read(&mut first) {
            Ok(0) => return Ok(None),
            Ok(_) => break,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue
            }
            Err(e) => return Err(WireError::Io(e)),
        }
    }
    // A frame has started: the rest of it must arrive within the full
    // read timeout (bounds mid-frame stalls without capping idle time).
    stream.set_read_timeout(Some(read_timeout))?;
    wire::read_frame_rest(stream, first[0], &mut conn.buf, shared.cfg.max_frame_bytes).map(Some)
}

fn send(stream: &mut TcpStream, kind: FrameKind, payload: &[u8]) -> Result<(), WireError> {
    wire::write_frame(stream, kind, payload)
}

fn send_service_err(
    stream: &mut TcpStream,
    out: &mut Vec<u8>,
    e: &ServiceError,
) -> Result<(), WireError> {
    out.clear();
    wire::encode_error(out, e);
    wire::write_frame(stream, FrameKind::Err, out)
}

fn serve_conn(shared: &Shared, stream: &mut TcpStream, conn: &mut Conn) -> Result<(), WireError> {
    // Handshake: the first frame must be a valid Hello, delivered
    // within the read timeout.
    stream.set_read_timeout(Some(Duration::from_millis(shared.cfg.read_timeout_ms)))?;
    let kind = wire::read_frame_into(stream, &mut conn.buf, shared.cfg.max_frame_bytes)?;
    if kind != FrameKind::Hello {
        return Err(WireError::UnexpectedFrame {
            got: kind,
            context: "Hello handshake",
        });
    }
    let (tenant, spec) = wire::decode_hello(&conn.buf)?;
    let mut session = match shared.service.open(tenant, spec) {
        Ok(session) => session,
        Err(e) => {
            let _ = send_service_err(stream, &mut conn.out, &e);
            return Ok(());
        }
    };
    conn.out.clear();
    wire::put_u16(&mut conn.out, WIRE_VERSION);
    wire::put_u32(&mut conn.out, session.shard());
    send(stream, FrameKind::HelloOk, &conn.out)?;

    while let Some(kind) = await_frame(shared, stream, conn)? {
        match kind {
            FrameKind::Submit => handle_submit(stream, conn, &mut session)?,
            FrameKind::Reap => handle_reap(stream, conn)?,
            FrameKind::Snapshot => match session.snapshot() {
                Ok(snap) => {
                    let bytes = snap.to_bytes();
                    send(stream, FrameKind::SnapshotOk, &bytes)?;
                }
                Err(e) => send_service_err(stream, &mut conn.out, &e)?,
            },
            FrameKind::Restore => {
                let restored = TableSnapshot::from_bytes(&conn.buf)
                    .map_err(ServiceError::Snapshot)
                    .and_then(|snap| session.restore(snap));
                match restored {
                    Ok(()) => send(stream, FrameKind::RestoreOk, &[])?,
                    Err(e) => send_service_err(stream, &mut conn.out, &e)?,
                }
            }
            FrameKind::Fingerprint => match session.fingerprint() {
                Ok(fp) => {
                    conn.out.clear();
                    wire::put_u64(&mut conn.out, fp);
                    send(stream, FrameKind::FingerprintOk, &conn.out)?;
                }
                Err(e) => send_service_err(stream, &mut conn.out, &e)?,
            },
            FrameKind::Stats => match session.stats() {
                Ok(stats) => {
                    conn.out.clear();
                    wire::encode_stats(&mut conn.out, &stats);
                    send(stream, FrameKind::StatsOk, &conn.out)?;
                }
                Err(e) => send_service_err(stream, &mut conn.out, &e)?,
            },
            FrameKind::Metrics => match shared.service.metrics() {
                Ok(report) => {
                    conn.out.clear();
                    wire::encode_metrics(&mut conn.out, &report);
                    send(stream, FrameKind::MetricsOk, &conn.out)?;
                }
                Err(e) => send_service_err(stream, &mut conn.out, &e)?,
            },
            FrameKind::Drain => match shared.service.drain() {
                Ok(()) => send(stream, FrameKind::DrainOk, &[])?,
                Err(e) => send_service_err(stream, &mut conn.out, &e)?,
            },
            FrameKind::Shutdown => {
                // Order matters: queue the drain markers first, then
                // flip the flag other connections poll, then ack.
                shared.service.begin_shutdown();
                shared.closing.store(true, Ordering::SeqCst);
                send(stream, FrameKind::ShutdownOk, &[])?;
                return Ok(());
            }
            FrameKind::Goodbye => return Ok(()),
            other => {
                return Err(WireError::UnexpectedFrame {
                    got: other,
                    context: "a request frame",
                })
            }
        }
    }
    Ok(())
}

/// Decodes and submits one observation batch, mapping every
/// [`TrySubmit`] arm onto the wire: accepted batches ack with the
/// pending depth, backpressure NACKs echo the whole batch back.
fn handle_submit(
    stream: &mut TcpStream,
    conn: &mut Conn,
    session: &mut Session,
) -> Result<(), WireError> {
    let mut p = Payload::new(&conn.buf, "Submit");
    let wait_ms = p.u32()?;
    let mut obs = conn.obs_pool.pop().unwrap_or_default();
    if let Err(e) = decode_lines_into(p.rest(), &mut obs) {
        conn.obs_pool.push(obs);
        return Err(WireError::Codec(e));
    }
    let outcome = if wait_ms == 0 {
        session.try_submit(obs)
    } else {
        session.submit_timeout(obs, Duration::from_millis(wait_ms as u64))
    };
    match outcome {
        TrySubmit::Enqueued(pending) => {
            conn.pending.push_back(pending);
            conn.out.clear();
            wire::put_u32(&mut conn.out, conn.pending.len() as u32);
            send(stream, FrameKind::SubmitOk, &conn.out)?;
        }
        TrySubmit::Full(returned) => nack(stream, conn, NackReason::Full, returned)?,
        TrySubmit::TimedOut(returned) => nack(stream, conn, NackReason::TimedOut, returned)?,
        TrySubmit::Closed(returned) => {
            conn.obs_pool.push(recycle(returned));
            send_service_err(stream, &mut conn.out, &ServiceError::Closed)?;
        }
    }
    Ok(())
}

/// NACK: echo the entire rejected batch back to the client — the wire
/// twin of [`TrySubmit::Full`]/[`TrySubmit::TimedOut`] handing the
/// `Vec` back. The observation buffer then returns to the pool.
fn nack(
    stream: &mut TcpStream,
    conn: &mut Conn,
    reason: NackReason,
    returned: Vec<LineAddr>,
) -> Result<(), WireError> {
    conn.out.clear();
    conn.out.push(reason as u8);
    ulmt_workloads::codec::encode_lines_into(&returned, &mut conn.out);
    conn.obs_pool.push(recycle(returned));
    send(stream, FrameKind::Nack, &conn.out)
}

fn recycle(mut obs: Vec<LineAddr>) -> Vec<LineAddr> {
    obs.clear();
    obs
}

/// Pops the oldest pending batch and ships its reply.
fn handle_reap(stream: &mut TcpStream, conn: &mut Conn) -> Result<(), WireError> {
    let Some(pending) = conn.pending.pop_front() else {
        return send_service_err(
            stream,
            &mut conn.out,
            &ServiceError::Remote("no batch is pending on this connection".into()),
        );
    };
    match pending.wait() {
        Ok(reply) => {
            conn.out.clear();
            wire::encode_batch_reply(
                &mut conn.out,
                reply.observed,
                reply.cancelled,
                reply.shed,
                reply.error.as_ref(),
                &reply.prefetches,
            );
            conn.obs_pool.push(reply.recycled);
            send(stream, FrameKind::Batch, &conn.out)
        }
        Err(e) => send_service_err(stream, &mut conn.out, &e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Regression: connection setup used to swallow `set_write_timeout`
    /// failures with `let _ =` and serve the socket anyway, leaving the
    /// handler exposed to unbounded blocking writes. Setup failures are
    /// now typed I/O errors the caller closes the connection on.
    #[test]
    fn stream_setup_failure_is_a_typed_error() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let stream = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        // A zero write timeout is rejected by the socket layer — the
        // deterministic stand-in for any setsockopt failure.
        let bad = NetConfig {
            write_timeout_ms: 0,
            ..NetConfig::loopback()
        };
        match setup_stream(&bad, &stream) {
            Err(WireError::Io(e)) => {
                assert_eq!(e.kind(), std::io::ErrorKind::InvalidInput)
            }
            other => panic!("expected a typed Io setup error, got {other:?}"),
        }
        assert!(setup_stream(&NetConfig::loopback(), &stream).is_ok());
    }
}
