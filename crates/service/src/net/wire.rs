//! The binary wire protocol of the network front-end.
//!
//! Every message is one **frame**:
//!
//! ```text
//! byte 0..4   payload length (u32 LE), bounded by the negotiated
//!             maximum — an oversized length is rejected before any
//!             payload is read
//! byte 4      frame kind (see [`FrameKind`])
//! byte 5..    payload, kind-specific
//! ```
//!
//! The first frame on a connection must be [`FrameKind::Hello`], whose
//! payload leads with the protocol magic and version — a peer speaking
//! anything else is rejected with a typed error before any state is
//! touched. Observation batches ride the existing
//! [`ulmt_workloads::codec::encode_lines`] encoding verbatim, so the
//! network path and the in-process path feed bit-identical observations
//! into the tables (which is what makes the fingerprint-identity gate of
//! the `serve --net` bench leg meaningful).
//!
//! All multi-byte integers are little-endian, matching the rest of the
//! repo's codecs. Strings are `u32` length + UTF-8 bytes.

use std::io::{Read, Write};

use ulmt_core::table::TableParams;
use ulmt_workloads::codec::TraceCodecError;

use ulmt_simcore::stats::{Log2Histogram, LOG2_BUCKETS};

use crate::config::{AdmissionQuota, TableKind, TenantSpec};
use crate::metrics::{MetricsReport, ShardMetrics};
use crate::service::{ServiceError, TenantStats};

/// Protocol magic leading every `Hello` payload: `"ULMT"`.
pub const MAGIC: u32 = 0x554C_4D54;

/// Wire protocol version this build speaks.
pub const WIRE_VERSION: u16 = 1;

/// Bytes in a frame header (length prefix + kind tag).
pub const HEADER_BYTES: usize = 5;

/// Frame kinds. Requests are `0x01..=0x7F`, responses `0x81..=0xFF`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum FrameKind {
    /// Client handshake: magic, version, tenant, tenant spec.
    Hello = 0x01,
    /// Submit an observation batch: wait bound + encoded lines.
    Submit = 0x02,
    /// Collect the oldest pending batch's reply.
    Reap = 0x03,
    /// Capture the tenant's table snapshot.
    Snapshot = 0x04,
    /// Restore the tenant's table from snapshot bytes.
    Restore = 0x05,
    /// Fingerprint the tenant's table.
    Fingerprint = 0x06,
    /// Fetch the tenant's counters.
    Stats = 0x07,
    /// Service-wide drain barrier.
    Drain = 0x08,
    /// Begin graceful service shutdown.
    Shutdown = 0x09,
    /// Close this connection cleanly.
    Goodbye = 0x0A,
    /// Fetch the service-wide metrics report.
    Metrics = 0x0B,
    /// Handshake accepted: version + the tenant's shard.
    HelloOk = 0x81,
    /// Batch accepted and queued; payload is the pending depth.
    SubmitOk = 0x82,
    /// Batch **not** accepted — backpressure. The payload hands the
    /// entire batch back, so nothing is ever silently dropped.
    Nack = 0x83,
    /// A processed batch's reply: counters, flags and prefetches.
    Batch = 0x84,
    /// Snapshot bytes.
    SnapshotOk = 0x85,
    /// Restore applied.
    RestoreOk = 0x86,
    /// Table fingerprint.
    FingerprintOk = 0x87,
    /// Tenant counters.
    StatsOk = 0x88,
    /// Drain barrier reached.
    DrainOk = 0x89,
    /// Shutdown drain begun.
    ShutdownOk = 0x8A,
    /// A typed [`ServiceError`], encoded via [`encode_error`].
    Err = 0x8B,
    /// A [`MetricsReport`], encoded via [`encode_metrics`].
    MetricsOk = 0x8C,
}

impl FrameKind {
    /// Decodes a frame tag.
    pub fn from_u8(tag: u8) -> Result<FrameKind, WireError> {
        use FrameKind::*;
        Ok(match tag {
            0x01 => Hello,
            0x02 => Submit,
            0x03 => Reap,
            0x04 => Snapshot,
            0x05 => Restore,
            0x06 => Fingerprint,
            0x07 => Stats,
            0x08 => Drain,
            0x09 => Shutdown,
            0x0A => Goodbye,
            0x0B => Metrics,
            0x81 => HelloOk,
            0x82 => SubmitOk,
            0x83 => Nack,
            0x84 => Batch,
            0x85 => SnapshotOk,
            0x86 => RestoreOk,
            0x87 => FingerprintOk,
            0x88 => StatsOk,
            0x89 => DrainOk,
            0x8A => ShutdownOk,
            0x8B => Err,
            0x8C => MetricsOk,
            other => return std::result::Result::Err(WireError::UnknownFrame(other)),
        })
    }
}

/// Why a [`FrameKind::Nack`] handed a batch back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum NackReason {
    /// The tenant's ingestion queue is full
    /// ([`TrySubmit::Full`](crate::TrySubmit::Full)).
    Full = 0,
    /// The submission's wait bound expired
    /// ([`TrySubmit::TimedOut`](crate::TrySubmit::TimedOut)).
    TimedOut = 1,
}

impl NackReason {
    pub(crate) fn from_u8(tag: u8) -> Result<NackReason, WireError> {
        match tag {
            0 => Ok(NackReason::Full),
            1 => Ok(NackReason::TimedOut),
            _ => Err(WireError::BadPayload {
                context: "unknown NACK reason",
            }),
        }
    }
}

/// Typed frame-level errors: everything that can go wrong between the
/// byte stream and a decoded frame.
#[derive(Debug)]
pub enum WireError {
    /// The underlying socket failed (includes mid-frame disconnects,
    /// which surface as `UnexpectedEof`).
    Io(std::io::Error),
    /// A length prefix exceeded the connection's frame cap; rejected
    /// before any payload is read.
    Oversized {
        /// The advertised payload length.
        len: u32,
        /// The cap it exceeded.
        max: u32,
    },
    /// The handshake did not lead with the protocol magic.
    BadMagic(u32),
    /// The peer speaks a different protocol version.
    VersionMismatch {
        /// The peer's version.
        got: u16,
        /// The version this build speaks.
        want: u16,
    },
    /// Unknown frame tag.
    UnknownFrame(u8),
    /// A structurally valid frame arrived where the protocol does not
    /// allow it.
    UnexpectedFrame {
        /// The frame that arrived.
        got: FrameKind,
        /// What the receiver was waiting for.
        context: &'static str,
    },
    /// A payload ended before its fixed fields did.
    Truncated {
        /// Which payload was being decoded.
        context: &'static str,
    },
    /// A payload's bytes decoded but their meaning is invalid.
    BadPayload {
        /// What was wrong.
        context: &'static str,
    },
    /// An embedded observation batch failed the line codec.
    Codec(TraceCodecError),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "socket error: {e}"),
            WireError::Oversized { len, max } => {
                write!(f, "frame payload of {len} bytes exceeds the {max}-byte cap")
            }
            WireError::BadMagic(got) => {
                write!(f, "bad protocol magic {got:#010x} (want {MAGIC:#010x})")
            }
            WireError::VersionMismatch { got, want } => {
                write!(
                    f,
                    "wire protocol version {got} not supported (this side speaks {want})"
                )
            }
            WireError::UnknownFrame(tag) => write!(f, "unknown frame tag {tag:#04x}"),
            WireError::UnexpectedFrame { got, context } => {
                write!(f, "unexpected {got:?} frame while waiting for {context}")
            }
            WireError::Truncated { context } => {
                write!(f, "frame payload ends mid-structure ({context})")
            }
            WireError::BadPayload { context } => write!(f, "bad frame payload: {context}"),
            WireError::Codec(e) => write!(f, "bad observation payload: {e}"),
        }
    }
}

impl std::error::Error for WireError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WireError::Io(e) => Some(e),
            WireError::Codec(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Io(e)
    }
}

impl From<TraceCodecError> for WireError {
    fn from(e: TraceCodecError) -> Self {
        WireError::Codec(e)
    }
}

/// Writes one frame: header + payload, then flushes.
pub fn write_frame(w: &mut impl Write, kind: FrameKind, payload: &[u8]) -> Result<(), WireError> {
    let mut header = [0u8; HEADER_BYTES];
    header[..4].copy_from_slice(&(payload.len() as u32).to_le_bytes());
    header[4] = kind as u8;
    w.write_all(&header)?;
    w.write_all(payload)?;
    w.flush()?;
    Ok(())
}

/// Reads one frame into `buf` (replacing its contents, reusing its
/// capacity) and returns its kind. A length prefix above `max` is
/// rejected **before** any payload byte is read.
pub fn read_frame_into(
    r: &mut impl Read,
    buf: &mut Vec<u8>,
    max: u32,
) -> Result<FrameKind, WireError> {
    let mut first = [0u8; 1];
    r.read_exact(&mut first)?;
    read_frame_rest(r, first[0], buf, max)
}

/// Completes [`read_frame_into`] after the caller has already pulled the
/// header's first byte off the stream. The server's idle loop waits for
/// that byte under a short poll tick (so it can notice shutdown), then
/// reads the rest of the frame under the full read timeout through this.
pub fn read_frame_rest(
    r: &mut impl Read,
    first: u8,
    buf: &mut Vec<u8>,
    max: u32,
) -> Result<FrameKind, WireError> {
    let mut rest = [0u8; HEADER_BYTES - 1];
    r.read_exact(&mut rest)?;
    let len = u32::from_le_bytes([first, rest[0], rest[1], rest[2]]);
    let kind = FrameKind::from_u8(rest[3])?;
    if len > max {
        return Err(WireError::Oversized { len, max });
    }
    buf.clear();
    buf.resize(len as usize, 0);
    r.read_exact(buf)?;
    Ok(kind)
}

/// Little-endian payload cursor with typed truncation errors.
pub(crate) struct Payload<'a> {
    bytes: &'a [u8],
    context: &'static str,
}

impl<'a> Payload<'a> {
    pub(crate) fn new(bytes: &'a [u8], context: &'static str) -> Self {
        Payload { bytes, context }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.bytes.len() < n {
            return Err(WireError::Truncated {
                context: self.context,
            });
        }
        let (head, rest) = self.bytes.split_at(n);
        self.bytes = rest;
        Ok(head)
    }

    pub(crate) fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    pub(crate) fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("2")))
    }

    pub(crate) fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    pub(crate) fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    pub(crate) fn string(&mut self) -> Result<String, WireError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::BadPayload {
            context: "string is not UTF-8",
        })
    }

    /// Everything left in the payload (e.g. a trailing line batch).
    pub(crate) fn rest(self) -> &'a [u8] {
        self.bytes
    }

    /// Asserts the payload was fully consumed.
    pub(crate) fn finish(self) -> Result<(), WireError> {
        if self.bytes.is_empty() {
            Ok(())
        } else {
            Err(WireError::BadPayload {
                context: "trailing bytes after payload",
            })
        }
    }
}

pub(crate) fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_string(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

/// Encodes a `Hello` payload: magic, version, tenant, tenant spec.
pub(crate) fn encode_hello(out: &mut Vec<u8>, tenant: u32, spec: &TenantSpec) {
    put_u32(out, MAGIC);
    put_u16(out, WIRE_VERSION);
    put_u32(out, tenant);
    out.push(match spec.kind {
        TableKind::Base => 0,
        TableKind::Chain => 1,
        TableKind::Repl => 2,
    });
    put_u64(out, spec.params.num_rows as u64);
    put_u32(out, spec.params.assoc as u32);
    put_u32(out, spec.params.num_succ as u32);
    put_u32(out, spec.params.num_levels as u32);
    put_u32(out, spec.weight);
    put_u64(out, spec.queue_depth.map_or(0, |d| d as u64));
    let (burst, refill) = spec
        .quota
        .map_or((0, 0), |q| (q.burst_batches, q.refill_per_sec));
    put_u32(out, burst);
    put_u32(out, refill);
}

/// Decodes a `Hello` payload, checking magic and version first.
pub(crate) fn decode_hello(bytes: &[u8]) -> Result<(u32, TenantSpec), WireError> {
    let mut p = Payload::new(bytes, "Hello");
    let magic = p.u32()?;
    if magic != MAGIC {
        return Err(WireError::BadMagic(magic));
    }
    let version = p.u16()?;
    if version != WIRE_VERSION {
        return Err(WireError::VersionMismatch {
            got: version,
            want: WIRE_VERSION,
        });
    }
    let tenant = p.u32()?;
    let kind = match p.u8()? {
        0 => TableKind::Base,
        1 => TableKind::Chain,
        2 => TableKind::Repl,
        _ => {
            return Err(WireError::BadPayload {
                context: "unknown table kind",
            })
        }
    };
    let params = TableParams {
        num_rows: p.u64()? as usize,
        assoc: p.u32()? as usize,
        num_succ: p.u32()? as usize,
        num_levels: p.u32()? as usize,
    };
    let weight = p.u32()?;
    let queue_depth = match p.u64()? {
        0 => None,
        d => Some(d as usize),
    };
    let burst = p.u32()?;
    let refill = p.u32()?;
    p.finish()?;
    let quota = if burst == 0 {
        None
    } else {
        Some(AdmissionQuota::new(burst, refill))
    };
    Ok((
        tenant,
        TenantSpec {
            kind,
            params,
            weight,
            queue_depth,
            quota,
        },
    ))
}

/// Encodes a `StatsOk` payload.
pub(crate) fn encode_stats(out: &mut Vec<u8>, s: &TenantStats) {
    put_u32(out, s.tenant);
    put_u64(out, s.batches);
    put_u64(out, s.observed);
    put_u64(out, s.rejected);
    put_u64(out, s.shed);
    put_u64(out, s.prefetches);
    put_u64(out, s.live_rows);
    put_u64(out, s.table_bytes);
}

/// Decodes a `StatsOk` payload.
pub(crate) fn decode_stats(bytes: &[u8]) -> Result<TenantStats, WireError> {
    let mut p = Payload::new(bytes, "StatsOk");
    let stats = TenantStats {
        tenant: p.u32()?,
        batches: p.u64()?,
        observed: p.u64()?,
        rejected: p.u64()?,
        shed: p.u64()?,
        prefetches: p.u64()?,
        live_rows: p.u64()?,
        table_bytes: p.u64()?,
    };
    p.finish()?;
    Ok(stats)
}

/// Encodes one log2 histogram: a bucket count with trailing zero
/// buckets trimmed, then that many `u64` counts. An empty histogram is
/// 4 bytes.
fn put_histogram(out: &mut Vec<u8>, h: &Log2Histogram) {
    let counts = h.counts();
    let n = counts.iter().rposition(|&c| c != 0).map_or(0, |i| i + 1);
    put_u32(out, n as u32);
    for &c in &counts[..n] {
        put_u64(out, c);
    }
}

/// Decodes one log2 histogram written by [`put_histogram`].
fn read_histogram(p: &mut Payload<'_>) -> Result<Log2Histogram, WireError> {
    let n = p.u32()? as usize;
    if n > LOG2_BUCKETS {
        return Err(WireError::BadPayload {
            context: "histogram bucket count exceeds LOG2_BUCKETS",
        });
    }
    let mut counts = [0u64; LOG2_BUCKETS];
    for slot in counts.iter_mut().take(n) {
        *slot = p.u64()?;
    }
    Log2Histogram::from_counts(&counts).ok_or(WireError::BadPayload {
        context: "histogram counts",
    })
}

/// Encodes a `MetricsOk` payload: the service-wide report, shard by
/// shard, each histogram with trailing zero buckets trimmed.
pub(crate) fn encode_metrics(out: &mut Vec<u8>, r: &MetricsReport) {
    out.push(u8::from(r.enabled));
    put_u64(out, r.recoveries);
    put_histogram(out, &r.recovery_nanos);
    put_u32(out, r.shards.len() as u32);
    for s in &r.shards {
        put_u32(out, s.shard);
        put_u64(out, s.epoch);
        put_u64(out, s.batches);
        put_u64(out, s.observed);
        put_u64(out, s.prefetches);
        put_u64(out, s.rejected);
        put_u64(out, s.shed);
        put_u64(out, s.obs_cycles);
        put_u64(out, s.wall_unix_nanos);
        put_histogram(out, &s.batch_size);
        put_histogram(out, &s.queue_wait_nanos);
        put_histogram(out, &s.ingest_nanos);
    }
}

/// Decodes a `MetricsOk` payload.
pub(crate) fn decode_metrics(bytes: &[u8]) -> Result<MetricsReport, WireError> {
    let mut p = Payload::new(bytes, "MetricsOk");
    let enabled = match p.u8()? {
        0 => false,
        1 => true,
        _ => {
            return Err(WireError::BadPayload {
                context: "metrics enabled flag",
            })
        }
    };
    let recoveries = p.u64()?;
    let recovery_nanos = read_histogram(&mut p)?;
    let shard_count = p.u32()? as usize;
    let mut shards = Vec::with_capacity(shard_count.min(1024));
    for _ in 0..shard_count {
        shards.push(ShardMetrics {
            shard: p.u32()?,
            epoch: p.u64()?,
            batches: p.u64()?,
            observed: p.u64()?,
            prefetches: p.u64()?,
            rejected: p.u64()?,
            shed: p.u64()?,
            obs_cycles: p.u64()?,
            wall_unix_nanos: p.u64()?,
            batch_size: read_histogram(&mut p)?,
            queue_wait_nanos: read_histogram(&mut p)?,
            ingest_nanos: read_histogram(&mut p)?,
        });
    }
    p.finish()?;
    Ok(MetricsReport {
        enabled,
        recoveries,
        recovery_nanos,
        shards,
    })
}

/// Encodes a [`ServiceError`] as an `Err` payload: a discriminant, a
/// numeric detail (shard or tenant where applicable) and the display
/// text. Variants whose semantics matter to client control flow keep
/// their exact discriminant across the wire; everything else collapses
/// to [`ServiceError::Remote`] carrying the display text.
pub(crate) fn encode_error(out: &mut Vec<u8>, e: &ServiceError) {
    let (code, detail): (u8, u32) = match e {
        ServiceError::Closed => (0, 0),
        ServiceError::ShuttingDown => (1, 0),
        ServiceError::ShardDown(s) => (2, *s),
        ServiceError::Timeout => (3, 0),
        ServiceError::TenantExists(t) => (4, *t),
        ServiceError::UnknownTenant(t) => (5, *t),
        ServiceError::Busy => (6, 0),
        _ => (255, 0),
    };
    out.push(code);
    put_u32(out, detail);
    put_string(out, &e.to_string());
}

/// Decodes an `Err` payload back into a [`ServiceError`].
pub(crate) fn decode_error(bytes: &[u8]) -> Result<ServiceError, WireError> {
    let mut p = Payload::new(bytes, "Err");
    let code = p.u8()?;
    let detail = p.u32()?;
    let message = p.string()?;
    p.finish()?;
    Ok(match code {
        0 => ServiceError::Closed,
        1 => ServiceError::ShuttingDown,
        2 => ServiceError::ShardDown(detail),
        3 => ServiceError::Timeout,
        4 => ServiceError::TenantExists(detail),
        5 => ServiceError::UnknownTenant(detail),
        6 => ServiceError::Busy,
        _ => ServiceError::Remote(message),
    })
}

/// Encodes a `Batch` payload: counters, flags, optional error, then the
/// prefetch lines.
pub(crate) fn encode_batch_reply(
    out: &mut Vec<u8>,
    observed: u64,
    cancelled: bool,
    shed: bool,
    error: Option<&ServiceError>,
    prefetch_lines: &[ulmt_simcore::LineAddr],
) {
    put_u64(out, observed);
    let mut flags = 0u8;
    if cancelled {
        flags |= 1;
    }
    if shed {
        flags |= 2;
    }
    if error.is_some() {
        flags |= 4;
    }
    out.push(flags);
    if let Some(e) = error {
        encode_error(out, e);
    }
    ulmt_workloads::codec::encode_lines_into(prefetch_lines, out);
}

/// A decoded `Batch` payload (prefetches left as raw line bytes so the
/// caller can decode them into a reusable buffer).
pub(crate) struct BatchWire<'a> {
    pub observed: u64,
    pub cancelled: bool,
    pub shed: bool,
    pub error: Option<ServiceError>,
    pub prefetch_bytes: &'a [u8],
}

/// Decodes a `Batch` payload.
pub(crate) fn decode_batch_reply(bytes: &[u8]) -> Result<BatchWire<'_>, WireError> {
    let mut p = Payload::new(bytes, "Batch");
    let observed = p.u64()?;
    let flags = p.u8()?;
    let error = if flags & 4 != 0 {
        let code = p.u8()?;
        let detail = p.u32()?;
        let message = p.string()?;
        Some(match code {
            0 => ServiceError::Closed,
            1 => ServiceError::ShuttingDown,
            2 => ServiceError::ShardDown(detail),
            3 => ServiceError::Timeout,
            4 => ServiceError::TenantExists(detail),
            5 => ServiceError::UnknownTenant(detail),
            6 => ServiceError::Busy,
            _ => ServiceError::Remote(message),
        })
    } else {
        None
    };
    Ok(BatchWire {
        observed,
        cancelled: flags & 1 != 0,
        shed: flags & 2 != 0,
        error,
        prefetch_bytes: p.rest(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ulmt_simcore::ConfigError;

    #[test]
    fn hello_round_trips_every_spec_shape() {
        for spec in [
            TenantSpec::base(64),
            TenantSpec::chain(256).with_weight(7),
            TenantSpec::repl(1024)
                .with_queue_depth(9)
                .with_quota(AdmissionQuota::new(5, 11)),
        ] {
            let mut bytes = Vec::new();
            encode_hello(&mut bytes, 42, &spec);
            let (tenant, decoded) = decode_hello(&bytes).unwrap();
            assert_eq!(tenant, 42);
            assert_eq!(decoded, spec);
        }
    }

    #[test]
    fn hello_rejects_magic_version_and_truncation() {
        let mut bytes = Vec::new();
        encode_hello(&mut bytes, 1, &TenantSpec::repl(64));
        // Corrupt the magic.
        let mut bad = bytes.clone();
        bad[0] ^= 0xFF;
        assert!(matches!(decode_hello(&bad), Err(WireError::BadMagic(_))));
        // Bump the version.
        let mut bad = bytes.clone();
        bad[4] = 99;
        assert!(matches!(
            decode_hello(&bad),
            Err(WireError::VersionMismatch {
                got: 99,
                want: WIRE_VERSION
            })
        ));
        // Truncate mid-spec.
        assert!(matches!(
            decode_hello(&bytes[..bytes.len() - 3]),
            Err(WireError::Truncated { .. })
        ));
        // Trailing garbage.
        bytes.push(0);
        assert!(matches!(
            decode_hello(&bytes),
            Err(WireError::BadPayload { .. })
        ));
    }

    #[test]
    fn frames_round_trip_through_a_byte_pipe() {
        let mut pipe: Vec<u8> = Vec::new();
        write_frame(&mut pipe, FrameKind::Fingerprint, &[]).unwrap();
        write_frame(&mut pipe, FrameKind::Submit, &[1, 2, 3]).unwrap();
        let mut cursor = std::io::Cursor::new(pipe);
        let mut buf = Vec::new();
        assert_eq!(
            read_frame_into(&mut cursor, &mut buf, 1024).unwrap(),
            FrameKind::Fingerprint
        );
        assert!(buf.is_empty());
        assert_eq!(
            read_frame_into(&mut cursor, &mut buf, 1024).unwrap(),
            FrameKind::Submit
        );
        assert_eq!(buf, vec![1, 2, 3]);
    }

    #[test]
    fn oversized_and_unknown_frames_are_typed() {
        // Oversized: length prefix above the cap, rejected pre-payload.
        let mut pipe: Vec<u8> = Vec::new();
        write_frame(&mut pipe, FrameKind::Submit, &[0; 64]).unwrap();
        let mut cursor = std::io::Cursor::new(pipe);
        let mut buf = Vec::new();
        assert!(matches!(
            read_frame_into(&mut cursor, &mut buf, 16),
            Err(WireError::Oversized { len: 64, max: 16 })
        ));
        // Unknown tag.
        let mut pipe = vec![0, 0, 0, 0, 0x77];
        let mut cursor = std::io::Cursor::new(&mut pipe);
        assert!(matches!(
            read_frame_into(&mut cursor, &mut buf, 16),
            Err(WireError::UnknownFrame(0x77))
        ));
        // Mid-frame EOF.
        let mut short = Vec::new();
        write_frame(&mut short, FrameKind::Submit, &[9; 32]).unwrap();
        short.truncate(short.len() - 5);
        let mut cursor = std::io::Cursor::new(short);
        match read_frame_into(&mut cursor, &mut buf, 1024) {
            Err(WireError::Io(e)) => {
                assert_eq!(e.kind(), std::io::ErrorKind::UnexpectedEof)
            }
            other => panic!("expected EOF, got {other:?}"),
        }
    }

    #[test]
    fn errors_round_trip_with_exact_discriminants() {
        let exact = [
            ServiceError::Closed,
            ServiceError::ShuttingDown,
            ServiceError::ShardDown(3),
            ServiceError::Timeout,
            ServiceError::TenantExists(17),
            ServiceError::UnknownTenant(99),
            ServiceError::Busy,
        ];
        for e in exact {
            let mut bytes = Vec::new();
            encode_error(&mut bytes, &e);
            let back = decode_error(&bytes).unwrap();
            assert_eq!(format!("{e:?}"), format!("{back:?}"));
        }
        // Everything else collapses to Remote carrying the display text.
        let e = ServiceError::InvalidSpec(ConfigError::new("tenant", "nope"));
        let mut bytes = Vec::new();
        encode_error(&mut bytes, &e);
        match decode_error(&bytes).unwrap() {
            ServiceError::Remote(msg) => assert!(msg.contains("nope")),
            other => panic!("expected Remote, got {other:?}"),
        }
    }

    #[test]
    fn stats_round_trip() {
        let stats = TenantStats {
            tenant: 5,
            batches: 10,
            observed: 640,
            rejected: 3,
            shed: 2,
            prefetches: 99,
            live_rows: 40,
            table_bytes: 4096,
        };
        let mut bytes = Vec::new();
        encode_stats(&mut bytes, &stats);
        assert_eq!(decode_stats(&bytes).unwrap(), stats);
        assert!(matches!(
            decode_stats(&bytes[..7]),
            Err(WireError::Truncated { .. })
        ));
    }

    #[test]
    fn metrics_report_round_trips() {
        let mut batch_size = Log2Histogram::new();
        let mut queue_wait = Log2Histogram::new();
        let mut ingest = Log2Histogram::new();
        for v in [0u64, 1, 3, 256, 1 << 40, u64::MAX] {
            batch_size.record(v);
            queue_wait.record(v / 2);
            ingest.record(v.saturating_add(7));
        }
        let mut recovery_nanos = Log2Histogram::new();
        recovery_nanos.record(5_000_000);
        let report = MetricsReport {
            enabled: true,
            recoveries: 1,
            recovery_nanos,
            shards: vec![ShardMetrics {
                shard: 3,
                epoch: 2,
                batches: 10,
                observed: 640,
                prefetches: 99,
                rejected: 4,
                shed: 1,
                obs_cycles: 5120,
                wall_unix_nanos: 1_700_000_000_000_000_000,
                batch_size,
                queue_wait_nanos: queue_wait,
                ingest_nanos: ingest,
            }],
        };
        let mut bytes = Vec::new();
        encode_metrics(&mut bytes, &report);
        assert_eq!(decode_metrics(&bytes).unwrap(), report);

        // Empty (disabled) report round-trips too.
        let mut bytes = Vec::new();
        encode_metrics(&mut bytes, &MetricsReport::disabled());
        assert_eq!(decode_metrics(&bytes).unwrap(), MetricsReport::disabled());
    }

    #[test]
    fn metrics_decode_rejects_truncation_and_bad_buckets() {
        let mut bytes = Vec::new();
        encode_metrics(&mut bytes, &MetricsReport::disabled());
        assert!(matches!(
            decode_metrics(&bytes[..bytes.len() - 2]),
            Err(WireError::Truncated { .. })
        ));
        // A histogram advertising more buckets than exist is typed.
        let mut bad = Vec::new();
        bad.push(1); // enabled
        put_u64(&mut bad, 0); // recoveries
        put_u32(&mut bad, LOG2_BUCKETS as u32 + 1); // oversized histogram
        assert!(matches!(
            decode_metrics(&bad),
            Err(WireError::BadPayload { .. })
        ));
        // A bad enabled flag is typed.
        let mut bad = Vec::new();
        encode_metrics(&mut bad, &MetricsReport::disabled());
        bad[0] = 7;
        assert!(matches!(
            decode_metrics(&bad),
            Err(WireError::BadPayload { .. })
        ));
    }

    #[test]
    fn batch_reply_round_trips_flags_errors_and_prefetches() {
        use ulmt_simcore::LineAddr;
        let prefetches: Vec<LineAddr> = (0..5u64).map(LineAddr::new).collect();
        let mut bytes = Vec::new();
        encode_batch_reply(&mut bytes, 64, false, true, None, &prefetches);
        let wire = decode_batch_reply(&bytes).unwrap();
        assert_eq!(wire.observed, 64);
        assert!(!wire.cancelled);
        assert!(wire.shed);
        assert!(wire.error.is_none());
        assert_eq!(
            ulmt_workloads::codec::decode_lines(wire.prefetch_bytes).unwrap(),
            prefetches
        );

        let mut bytes = Vec::new();
        encode_batch_reply(
            &mut bytes,
            0,
            true,
            false,
            Some(&ServiceError::Timeout),
            &[],
        );
        let wire = decode_batch_reply(&bytes).unwrap();
        assert!(wire.cancelled);
        assert!(matches!(wire.error, Some(ServiceError::Timeout)));
        assert!(wire.prefetch_bytes.is_empty());
    }
}
