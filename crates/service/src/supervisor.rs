//! Shard supervision: death detection, journaled crash recovery, and
//! degraded-mode routing state.
//!
//! Every shard owns a [`ShardSlot`] — the part of the shard that
//! *survives* its worker thread: the link sessions resolve their sender
//! through, the health watermarks the supervisor watches, the
//! observation journal and periodic checkpoint recovery rebuilds from,
//! and the once-only chaos budgets. The supervisor thread watches for
//! two failure classes:
//!
//! * **panic** — the worker's spawn wrapper catches the unwind
//!   ([`std::panic::catch_unwind`]) and reports it immediately;
//! * **wedge** — the worker stops consuming its queue without dying.
//!   Detected by heartbeat watermarks: messages enqueued vs processed
//!   plus the shard's virtual `obs_cycles` clock, sampled every
//!   supervision tick; a shard that is behind and makes no progress for
//!   `wedge_ticks` consecutive ticks is declared wedged and fenced.
//!
//! Recovery restores the last checkpoint, replays the journal through
//! the live batch kernel ([`crate::shard::rebuild_shard`]), bumps the
//! worker **epoch**, and publishes a fresh link. Sessions re-resolve on
//! demand; while the slot is down they shed (acknowledge-without-learn)
//! or wait, per [`SupervisionConfig::shed_when_down`]. The whole story
//! is written up in `DESIGN.md` §14.
//!
//! [`SupervisionConfig::shed_when_down`]: crate::SupervisionConfig::shed_when_down

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::mpsc::{channel, sync_channel, Receiver, RecvTimeoutError, Sender, SyncSender};
use std::sync::{Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use ulmt_core::table::TableSnapshot;
use ulmt_simcore::{CancelToken, Cycle, ServerState, ServiceFaultState};

use crate::config::{ServiceConfig, TenantSpec};
use crate::ingress::Ingress;
use crate::journal::ObservationJournal;
use crate::service::{ShardStats, TenantStats};
use crate::shard::{rebuild_shard, run_worker, ShardExit, ShardMsg, ShardReport, WorkerCtx};

/// Locks a mutex, recovering the data if a previous holder panicked.
/// Shard state must stay reachable after a worker dies mid-anything —
/// poisoning is exactly the situation supervision exists for.
pub(crate) fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Externally visible availability of one shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardState {
    /// Worker alive and consuming.
    Up,
    /// Worker dead or fenced; the supervisor is (or will be) rebuilding
    /// it. Sessions shed or wait, per policy.
    Down,
    /// The restart budget is exhausted; the shard stays down for the
    /// service's lifetime.
    Failed,
    /// The service has shut down.
    Closed,
}

const STATE_UP: u8 = 0;
const STATE_DOWN: u8 = 1;
const STATE_FAILED: u8 = 2;
const STATE_CLOSED: u8 = 3;

impl ShardState {
    fn to_u8(self) -> u8 {
        match self {
            ShardState::Up => STATE_UP,
            ShardState::Down => STATE_DOWN,
            ShardState::Failed => STATE_FAILED,
            ShardState::Closed => STATE_CLOSED,
        }
    }

    fn from_u8(v: u8) -> Self {
        match v {
            STATE_DOWN => ShardState::Down,
            STATE_FAILED => ShardState::Failed,
            STATE_CLOSED => ShardState::Closed,
            _ => ShardState::Up,
        }
    }
}

/// The sender sessions currently resolve to, plus the epoch that owns it.
pub(crate) struct ShardLink {
    /// `None` while the shard is down, failed, or closed.
    pub tx: Option<SyncSender<ShardMsg>>,
    /// The epoch's data-plane ingress (per-tenant queues + scheduler).
    /// `None` exactly when `tx` is.
    pub ingress: Option<Arc<Ingress>>,
    /// Worker epoch the sender belongs to (bumped on every restart).
    pub epoch: u64,
}

/// Lock-free health watermarks published by the worker and its clients.
#[derive(Debug, Default)]
pub(crate) struct ShardHealth {
    state: AtomicU8,
    epoch: AtomicU64,
    /// Messages successfully enqueued onto the current epoch's queue.
    enqueued: AtomicU64,
    /// Messages the current epoch's worker finished handling.
    processed: AtomicU64,
    /// The shard's virtual `obs_cycles` clock after the last handled
    /// message — the heartbeat watermark of the wedge detector.
    watermark: AtomicU64,
    /// Set while the worker sits in a deliberate test-only pause, so the
    /// wedge detector does not fence it.
    pub paused: AtomicBool,
}

impl ShardHealth {
    pub fn state(&self) -> ShardState {
        ShardState::from_u8(self.state.load(Ordering::SeqCst))
    }

    pub fn set_state(&self, s: ShardState) {
        self.state.store(s.to_u8(), Ordering::SeqCst);
    }

    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::SeqCst)
    }

    pub fn note_enqueued(&self) {
        self.enqueued.fetch_add(1, Ordering::SeqCst);
    }

    pub fn note_processed(&self, now: Cycle) {
        self.watermark.store(now, Ordering::SeqCst);
        self.processed.fetch_add(1, Ordering::SeqCst);
    }

    fn flow(&self) -> (u64, u64, u64) {
        (
            self.enqueued.load(Ordering::SeqCst),
            self.processed.load(Ordering::SeqCst),
            self.watermark.load(Ordering::SeqCst),
        )
    }

    fn reset_flow(&self, watermark: Cycle) {
        self.enqueued.store(0, Ordering::SeqCst);
        self.processed.store(0, Ordering::SeqCst);
        self.watermark.store(watermark, Ordering::SeqCst);
    }
}

/// One tenant's contribution to a checkpoint.
#[derive(Debug, Clone)]
pub(crate) struct TenantCheckpoint {
    pub tenant: u32,
    pub snap: TableSnapshot,
    pub stats: TenantStats,
}

/// A complete capture of a shard at an accepted-batch boundary.
#[derive(Debug, Clone)]
pub(crate) struct ShardCheckpoint {
    /// Last acked batch seq included in this checkpoint.
    pub seq: u64,
    /// The shard's virtual clock at the boundary.
    pub now: Cycle,
    /// The utilization server's state at the boundary.
    pub server: ServerState,
    /// Aggregate counters at the boundary.
    pub stats: ShardStats,
    /// Every tenant's table and counters, sorted by tenant ID.
    pub tenants: Vec<TenantCheckpoint>,
}

/// The crash-surviving half of a shard. Sessions, the service front end,
/// the worker thread and the supervisor all share one `Arc<ShardSlot>`.
pub(crate) struct ShardSlot {
    pub shard: u32,
    pub link: RwLock<ShardLink>,
    pub health: ShardHealth,
    /// Registered tenants, in open order — the specs recovery recreates
    /// tables from.
    pub specs: Mutex<Vec<(u32, TenantSpec)>>,
    pub journal: Mutex<ObservationJournal>,
    pub checkpoint: Mutex<Option<ShardCheckpoint>>,
    /// Once-only chaos budgets (survive restarts by design).
    pub fault_state: ServiceFaultState,
    pub recoveries: Mutex<Vec<RecoveryReport>>,
    /// Epoch fencing: a worker whose epoch is below this value has been
    /// replaced and must exit without touching anything else.
    abandoned_below: AtomicU64,
    /// Set once the service is stopping, so even a chaos-wedged worker
    /// (parked, not consuming) lets go and the shutdown join cannot
    /// deadlock.
    closing: AtomicBool,
}

impl std::fmt::Debug for ShardSlot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardSlot")
            .field("shard", &self.shard)
            .field("state", &self.health.state())
            .field("epoch", &self.health.epoch())
            .finish_non_exhaustive()
    }
}

impl ShardSlot {
    pub fn new(shard: u32, cfg: &ServiceConfig) -> Self {
        ShardSlot {
            shard,
            link: RwLock::new(ShardLink {
                tx: None,
                ingress: None,
                epoch: 0,
            }),
            health: ShardHealth::default(),
            specs: Mutex::new(Vec::new()),
            journal: Mutex::new(ObservationJournal::new(cfg.supervision.journal_window)),
            checkpoint: Mutex::new(None),
            fault_state: ServiceFaultState::new(),
            recoveries: Mutex::new(Vec::new()),
            abandoned_below: AtomicU64::new(0),
            closing: AtomicBool::new(false),
        }
    }

    /// Current sender + ingress + epoch + state, read under the link
    /// lock.
    #[allow(clippy::type_complexity)]
    pub fn resolve(
        &self,
    ) -> (
        Option<SyncSender<ShardMsg>>,
        Option<Arc<Ingress>>,
        u64,
        ShardState,
    ) {
        let link = self.link.read().unwrap_or_else(|e| e.into_inner());
        (
            link.tx.clone(),
            link.ingress.clone(),
            link.epoch,
            self.health.state(),
        )
    }

    /// `true` if the worker running `epoch` has been fenced.
    pub fn is_abandoned(&self, epoch: u64) -> bool {
        self.abandoned_below.load(Ordering::SeqCst) > epoch
    }

    /// `true` once service shutdown has begun.
    pub fn is_closing(&self) -> bool {
        self.closing.load(Ordering::SeqCst)
    }

    fn fence_below(&self, epoch: u64) {
        self.abandoned_below.fetch_max(epoch, Ordering::SeqCst);
    }

    fn publish(
        &self,
        tx: SyncSender<ShardMsg>,
        ingress: Arc<Ingress>,
        epoch: u64,
        watermark: Cycle,
    ) {
        self.health.reset_flow(watermark);
        {
            let mut link = self.link.write().unwrap_or_else(|e| e.into_inner());
            *link = ShardLink {
                tx: Some(tx),
                ingress: Some(ingress),
                epoch,
            };
        }
        self.health.epoch.store(epoch, Ordering::SeqCst);
        self.health.set_state(ShardState::Up);
    }

    pub(crate) fn take_down(&self, state: ShardState) {
        self.health.set_state(state);
        let ingress = {
            let mut link = self.link.write().unwrap_or_else(|e| e.into_inner());
            link.tx = None;
            link.ingress.take()
        };
        // Close the dead epoch's ingress and *drop* whatever was still
        // queued: the reply channels die with the batches, clients see
        // `Closed` and resubmit against the next epoch. (On the graceful
        // path the worker already closed it and answered the stragglers
        // with a typed error, so this drains nothing.)
        if let Some(ingress) = ingress {
            drop(ingress.close());
        }
    }
}

/// Why a shard was restarted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryCause {
    /// The worker thread panicked.
    Panic,
    /// The worker stopped consuming without dying and was fenced.
    Wedge,
}

/// How much of the shard's acked history a recovery reconstructed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryOutcome {
    /// Checkpoint + journal covered every acked batch: the rebuilt shard
    /// is bit-identical to one that never died.
    Clean {
        /// Journaled batches replayed on top of the checkpoint.
        replayed_batches: u64,
    },
    /// Acked batches older than the journal window were lost. Tables are
    /// best-effort (checkpoint plus the surviving suffix); the counters
    /// below keep the accounting identity exact.
    Lossy {
        /// Journaled batches replayed on top of the checkpoint.
        replayed_batches: u64,
        /// Acked batches that could not be replayed — the exact gap
        /// between the checkpoint and the oldest surviving journal entry.
        dropped_batches: u64,
    },
}

/// One shard restart, as recorded by the supervisor.
#[derive(Debug, Clone)]
pub struct RecoveryReport {
    /// The shard that was rebuilt.
    pub shard: u32,
    /// The epoch of the replacement worker.
    pub epoch: u64,
    /// What killed the previous epoch.
    pub cause: RecoveryCause,
    /// Clean or lossy, with exact replay/drop counts.
    pub outcome: RecoveryOutcome,
    /// Tenants recreated on the replacement worker.
    pub tenants_restored: u32,
    /// Observations replayed from the journal.
    pub replayed_obs: u64,
    /// Seq of the checkpoint recovery started from (0 = none).
    pub checkpoint_seq: u64,
    /// Last acked seq the rebuilt shard resumed after.
    pub resumed_seq: u64,
    /// Approximate bytes of learned state the checkpoint carried.
    pub checkpoint_bytes: u64,
    /// Wall-clock nanoseconds from fencing the dead epoch to publishing
    /// the replacement link.
    pub latency_nanos: u64,
}

impl RecoveryReport {
    /// `true` for a bit-identical recovery.
    pub fn is_clean(&self) -> bool {
        matches!(self.outcome, RecoveryOutcome::Clean { .. })
    }

    /// Acked batches the recovery could not replay (0 when clean).
    pub fn dropped_batches(&self) -> u64 {
        match self.outcome {
            RecoveryOutcome::Clean { .. } => 0,
            RecoveryOutcome::Lossy {
                dropped_batches, ..
            } => dropped_batches,
        }
    }
}

/// Messages the supervisor thread reacts to.
pub(crate) enum SupervisorMsg {
    /// A worker epoch died by panic (sent by its spawn wrapper).
    Panicked { shard: u32, epoch: u64 },
    /// Stop supervising. With a reply channel: graceful shutdown — drain
    /// every worker, join them, and report. Without: the service was
    /// dropped; close the links and exit.
    Stop {
        reply: Option<Sender<Vec<ShardReport>>>,
    },
}

/// The front end's handle on the supervisor thread.
pub(crate) struct SupervisorHandle {
    pub tx: Sender<SupervisorMsg>,
    pub thread: Option<JoinHandle<()>>,
}

struct Worker {
    handle: Option<JoinHandle<ShardExit>>,
    epoch: u64,
}

/// Spawns one worker epoch for `slot` and returns its control sender,
/// its freshly built ingress (with every registered tenant's queue
/// pre-created from the spec registry, so recovered tenants can submit
/// the moment the link publishes), and the thread handle.
fn spawn_worker(
    slot: &Arc<ShardSlot>,
    cfg: ServiceConfig,
    epoch: u64,
    cancel: CancelToken,
    events: Sender<SupervisorMsg>,
    init: Option<crate::shard::ShardInit>,
) -> (SyncSender<ShardMsg>, Arc<Ingress>, JoinHandle<ShardExit>) {
    let (tx, rx) = sync_channel(cfg.queue_depth);
    let ingress = Arc::new(Ingress::with_stamp(
        cfg.scheduler,
        cfg.quantum_obs,
        cfg.queue_depth,
        cfg.metrics,
    ));
    for (tenant, spec) in lock(&slot.specs).iter() {
        ingress.register(*tenant, spec.weight, spec.queue_depth);
    }
    let slot = Arc::clone(slot);
    let shard = slot.shard;
    let worker_ingress = Arc::clone(&ingress);
    let handle = std::thread::Builder::new()
        .name(format!("ulmt-shard-{shard}.{epoch}"))
        .spawn(move || {
            let ctx = WorkerCtx {
                shard,
                epoch,
                cfg,
                cancel,
                slot,
                ingress: worker_ingress,
            };
            let mut init = init;
            match catch_unwind(AssertUnwindSafe(|| run_worker(&ctx, &rx, init.take()))) {
                Ok(exit) => exit,
                Err(_) => {
                    let _ = events.send(SupervisorMsg::Panicked { shard, epoch });
                    ShardExit::Panicked
                }
            }
        })
        .expect("spawning a shard worker thread");
    (tx, ingress, handle)
}

/// Everything the supervisor thread owns.
struct Supervisor {
    cfg: ServiceConfig,
    cancel: CancelToken,
    slots: Vec<Arc<ShardSlot>>,
    workers: Vec<Worker>,
    events_tx: Sender<SupervisorMsg>,
    restarts: Vec<u32>,
    stall_ticks: Vec<u32>,
    last_flow: Vec<(u64, u64)>,
}

impl Supervisor {
    fn run(mut self, rx: Receiver<SupervisorMsg>) {
        let tick = Duration::from_millis(self.cfg.supervision.tick_ms.max(1));
        loop {
            match rx.recv_timeout(tick) {
                Ok(SupervisorMsg::Panicked { shard, epoch }) => {
                    // Ignore stale reports from epochs already replaced
                    // (e.g. a wedge restart raced a late panic).
                    if self.workers[shard as usize].epoch == epoch {
                        self.restart(shard as usize, RecoveryCause::Panic);
                    }
                }
                Ok(SupervisorMsg::Stop { reply }) => {
                    self.stop(reply);
                    return;
                }
                Err(RecvTimeoutError::Timeout) => self.wedge_scan(),
                Err(RecvTimeoutError::Disconnected) => return,
            }
        }
    }

    /// One supervision tick: fence any Up shard that is behind on its
    /// queue and has made no progress (neither message count nor virtual
    /// clock watermark) for `wedge_ticks` consecutive ticks.
    fn wedge_scan(&mut self) {
        for i in 0..self.slots.len() {
            let slot = &self.slots[i];
            if slot.health.state() != ShardState::Up || slot.health.paused.load(Ordering::SeqCst) {
                self.stall_ticks[i] = 0;
                continue;
            }
            let (enq, proc, wm) = slot.health.flow();
            let behind = enq > proc;
            let stalled = (proc, wm) == self.last_flow[i];
            self.last_flow[i] = (proc, wm);
            if behind && stalled {
                self.stall_ticks[i] += 1;
                if self.stall_ticks[i] >= self.cfg.supervision.wedge_ticks {
                    self.stall_ticks[i] = 0;
                    self.restart(i, RecoveryCause::Wedge);
                }
            } else {
                self.stall_ticks[i] = 0;
            }
        }
    }

    /// Joins the (already fenced) old worker of `shard`, polling with a
    /// deadline so a worker that is genuinely stuck — not just slow to
    /// observe the fence — detaches instead of blocking recovery.
    fn reap(&mut self, shard: usize, patience: Duration) -> Option<ShardExit> {
        let handle = self.workers[shard].handle.take()?;
        let deadline = Instant::now() + patience;
        while !handle.is_finished() {
            if Instant::now() >= deadline {
                drop(handle);
                return None;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        handle.join().ok()
    }

    /// Fences the current epoch of `shard`, rebuilds its state from
    /// checkpoint + journal, spawns a replacement epoch, and publishes
    /// the new link. Exhausting the restart budget parks the shard in
    /// [`ShardState::Failed`] instead.
    fn restart(&mut self, shard: usize, cause: RecoveryCause) {
        let t0 = Instant::now();
        let slot = Arc::clone(&self.slots[shard]);
        let old_epoch = self.workers[shard].epoch;
        slot.take_down(ShardState::Down);
        slot.fence_below(old_epoch + 1);
        // Once fenced, the old worker exits on its own: a panicker
        // finishes unwinding, a wedge-parked worker observes the fence
        // within a millisecond, a healthy worker notices at its next
        // queue poll. Reap it (bounded) and let the actual exit kind
        // decide the recorded cause — panic unwinding (plus backtrace
        // printing) can outlast the wedge scan's patience, so the scan
        // sometimes wins the race against the panic report and the
        // caller's guess of `Wedge` would be wrong. The late Panicked
        // message is epoch-fenced and ignored.
        let cause = match self.reap(shard, Duration::from_secs(1)) {
            Some(ShardExit::Panicked) => RecoveryCause::Panic,
            Some(_) | None => cause,
        };
        if self.restarts[shard] >= self.cfg.supervision.max_restarts {
            slot.take_down(ShardState::Failed);
            return;
        }
        self.restarts[shard] += 1;
        let backoff = self
            .cfg
            .supervision
            .backoff_base_ms
            .saturating_mul(1u64 << (self.restarts[shard] - 1).min(16))
            .min(self.cfg.supervision.backoff_max_ms);
        if backoff > 0 {
            std::thread::sleep(Duration::from_millis(backoff));
        }

        let specs = lock(&slot.specs).clone();
        let checkpoint = lock(&slot.checkpoint).clone();
        let (init, summary) = {
            let journal = lock(&slot.journal);
            match rebuild_shard(slot.shard, &self.cfg, &specs, checkpoint.as_ref(), &journal) {
                Ok(built) => built,
                Err(_) => {
                    // A checkpoint that no longer restores is a bug, not
                    // a transient: keep the shard down rather than serve
                    // a half-rebuilt table.
                    slot.take_down(ShardState::Failed);
                    return;
                }
            }
        };
        let epoch = old_epoch + 1;
        let watermark = init.now();
        let (tx, ingress, handle) = spawn_worker(
            &slot,
            self.cfg,
            epoch,
            self.cancel.clone(),
            self.events_tx.clone(),
            Some(init),
        );
        self.workers[shard] = Worker {
            handle: Some(handle),
            epoch,
        };
        self.last_flow[shard] = (0, 0);
        slot.publish(tx, ingress, epoch, watermark);

        let outcome = if summary.coverage.dropped_batches == 0 {
            RecoveryOutcome::Clean {
                replayed_batches: summary.coverage.replayable,
            }
        } else {
            RecoveryOutcome::Lossy {
                replayed_batches: summary.coverage.replayable,
                dropped_batches: summary.coverage.dropped_batches,
            }
        };
        lock(&slot.recoveries).push(RecoveryReport {
            shard: slot.shard,
            epoch,
            cause,
            outcome,
            tenants_restored: summary.tenants_restored,
            replayed_obs: summary.coverage.replayable_obs,
            checkpoint_seq: summary.checkpoint_seq,
            resumed_seq: summary.resumed_seq,
            checkpoint_bytes: summary.checkpoint_bytes,
            latency_nanos: t0.elapsed().as_nanos() as u64,
        });
    }

    /// Graceful (with `reply`) or silent (service dropped) shutdown.
    fn stop(mut self, reply: Option<Sender<Vec<ShardReport>>>) {
        // Unstick chaos-wedged workers (parked, not consuming) so the
        // joins below cannot deadlock; healthy workers never look at the
        // flag until they are already wedge-parked, so their drain
        // semantics are unchanged.
        for slot in &self.slots {
            slot.closing.store(true, Ordering::SeqCst);
        }
        // Ask every live worker to drain and exit, carrying per-tenant
        // barriers captured *now*: everything enqueued before shutdown
        // began gets processed, everything behind the barriers gets a
        // typed rejection instead of a silent drop.
        for slot in &self.slots {
            let (tx, ingress, _, _) = slot.resolve();
            if let Some(tx) = tx {
                let barriers = ingress.as_ref().map(|i| i.barriers()).unwrap_or_default();
                let _ = tx.send(ShardMsg::Shutdown { barriers });
                if let Some(i) = &ingress {
                    i.kick();
                }
            }
        }
        let mut reports = Vec::with_capacity(self.slots.len());
        for (i, slot) in self.slots.iter().enumerate() {
            let joined = match self.workers[i].handle.take() {
                Some(h) if reply.is_some() => h.join().ok(),
                // Silent stop: don't block on workers; they drain and
                // exit on their own.
                Some(_) | None => None,
            };
            let mut report = match joined {
                Some(ShardExit::Finished(r)) => *r,
                _ => ShardReport {
                    stats: lock(&slot.checkpoint)
                        .as_ref()
                        .map(|cp| cp.stats)
                        .unwrap_or(ShardStats {
                            shard: slot.shard,
                            ..ShardStats::default()
                        }),
                    trace: None,
                    epoch: self.workers[i].epoch,
                    recoveries: Vec::new(),
                },
            };
            report.recoveries = std::mem::take(&mut *lock(&slot.recoveries));
            reports.push(report);
            slot.take_down(ShardState::Closed);
        }
        if let Some(reply) = reply {
            let _ = reply.send(reports);
        }
    }
}

/// Spawns the initial worker epoch for every slot plus the supervisor
/// thread that owns them from here on.
pub(crate) fn start_supervisor(
    cfg: ServiceConfig,
    cancel: CancelToken,
    slots: Vec<Arc<ShardSlot>>,
) -> SupervisorHandle {
    let (events_tx, events_rx) = channel();
    let mut workers = Vec::with_capacity(slots.len());
    for slot in &slots {
        let (tx, ingress, handle) =
            spawn_worker(slot, cfg, 0, cancel.clone(), events_tx.clone(), None);
        slot.publish(tx, ingress, 0, 0);
        workers.push(Worker {
            handle: Some(handle),
            epoch: 0,
        });
    }
    let n = slots.len();
    let supervisor = Supervisor {
        cfg,
        cancel,
        slots,
        workers,
        events_tx: events_tx.clone(),
        restarts: vec![0; n],
        stall_ticks: vec![0; n],
        last_flow: vec![(0, 0); n],
    };
    let thread = std::thread::Builder::new()
        .name("ulmt-supervisor".to_string())
        .spawn(move || supervisor.run(events_rx))
        .expect("spawning the supervisor thread");
    SupervisorHandle {
        tx: events_tx,
        thread: Some(thread),
    }
}
