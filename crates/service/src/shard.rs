//! The shard worker: one thread owning the tables of every tenant
//! hashed to it.
//!
//! A shard processes its ingestion queue strictly in FIFO order. Because
//! a tenant's whole observation stream flows through exactly one queue
//! and each observation touches only that tenant's table, the table a
//! tenant ends up with depends solely on its own stream — never on how
//! many shards the service runs or which other tenants share the shard.
//! That is the service's determinism argument, and the fingerprint
//! checks in the tests and the `serve` benchmark hold it to account.

use std::collections::hash_map::Entry;
use std::sync::mpsc::{Receiver, Sender};

use ulmt_core::algorithm::{StepSink, UlmtAlgorithm};
use ulmt_core::table::{Base, Chain, Replicated, SnapshotError, SnapshotKind, TableSnapshot};
use ulmt_simcore::{CancelToken, Cycle, FxHashMap, LineAddr, Server, TraceBuffer, TraceEvent};

use crate::config::{ServiceConfig, TableKind, TenantSpec};
use crate::service::{BatchReply, ServiceError, ShardStats, TenantStats};

/// A tenant's concrete table. The [`UlmtAlgorithm`] trait is not
/// object-safe across threads (tables are plain data, the trait is not
/// `Send`-bounded), so the shard holds this closed enum instead.
enum TenantTable {
    Base(Base),
    Chain(Chain),
    Repl(Replicated),
}

impl TenantTable {
    fn new(spec: &TenantSpec) -> Self {
        match spec.kind {
            TableKind::Base => TenantTable::Base(Base::new(spec.params)),
            TableKind::Chain => TenantTable::Chain(Chain::new(spec.params)),
            TableKind::Repl => TenantTable::Repl(Replicated::new(spec.params)),
        }
    }

    fn kind(&self) -> SnapshotKind {
        match self {
            TenantTable::Base(_) => SnapshotKind::Base,
            TenantTable::Chain(_) => SnapshotKind::Chain,
            TenantTable::Repl(_) => SnapshotKind::Repl,
        }
    }

    /// Restores `snap` into a table of the *same* algorithm as `self`
    /// — the tenant's registered kind, not whatever the snapshot says.
    fn restored(&self, snap: &TableSnapshot) -> Result<Self, SnapshotError> {
        snap.expect_kind(self.kind())?;
        match self {
            TenantTable::Base(_) => Base::from_snapshot(snap).map(TenantTable::Base),
            TenantTable::Chain(_) => Chain::from_snapshot(snap).map(TenantTable::Chain),
            TenantTable::Repl(_) => Replicated::from_snapshot(snap).map(TenantTable::Repl),
        }
    }

    /// Runs the whole batch through the algorithm's zero-alloc batch
    /// kernel ([`UlmtAlgorithm::process_misses`]); per-step effects are
    /// delivered through `sink` instead of allocated `StepResult`s.
    fn process_misses(&mut self, batch: &[LineAddr], sink: &mut dyn StepSink) {
        match self {
            TenantTable::Base(t) => t.process_misses(batch, sink),
            TenantTable::Chain(t) => t.process_misses(batch, sink),
            TenantTable::Repl(t) => t.process_misses(batch, sink),
        }
    }

    fn snapshot(&self) -> TableSnapshot {
        match self {
            TenantTable::Base(t) => t.snapshot(),
            TenantTable::Chain(t) => t.snapshot(),
            TenantTable::Repl(t) => t.snapshot(),
        }
    }

    fn fingerprint(&self) -> u64 {
        match self {
            TenantTable::Base(t) => t.table_fingerprint(),
            TenantTable::Chain(t) => t.table_fingerprint(),
            TenantTable::Repl(t) => t.table_fingerprint(),
        }
    }

    fn occupancy(&self) -> usize {
        match self {
            TenantTable::Base(t) => t.occupancy(),
            TenantTable::Chain(t) => t.occupancy(),
            TenantTable::Repl(t) => t.occupancy(),
        }
    }

    fn size_bytes(&self) -> u64 {
        match self {
            TenantTable::Base(t) => t.table_size_bytes(),
            TenantTable::Chain(t) => t.table_size_bytes(),
            TenantTable::Repl(t) => t.table_size_bytes(),
        }
    }
}

/// Receives the per-step effects of one batch straight from the table's
/// batch kernel. The cadence is exactly the old per-miss loop: advance
/// shard time by `obs_cycles` when a step begins, collect each prefetch
/// as it is emitted, and occupy the shard's server for the step's
/// instruction cost when it ends — 1 cycle/insn, like the memory
/// processor, giving the utilization figure.
struct IngestSink<'a> {
    now: &'a mut Cycle,
    obs_cycles: Cycle,
    server: &'a mut Server,
    prefetches: &'a mut Vec<LineAddr>,
}

impl StepSink for IngestSink<'_> {
    fn begin(&mut self, _miss: LineAddr) {
        *self.now += self.obs_cycles;
    }

    fn prefetch(&mut self, addr: LineAddr) {
        self.prefetches.push(addr);
    }

    fn end(&mut self, prefetch_insns: u64, learn_insns: u64) {
        self.server.serve(*self.now, prefetch_insns + learn_insns);
    }
}

/// One tenant's state on its shard.
struct TenantState {
    table: TenantTable,
    stats: TenantStats,
}

impl TenantState {
    fn new(tenant: u32, table: TenantTable) -> Self {
        TenantState {
            table,
            stats: TenantStats {
                tenant,
                ..TenantStats::default()
            },
        }
    }
}

/// Messages a shard worker processes, strictly in FIFO order.
pub(crate) enum ShardMsg {
    /// Register a tenant (fails if it already exists on the shard).
    Open {
        tenant: u32,
        spec: TenantSpec,
        reply: Sender<Result<(), ServiceError>>,
    },
    /// A batch of L2-miss observations for one tenant. This is the only
    /// data-plane message; everything else is control-plane.
    Batch {
        tenant: u32,
        obs: Vec<LineAddr>,
        /// Number of batch attempts this tenant's session saw rejected
        /// ([`TrySubmit::Full`](crate::TrySubmit::Full)) since its
        /// previous *accepted* batch. Counted here — on the shard, in
        /// stream order — so the rejection counters are exact even
        /// though rejected batches never reach the shard themselves.
        rejected_since_last: u32,
        reply: Sender<BatchReply>,
    },
    /// Capture a tenant's learned table.
    Snapshot {
        tenant: u32,
        reply: Sender<Result<TableSnapshot, ServiceError>>,
    },
    /// Replace a tenant's table with a previously captured snapshot
    /// (warm start).
    Restore {
        tenant: u32,
        snap: Box<TableSnapshot>,
        reply: Sender<Result<(), ServiceError>>,
    },
    /// Fingerprint of a tenant's learned table.
    Fingerprint {
        tenant: u32,
        reply: Sender<Result<u64, ServiceError>>,
    },
    /// A tenant's counters.
    TenantStats {
        tenant: u32,
        reply: Sender<Result<TenantStats, ServiceError>>,
    },
    /// The shard's aggregate counters.
    ShardStats { reply: Sender<ShardStats> },
    /// Barrier: replying proves every earlier message was processed.
    Drain { reply: Sender<()> },
    /// Block until the held sender is dropped. Used by
    /// [`PrefetchService::pause_shard`](crate::PrefetchService::pause_shard)
    /// to fill the ingestion queue deterministically in tests.
    Pause(Receiver<()>),
    /// Process everything queued before this message, then exit.
    Shutdown,
}

/// What a shard worker hands back when it exits.
pub struct ShardReport {
    /// Final aggregate counters.
    pub stats: ShardStats,
    /// The shard's trace buffer, if tracing was enabled.
    pub trace: Option<TraceBuffer>,
}

/// The shard worker loop. Runs on its own thread until [`ShardMsg::Shutdown`]
/// or until every sender is dropped.
pub(crate) fn run_shard(
    shard: u32,
    cfg: ServiceConfig,
    cancel: CancelToken,
    rx: Receiver<ShardMsg>,
) -> ShardReport {
    let mut tenants: FxHashMap<u32, TenantState> = FxHashMap::default();
    let mut trace = cfg.trace.map(TraceBuffer::new);
    let mut server = Server::new();
    let mut now: Cycle = 0;
    let mut stats = ShardStats {
        shard,
        ..ShardStats::default()
    };

    while let Ok(msg) = rx.recv() {
        match msg {
            ShardMsg::Open {
                tenant,
                spec,
                reply,
            } => {
                let result = match tenants.entry(tenant) {
                    Entry::Occupied(_) => Err(ServiceError::TenantExists(tenant)),
                    Entry::Vacant(slot) => match spec.validate() {
                        Ok(()) => {
                            slot.insert(TenantState::new(tenant, TenantTable::new(&spec)));
                            Ok(())
                        }
                        Err(e) => Err(ServiceError::InvalidSpec(e)),
                    },
                };
                let _ = reply.send(result);
            }
            ShardMsg::Batch {
                tenant,
                mut obs,
                rejected_since_last,
                reply,
            } => {
                let Some(state) = tenants.get_mut(&tenant) else {
                    obs.clear();
                    let _ = reply.send(BatchReply::rejected(
                        ServiceError::UnknownTenant(tenant),
                        obs,
                    ));
                    continue;
                };
                if rejected_since_last > 0 {
                    state.stats.rejected += rejected_since_last as u64;
                    stats.rejected += rejected_since_last as u64;
                    if let Some(t) = &mut trace {
                        t.record(
                            now,
                            TraceEvent::ShardReject {
                                shard,
                                tenant,
                                count: rejected_since_last,
                            },
                        );
                    }
                }
                if cancel.is_cancelled() {
                    // Graceful wind-down: acknowledge without learning so
                    // clients draining their pipelines don't hang.
                    obs.clear();
                    let _ = reply.send(BatchReply::cancelled(obs));
                    continue;
                }
                if let Some(t) = &mut trace {
                    t.record(
                        now,
                        TraceEvent::ShardBatch {
                            shard,
                            tenant,
                            len: obs.len() as u32,
                        },
                    );
                }
                let mut prefetches = Vec::new();
                let observed = obs.len() as u64;
                {
                    let mut sink = IngestSink {
                        now: &mut now,
                        obs_cycles: cfg.obs_cycles,
                        server: &mut server,
                        prefetches: &mut prefetches,
                    };
                    state.table.process_misses(&obs, &mut sink);
                }
                state.stats.batches += 1;
                state.stats.observed += observed;
                state.stats.prefetches += prefetches.len() as u64;
                stats.batches += 1;
                stats.observed += observed;
                stats.prefetches += prefetches.len() as u64;
                // Hand the (cleared) batch buffer back so the client can
                // refill it: steady-state ingestion allocates nothing.
                obs.clear();
                let _ = reply.send(BatchReply::accepted(observed, prefetches, obs));
            }
            ShardMsg::Snapshot { tenant, reply } => {
                let result = tenants
                    .get(&tenant)
                    .map(|s| s.table.snapshot())
                    .ok_or(ServiceError::UnknownTenant(tenant));
                let _ = reply.send(result);
            }
            ShardMsg::Restore {
                tenant,
                snap,
                reply,
            } => {
                let result = match tenants.get_mut(&tenant) {
                    None => Err(ServiceError::UnknownTenant(tenant)),
                    Some(state) => match state.table.restored(&snap) {
                        Ok(table) => {
                            state.table = table;
                            Ok(())
                        }
                        Err(e) => Err(ServiceError::Snapshot(e)),
                    },
                };
                let _ = reply.send(result);
            }
            ShardMsg::Fingerprint { tenant, reply } => {
                let result = tenants
                    .get(&tenant)
                    .map(|s| s.table.fingerprint())
                    .ok_or(ServiceError::UnknownTenant(tenant));
                let _ = reply.send(result);
            }
            ShardMsg::TenantStats { tenant, reply } => {
                let result = tenants
                    .get(&tenant)
                    .map(|s| {
                        let mut stats = s.stats;
                        stats.live_rows = s.table.occupancy() as u64;
                        stats.table_bytes = s.table.size_bytes();
                        stats
                    })
                    .ok_or(ServiceError::UnknownTenant(tenant));
                let _ = reply.send(result);
            }
            ShardMsg::ShardStats { reply } => {
                let _ = reply.send(finalize(&stats, &tenants, &server, now));
            }
            ShardMsg::Drain { reply } => {
                let _ = reply.send(());
            }
            ShardMsg::Pause(gate) => {
                // Blocks until the PauseGuard is dropped (recv returns
                // Err on hangup, which is the expected resume signal).
                let _ = gate.recv();
            }
            ShardMsg::Shutdown => break,
        }
    }

    ShardReport {
        stats: finalize(&stats, &tenants, &server, now),
        trace,
    }
}

/// Fills in the derived fields of the running counters.
fn finalize(
    stats: &ShardStats,
    tenants: &FxHashMap<u32, TenantState>,
    server: &Server,
    now: Cycle,
) -> ShardStats {
    let mut out = *stats;
    out.tenants = tenants.len() as u32;
    out.busy_cycles = server.busy_cycles();
    out.elapsed_cycles = now.max(server.next_free());
    out
}
