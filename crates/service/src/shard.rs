//! The shard worker: one thread owning the tables of every tenant
//! hashed to it.
//!
//! A shard's data plane is its [`Ingress`](crate::ingress::Ingress):
//! per-tenant bounded queues drained by a weighted deficit-round-robin
//! scheduler (or global-FIFO, for baseline comparison). Because a
//! tenant's whole observation stream flows through exactly one
//! per-tenant FIFO queue and each observation touches only that tenant's
//! table, the table a tenant ends up with depends solely on its own
//! stream — never on how many shards the service runs, which other
//! tenants share the shard, or how the scheduler interleaves them.
//! That is the service's determinism argument, and the fingerprint
//! checks in the tests and the `serve` benchmark hold it to account.
//!
//! Control-plane messages ([`ShardMsg`]) travel on a separate channel.
//! Operations that used to rely on the shared queue's FIFO position for
//! ordering (snapshot, stats, drain, shutdown) now carry explicit
//! per-tenant *barriers* — the count of batches enqueued for the tenant
//! at send time — and the worker drains the tenant's queue to the
//! barrier before executing them, preserving the old "everything
//! submitted before is included" contract.
//!
//! Since the supervision layer (see [`crate::supervisor`]) the worker is
//! also *recoverable*: every accepted batch is journaled before it is
//! acknowledged, the whole shard state (tables, counters, virtual clock)
//! is checkpointed every `checkpoint_every` accepted batches, and a
//! replacement worker can be rebuilt from checkpoint + journal replay
//! through the same `process_misses` batch kernel — bit-identical to a
//! worker that never died whenever the journal window covers the gap.
//! Queued ingress batches die with their worker epoch; their clients
//! observe a dropped reply channel and resubmit (at-least-once), which
//! is also why the piggybacked rejected/shed counters are *cumulative*:
//! the shard merges them idempotently, so a retry can never double-count
//! and a crash can never lose them.

use std::collections::hash_map::Entry;
use std::sync::atomic::Ordering;
use std::sync::mpsc::{Receiver, Sender, TryRecvError};
use std::sync::Arc;
use std::time::{Duration, Instant};

use ulmt_core::algorithm::{StepSink, UlmtAlgorithm};
use ulmt_core::table::{Base, Chain, Replicated, SnapshotError, SnapshotKind, TableSnapshot};
use ulmt_simcore::{
    CancelToken, Cycle, FxHashMap, LineAddr, Server, ServiceFault, ServiceFaultPlan, TraceBuffer,
    TraceEvent,
};

use crate::config::{ServiceConfig, TableKind, TenantSpec};
use crate::ingress::{Ingress, IngressBatch};
use crate::journal::{JournalCoverage, ObservationJournal};
use crate::metrics::{MetricsRegistry, ShardMetrics};
use crate::service::{BatchReply, ServiceError, ShardStats, TenantStats};
use crate::supervisor::{
    lock, RecoveryReport, ShardCheckpoint, ShardSlot, ShardState, TenantCheckpoint,
};

/// A tenant's concrete table. The [`UlmtAlgorithm`] trait is not
/// object-safe across threads (tables are plain data, the trait is not
/// `Send`-bounded), so the shard holds this closed enum instead.
enum TenantTable {
    Base(Base),
    Chain(Chain),
    Repl(Replicated),
}

impl TenantTable {
    fn new(spec: &TenantSpec) -> Self {
        match spec.kind {
            TableKind::Base => TenantTable::Base(Base::new(spec.params)),
            TableKind::Chain => TenantTable::Chain(Chain::new(spec.params)),
            TableKind::Repl => TenantTable::Repl(Replicated::new(spec.params)),
        }
    }

    fn kind(&self) -> SnapshotKind {
        match self {
            TenantTable::Base(_) => SnapshotKind::Base,
            TenantTable::Chain(_) => SnapshotKind::Chain,
            TenantTable::Repl(_) => SnapshotKind::Repl,
        }
    }

    /// Restores `snap` into a table of the *same* algorithm as `self`
    /// — the tenant's registered kind, not whatever the snapshot says.
    fn restored(&self, snap: &TableSnapshot) -> Result<Self, SnapshotError> {
        snap.expect_kind(self.kind())?;
        match self {
            TenantTable::Base(_) => Base::from_snapshot(snap).map(TenantTable::Base),
            TenantTable::Chain(_) => Chain::from_snapshot(snap).map(TenantTable::Chain),
            TenantTable::Repl(_) => Replicated::from_snapshot(snap).map(TenantTable::Repl),
        }
    }

    /// Runs the whole batch through the algorithm's zero-alloc batch
    /// kernel ([`UlmtAlgorithm::process_misses`]); per-step effects are
    /// delivered through `sink` instead of allocated `StepResult`s.
    fn process_misses(&mut self, batch: &[LineAddr], sink: &mut dyn StepSink) {
        match self {
            TenantTable::Base(t) => t.process_misses(batch, sink),
            TenantTable::Chain(t) => t.process_misses(batch, sink),
            TenantTable::Repl(t) => t.process_misses(batch, sink),
        }
    }

    fn snapshot(&self) -> TableSnapshot {
        match self {
            TenantTable::Base(t) => t.snapshot(),
            TenantTable::Chain(t) => t.snapshot(),
            TenantTable::Repl(t) => t.snapshot(),
        }
    }

    fn fingerprint(&self) -> u64 {
        match self {
            TenantTable::Base(t) => t.table_fingerprint(),
            TenantTable::Chain(t) => t.table_fingerprint(),
            TenantTable::Repl(t) => t.table_fingerprint(),
        }
    }

    fn occupancy(&self) -> usize {
        match self {
            TenantTable::Base(t) => t.occupancy(),
            TenantTable::Chain(t) => t.occupancy(),
            TenantTable::Repl(t) => t.occupancy(),
        }
    }

    fn size_bytes(&self) -> u64 {
        match self {
            TenantTable::Base(t) => t.table_size_bytes(),
            TenantTable::Chain(t) => t.table_size_bytes(),
            TenantTable::Repl(t) => t.table_size_bytes(),
        }
    }
}

/// Receives the per-step effects of one batch straight from the table's
/// batch kernel. The cadence is exactly the old per-miss loop: advance
/// shard time by `obs_cycles` when a step begins, collect each prefetch
/// as it is emitted, and occupy the shard's server for the step's
/// instruction cost when it ends — 1 cycle/insn, like the memory
/// processor, giving the utilization figure. Journal replay during
/// recovery drives the *same* sink, which is why a clean recovery also
/// reproduces the virtual clock and utilization bit-identically.
struct IngestSink<'a> {
    now: &'a mut Cycle,
    obs_cycles: Cycle,
    server: &'a mut Server,
    prefetches: &'a mut Vec<LineAddr>,
}

impl StepSink for IngestSink<'_> {
    fn begin(&mut self, _miss: LineAddr) {
        *self.now += self.obs_cycles;
    }

    fn prefetch(&mut self, addr: LineAddr) {
        self.prefetches.push(addr);
    }

    fn end(&mut self, prefetch_insns: u64, learn_insns: u64) {
        self.server.serve(*self.now, prefetch_insns + learn_insns);
    }
}

/// One tenant's state on its shard.
struct TenantState {
    table: TenantTable,
    stats: TenantStats,
}

impl TenantState {
    fn new(tenant: u32, table: TenantTable) -> Self {
        TenantState {
            table,
            stats: TenantStats {
                tenant,
                ..TenantStats::default()
            },
        }
    }
}

/// Control-plane messages a shard worker processes. The data plane
/// (observation batches) flows through the shard's
/// [`Ingress`](crate::ingress::Ingress) instead; messages that need
/// ordering against it carry per-tenant barriers captured at send time.
pub(crate) enum ShardMsg {
    /// Register a tenant (fails if it already exists on the shard).
    /// Registers the tenant's ingress queue before acking, so an acked
    /// open can immediately submit.
    Open {
        tenant: u32,
        spec: TenantSpec,
        reply: Sender<Result<(), ServiceError>>,
    },
    /// Capture a tenant's learned table, after draining its queue to
    /// `barrier` (batches enqueued for it when the request was sent).
    Snapshot {
        tenant: u32,
        barrier: u64,
        reply: Sender<Result<TableSnapshot, ServiceError>>,
    },
    /// Replace a tenant's table with a previously captured snapshot
    /// (warm start), after draining its queue to `barrier`.
    Restore {
        tenant: u32,
        barrier: u64,
        snap: Box<TableSnapshot>,
        reply: Sender<Result<(), ServiceError>>,
    },
    /// Fingerprint of a tenant's learned table, at `barrier`.
    Fingerprint {
        tenant: u32,
        barrier: u64,
        reply: Sender<Result<u64, ServiceError>>,
    },
    /// A tenant's counters, at `barrier`.
    TenantStats {
        tenant: u32,
        barrier: u64,
        reply: Sender<Result<TenantStats, ServiceError>>,
    },
    /// The shard's aggregate counters (point-in-time; pair with
    /// [`ShardMsg::Drain`] for an all-submitted view).
    ShardStats { reply: Sender<ShardStats> },
    /// The shard's metrics snapshot (`None` when metrics are disabled).
    /// Point-in-time like [`ShardMsg::ShardStats`], and FIFO-ordered with
    /// ingestion on the control plane, so the snapshot is a prefix of
    /// the shard's ingestion stream.
    Metrics { reply: Sender<Option<ShardMetrics>> },
    /// Barrier: replying proves every batch enqueued before this call
    /// (the captured per-tenant barriers) and every earlier control
    /// message was processed.
    Drain {
        barriers: Vec<(u32, u64)>,
        reply: Sender<()>,
    },
    /// Block until the held sender is dropped. Used by
    /// [`PrefetchService::pause_shard`](crate::PrefetchService::pause_shard)
    /// to fill the ingestion queues deterministically in tests.
    Pause(Receiver<()>),
    /// Process every batch enqueued before shutdown began (the captured
    /// barriers), reject everything after with a typed error, then exit.
    Shutdown { barriers: Vec<(u32, u64)> },
}

/// What a shard worker hands back when it exits.
#[derive(Debug)]
pub struct ShardReport {
    /// Final aggregate counters.
    pub stats: ShardStats,
    /// The shard's trace buffer, if tracing was enabled. A restarted
    /// shard's buffer starts empty at the restart (the buffer dies with
    /// the worker thread; only table state and counters are recovered).
    pub trace: Option<TraceBuffer>,
    /// Worker epoch that produced this report (0 = never restarted).
    pub epoch: u64,
    /// Every recovery this shard went through, oldest first. Attached by
    /// the supervisor at shutdown.
    pub recoveries: Vec<RecoveryReport>,
}

/// How a worker epoch ended.
pub(crate) enum ShardExit {
    /// Graceful shutdown after draining the queue.
    Finished(Box<ShardReport>),
    /// The supervisor fenced this epoch (wedge recovery); a replacement
    /// owns the shard now.
    Abandoned,
    /// The worker panicked; the panic was caught by the spawn wrapper.
    Panicked,
}

/// Everything a (re)spawned worker needs besides its receiving queue.
pub(crate) struct WorkerCtx {
    pub shard: u32,
    pub epoch: u64,
    pub cfg: ServiceConfig,
    pub cancel: CancelToken,
    pub slot: Arc<ShardSlot>,
    pub ingress: Arc<Ingress>,
}

/// Prebuilt shard state a replacement worker resumes from; `None` means
/// a fresh, empty shard (epoch 0).
pub(crate) struct ShardInit {
    tenants: FxHashMap<u32, TenantState>,
    stats: ShardStats,
    now: Cycle,
    server: Server,
}

impl ShardInit {
    /// The rebuilt virtual clock — the watermark a replacement worker's
    /// wedge detector starts from.
    pub fn now(&self) -> Cycle {
        self.now
    }
}

/// What [`rebuild_shard`] could reconstruct, for the recovery report.
#[derive(Debug, Clone, Copy)]
pub(crate) struct RebuildSummary {
    pub coverage: JournalCoverage,
    pub checkpoint_seq: u64,
    pub resumed_seq: u64,
    pub checkpoint_bytes: u64,
    pub tenants_restored: u32,
}

/// Rebuilds a shard's in-memory state from its last checkpoint plus a
/// replay of the journaled batches past it, through the same
/// [`IngestSink`] cadence as live ingestion. Clean recovery (journal
/// covers the whole gap) therefore reproduces tables, per-tenant stats,
/// the virtual clock and the utilization server bit-identically.
pub(crate) fn rebuild_shard(
    shard: u32,
    cfg: &ServiceConfig,
    specs: &[(u32, TenantSpec)],
    checkpoint: Option<&ShardCheckpoint>,
    journal: &ObservationJournal,
) -> Result<(ShardInit, RebuildSummary), SnapshotError> {
    let mut tenants: FxHashMap<u32, TenantState> = FxHashMap::default();
    for &(tenant, ref spec) in specs {
        tenants
            .entry(tenant)
            .or_insert_with(|| TenantState::new(tenant, TenantTable::new(spec)));
    }
    let mut stats = ShardStats {
        shard,
        ..ShardStats::default()
    };
    let mut now: Cycle = 0;
    let mut server = Server::new();
    let mut checkpoint_seq = 0;
    let mut checkpoint_bytes = 0;
    if let Some(cp) = checkpoint {
        checkpoint_seq = cp.seq;
        stats = cp.stats;
        now = cp.now;
        server = Server::from_state(cp.server);
        for tc in &cp.tenants {
            if let Some(state) = tenants.get_mut(&tc.tenant) {
                state.table = state.table.restored(&tc.snap)?;
                state.stats = tc.stats;
            }
            checkpoint_bytes += tc.snap.approx_bytes();
        }
    }

    let (entries, coverage) = journal.replay_from(checkpoint_seq);
    let mut prefetches: Vec<LineAddr> = Vec::new();
    for entry in &entries {
        // A journaled batch was accepted for a registered tenant; a
        // missing entry here would mean the spec registry lost a tenant
        // the journal still references — skip rather than poison
        // recovery, the session will surface UnknownTenant loudly.
        let Some(state) = tenants.get_mut(&entry.tenant) else {
            continue;
        };
        apply_piggyback(
            &mut state.stats,
            &mut stats,
            entry.rejected_cum,
            entry.shed_cum,
        );
        prefetches.clear();
        let observed = entry.obs.len() as u64;
        {
            let mut sink = IngestSink {
                now: &mut now,
                obs_cycles: cfg.obs_cycles,
                server: &mut server,
                prefetches: &mut prefetches,
            };
            state.table.process_misses(&entry.obs, &mut sink);
        }
        note_accepted(
            &mut state.stats,
            &mut stats,
            observed,
            prefetches.len() as u64,
        );
    }

    let summary = RebuildSummary {
        coverage,
        checkpoint_seq,
        resumed_seq: journal.last_acked(),
        checkpoint_bytes,
        tenants_restored: tenants.len() as u32,
    };
    Ok((
        ShardInit {
            tenants,
            stats,
            now,
            server,
        },
        summary,
    ))
}

/// Merges a batch's piggybacked *cumulative* rejected/shed counters into
/// the stats, returning the applied deltas. `saturating_sub` makes the
/// merge idempotent: a resubmitted batch (at-least-once delivery after a
/// crash) or a journal-replayed one carries the same cumulative values,
/// so applying it again adds zero — the fix for the old delta scheme,
/// which lost counts when a worker died between enqueue and ack, and
/// would have double-counted them had the client re-carried its deltas.
fn apply_piggyback(
    tenant: &mut TenantStats,
    shard: &mut ShardStats,
    rejected_cum: u64,
    shed_cum: u64,
) -> (u64, u64) {
    let dr = rejected_cum.saturating_sub(tenant.rejected);
    let ds = shed_cum.saturating_sub(tenant.shed);
    tenant.rejected += dr;
    shard.rejected += dr;
    tenant.shed += ds;
    shard.shed += ds;
    (dr, ds)
}

fn note_accepted(tenant: &mut TenantStats, shard: &mut ShardStats, observed: u64, prefetches: u64) {
    tenant.batches += 1;
    tenant.observed += observed;
    tenant.prefetches += prefetches;
    shard.batches += 1;
    shard.observed += observed;
    shard.prefetches += prefetches;
}

/// How processing one ingress batch ended.
enum BatchOutcome {
    /// Processed (or acked without learning); keep going.
    Done,
    /// A chaos wedge fired: stop consuming and park until fenced.
    Wedge,
}

/// The worker's whole mutable state, so the control handlers and the
/// batch processor can share it without threading a dozen parameters.
struct WorkerLoop<'a> {
    shard: u32,
    epoch: u64,
    cfg: &'a ServiceConfig,
    cancel: &'a CancelToken,
    slot: &'a ShardSlot,
    ingress: &'a Ingress,
    st: ShardInit,
    trace: Option<TraceBuffer>,
    metrics: Option<MetricsRegistry>,
    fault_plan: Option<ServiceFaultPlan>,
    since_checkpoint: u64,
}

impl WorkerLoop<'_> {
    /// Processes one batch end-to-end: chaos hooks, piggyback merge,
    /// batch kernel, journal-before-ack, periodic checkpoint.
    ///
    /// # Panics
    ///
    /// Panics when a chaos kill fault fires (caught by the spawn
    /// wrapper; that is the fault's delivery mechanism).
    fn process_one(&mut self, batch: IngressBatch) -> BatchOutcome {
        let IngressBatch {
            tenant,
            mut obs,
            rejected_cum,
            shed_cum,
            reply,
            enqueued_at,
            ..
        } = batch;
        // Queue wait is measured at dequeue, before any processing. With
        // metrics off both `metrics` and `enqueued_at` are `None` (the
        // same config bit switches the stamp), so the disabled hot path
        // costs exactly one untaken branch and zero clock reads.
        let queue_wait_nanos = if self.metrics.is_some() {
            enqueued_at.map(|t| t.elapsed().as_nanos() as u64)
        } else {
            None
        };
        let Some(state) = self.st.tenants.get_mut(&tenant) else {
            // Defensive: the ingress only admits registered tenants, so
            // this means the registries diverged. Surface it loudly.
            obs.clear();
            let _ = reply.send(BatchReply::rejected(
                ServiceError::UnknownTenant(tenant),
                obs,
            ));
            self.slot.health.note_processed(self.st.now);
            return BatchOutcome::Done;
        };
        if self.cancel.is_cancelled() {
            // Graceful wind-down: acknowledge without learning so
            // clients draining their pipelines don't hang.
            obs.clear();
            let _ = reply.send(BatchReply::cancelled(obs));
            self.slot.health.note_processed(self.st.now);
            return BatchOutcome::Done;
        }
        // Chaos hook: evaluated before the batch is journaled or
        // acknowledged, so a killed/wedged shard never acks the
        // triggering batch and the client can safely resubmit it.
        if let Some(plan) = &mut self.fault_plan {
            let seq_next = lock(&self.slot.journal).next_seq();
            match plan.on_batch(seq_next, &self.slot.fault_state) {
                Some(ServiceFault::KillShard) => {
                    panic!("chaos: kill-shard fault at batch seq {seq_next}");
                }
                Some(ServiceFault::WedgeShard) => return BatchOutcome::Wedge,
                Some(ServiceFault::SlowConsumer(extra)) => self.st.now += extra,
                None => {}
            }
            self.st.now += plan.burst_stall(tenant);
        }
        let (dr, _ds) =
            apply_piggyback(&mut state.stats, &mut self.st.stats, rejected_cum, shed_cum);
        if dr > 0 {
            if let Some(t) = &mut self.trace {
                t.record(
                    self.st.now,
                    TraceEvent::ShardReject {
                        shard: self.shard,
                        tenant,
                        count: dr.min(u32::MAX as u64) as u32,
                    },
                );
            }
        }
        if let Some(t) = &mut self.trace {
            t.record(
                self.st.now,
                TraceEvent::ShardBatch {
                    shard: self.shard,
                    tenant,
                    len: obs.len() as u32,
                },
            );
        }
        let mut prefetches = Vec::new();
        let observed = obs.len() as u64;
        let ingest_t0 = self.metrics.as_ref().map(|_| Instant::now());
        {
            let mut sink = IngestSink {
                now: &mut self.st.now,
                obs_cycles: self.cfg.obs_cycles,
                server: &mut self.st.server,
                prefetches: &mut prefetches,
            };
            state.table.process_misses(&obs, &mut sink);
        }
        note_accepted(
            &mut state.stats,
            &mut self.st.stats,
            observed,
            prefetches.len() as u64,
        );
        if let Some(m) = &mut self.metrics {
            let ingest_nanos = ingest_t0.map_or(0, |t| t.elapsed().as_nanos() as u64);
            m.note_batch(
                observed,
                prefetches.len() as u64,
                queue_wait_nanos,
                ingest_nanos,
            );
        }
        // Journal the acked batch *before* replying: once the client
        // sees the ack, the batch is recoverable (within the journal
        // window) — the exactly-once half of the recovery contract.
        lock(&self.slot.journal).push(tenant, rejected_cum, shed_cum, &obs);
        self.since_checkpoint += 1;
        // Hand the (cleared) batch buffer back so the client can refill
        // it: steady-state ingestion allocates nothing.
        obs.clear();
        let _ = reply.send(BatchReply::accepted(observed, prefetches, obs));
        if self.since_checkpoint >= self.cfg.supervision.checkpoint_every {
            take_checkpoint(self.slot, &self.st);
            self.since_checkpoint = 0;
        }
        self.slot.health.note_processed(self.st.now);
        BatchOutcome::Done
    }

    /// Drains `tenant`'s ingress queue until `barrier` batches have been
    /// taken, processing each — the ordering guarantee behind the
    /// control operations.
    fn drain_to(&mut self, tenant: u32, barrier: u64) -> BatchOutcome {
        while self.ingress.done(tenant) < barrier {
            let Some(batch) = self.ingress.pop_tenant(tenant) else {
                break;
            };
            if let BatchOutcome::Wedge = self.process_one(batch) {
                return BatchOutcome::Wedge;
            }
        }
        BatchOutcome::Done
    }

    /// Chaos-wedge park: stop consuming and stop heartbeating, but stay
    /// alive until the supervisor fences this epoch. Service shutdown
    /// also releases the park, so joining a wedged shard can't deadlock.
    fn park_until_fenced(&self) -> ShardExit {
        while !self.slot.is_abandoned(self.epoch) && !self.slot.is_closing() {
            std::thread::park_timeout(Duration::from_millis(1));
        }
        ShardExit::Abandoned
    }

    /// Handles one control message. `Some(exit)` ends the worker.
    fn handle_control(&mut self, msg: ShardMsg, rx: &Receiver<ShardMsg>) -> Option<ShardExit> {
        match msg {
            ShardMsg::Open {
                tenant,
                spec,
                reply,
            } => {
                let result = match self.st.tenants.entry(tenant) {
                    Entry::Occupied(_) => Err(ServiceError::TenantExists(tenant)),
                    Entry::Vacant(vacant) => match spec.validate() {
                        Ok(()) => {
                            vacant.insert(TenantState::new(tenant, TenantTable::new(&spec)));
                            // Queue registered before the ack, so an
                            // acked open can immediately submit.
                            self.ingress.register(tenant, spec.weight, spec.queue_depth);
                            Ok(())
                        }
                        Err(e) => Err(ServiceError::InvalidSpec(e)),
                    },
                };
                let _ = reply.send(result);
            }
            ShardMsg::Snapshot {
                tenant,
                barrier,
                reply,
            } => {
                if let BatchOutcome::Wedge = self.drain_to(tenant, barrier) {
                    return Some(self.park_until_fenced());
                }
                let result = self
                    .st
                    .tenants
                    .get(&tenant)
                    .map(|s| s.table.snapshot())
                    .ok_or(ServiceError::UnknownTenant(tenant));
                let _ = reply.send(result);
            }
            ShardMsg::Restore {
                tenant,
                barrier,
                snap,
                reply,
            } => {
                if let BatchOutcome::Wedge = self.drain_to(tenant, barrier) {
                    return Some(self.park_until_fenced());
                }
                let result = match self.st.tenants.get_mut(&tenant) {
                    None => Err(ServiceError::UnknownTenant(tenant)),
                    Some(state) => match state.table.restored(&snap) {
                        Ok(table) => {
                            state.table = table;
                            Ok(())
                        }
                        Err(e) => Err(ServiceError::Snapshot(e)),
                    },
                };
                let restored = result.is_ok();
                let _ = reply.send(result);
                if restored {
                    // A warm start is control-plane state the journal
                    // never sees; checkpoint immediately so a crash can
                    // never silently roll the tenant back past it.
                    take_checkpoint(self.slot, &self.st);
                    self.since_checkpoint = 0;
                }
            }
            ShardMsg::Fingerprint {
                tenant,
                barrier,
                reply,
            } => {
                if let BatchOutcome::Wedge = self.drain_to(tenant, barrier) {
                    return Some(self.park_until_fenced());
                }
                let result = self
                    .st
                    .tenants
                    .get(&tenant)
                    .map(|s| s.table.fingerprint())
                    .ok_or(ServiceError::UnknownTenant(tenant));
                let _ = reply.send(result);
            }
            ShardMsg::TenantStats {
                tenant,
                barrier,
                reply,
            } => {
                if let BatchOutcome::Wedge = self.drain_to(tenant, barrier) {
                    return Some(self.park_until_fenced());
                }
                let result = self
                    .st
                    .tenants
                    .get(&tenant)
                    .map(|s| {
                        let mut stats = s.stats;
                        stats.live_rows = s.table.occupancy() as u64;
                        stats.table_bytes = s.table.size_bytes();
                        stats
                    })
                    .ok_or(ServiceError::UnknownTenant(tenant));
                let _ = reply.send(result);
            }
            ShardMsg::ShardStats { reply } => {
                let _ = reply.send(finalize(&self.st));
            }
            ShardMsg::Metrics { reply } => {
                let _ = reply.send(self.snapshot_metrics());
            }
            ShardMsg::Drain { barriers, reply } => {
                for (tenant, barrier) in barriers {
                    if let BatchOutcome::Wedge = self.drain_to(tenant, barrier) {
                        return Some(self.park_until_fenced());
                    }
                }
                let _ = reply.send(());
            }
            ShardMsg::Pause(gate) => {
                // Blocks until the PauseGuard is dropped (recv returns
                // Err on hangup, which is the expected resume signal).
                // The paused flag tells the supervisor this stall is
                // deliberate, not a wedge.
                self.slot.health.paused.store(true, Ordering::SeqCst);
                let _ = gate.recv();
                self.slot.health.paused.store(false, Ordering::SeqCst);
            }
            ShardMsg::Shutdown { barriers } => {
                // Shutdown/drain contract: every batch enqueued before
                // shutdown began (the barriers) is processed; everything
                // behind them is rejected with a typed error instead of
                // being silently dropped. Marking the slot closed routes
                // later submissions to TrySubmit::Closed, and tells the
                // wedge detector this worker is gone on purpose.
                for (tenant, barrier) in barriers {
                    if let BatchOutcome::Wedge = self.drain_to(tenant, barrier) {
                        return Some(self.park_until_fenced());
                    }
                }
                // Close the ingress ourselves so the late batches get
                // typed rejections; the slot's take_down below then
                // finds it already closed and drops nothing.
                let late = self.ingress.close();
                self.slot.take_down(ShardState::Closed);
                for b in late {
                    let mut obs = b.obs;
                    obs.clear();
                    let _ = b
                        .reply
                        .send(BatchReply::rejected(ServiceError::ShuttingDown, obs));
                }
                while let Ok(late_msg) = rx.try_recv() {
                    reject_late(late_msg, self);
                }
                return Some(ShardExit::Finished(Box::new(ShardReport {
                    stats: finalize(&self.st),
                    trace: self.trace.take(),
                    epoch: self.epoch,
                    recoveries: Vec::new(),
                })));
            }
        }
        self.slot.health.note_processed(self.st.now);
        None
    }

    /// The registry's public snapshot, stamped on both clock domains.
    /// `None` when metrics are disabled.
    fn snapshot_metrics(&self) -> Option<ShardMetrics> {
        self.metrics
            .as_ref()
            .map(|m| m.snapshot(self.shard, self.epoch, &finalize(&self.st), self.st.now))
    }
}

/// The worker entry point the spawn wrapper calls inside `catch_unwind`.
/// Runs until [`ShardMsg::Shutdown`], queue disconnection, or the
/// supervisor fences this epoch.
pub(crate) fn run_worker(
    ctx: &WorkerCtx,
    rx: &Receiver<ShardMsg>,
    init: Option<ShardInit>,
) -> ShardExit {
    let WorkerCtx {
        shard,
        epoch,
        cfg,
        cancel,
        slot,
        ingress,
    } = ctx;
    let (shard, epoch) = (*shard, *epoch);
    let st = init.unwrap_or_else(|| ShardInit {
        tenants: FxHashMap::default(),
        stats: ShardStats {
            shard,
            ..ShardStats::default()
        },
        now: 0,
        server: Server::new(),
    });
    // Counters resume from the rebuilt totals so `metrics == stats`
    // holds across restarts; histograms restart with the epoch.
    let metrics = cfg.metrics.then(|| MetricsRegistry::resumed(&st.stats));
    let mut w = WorkerLoop {
        shard,
        epoch,
        cfg,
        cancel,
        slot,
        ingress,
        st,
        trace: cfg.trace.map(TraceBuffer::new),
        metrics,
        fault_plan: cfg.fault.map(|fc| ServiceFaultPlan::new(fc, shard, epoch)),
        since_checkpoint: 0,
    };
    let poll = Duration::from_millis(cfg.supervision.tick_ms.max(1));

    loop {
        if slot.is_abandoned(epoch) {
            return ShardExit::Abandoned;
        }
        // Control messages first: they are rare, and a barrier-carrying
        // one drains exactly the data it must see anyway.
        match rx.try_recv() {
            Ok(msg) => {
                if let Some(exit) = w.handle_control(msg, rx) {
                    return exit;
                }
                continue;
            }
            Err(TryRecvError::Disconnected) => break,
            Err(TryRecvError::Empty) => {}
        }
        if let Some(batch) = w.ingress.next_batch() {
            match w.process_one(batch) {
                BatchOutcome::Done => continue,
                BatchOutcome::Wedge => return w.park_until_fenced(),
            }
        }
        // Nothing to do: sleep until data or a kick arrives, bounded by
        // the supervision tick so fence checks keep their cadence.
        w.ingress.wait_work(poll);
    }

    ShardExit::Finished(Box::new(ShardReport {
        stats: finalize(&w.st),
        trace: w.trace.take(),
        epoch,
        recoveries: Vec::new(),
    }))
}

/// Rejects one control message that arrived after drain began, with a
/// typed error instead of a dropped reply channel.
fn reject_late(msg: ShardMsg, w: &WorkerLoop<'_>) {
    let st = &w.st;
    match msg {
        ShardMsg::Open { reply, .. } => {
            let _ = reply.send(Err(ServiceError::ShuttingDown));
        }
        ShardMsg::Snapshot { reply, .. } => {
            let _ = reply.send(Err(ServiceError::ShuttingDown));
        }
        ShardMsg::Restore { reply, .. } => {
            let _ = reply.send(Err(ServiceError::ShuttingDown));
        }
        ShardMsg::Fingerprint { reply, .. } => {
            let _ = reply.send(Err(ServiceError::ShuttingDown));
        }
        ShardMsg::TenantStats { reply, .. } => {
            let _ = reply.send(Err(ServiceError::ShuttingDown));
        }
        // Stats, metrics and barriers still answer truthfully during
        // drain.
        ShardMsg::ShardStats { reply } => {
            let _ = reply.send(finalize(st));
        }
        ShardMsg::Metrics { reply } => {
            let _ = reply.send(w.snapshot_metrics());
        }
        ShardMsg::Drain { reply, .. } => {
            let _ = reply.send(());
        }
        ShardMsg::Pause(_) | ShardMsg::Shutdown { .. } => {}
    }
}

/// Captures the shard's complete state into its slot's checkpoint cell.
fn take_checkpoint(slot: &ShardSlot, st: &ShardInit) {
    let mut tenants: Vec<TenantCheckpoint> = st
        .tenants
        .values()
        .map(|s| TenantCheckpoint {
            tenant: s.stats.tenant,
            snap: s.table.snapshot(),
            stats: s.stats,
        })
        .collect();
    // Deterministic order, so checkpoint contents don't depend on hash
    // map iteration.
    tenants.sort_by_key(|t| t.tenant);
    let cp = ShardCheckpoint {
        seq: lock(&slot.journal).last_acked(),
        now: st.now,
        server: st.server.state(),
        stats: st.stats,
        tenants,
    };
    *lock(&slot.checkpoint) = Some(cp);
}

/// Fills in the derived fields of the running counters.
fn finalize(st: &ShardInit) -> ShardStats {
    let mut out = st.stats;
    out.tenants = st.tenants.len() as u32;
    out.busy_cycles = st.server.busy_cycles();
    out.elapsed_cycles = st.now.max(st.server.next_free());
    out
}
