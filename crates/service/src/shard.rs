//! The shard worker: one thread owning the tables of every tenant
//! hashed to it.
//!
//! A shard processes its ingestion queue strictly in FIFO order. Because
//! a tenant's whole observation stream flows through exactly one queue
//! and each observation touches only that tenant's table, the table a
//! tenant ends up with depends solely on its own stream — never on how
//! many shards the service runs or which other tenants share the shard.
//! That is the service's determinism argument, and the fingerprint
//! checks in the tests and the `serve` benchmark hold it to account.
//!
//! Since the supervision layer (see [`crate::supervisor`]) the worker is
//! also *recoverable*: every accepted batch is journaled before it is
//! acknowledged, the whole shard state (tables, counters, virtual clock)
//! is checkpointed every `checkpoint_every` accepted batches, and a
//! replacement worker can be rebuilt from checkpoint + journal replay
//! through the same `process_misses` batch kernel — bit-identical to a
//! worker that never died whenever the journal window covers the gap.

use std::collections::hash_map::Entry;
use std::sync::atomic::Ordering;
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::time::Duration;

use ulmt_core::algorithm::{StepSink, UlmtAlgorithm};
use ulmt_core::table::{Base, Chain, Replicated, SnapshotError, SnapshotKind, TableSnapshot};
use ulmt_simcore::{
    CancelToken, Cycle, FxHashMap, LineAddr, Server, ServiceFault, ServiceFaultPlan, TraceBuffer,
    TraceEvent,
};

use crate::config::{ServiceConfig, TableKind, TenantSpec};
use crate::journal::{JournalCoverage, ObservationJournal};
use crate::service::{BatchReply, ServiceError, ShardStats, TenantStats};
use crate::supervisor::{
    lock, RecoveryReport, ShardCheckpoint, ShardSlot, ShardState, TenantCheckpoint,
};

/// A tenant's concrete table. The [`UlmtAlgorithm`] trait is not
/// object-safe across threads (tables are plain data, the trait is not
/// `Send`-bounded), so the shard holds this closed enum instead.
enum TenantTable {
    Base(Base),
    Chain(Chain),
    Repl(Replicated),
}

impl TenantTable {
    fn new(spec: &TenantSpec) -> Self {
        match spec.kind {
            TableKind::Base => TenantTable::Base(Base::new(spec.params)),
            TableKind::Chain => TenantTable::Chain(Chain::new(spec.params)),
            TableKind::Repl => TenantTable::Repl(Replicated::new(spec.params)),
        }
    }

    fn kind(&self) -> SnapshotKind {
        match self {
            TenantTable::Base(_) => SnapshotKind::Base,
            TenantTable::Chain(_) => SnapshotKind::Chain,
            TenantTable::Repl(_) => SnapshotKind::Repl,
        }
    }

    /// Restores `snap` into a table of the *same* algorithm as `self`
    /// — the tenant's registered kind, not whatever the snapshot says.
    fn restored(&self, snap: &TableSnapshot) -> Result<Self, SnapshotError> {
        snap.expect_kind(self.kind())?;
        match self {
            TenantTable::Base(_) => Base::from_snapshot(snap).map(TenantTable::Base),
            TenantTable::Chain(_) => Chain::from_snapshot(snap).map(TenantTable::Chain),
            TenantTable::Repl(_) => Replicated::from_snapshot(snap).map(TenantTable::Repl),
        }
    }

    /// Runs the whole batch through the algorithm's zero-alloc batch
    /// kernel ([`UlmtAlgorithm::process_misses`]); per-step effects are
    /// delivered through `sink` instead of allocated `StepResult`s.
    fn process_misses(&mut self, batch: &[LineAddr], sink: &mut dyn StepSink) {
        match self {
            TenantTable::Base(t) => t.process_misses(batch, sink),
            TenantTable::Chain(t) => t.process_misses(batch, sink),
            TenantTable::Repl(t) => t.process_misses(batch, sink),
        }
    }

    fn snapshot(&self) -> TableSnapshot {
        match self {
            TenantTable::Base(t) => t.snapshot(),
            TenantTable::Chain(t) => t.snapshot(),
            TenantTable::Repl(t) => t.snapshot(),
        }
    }

    fn fingerprint(&self) -> u64 {
        match self {
            TenantTable::Base(t) => t.table_fingerprint(),
            TenantTable::Chain(t) => t.table_fingerprint(),
            TenantTable::Repl(t) => t.table_fingerprint(),
        }
    }

    fn occupancy(&self) -> usize {
        match self {
            TenantTable::Base(t) => t.occupancy(),
            TenantTable::Chain(t) => t.occupancy(),
            TenantTable::Repl(t) => t.occupancy(),
        }
    }

    fn size_bytes(&self) -> u64 {
        match self {
            TenantTable::Base(t) => t.table_size_bytes(),
            TenantTable::Chain(t) => t.table_size_bytes(),
            TenantTable::Repl(t) => t.table_size_bytes(),
        }
    }
}

/// Receives the per-step effects of one batch straight from the table's
/// batch kernel. The cadence is exactly the old per-miss loop: advance
/// shard time by `obs_cycles` when a step begins, collect each prefetch
/// as it is emitted, and occupy the shard's server for the step's
/// instruction cost when it ends — 1 cycle/insn, like the memory
/// processor, giving the utilization figure. Journal replay during
/// recovery drives the *same* sink, which is why a clean recovery also
/// reproduces the virtual clock and utilization bit-identically.
struct IngestSink<'a> {
    now: &'a mut Cycle,
    obs_cycles: Cycle,
    server: &'a mut Server,
    prefetches: &'a mut Vec<LineAddr>,
}

impl StepSink for IngestSink<'_> {
    fn begin(&mut self, _miss: LineAddr) {
        *self.now += self.obs_cycles;
    }

    fn prefetch(&mut self, addr: LineAddr) {
        self.prefetches.push(addr);
    }

    fn end(&mut self, prefetch_insns: u64, learn_insns: u64) {
        self.server.serve(*self.now, prefetch_insns + learn_insns);
    }
}

/// One tenant's state on its shard.
struct TenantState {
    table: TenantTable,
    stats: TenantStats,
}

impl TenantState {
    fn new(tenant: u32, table: TenantTable) -> Self {
        TenantState {
            table,
            stats: TenantStats {
                tenant,
                ..TenantStats::default()
            },
        }
    }
}

/// Messages a shard worker processes, strictly in FIFO order.
pub(crate) enum ShardMsg {
    /// Register a tenant (fails if it already exists on the shard).
    Open {
        tenant: u32,
        spec: TenantSpec,
        reply: Sender<Result<(), ServiceError>>,
    },
    /// A batch of L2-miss observations for one tenant. This is the only
    /// data-plane message; everything else is control-plane.
    Batch {
        tenant: u32,
        obs: Vec<LineAddr>,
        /// Number of batch attempts this tenant's session saw rejected
        /// ([`TrySubmit::Full`](crate::TrySubmit::Full)) since its
        /// previous *accepted* batch. Counted here — on the shard, in
        /// stream order — so the rejection counters are exact even
        /// though rejected batches never reach the shard themselves.
        rejected_since_last: u32,
        /// Number of batch attempts the session shed (acknowledged
        /// without learning because the shard was down) since its
        /// previous accepted batch. Same piggyback scheme as
        /// `rejected_since_last`.
        shed_since_last: u32,
        reply: Sender<BatchReply>,
    },
    /// Capture a tenant's learned table.
    Snapshot {
        tenant: u32,
        reply: Sender<Result<TableSnapshot, ServiceError>>,
    },
    /// Replace a tenant's table with a previously captured snapshot
    /// (warm start).
    Restore {
        tenant: u32,
        snap: Box<TableSnapshot>,
        reply: Sender<Result<(), ServiceError>>,
    },
    /// Fingerprint of a tenant's learned table.
    Fingerprint {
        tenant: u32,
        reply: Sender<Result<u64, ServiceError>>,
    },
    /// A tenant's counters.
    TenantStats {
        tenant: u32,
        reply: Sender<Result<TenantStats, ServiceError>>,
    },
    /// The shard's aggregate counters.
    ShardStats { reply: Sender<ShardStats> },
    /// Barrier: replying proves every earlier message was processed.
    Drain { reply: Sender<()> },
    /// Block until the held sender is dropped. Used by
    /// [`PrefetchService::pause_shard`](crate::PrefetchService::pause_shard)
    /// to fill the ingestion queue deterministically in tests.
    Pause(Receiver<()>),
    /// Process everything queued before this message, reject everything
    /// queued after it with a typed error, then exit.
    Shutdown,
}

/// What a shard worker hands back when it exits.
#[derive(Debug)]
pub struct ShardReport {
    /// Final aggregate counters.
    pub stats: ShardStats,
    /// The shard's trace buffer, if tracing was enabled. A restarted
    /// shard's buffer starts empty at the restart (the buffer dies with
    /// the worker thread; only table state and counters are recovered).
    pub trace: Option<TraceBuffer>,
    /// Worker epoch that produced this report (0 = never restarted).
    pub epoch: u64,
    /// Every recovery this shard went through, oldest first. Attached by
    /// the supervisor at shutdown.
    pub recoveries: Vec<RecoveryReport>,
}

/// How a worker epoch ended.
pub(crate) enum ShardExit {
    /// Graceful shutdown after draining the queue.
    Finished(Box<ShardReport>),
    /// The supervisor fenced this epoch (wedge recovery); a replacement
    /// owns the shard now.
    Abandoned,
    /// The worker panicked; the panic was caught by the spawn wrapper.
    Panicked,
}

/// Everything a (re)spawned worker needs besides its receiving queue.
pub(crate) struct WorkerCtx {
    pub shard: u32,
    pub epoch: u64,
    pub cfg: ServiceConfig,
    pub cancel: CancelToken,
    pub slot: Arc<ShardSlot>,
}

/// Prebuilt shard state a replacement worker resumes from; `None` means
/// a fresh, empty shard (epoch 0).
pub(crate) struct ShardInit {
    tenants: FxHashMap<u32, TenantState>,
    stats: ShardStats,
    now: Cycle,
    server: Server,
}

impl ShardInit {
    /// The rebuilt virtual clock — the watermark a replacement worker's
    /// wedge detector starts from.
    pub fn now(&self) -> Cycle {
        self.now
    }
}

/// What [`rebuild_shard`] could reconstruct, for the recovery report.
#[derive(Debug, Clone, Copy)]
pub(crate) struct RebuildSummary {
    pub coverage: JournalCoverage,
    pub checkpoint_seq: u64,
    pub resumed_seq: u64,
    pub checkpoint_bytes: u64,
    pub tenants_restored: u32,
}

/// Rebuilds a shard's in-memory state from its last checkpoint plus a
/// replay of the journaled batches past it, through the same
/// [`IngestSink`] cadence as live ingestion. Clean recovery (journal
/// covers the whole gap) therefore reproduces tables, per-tenant stats,
/// the virtual clock and the utilization server bit-identically.
pub(crate) fn rebuild_shard(
    shard: u32,
    cfg: &ServiceConfig,
    specs: &[(u32, TenantSpec)],
    checkpoint: Option<&ShardCheckpoint>,
    journal: &ObservationJournal,
) -> Result<(ShardInit, RebuildSummary), SnapshotError> {
    let mut tenants: FxHashMap<u32, TenantState> = FxHashMap::default();
    for &(tenant, ref spec) in specs {
        tenants
            .entry(tenant)
            .or_insert_with(|| TenantState::new(tenant, TenantTable::new(spec)));
    }
    let mut stats = ShardStats {
        shard,
        ..ShardStats::default()
    };
    let mut now: Cycle = 0;
    let mut server = Server::new();
    let mut checkpoint_seq = 0;
    let mut checkpoint_bytes = 0;
    if let Some(cp) = checkpoint {
        checkpoint_seq = cp.seq;
        stats = cp.stats;
        now = cp.now;
        server = Server::from_state(cp.server);
        for tc in &cp.tenants {
            if let Some(state) = tenants.get_mut(&tc.tenant) {
                state.table = state.table.restored(&tc.snap)?;
                state.stats = tc.stats;
            }
            checkpoint_bytes += tc.snap.approx_bytes();
        }
    }

    let (entries, coverage) = journal.replay_from(checkpoint_seq);
    let mut prefetches: Vec<LineAddr> = Vec::new();
    for entry in &entries {
        // A journaled batch was accepted for a registered tenant; a
        // missing entry here would mean the spec registry lost a tenant
        // the journal still references — skip rather than poison
        // recovery, the session will surface UnknownTenant loudly.
        let Some(state) = tenants.get_mut(&entry.tenant) else {
            continue;
        };
        apply_piggyback(
            &mut state.stats,
            &mut stats,
            entry.rejected_since_last,
            entry.shed_since_last,
        );
        prefetches.clear();
        let observed = entry.obs.len() as u64;
        {
            let mut sink = IngestSink {
                now: &mut now,
                obs_cycles: cfg.obs_cycles,
                server: &mut server,
                prefetches: &mut prefetches,
            };
            state.table.process_misses(&entry.obs, &mut sink);
        }
        note_accepted(
            &mut state.stats,
            &mut stats,
            observed,
            prefetches.len() as u64,
        );
    }

    let summary = RebuildSummary {
        coverage,
        checkpoint_seq,
        resumed_seq: journal.last_acked(),
        checkpoint_bytes,
        tenants_restored: tenants.len() as u32,
    };
    Ok((
        ShardInit {
            tenants,
            stats,
            now,
            server,
        },
        summary,
    ))
}

fn apply_piggyback(tenant: &mut TenantStats, shard: &mut ShardStats, rejected: u32, shed: u32) {
    tenant.rejected += rejected as u64;
    shard.rejected += rejected as u64;
    tenant.shed += shed as u64;
    shard.shed += shed as u64;
}

fn note_accepted(tenant: &mut TenantStats, shard: &mut ShardStats, observed: u64, prefetches: u64) {
    tenant.batches += 1;
    tenant.observed += observed;
    tenant.prefetches += prefetches;
    shard.batches += 1;
    shard.observed += observed;
    shard.prefetches += prefetches;
}

/// The worker entry point the spawn wrapper calls inside `catch_unwind`.
/// Runs until [`ShardMsg::Shutdown`], queue disconnection, or the
/// supervisor fences this epoch.
pub(crate) fn run_worker(
    ctx: &WorkerCtx,
    rx: &Receiver<ShardMsg>,
    init: Option<ShardInit>,
) -> ShardExit {
    let WorkerCtx {
        shard,
        epoch,
        cfg,
        cancel,
        slot,
    } = ctx;
    let (shard, epoch) = (*shard, *epoch);
    let mut st = init.unwrap_or_else(|| ShardInit {
        tenants: FxHashMap::default(),
        stats: ShardStats {
            shard,
            ..ShardStats::default()
        },
        now: 0,
        server: Server::new(),
    });
    let mut trace = cfg.trace.map(TraceBuffer::new);
    let mut fault_plan = cfg.fault.map(|fc| ServiceFaultPlan::new(fc, shard, epoch));
    let mut since_checkpoint: u64 = 0;
    let poll = Duration::from_millis(cfg.supervision.tick_ms.max(1));

    loop {
        if slot.is_abandoned(epoch) {
            return ShardExit::Abandoned;
        }
        let msg = match rx.recv_timeout(poll) {
            Ok(msg) => msg,
            Err(RecvTimeoutError::Timeout) => continue,
            Err(RecvTimeoutError::Disconnected) => break,
        };
        match msg {
            ShardMsg::Open {
                tenant,
                spec,
                reply,
            } => {
                let result = match st.tenants.entry(tenant) {
                    Entry::Occupied(_) => Err(ServiceError::TenantExists(tenant)),
                    Entry::Vacant(vacant) => match spec.validate() {
                        Ok(()) => {
                            vacant.insert(TenantState::new(tenant, TenantTable::new(&spec)));
                            Ok(())
                        }
                        Err(e) => Err(ServiceError::InvalidSpec(e)),
                    },
                };
                let _ = reply.send(result);
            }
            ShardMsg::Batch {
                tenant,
                mut obs,
                rejected_since_last,
                shed_since_last,
                reply,
            } => {
                let Some(state) = st.tenants.get_mut(&tenant) else {
                    obs.clear();
                    let _ = reply.send(BatchReply::rejected(
                        ServiceError::UnknownTenant(tenant),
                        obs,
                    ));
                    slot.health.note_processed(st.now);
                    continue;
                };
                if cancel.is_cancelled() {
                    // Graceful wind-down: acknowledge without learning so
                    // clients draining their pipelines don't hang.
                    obs.clear();
                    let _ = reply.send(BatchReply::cancelled(obs));
                    slot.health.note_processed(st.now);
                    continue;
                }
                // Chaos hook: evaluated before the batch is journaled or
                // acknowledged, so a killed/wedged shard never acks the
                // triggering batch and the client can safely resubmit it.
                if let Some(plan) = &mut fault_plan {
                    let seq_next = lock(&slot.journal).next_seq();
                    match plan.on_batch(seq_next, &slot.fault_state) {
                        Some(ServiceFault::KillShard) => {
                            panic!("chaos: kill-shard fault at batch seq {seq_next}");
                        }
                        Some(ServiceFault::WedgeShard) => {
                            // Stop consuming and stop heartbeating, but
                            // stay alive until the supervisor fences this
                            // epoch — the queued messages (including this
                            // batch) die with the fenced worker, and their
                            // reply channels error out at the clients.
                            // Service shutdown also releases the park, so
                            // joining a wedged shard can't deadlock.
                            while !slot.is_abandoned(epoch) && !slot.is_closing() {
                                std::thread::park_timeout(Duration::from_millis(1));
                            }
                            return ShardExit::Abandoned;
                        }
                        Some(ServiceFault::SlowConsumer(extra)) => st.now += extra,
                        None => {}
                    }
                }
                if rejected_since_last > 0 && trace.is_some() {
                    if let Some(t) = &mut trace {
                        t.record(
                            st.now,
                            TraceEvent::ShardReject {
                                shard,
                                tenant,
                                count: rejected_since_last,
                            },
                        );
                    }
                }
                apply_piggyback(
                    &mut state.stats,
                    &mut st.stats,
                    rejected_since_last,
                    shed_since_last,
                );
                if let Some(t) = &mut trace {
                    t.record(
                        st.now,
                        TraceEvent::ShardBatch {
                            shard,
                            tenant,
                            len: obs.len() as u32,
                        },
                    );
                }
                let mut prefetches = Vec::new();
                let observed = obs.len() as u64;
                {
                    let mut sink = IngestSink {
                        now: &mut st.now,
                        obs_cycles: cfg.obs_cycles,
                        server: &mut st.server,
                        prefetches: &mut prefetches,
                    };
                    state.table.process_misses(&obs, &mut sink);
                }
                note_accepted(
                    &mut state.stats,
                    &mut st.stats,
                    observed,
                    prefetches.len() as u64,
                );
                // Journal the acked batch *before* replying: once the
                // client sees the ack, the batch is recoverable (within
                // the journal window) — the exactly-once half of the
                // recovery contract.
                lock(&slot.journal).push(tenant, rejected_since_last, shed_since_last, &obs);
                since_checkpoint += 1;
                // Hand the (cleared) batch buffer back so the client can
                // refill it: steady-state ingestion allocates nothing.
                obs.clear();
                let _ = reply.send(BatchReply::accepted(observed, prefetches, obs));
                if since_checkpoint >= cfg.supervision.checkpoint_every {
                    take_checkpoint(slot, &st);
                    since_checkpoint = 0;
                }
            }
            ShardMsg::Snapshot { tenant, reply } => {
                let result = st
                    .tenants
                    .get(&tenant)
                    .map(|s| s.table.snapshot())
                    .ok_or(ServiceError::UnknownTenant(tenant));
                let _ = reply.send(result);
            }
            ShardMsg::Restore {
                tenant,
                snap,
                reply,
            } => {
                let result = match st.tenants.get_mut(&tenant) {
                    None => Err(ServiceError::UnknownTenant(tenant)),
                    Some(state) => match state.table.restored(&snap) {
                        Ok(table) => {
                            state.table = table;
                            Ok(())
                        }
                        Err(e) => Err(ServiceError::Snapshot(e)),
                    },
                };
                let restored = result.is_ok();
                let _ = reply.send(result);
                if restored {
                    // A warm start is control-plane state the journal
                    // never sees; checkpoint immediately so a crash can
                    // never silently roll the tenant back past it.
                    take_checkpoint(slot, &st);
                    since_checkpoint = 0;
                }
            }
            ShardMsg::Fingerprint { tenant, reply } => {
                let result = st
                    .tenants
                    .get(&tenant)
                    .map(|s| s.table.fingerprint())
                    .ok_or(ServiceError::UnknownTenant(tenant));
                let _ = reply.send(result);
            }
            ShardMsg::TenantStats { tenant, reply } => {
                let result = st
                    .tenants
                    .get(&tenant)
                    .map(|s| {
                        let mut stats = s.stats;
                        stats.live_rows = s.table.occupancy() as u64;
                        stats.table_bytes = s.table.size_bytes();
                        stats
                    })
                    .ok_or(ServiceError::UnknownTenant(tenant));
                let _ = reply.send(result);
            }
            ShardMsg::ShardStats { reply } => {
                let _ = reply.send(finalize(&st));
            }
            ShardMsg::Drain { reply } => {
                let _ = reply.send(());
            }
            ShardMsg::Pause(gate) => {
                // Blocks until the PauseGuard is dropped (recv returns
                // Err on hangup, which is the expected resume signal).
                // The paused flag tells the supervisor this stall is
                // deliberate, not a wedge.
                slot.health.paused.store(true, Ordering::SeqCst);
                let _ = gate.recv();
                slot.health.paused.store(false, Ordering::SeqCst);
            }
            ShardMsg::Shutdown => {
                // Shutdown/drain race fix: everything queued *behind* the
                // shutdown marker is rejected with a typed error instead
                // of being silently dropped with the receiver. Marking
                // the slot closed first routes later submissions to
                // TrySubmit::Closed, and tells the wedge detector this
                // worker is gone on purpose.
                slot.take_down(ShardState::Closed);
                while let Ok(late) = rx.try_recv() {
                    reject_late(late, &st);
                }
                return ShardExit::Finished(Box::new(ShardReport {
                    stats: finalize(&st),
                    trace,
                    epoch,
                    recoveries: Vec::new(),
                }));
            }
        }
        slot.health.note_processed(st.now);
    }

    ShardExit::Finished(Box::new(ShardReport {
        stats: finalize(&st),
        trace,
        epoch,
        recoveries: Vec::new(),
    }))
}

/// Rejects one message that arrived after drain began, with a typed
/// error instead of a dropped reply channel.
fn reject_late(msg: ShardMsg, st: &ShardInit) {
    match msg {
        ShardMsg::Batch { mut obs, reply, .. } => {
            obs.clear();
            let _ = reply.send(BatchReply::rejected(ServiceError::ShuttingDown, obs));
        }
        ShardMsg::Open { reply, .. } => {
            let _ = reply.send(Err(ServiceError::ShuttingDown));
        }
        ShardMsg::Snapshot { reply, .. } => {
            let _ = reply.send(Err(ServiceError::ShuttingDown));
        }
        ShardMsg::Restore { reply, .. } => {
            let _ = reply.send(Err(ServiceError::ShuttingDown));
        }
        ShardMsg::Fingerprint { reply, .. } => {
            let _ = reply.send(Err(ServiceError::ShuttingDown));
        }
        ShardMsg::TenantStats { reply, .. } => {
            let _ = reply.send(Err(ServiceError::ShuttingDown));
        }
        // Stats and barriers still answer truthfully during drain.
        ShardMsg::ShardStats { reply } => {
            let _ = reply.send(finalize(st));
        }
        ShardMsg::Drain { reply } => {
            let _ = reply.send(());
        }
        ShardMsg::Pause(_) | ShardMsg::Shutdown => {}
    }
}

/// Captures the shard's complete state into its slot's checkpoint cell.
fn take_checkpoint(slot: &ShardSlot, st: &ShardInit) {
    let mut tenants: Vec<TenantCheckpoint> = st
        .tenants
        .values()
        .map(|s| TenantCheckpoint {
            tenant: s.stats.tenant,
            snap: s.table.snapshot(),
            stats: s.stats,
        })
        .collect();
    // Deterministic order, so checkpoint contents don't depend on hash
    // map iteration.
    tenants.sort_by_key(|t| t.tenant);
    let cp = ShardCheckpoint {
        seq: lock(&slot.journal).last_acked(),
        now: st.now,
        server: st.server.state(),
        stats: st.stats,
        tenants,
    };
    *lock(&slot.checkpoint) = Some(cp);
}

/// Fills in the derived fields of the running counters.
fn finalize(st: &ShardInit) -> ShardStats {
    let mut out = st.stats;
    out.tenants = st.tenants.len() as u32;
    out.busy_cycles = st.server.busy_cycles();
    out.elapsed_cycles = st.now.max(st.server.next_free());
    out
}
