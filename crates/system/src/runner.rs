//! Parallel experiment harness.
//!
//! Every figure and table of the paper is produced by sweeping
//! applications × schemes through independent [`Experiment`] runs — an
//! embarrassingly parallel workload. This module fans such runs across a
//! worker pool of scoped OS threads (`std` only, no external crates)
//! while keeping the one property the experiment pipeline depends on:
//! **results come back in input order, bit-identical to a serial run**.
//! Each simulation is fully deterministic and shares no mutable state, so
//! parallel execution cannot perturb the measurements — only the wall
//! clock.
//!
//! Workers default to [`std::thread::available_parallelism`] and can be
//! pinned with the `ULMT_WORKERS` environment variable (e.g.
//! `ULMT_WORKERS=1` forces serial execution for debugging).
//!
//! # Example
//!
//! ```
//! use ulmt_system::runner::{run_experiments, parallel_map};
//! use ulmt_system::{Experiment, PrefetchScheme, SystemConfig};
//! use ulmt_workloads::{App, WorkloadSpec};
//!
//! let experiments: Vec<Experiment> = [PrefetchScheme::NoPref, PrefetchScheme::Repl]
//!     .into_iter()
//!     .map(|s| {
//!         let spec = WorkloadSpec::new(App::Tree).scale(1.0 / 16.0).iterations(2);
//!         Experiment::new(SystemConfig::small(), spec).scheme(s)
//!     })
//!     .collect();
//! let sweep = run_experiments(experiments);
//! assert_eq!(sweep.results.len(), 2);
//! assert_eq!(sweep.results[0].scheme, "NoPref"); // input order preserved
//! assert!(sweep.cycles_per_wall_sec() > 0.0);
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use crate::experiment::Experiment;
use crate::result::RunResult;

/// Number of workers the harness uses by default: `ULMT_WORKERS` if set
/// to a positive integer, otherwise the machine's available parallelism.
pub fn worker_count() -> usize {
    if let Ok(v) = std::env::var("ULMT_WORKERS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Applies `f` to every item on a pool of `workers` scoped threads and
/// returns the results **in input order**.
///
/// Work is distributed dynamically (an atomic cursor over the job list),
/// so a few slow jobs — e.g. paper-scale FT next to small Tree runs — do
/// not idle the rest of the pool. With `workers == 1` (or a single item)
/// no threads are spawned and the items are mapped inline.
///
/// # Panics
///
/// Panics if `f` panics on any item (the panic is propagated once all
/// workers have stopped).
pub fn parallel_map_with<T, R, F>(items: Vec<T>, workers: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = workers.clamp(1, n);
    if workers == 1 {
        return items.into_iter().map(f).collect();
    }
    // Jobs are claimed exactly once via the atomic cursor; the mutexes
    // only hand values across the thread boundary and are never contended.
    let jobs: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = jobs[i]
                    .lock()
                    .expect("job mutex poisoned")
                    .take()
                    .expect("each job is claimed exactly once");
                let result = f(item);
                *slots[i].lock().expect("result mutex poisoned") = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|s| {
            s.into_inner()
                .expect("result mutex poisoned")
                .expect("every claimed job stores a result")
        })
        .collect()
}

/// [`parallel_map_with`] using the default [`worker_count`].
pub fn parallel_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    parallel_map_with(items, worker_count(), f)
}

/// The outcome of one sweep: per-run results (in input order) plus the
/// sweep's wall-clock throughput.
#[derive(Debug, Clone)]
pub struct SweepResult {
    /// One [`RunResult`] per input experiment, in input order.
    pub results: Vec<RunResult>,
    /// Wall-clock time of the whole sweep in nanoseconds.
    pub wall_nanos: u64,
    /// Workers the sweep ran with.
    pub workers: usize,
}

impl SweepResult {
    /// Total simulated cycles across all runs.
    pub fn total_cycles(&self) -> u64 {
        self.results.iter().map(|r| r.exec_cycles).sum()
    }

    /// Sweep throughput: simulated cycles per wall-clock second.
    ///
    /// On an N-core machine this approaches N × the single-run
    /// throughput; the ratio against a serial sweep is the harness
    /// speedup recorded in `BENCH_harness.json`.
    pub fn cycles_per_wall_sec(&self) -> f64 {
        if self.wall_nanos == 0 {
            0.0
        } else {
            self.total_cycles() as f64 * 1e9 / self.wall_nanos as f64
        }
    }

    /// A compact human-readable throughput report: one line per run plus
    /// the sweep aggregate.
    pub fn throughput_report(&self) -> String {
        let mut s = String::new();
        for r in &self.results {
            s.push_str(&format!(
                "  {:<8} {:<16} {:>12} cycles {:>8.1} ms {:>12.0} cyc/s\n",
                r.app,
                r.scheme,
                r.exec_cycles,
                r.wall_nanos as f64 / 1e6,
                r.cycles_per_wall_sec()
            ));
        }
        s.push_str(&format!(
            "sweep: {} runs on {} workers, {:.1} ms wall, {:.0} simulated cycles/s\n",
            self.results.len(),
            self.workers,
            self.wall_nanos as f64 / 1e6,
            self.cycles_per_wall_sec()
        ));
        s
    }
}

/// Runs `experiments` on `workers` threads, collecting results in input
/// order with sweep timing.
pub fn run_experiments_with(experiments: Vec<Experiment>, workers: usize) -> SweepResult {
    let start = Instant::now();
    let results = parallel_map_with(experiments, workers, Experiment::run);
    SweepResult {
        results,
        wall_nanos: start.elapsed().as_nanos() as u64,
        workers,
    }
}

/// Runs `experiments` on the default worker pool.
pub fn run_experiments(experiments: Vec<Experiment>) -> SweepResult {
    run_experiments_with(experiments, worker_count())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SystemConfig;
    use crate::scheme::PrefetchScheme;
    use ulmt_workloads::{App, WorkloadSpec};

    #[test]
    fn parallel_map_preserves_input_order() {
        // Jobs with deliberately inverted cost ordering: the first jobs
        // are the slowest, so a naive completion-order collection would
        // return them last.
        let items: Vec<u64> = (0..40).collect();
        let out = parallel_map_with(items.clone(), 8, |i| {
            let spin = (40 - i) * 1000;
            let mut acc = i;
            for k in 0..spin {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(k);
            }
            std::hint::black_box(acc);
            i * 2
        });
        assert_eq!(out, items.iter().map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_map_handles_empty_and_single() {
        let empty: Vec<u32> = Vec::new();
        assert!(parallel_map_with(empty, 4, |x: u32| x).is_empty());
        assert_eq!(parallel_map_with(vec![7u32], 4, |x| x + 1), vec![8]);
    }

    #[test]
    fn worker_count_respects_env_override() {
        // The test environment may or may not set ULMT_WORKERS; only
        // check the invariant that holds either way.
        assert!(worker_count() >= 1);
    }

    /// The satellite acceptance test: a parallel sweep returns
    /// bit-identical `RunResult`s, in the same order, as the serial path
    /// for all `PrefetchScheme::FIGURE7` schemes on two apps.
    #[test]
    fn parallel_sweep_matches_serial_figure7() {
        let experiments = |apps: &[App]| -> Vec<Experiment> {
            apps.iter()
                .flat_map(|&app| {
                    PrefetchScheme::FIGURE7.iter().map(move |&s| {
                        let spec = WorkloadSpec::new(app).scale(1.0 / 16.0).iterations(3);
                        Experiment::new(SystemConfig::small(), spec).scheme(s)
                    })
                })
                .collect()
        };
        let apps = [App::Mcf, App::Gap];
        let serial = run_experiments_with(experiments(&apps), 1);
        let parallel = run_experiments_with(experiments(&apps), 4);
        assert_eq!(parallel.workers, 4);
        assert_eq!(serial.results.len(), 14);
        assert_eq!(parallel.results.len(), 14);
        for (s, p) in serial.results.iter().zip(&parallel.results) {
            assert_eq!(s.scheme, p.scheme);
            assert_eq!(s.app, p.app);
            assert_eq!(s.exec_cycles, p.exec_cycles);
            assert_eq!(
                s.fingerprint(),
                p.fingerprint(),
                "diverged on {}/{}",
                s.app,
                s.scheme
            );
        }
    }

    #[test]
    fn sweep_throughput_is_measured() {
        let spec = WorkloadSpec::new(App::Tree).scale(1.0 / 16.0).iterations(2);
        let sweep = run_experiments(vec![
            Experiment::new(SystemConfig::small(), spec.clone()),
            Experiment::new(SystemConfig::small(), spec).scheme(PrefetchScheme::Repl),
        ]);
        assert!(sweep.wall_nanos > 0);
        assert!(sweep.total_cycles() > 0);
        assert!(sweep.cycles_per_wall_sec() > 0.0);
        let report = sweep.throughput_report();
        assert!(report.contains("sweep:"), "{report}");
        assert!(report.contains("cyc/s"), "{report}");
        // Per-run wall time was recorded by the simulator itself.
        assert!(sweep.results.iter().all(|r| r.wall_nanos > 0));
    }
}
