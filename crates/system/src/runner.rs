//! Parallel experiment harness.
//!
//! Every figure and table of the paper is produced by sweeping
//! applications × schemes through independent [`Experiment`] runs — an
//! embarrassingly parallel workload. This module fans such runs across a
//! worker pool of scoped OS threads (`std` only, no external crates)
//! while keeping the one property the experiment pipeline depends on:
//! **results come back in input order, bit-identical to a serial run**.
//! Each simulation is fully deterministic and shares no mutable state, so
//! parallel execution cannot perturb the measurements — only the wall
//! clock.
//!
//! Workers default to [`std::thread::available_parallelism`] and can be
//! pinned with the `ULMT_WORKERS` environment variable (e.g.
//! `ULMT_WORKERS=1` forces serial execution for debugging).
//!
//! # Example
//!
//! ```
//! use ulmt_system::runner::{run_experiments, parallel_map};
//! use ulmt_system::{Experiment, PrefetchScheme, SystemConfig};
//! use ulmt_workloads::{App, WorkloadSpec};
//!
//! let experiments: Vec<Experiment> = [PrefetchScheme::NoPref, PrefetchScheme::Repl]
//!     .into_iter()
//!     .map(|s| {
//!         let spec = WorkloadSpec::new(App::Tree).scale(1.0 / 16.0).iterations(2);
//!         Experiment::new(SystemConfig::small(), spec).scheme(s)
//!     })
//!     .collect();
//! let sweep = run_experiments(experiments);
//! assert_eq!(sweep.results.len(), 2);
//! assert_eq!(sweep.results[0].scheme, "NoPref"); // input order preserved
//! assert!(sweep.cycles_per_wall_sec() > 0.0);
//! ```

use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, Once, PoisonError};
use std::time::{Duration, Instant};

use crate::experiment::Experiment;
use crate::result::RunResult;

/// Parses a `ULMT_WORKERS`-style override: `Some(n)` for a positive
/// integer, `None` for anything else (empty, non-numeric, zero).
pub fn parse_workers(raw: &str) -> Option<usize> {
    match raw.trim().parse::<usize>() {
        Ok(n) if n >= 1 => Some(n),
        _ => None,
    }
}

/// Number of workers the harness uses by default: `ULMT_WORKERS` if set
/// to a positive integer, otherwise the machine's available parallelism —
/// and never more than the machine's available parallelism. The jobs are
/// CPU-bound with no blocking I/O, so oversubscription only adds
/// scheduler noise to the wall-clock measurements; an oversized override
/// is clamped (with a one-time warning) instead of honored.
///
/// An unusable `ULMT_WORKERS` value (non-numeric or `0`) used to fall
/// through silently; it now warns once on stderr and falls back to the
/// machine default, so a typo in a sweep script cannot silently serialize
/// (or mis-parallelize) a whole figure run.
pub fn worker_count() -> usize {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    match std::env::var("ULMT_WORKERS") {
        Ok(v) => match parse_workers(&v) {
            Some(n) if n > cores => {
                static CLAMP: Once = Once::new();
                CLAMP.call_once(|| {
                    eprintln!(
                        "warning: ULMT_WORKERS={n} exceeds available parallelism; \
                         clamping to {cores}"
                    );
                });
                cores
            }
            Some(n) => n,
            None => {
                static WARN: Once = Once::new();
                WARN.call_once(|| {
                    eprintln!(
                        "warning: ULMT_WORKERS={v:?} is not a positive integer; \
                         falling back to available parallelism"
                    );
                });
                cores
            }
        },
        Err(_) => cores,
    }
}

/// Bounded retry budget for transient job failures: `ULMT_RETRIES` as a
/// non-negative integer (capped at 8), default 1.
pub fn retry_budget() -> u32 {
    match std::env::var("ULMT_RETRIES") {
        Ok(v) => v.trim().parse::<u32>().map(|n| n.min(8)).unwrap_or(1),
        Err(_) => 1,
    }
}

/// Applies `f` to every item on a pool of `workers` scoped threads and
/// returns the results **in input order**.
///
/// Work is distributed dynamically (an atomic cursor over the job list),
/// so a few slow jobs — e.g. paper-scale FT next to small Tree runs — do
/// not idle the rest of the pool. With `workers == 1` (or a single item)
/// no threads are spawned and the items are mapped inline.
///
/// # Panics
///
/// Panics if `f` panics on any item (the panic is propagated once all
/// workers have stopped).
pub fn parallel_map_with<T, R, F>(items: Vec<T>, workers: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = workers.clamp(1, n);
    if workers == 1 {
        return items.into_iter().map(f).collect();
    }
    // Jobs are claimed exactly once via the atomic cursor; the mutexes
    // only hand values across the thread boundary and are never contended.
    // Poisoning is recovered everywhere: a worker that panicked mid-`f`
    // never holds a lock across the panic, so the protected values stay
    // consistent and one dead worker must not cascade into harness aborts.
    let jobs: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = jobs[i]
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .take()
                    .expect("each job is claimed exactly once");
                let result = f(item);
                *slots[i].lock().unwrap_or_else(PoisonError::into_inner) = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|s| {
            s.into_inner()
                .unwrap_or_else(PoisonError::into_inner)
                .expect("every claimed job stores a result")
        })
        .collect()
}

/// One job's outcome under the resilient harness: how many attempts it
/// took and either its value or the final error message.
#[derive(Debug, Clone)]
pub struct JobOutcome<R> {
    /// Attempts executed (1 = first try succeeded or failed terminally).
    pub attempts: u32,
    /// The job's value, or the error that exhausted its attempts.
    pub result: Result<R, String>,
}

/// [`parallel_map_with`] with per-job panic isolation and bounded retry.
///
/// Each job runs under `catch_unwind`: a panicking job is retried up to
/// `retries` more times (with a small backoff that grows with the attempt
/// number — panics can be transient host conditions such as memory
/// pressure), while a job that returns `Err` is treated as deterministic
/// and fails immediately. Results come back in input order; one poisoned
/// job can no longer take down the whole map.
pub fn try_parallel_map_with<T, R, F>(
    items: Vec<T>,
    workers: usize,
    retries: u32,
    f: F,
) -> Vec<JobOutcome<R>>
where
    T: Send + Clone,
    R: Send,
    F: Fn(T) -> Result<R, String> + Sync,
{
    parallel_map_with(items, workers, |item: T| {
        let mut attempts = 0;
        loop {
            attempts += 1;
            let caught = std::panic::catch_unwind(AssertUnwindSafe(|| f(item.clone())));
            match caught {
                Ok(Ok(value)) => {
                    return JobOutcome {
                        attempts,
                        result: Ok(value),
                    }
                }
                Ok(Err(e)) => {
                    return JobOutcome {
                        attempts,
                        result: Err(e),
                    }
                }
                Err(payload) => {
                    let msg = panic_message(payload.as_ref());
                    if attempts > retries {
                        return JobOutcome {
                            attempts,
                            result: Err(format!("panicked: {msg}")),
                        };
                    }
                    // Backoff-in-attempts: 10 ms, 20 ms, 40 ms, ... gives
                    // transient host conditions room to clear without
                    // stalling the pool noticeably.
                    std::thread::sleep(Duration::from_millis(10u64 << (attempts - 1).min(6)));
                }
            }
        }
    })
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

/// [`parallel_map_with`] using the default [`worker_count`].
pub fn parallel_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    parallel_map_with(items, worker_count(), f)
}

/// One experiment the sweep could not complete, itemized for the report.
#[derive(Debug, Clone)]
pub struct JobFailure {
    /// Index of the experiment in the input vector.
    pub index: usize,
    /// Application label of the failed experiment.
    pub app: String,
    /// Scheme label of the failed experiment.
    pub scheme: String,
    /// Attempts executed before giving up.
    pub attempts: u32,
    /// The final error (a typed [`crate::error::RunError`] rendered to
    /// text, or `panicked: ...` for an isolated panic).
    pub error: String,
}

/// The outcome of one sweep: per-run results (in input order) plus the
/// sweep's wall-clock throughput and any jobs that could not complete.
///
/// A sweep degrades gracefully: a panicking or watchdog-cancelled job is
/// removed from [`SweepResult::results`] and itemized in
/// [`SweepResult::failed`] instead of aborting the other jobs. When
/// `failed` is empty, `results` is exactly the historical all-success
/// vector (input order, one entry per experiment).
#[derive(Debug, Clone)]
pub struct SweepResult {
    /// One [`RunResult`] per *completed* experiment, in input order.
    pub results: Vec<RunResult>,
    /// Experiments that failed after exhausting their retry budget, in
    /// input order.
    pub failed: Vec<JobFailure>,
    /// Total retry attempts across all jobs (0 when every job succeeded
    /// on its first try).
    pub retried: u64,
    /// Wall-clock time of the whole sweep in nanoseconds.
    pub wall_nanos: u64,
    /// Workers the sweep ran with.
    pub workers: usize,
}

impl SweepResult {
    /// Jobs the sweep was asked to run (completed + failed).
    pub fn total_jobs(&self) -> usize {
        self.results.len() + self.failed.len()
    }

    /// Jobs that completed successfully.
    pub fn completed(&self) -> usize {
        self.results.len()
    }

    /// Total simulated cycles across all runs.
    pub fn total_cycles(&self) -> u64 {
        self.results.iter().map(|r| r.exec_cycles).sum()
    }

    /// Sweep throughput: simulated cycles per wall-clock second.
    ///
    /// On an N-core machine this approaches N × the single-run
    /// throughput; the ratio against a serial sweep is the harness
    /// speedup recorded in `BENCH_harness.json`.
    pub fn cycles_per_wall_sec(&self) -> f64 {
        if self.wall_nanos == 0 {
            0.0
        } else {
            self.total_cycles() as f64 * 1e9 / self.wall_nanos as f64
        }
    }

    /// A compact human-readable throughput report: one line per run plus
    /// the sweep aggregate.
    pub fn throughput_report(&self) -> String {
        let mut s = String::new();
        for r in &self.results {
            s.push_str(&format!(
                "  {:<8} {:<16} {:>12} cycles {:>8.1} ms {:>12.0} cyc/s\n",
                r.app,
                r.scheme,
                r.exec_cycles,
                r.wall_nanos as f64 / 1e6,
                r.cycles_per_wall_sec()
            ));
        }
        for fail in &self.failed {
            s.push_str(&format!(
                "  {:<8} {:<16} FAILED after {} attempt(s): {}\n",
                fail.app, fail.scheme, fail.attempts, fail.error
            ));
        }
        s.push_str(&format!(
            "sweep: {}/{} runs completed on {} workers ({} retried), {:.1} ms wall, \
             {:.0} simulated cycles/s\n",
            self.completed(),
            self.total_jobs(),
            self.workers,
            self.retried,
            self.wall_nanos as f64 / 1e6,
            self.cycles_per_wall_sec()
        ));
        s
    }
}

/// Runs `experiments` on `workers` threads with `retries` retry attempts
/// per job, collecting completed results in input order and itemizing
/// failures instead of propagating them.
pub fn run_experiments_resilient(
    experiments: Vec<Experiment>,
    workers: usize,
    retries: u32,
) -> SweepResult {
    let start = Instant::now();
    let labels: Vec<(String, String)> = experiments.iter().map(Experiment::labels).collect();
    let outcomes = try_parallel_map_with(experiments, workers, retries, |e: Experiment| {
        e.run_guarded().map_err(|err| err.to_string())
    });
    let mut results = Vec::new();
    let mut failed = Vec::new();
    let mut retried = 0u64;
    for (index, outcome) in outcomes.into_iter().enumerate() {
        retried += u64::from(outcome.attempts.saturating_sub(1));
        match outcome.result {
            Ok(r) => results.push(r),
            Err(error) => {
                let (app, scheme) = labels[index].clone();
                failed.push(JobFailure {
                    index,
                    app,
                    scheme,
                    attempts: outcome.attempts,
                    error,
                });
            }
        }
    }
    SweepResult {
        results,
        failed,
        retried,
        wall_nanos: start.elapsed().as_nanos() as u64,
        workers,
    }
}

/// Runs `experiments` on `workers` threads, collecting results in input
/// order with sweep timing. Jobs are panic-isolated and retried per
/// [`retry_budget`]; failures land in [`SweepResult::failed`].
pub fn run_experiments_with(experiments: Vec<Experiment>, workers: usize) -> SweepResult {
    run_experiments_resilient(experiments, workers, retry_budget())
}

/// Runs `experiments` on the default worker pool.
pub fn run_experiments(experiments: Vec<Experiment>) -> SweepResult {
    run_experiments_with(experiments, worker_count())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SystemConfig;
    use crate::scheme::PrefetchScheme;
    use ulmt_workloads::{App, WorkloadSpec};

    #[test]
    fn parallel_map_preserves_input_order() {
        // Jobs with deliberately inverted cost ordering: the first jobs
        // are the slowest, so a naive completion-order collection would
        // return them last.
        let items: Vec<u64> = (0..40).collect();
        let out = parallel_map_with(items.clone(), 8, |i| {
            let spin = (40 - i) * 1000;
            let mut acc = i;
            for k in 0..spin {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(k);
            }
            std::hint::black_box(acc);
            i * 2
        });
        assert_eq!(out, items.iter().map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_map_handles_empty_and_single() {
        let empty: Vec<u32> = Vec::new();
        assert!(parallel_map_with(empty, 4, |x: u32| x).is_empty());
        assert_eq!(parallel_map_with(vec![7u32], 4, |x| x + 1), vec![8]);
    }

    #[test]
    fn worker_count_respects_env_override() {
        // The test environment may or may not set ULMT_WORKERS; only
        // check the invariant that holds either way.
        assert!(worker_count() >= 1);
    }

    #[test]
    fn parse_workers_accepts_positive_and_rejects_garbage() {
        assert_eq!(parse_workers("4"), Some(4));
        assert_eq!(parse_workers(" 12 "), Some(12));
        assert_eq!(parse_workers("0"), None);
        assert_eq!(parse_workers(""), None);
        assert_eq!(parse_workers("four"), None);
        assert_eq!(parse_workers("-3"), None);
        assert_eq!(parse_workers("2.5"), None);
    }

    #[test]
    fn try_parallel_map_isolates_panics_and_counts_attempts() {
        let items: Vec<u32> = (0..6).collect();
        let outcomes = try_parallel_map_with(items, 3, 0, |i: u32| {
            if i == 2 {
                panic!("job {i} exploded");
            }
            if i == 4 {
                return Err(format!("job {i} refused"));
            }
            Ok(i * 10)
        });
        assert_eq!(outcomes.len(), 6);
        for (i, o) in outcomes.iter().enumerate() {
            match i {
                2 => {
                    let err = o.result.as_ref().unwrap_err();
                    assert!(
                        err.contains("panicked") && err.contains("exploded"),
                        "{err}"
                    );
                }
                4 => {
                    assert_eq!(o.result.as_ref().unwrap_err(), "job 4 refused");
                    assert_eq!(o.attempts, 1, "typed errors must not be retried");
                }
                _ => assert_eq!(*o.result.as_ref().unwrap(), i as u32 * 10),
            }
        }
    }

    #[test]
    fn try_parallel_map_retries_transient_panics() {
        use std::sync::atomic::AtomicU32;
        let attempts_seen = AtomicU32::new(0);
        let outcomes = try_parallel_map_with(vec![()], 1, 2, |_| {
            // Fail the first two attempts, succeed on the third: a
            // transient condition that clears under retry.
            if attempts_seen.fetch_add(1, Ordering::SeqCst) < 2 {
                panic!("transient");
            }
            Ok(42u32)
        });
        assert_eq!(outcomes.len(), 1);
        assert_eq!(outcomes[0].attempts, 3);
        assert_eq!(*outcomes[0].result.as_ref().unwrap(), 42);
    }

    /// The satellite acceptance test: a parallel sweep returns
    /// bit-identical `RunResult`s, in the same order, as the serial path
    /// for all `PrefetchScheme::FIGURE7` schemes on two apps.
    #[test]
    fn parallel_sweep_matches_serial_figure7() {
        let experiments = |apps: &[App]| -> Vec<Experiment> {
            apps.iter()
                .flat_map(|&app| {
                    PrefetchScheme::FIGURE7.iter().map(move |&s| {
                        let spec = WorkloadSpec::new(app).scale(1.0 / 16.0).iterations(3);
                        Experiment::new(SystemConfig::small(), spec).scheme(s)
                    })
                })
                .collect()
        };
        let apps = [App::Mcf, App::Gap];
        let serial = run_experiments_with(experiments(&apps), 1);
        let parallel = run_experiments_with(experiments(&apps), 4);
        assert_eq!(parallel.workers, 4);
        assert_eq!(serial.results.len(), 14);
        assert_eq!(parallel.results.len(), 14);
        for (s, p) in serial.results.iter().zip(&parallel.results) {
            assert_eq!(s.scheme, p.scheme);
            assert_eq!(s.app, p.app);
            assert_eq!(s.exec_cycles, p.exec_cycles);
            assert_eq!(
                s.fingerprint(),
                p.fingerprint(),
                "diverged on {}/{}",
                s.app,
                s.scheme
            );
        }
    }

    #[test]
    fn sweep_throughput_is_measured() {
        let spec = WorkloadSpec::new(App::Tree).scale(1.0 / 16.0).iterations(2);
        let sweep = run_experiments(vec![
            Experiment::new(SystemConfig::small(), spec.clone()),
            Experiment::new(SystemConfig::small(), spec).scheme(PrefetchScheme::Repl),
        ]);
        assert!(sweep.wall_nanos > 0);
        assert!(sweep.total_cycles() > 0);
        assert!(sweep.cycles_per_wall_sec() > 0.0);
        let report = sweep.throughput_report();
        assert!(report.contains("sweep:"), "{report}");
        assert!(report.contains("cyc/s"), "{report}");
        // Per-run wall time was recorded by the simulator itself.
        assert!(sweep.results.iter().all(|r| r.wall_nanos > 0));
    }
}
