//! Trace/counter cross-validation.
//!
//! A [`RunResult`] carries two independent descriptions of the same run:
//! the aggregate counters ([`PrefetchEffect`](crate::PrefetchEffect),
//! queue overflow counts, ULMT means, bus utilization) accumulated inline
//! by the simulator, and — when tracing is enabled — the cycle-stamped
//! event stream in [`RunResult::trace`]. The counters are what every
//! figure of the paper is plotted from; the trace is the evidence.
//!
//! [`validate_trace`] re-derives every re-derivable counter from the
//! event stream alone and asserts **bit-identical** equality with the
//! inline aggregates (floats are compared by bit pattern, and the ULMT
//! response/occupancy means are replayed sample-by-sample in event order
//! so even their rounding history matches). A disagreement means one of
//! the two accounting paths is wrong, and the error says which counter
//! and both values.
//!
//! # Example
//!
//! ```
//! use ulmt_simcore::TraceConfig;
//! use ulmt_system::{validate_trace, Experiment, PrefetchScheme, SystemConfig};
//! use ulmt_workloads::{App, WorkloadSpec};
//!
//! let r = Experiment::new(
//!     SystemConfig::small(),
//!     WorkloadSpec::new(App::Mcf).scale(1.0 / 32.0).iterations(2),
//! )
//! .scheme(PrefetchScheme::Repl)
//! .trace(TraceConfig::default())
//! .run();
//! let audit = validate_trace(&r).expect("trace agrees with counters");
//! assert!(audit.events > 0);
//! ```

use std::fmt;

use ulmt_simcore::stats::Mean;
use ulmt_simcore::trace::{BusClass, FaultKind, PushRejectReason};
use ulmt_simcore::{Cycle, FaultCounts, TraceEvent};

use crate::result::RunResult;

/// One counter the trace and the inline aggregates disagree on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mismatch {
    /// Which counter disagrees (e.g. `"prefetch.issued"`).
    pub field: &'static str,
    /// The value re-derived from the event stream.
    pub from_trace: String,
    /// The value the simulator accumulated inline.
    pub from_counters: String,
}

impl fmt::Display for Mismatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: trace says {}, counters say {}",
            self.field, self.from_trace, self.from_counters
        )
    }
}

/// Why a trace could not be proven consistent with the counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceValidationError {
    /// The run was not traced ([`RunResult::trace`] is `None`).
    NoTrace,
    /// The ring buffer wrapped: events were lost, so no exact
    /// re-derivation is possible. Re-run with a larger
    /// [`TraceConfig`](ulmt_simcore::TraceConfig) capacity.
    Truncated {
        /// How many events were overwritten.
        overwritten: u64,
    },
    /// The trace and the counters disagree on at least one value.
    Mismatch(Vec<Mismatch>),
}

impl fmt::Display for TraceValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceValidationError::NoTrace => {
                write!(
                    f,
                    "run has no trace (enable with Experiment::trace or ULMT_TRACE=1)"
                )
            }
            TraceValidationError::Truncated { overwritten } => write!(
                f,
                "trace ring overwrote {overwritten} events; increase the trace capacity"
            ),
            TraceValidationError::Mismatch(list) => {
                write!(f, "{} counter(s) disagree with the trace:", list.len())?;
                for m in list {
                    write!(f, "\n  {m}")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for TraceValidationError {}

/// What a successful validation covered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceAudit {
    /// Events scanned.
    pub events: usize,
    /// Individual counter equalities checked (all held).
    pub checks: usize,
}

/// Everything the single pass over the event stream accumulates.
#[derive(Default)]
struct Tally {
    refs: u64,
    l2_miss: u64,
    l2_fill_demand_waiting: u64,
    obs_enqueue: u64,
    obs_drop: u64,
    obs_squash_removed: u64,
    ulmt_steps: u64,
    response: Mean,
    occupancy: Mean,
    filter_drop: u64,
    q3_enqueue: u64,
    q3_squash_demand: u64,
    q3_squash_duplicate: u64,
    q3_squash_by_demand: u64,
    q3_overflow: u64,
    push_accept: u64,
    stole_demand_waiting: u64,
    stole_installed: u64,
    stole_neither: u64,
    push_reject_present: u64,
    push_reject_other: u64,
    push_first_touch: u64,
    push_replaced: u64,
    demand_overflow: u64,
    dram_accesses: u64,
    dram_row_hits: u64,
    fsb_busy_total: Cycle,
    fsb_busy_prefetch: Cycle,
    faults: FaultCounts,
    fault_events: u64,
    run_end: Option<(u32, u32, u32)>,
    run_ends: u64,
}

impl Tally {
    fn scan(events: impl Iterator<Item = TraceEvent>) -> Self {
        let mut t = Tally::default();
        for ev in events {
            match ev {
                TraceEvent::Ref { .. } => t.refs += 1,
                TraceEvent::L2Miss { .. } => t.l2_miss += 1,
                TraceEvent::L2Fill { demand_waiting, .. } => {
                    if demand_waiting {
                        t.l2_fill_demand_waiting += 1;
                    }
                }
                TraceEvent::ObsEnqueue { .. } => t.obs_enqueue += 1,
                TraceEvent::ObsDrop { .. } => t.obs_drop += 1,
                TraceEvent::ObsSquash { removed, .. } => t.obs_squash_removed += u64::from(removed),
                TraceEvent::UlmtStep {
                    response,
                    occupancy,
                    ..
                } => {
                    t.ulmt_steps += 1;
                    // Replayed exactly as the memory processor sampled
                    // them, in the same order: the resulting mean is
                    // bit-identical, not approximately equal.
                    t.response.add(response as f64);
                    t.occupancy.add(occupancy as f64);
                }
                TraceEvent::FilterAdmit { .. } => {}
                TraceEvent::FilterDrop { .. } => t.filter_drop += 1,
                TraceEvent::Q3Enqueue { .. } => t.q3_enqueue += 1,
                TraceEvent::Q3SquashDemand { .. } => t.q3_squash_demand += 1,
                TraceEvent::Q3SquashDuplicate { .. } => t.q3_squash_duplicate += 1,
                TraceEvent::Q3SquashByDemand { .. } => t.q3_squash_by_demand += 1,
                TraceEvent::Q3Overflow { .. } => t.q3_overflow += 1,
                TraceEvent::PushDispatch { .. } => {}
                TraceEvent::PushAccept { .. } => t.push_accept += 1,
                TraceEvent::PushStoleMshr {
                    demand_waiting,
                    installed_prefetched,
                    ..
                } => match (demand_waiting, installed_prefetched) {
                    (true, _) => t.stole_demand_waiting += 1,
                    (false, true) => t.stole_installed += 1,
                    (false, false) => t.stole_neither += 1,
                },
                TraceEvent::PushReject { reason, .. } => {
                    if reason == PushRejectReason::Present {
                        t.push_reject_present += 1;
                    } else {
                        t.push_reject_other += 1;
                    }
                }
                TraceEvent::PushFirstTouch { .. } => t.push_first_touch += 1,
                TraceEvent::PushReplaced { .. } => t.push_replaced += 1,
                TraceEvent::DemandOverflow { .. } => t.demand_overflow += 1,
                TraceEvent::DramAccess { row_hit, .. } => {
                    t.dram_accesses += 1;
                    if row_hit {
                        t.dram_row_hits += 1;
                    }
                }
                TraceEvent::FsbTransfer { class, busy } => {
                    t.fsb_busy_total += busy;
                    if class == BusClass::Prefetch {
                        t.fsb_busy_prefetch += busy;
                    }
                }
                TraceEvent::FaultInjected { kind, magnitude } => {
                    t.fault_events += 1;
                    match kind {
                        FaultKind::DropObservation => t.faults.dropped_observations += 1,
                        FaultKind::DuplicateObservation => t.faults.duplicated_observations += 1,
                        FaultKind::DelayObservation => {
                            t.faults.delayed_observations += 1;
                            t.faults.observation_delay_cycles += magnitude;
                        }
                        FaultKind::MemprocStall => {
                            t.faults.memproc_stalls += 1;
                            t.faults.memproc_stall_cycles += magnitude;
                        }
                        FaultKind::DramBusy => {
                            t.faults.dram_busy_events += 1;
                            t.faults.dram_busy_cycles += magnitude;
                        }
                        FaultKind::QueueReduction => t.faults.queue_reductions += 1,
                    }
                }
                TraceEvent::RunEnd {
                    queue2,
                    queue3,
                    pushes_in_flight,
                } => {
                    t.run_ends += 1;
                    t.run_end = Some((queue2, queue3, pushes_in_flight));
                }
                // Prefetch-service shard events are produced by
                // `ulmt_service`, never by a `SystemSim` run, so a system
                // trace audit has nothing to cross-check them against.
                TraceEvent::ShardBatch { .. } | TraceEvent::ShardReject { .. } => {}
            }
        }
        t
    }
}

/// Collects counter comparisons, remembering every disagreement.
struct Checker {
    checks: usize,
    mismatches: Vec<Mismatch>,
}

impl Checker {
    fn new() -> Self {
        Checker {
            checks: 0,
            mismatches: Vec::new(),
        }
    }

    fn eq_u64(&mut self, field: &'static str, from_trace: u64, from_counters: u64) {
        self.checks += 1;
        if from_trace != from_counters {
            self.mismatches.push(Mismatch {
                field,
                from_trace: from_trace.to_string(),
                from_counters: from_counters.to_string(),
            });
        }
    }

    /// Bit-pattern equality: `-0.0 != 0.0` and `NaN == NaN` by design —
    /// this is an identity check, not a numeric tolerance.
    fn eq_f64(&mut self, field: &'static str, from_trace: f64, from_counters: f64) {
        self.checks += 1;
        if from_trace.to_bits() != from_counters.to_bits() {
            self.mismatches.push(Mismatch {
                field,
                from_trace: format!("{from_trace:?} ({:#018x})", from_trace.to_bits()),
                from_counters: format!("{from_counters:?} ({:#018x})", from_counters.to_bits()),
            });
        }
    }
}

/// Re-derives every re-derivable [`RunResult`] counter from the event
/// trace and checks bit-identical agreement with the inline aggregates.
///
/// On success, returns how much was checked. Fails with
/// [`TraceValidationError::NoTrace`] if the run was not traced, with
/// [`TraceValidationError::Truncated`] if the ring wrapped (lost events
/// make exact re-derivation impossible), and with
/// [`TraceValidationError::Mismatch`] listing every disagreeing counter
/// otherwise.
pub fn validate_trace(result: &RunResult) -> Result<TraceAudit, TraceValidationError> {
    let buf = result.trace.as_ref().ok_or(TraceValidationError::NoTrace)?;
    if buf.overwritten() > 0 {
        return Err(TraceValidationError::Truncated {
            overwritten: buf.overwritten(),
        });
    }
    let t = Tally::scan(buf.iter().map(|e| e.event));
    let mut c = Checker::new();

    // The end-of-run snapshot is emitted exactly once, by `finish`.
    c.eq_u64("run_end events", t.run_ends, 1);
    let (q2_end, q3_end, pushes_end) = t.run_end.unwrap_or((0, 0, 0));

    // Headline counts.
    c.eq_u64("refs", t.refs, result.refs);
    c.eq_u64("l2_misses", t.l2_miss, result.l2_misses);
    c.eq_u64(
        "demand_q_overflow",
        t.demand_overflow,
        result.demand_q_overflow,
    );
    c.eq_u64(
        "prefetch_q_overflow",
        t.q3_overflow,
        result.prefetch_q_overflow,
    );
    c.eq_u64("filter_dropped", t.filter_drop, result.filter_dropped);
    c.eq_u64(
        "observations_dropped",
        t.obs_drop,
        result.observations_dropped,
    );

    // Figure 9 bookkeeping. A stolen MSHR always belonged to either a
    // waiting demand access or a processor-side prefetch; anything else
    // would leak a push out of the accounting.
    c.eq_u64("push_stole_mshr (untracked)", t.stole_neither, 0);
    let p = &result.prefetch;
    c.eq_u64("prefetch.issued", t.q3_enqueue, p.issued);
    c.eq_u64("prefetch.hits", t.push_first_touch, p.hits);
    c.eq_u64(
        "prefetch.delayed_hits",
        t.stole_demand_waiting,
        p.delayed_hits,
    );
    c.eq_u64(
        "prefetch.non_pref_misses",
        t.l2_fill_demand_waiting,
        p.non_pref_misses,
    );
    c.eq_u64(
        "prefetch.accepted",
        t.push_accept + t.stole_installed,
        p.accepted,
    );
    c.eq_u64("prefetch.replaced", t.push_replaced, p.replaced);
    c.eq_u64("prefetch.redundant", t.push_reject_present, p.redundant);
    c.eq_u64(
        "prefetch.dropped_other",
        t.push_reject_other,
        p.dropped_other,
    );
    c.eq_u64("prefetch.squashed_filter", t.filter_drop, p.squashed_filter);
    c.eq_u64(
        "prefetch.squashed_demand",
        t.q3_squash_demand,
        p.squashed_demand,
    );
    c.eq_u64(
        "prefetch.squashed_duplicate",
        t.q3_squash_duplicate,
        p.squashed_duplicate,
    );
    c.eq_u64(
        "prefetch.squashed_at_nb",
        t.q3_squash_by_demand,
        p.squashed_at_nb,
    );
    c.eq_u64(
        "prefetch.inflight_at_end",
        u64::from(q3_end) + u64::from(pushes_end),
        p.inflight_at_end,
    );
    // `accepted == hits + replaced + untouched_at_end`, so the trace pins
    // down the lines still resident-and-untouched at drain time too.
    c.eq_u64(
        "prefetch.untouched_at_end",
        (t.push_accept + t.stole_installed).saturating_sub(t.push_first_touch + t.push_replaced),
        p.untouched_at_end,
    );
    // Queue-3 conservation, from the trace alone: everything that entered
    // queue 3 either arrived at the L2 (as a steal, accept, or reject),
    // was squashed by a demand miss at the North Bridge, or never
    // resolved.
    c.eq_u64(
        "queue3 conservation",
        t.q3_enqueue,
        t.stole_demand_waiting
            + t.stole_installed
            + t.push_accept
            + t.push_reject_present
            + t.push_reject_other
            + t.q3_squash_by_demand
            + u64::from(q3_end)
            + u64::from(pushes_end),
    );
    // Queue-2 conservation: every enqueued observation was processed,
    // dropped by overflow, squashed by an issued prefetch, or left in the
    // queue. Fault drops emit `ObsDrop` *without* a preceding
    // `ObsEnqueue`, so they are subtracted from the drop count first.
    let fault_drops = t.faults.dropped_observations;
    c.eq_u64(
        "queue2 conservation",
        t.obs_enqueue,
        t.ulmt_steps
            + (t.obs_drop - fault_drops.min(t.obs_drop))
            + t.obs_squash_removed
            + u64::from(q2_end),
    );

    // ULMT execution statistics, replayed sample-by-sample.
    match &result.ulmt {
        Some(u) => {
            c.eq_u64("ulmt.steps", t.ulmt_steps, u.steps);
            c.eq_u64(
                "ulmt.dropped_observations",
                t.obs_drop,
                u.dropped_observations,
            );
            c.eq_u64(
                "ulmt.response.count",
                t.response.count(),
                u.response.count(),
            );
            c.eq_f64("ulmt.response.mean", t.response.mean(), u.response.mean());
            c.eq_u64(
                "ulmt.occupancy.count",
                t.occupancy.count(),
                u.occupancy.count(),
            );
            c.eq_f64(
                "ulmt.occupancy.mean",
                t.occupancy.mean(),
                u.occupancy.mean(),
            );
        }
        None => {
            c.eq_u64("ulmt.steps (no ULMT)", t.ulmt_steps, 0);
            c.eq_u64("obs_enqueue (no ULMT)", t.obs_enqueue, 0);
        }
    }

    // Bus and DRAM, recomputed with the same formulas the simulator uses.
    let elapsed = result.exec_cycles.max(1);
    c.eq_f64(
        "fsb_utilization",
        t.fsb_busy_total as f64 / elapsed as f64,
        result.fsb_utilization,
    );
    c.eq_f64(
        "fsb_prefetch_utilization",
        t.fsb_busy_prefetch as f64 / elapsed as f64,
        result.fsb_prefetch_utilization,
    );
    let row_hit_ratio = if t.dram_accesses == 0 {
        0.0
    } else {
        t.dram_row_hits as f64 / t.dram_accesses as f64
    };
    c.eq_f64(
        "dram_row_hit_ratio",
        row_hit_ratio,
        result.dram_row_hit_ratio,
    );

    // Fault injection: per-class counts and injected cycle totals.
    match &result.fault {
        Some(report) => {
            c.eq_u64(
                "fault.injected.dropped_observations",
                t.faults.dropped_observations,
                report.injected.dropped_observations,
            );
            c.eq_u64(
                "fault.injected.duplicated_observations",
                t.faults.duplicated_observations,
                report.injected.duplicated_observations,
            );
            c.eq_u64(
                "fault.injected.delayed_observations",
                t.faults.delayed_observations,
                report.injected.delayed_observations,
            );
            c.eq_u64(
                "fault.injected.observation_delay_cycles",
                t.faults.observation_delay_cycles,
                report.injected.observation_delay_cycles,
            );
            c.eq_u64(
                "fault.injected.memproc_stalls",
                t.faults.memproc_stalls,
                report.injected.memproc_stalls,
            );
            c.eq_u64(
                "fault.injected.memproc_stall_cycles",
                t.faults.memproc_stall_cycles,
                report.injected.memproc_stall_cycles,
            );
            c.eq_u64(
                "fault.injected.dram_busy_events",
                t.faults.dram_busy_events,
                report.injected.dram_busy_events,
            );
            c.eq_u64(
                "fault.injected.dram_busy_cycles",
                t.faults.dram_busy_cycles,
                report.injected.dram_busy_cycles,
            );
            c.eq_u64(
                "fault.injected.queue_reductions",
                t.faults.queue_reductions,
                report.injected.queue_reductions,
            );
            c.eq_u64("fault.absorbed", t.fault_events, report.absorbed);
        }
        None => c.eq_u64("fault events (no plan)", t.fault_events, 0),
    }

    if c.mismatches.is_empty() {
        Ok(TraceAudit {
            events: buf.len(),
            checks: c.checks,
        })
    } else {
        Err(TraceValidationError::Mismatch(c.mismatches))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Experiment, PrefetchScheme, SystemConfig};
    use ulmt_simcore::TraceConfig;
    use ulmt_workloads::{App, WorkloadSpec};

    fn traced(scheme: PrefetchScheme) -> RunResult {
        Experiment::new(
            SystemConfig::small(),
            WorkloadSpec::new(App::Mcf).scale(1.0 / 32.0).iterations(2),
        )
        .scheme(scheme)
        .trace(TraceConfig::default())
        .run()
    }

    #[test]
    fn untraced_run_reports_no_trace() {
        let r = Experiment::new(
            SystemConfig::small(),
            WorkloadSpec::new(App::Tree).scale(1.0 / 16.0),
        )
        .run();
        assert_eq!(validate_trace(&r), Err(TraceValidationError::NoTrace));
    }

    #[test]
    fn truncated_trace_is_rejected() {
        let mut r = traced(PrefetchScheme::Repl);
        let full = r.trace.as_ref().unwrap().len();
        assert!(full > 8, "trace too small to truncate meaningfully");
        let mut small = ulmt_simcore::TraceBuffer::new(TraceConfig::with_capacity(8));
        for e in r.trace.as_ref().unwrap().iter() {
            small.record(e.at, e.event);
        }
        r.trace = Some(small);
        match validate_trace(&r) {
            Err(TraceValidationError::Truncated { overwritten }) => {
                assert_eq!(overwritten, full as u64 - 8);
            }
            other => panic!("expected Truncated, got {other:?}"),
        }
    }

    #[test]
    fn validator_catches_a_cooked_counter() {
        let mut r = traced(PrefetchScheme::Repl);
        r.prefetch.issued += 1;
        let err = validate_trace(&r).unwrap_err();
        let TraceValidationError::Mismatch(list) = &err else {
            panic!("expected Mismatch, got {err:?}");
        };
        assert!(list.iter().any(|m| m.field == "prefetch.issued"), "{err}");
        // The queue-3 conservation identity is internal to the trace, so
        // cooking only the counter must not trip it.
        assert!(
            list.iter().all(|m| m.field != "queue3 conservation"),
            "{err}"
        );
    }

    #[test]
    fn nopref_trace_validates() {
        let audit = validate_trace(&traced(PrefetchScheme::NoPref)).expect("consistent");
        assert!(audit.events > 0);
        assert!(audit.checks >= 30);
    }
}
