//! Multiprogrammed execution (Section 3.4).
//!
//! The paper's design: "associate a different ULMT, with its own table,
//! to each application. This eliminates interference in the tables. In
//! addition, it enables the customization of each ULMT to its own
//! application." This module runs several applications time-sliced on one
//! machine and compares the two table policies the paper contrasts:
//!
//! * [`TablePolicy::Shared`] — one ULMT/table observes everything ("a
//!   poor approach ... the table is likely to suffer a lot of
//!   interference");
//! * [`TablePolicy::PerApplication`] — one ULMT per application, routed
//!   by physical region.

use ulmt_core::multi::RegionRoutedUlmt;
use ulmt_core::AlgorithmSpec;
use ulmt_memproc::{MemProcConfig, MemProcessor};
use ulmt_workloads::multiprog::{MultiprogWorkload, REGION_LINES};
use ulmt_workloads::WorkloadSpec;

use crate::config::SystemConfig;
use crate::result::RunResult;
use crate::sim::SystemSim;

/// How correlation state is organized across applications.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TablePolicy {
    /// A single table observes every application's misses.
    Shared,
    /// One table per application, selected by physical region.
    PerApplication,
}

/// A multiprogrammed experiment: `apps` time-sliced with a quantum of
/// `epoch_refs` references, prefetched by Replicated ULMTs under the
/// chosen table policy.
#[derive(Debug, Clone)]
pub struct MultiprogExperiment {
    config: SystemConfig,
    apps: Vec<WorkloadSpec>,
    epoch_refs: usize,
    policy: TablePolicy,
}

impl MultiprogExperiment {
    /// Creates an experiment over `apps`.
    ///
    /// # Panics
    ///
    /// Panics if `apps` is empty.
    pub fn new(config: SystemConfig, apps: Vec<WorkloadSpec>) -> Self {
        assert!(!apps.is_empty(), "need at least one application");
        MultiprogExperiment {
            config,
            apps,
            epoch_refs: 2000,
            policy: TablePolicy::PerApplication,
        }
    }

    /// Sets the scheduler quantum in references.
    pub fn quantum(mut self, epoch_refs: usize) -> Self {
        self.epoch_refs = epoch_refs;
        self
    }

    /// Sets the table policy.
    pub fn policy(mut self, policy: TablePolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Runs this mix under both table policies — [`TablePolicy::Shared`]
    /// and [`TablePolicy::PerApplication`] — as two independent
    /// simulations fanned across the [`crate::runner`] worker pool, and
    /// returns `(shared, per_application)`. The builder's own `policy`
    /// setting is ignored: both are run.
    ///
    /// This is the Section 3.4 comparison as a single call; on a
    /// multi-core host the two runs overlap, halving the wall time.
    pub fn compare(self) -> (RunResult, RunResult) {
        let experiments: Vec<MultiprogExperiment> =
            [TablePolicy::Shared, TablePolicy::PerApplication]
                .into_iter()
                .map(|p| self.clone().policy(p))
                .collect();
        let mut results = crate::runner::parallel_map(experiments, MultiprogExperiment::run);
        let per_app = results.pop().expect("per-application result");
        let shared = results.pop().expect("shared result");
        (shared, per_app)
    }

    /// Runs the multiprogrammed mix to completion.
    pub fn run(self) -> RunResult {
        let trace = MultiprogWorkload::new(&self.apps, self.epoch_refs);
        let alg: Box<dyn ulmt_core::UlmtAlgorithm> = match self.policy {
            TablePolicy::Shared => {
                // One table sized for the union of footprints.
                let total: u64 = self.apps.iter().map(|a| a.footprint_lines()).sum();
                AlgorithmSpec::repl((total as usize).next_power_of_two().max(1024)).build()
            }
            TablePolicy::PerApplication => Box::new(RegionRoutedUlmt::new(
                self.apps
                    .iter()
                    .map(|a| {
                        let rows = (a.footprint_lines() as usize).next_power_of_two().max(1024);
                        AlgorithmSpec::repl(rows).build()
                    })
                    .collect(),
                REGION_LINES,
            )),
        };
        let memproc = MemProcessor::new(
            MemProcConfig {
                ..self.config.memproc
            },
            alg,
        );
        let label = match self.policy {
            TablePolicy::Shared => "Multiprog(shared)",
            TablePolicy::PerApplication => "Multiprog(per-app)",
        };
        let apps = self
            .apps
            .iter()
            .map(|a| a.app.name())
            .collect::<Vec<_>>()
            .join("+");
        let footprint: u64 = self.apps.iter().map(|a| a.footprint_lines()).sum();
        SystemSim::from_parts_hinted(
            self.config,
            Box::new(trace),
            false,
            Some(memproc),
            false,
            label.to_string(),
            apps,
            footprint,
        )
        .run()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ulmt_workloads::App;

    fn mix() -> Vec<WorkloadSpec> {
        vec![
            WorkloadSpec::new(App::Mcf).scale(1.0 / 16.0).iterations(3),
            WorkloadSpec::new(App::Gap).scale(1.0 / 16.0).iterations(3),
        ]
    }

    #[test]
    fn per_app_tables_beat_shared_table() {
        // Section 3.4's claim: a shared table suffers interference. With a
        // short quantum the two miss streams interleave at the table and
        // corrupt each other's successor lists; per-application tables do
        // not.
        let (shared, per_app) = MultiprogExperiment::new(SystemConfig::small(), mix())
            .quantum(200)
            .compare();
        assert_eq!(shared.scheme, "Multiprog(shared)");
        assert_eq!(per_app.scheme, "Multiprog(per-app)");
        assert!(
            per_app.exec_cycles <= shared.exec_cycles,
            "per-app {} vs shared {}",
            per_app.exec_cycles,
            shared.exec_cycles
        );
        assert!(per_app.prefetch.hits + per_app.prefetch.delayed_hits > 0);
    }

    #[test]
    fn multiprog_accounts_all_references() {
        let refs: usize = mix().iter().map(|a| a.build().count()).sum();
        let r = MultiprogExperiment::new(SystemConfig::small(), mix())
            .quantum(500)
            .run();
        assert_eq!(r.refs as usize, refs);
        assert!(r.exec_cycles > 0);
    }

    #[test]
    fn single_app_multiprog_matches_regular_run_shape() {
        let spec = WorkloadSpec::new(App::Mcf).scale(1.0 / 16.0).iterations(3);
        let solo = crate::Experiment::new(SystemConfig::small(), spec.clone())
            .scheme(crate::PrefetchScheme::Repl)
            .run();
        let mp = MultiprogExperiment::new(SystemConfig::small(), vec![spec]).run();
        // Same workload, same algorithm: within a few percent (the
        // multiprog table is sized slightly differently).
        let ratio = mp.exec_cycles as f64 / solo.exec_cycles as f64;
        assert!((0.9..1.1).contains(&ratio), "ratio {ratio}");
    }
}
