//! State-only extraction of the L2 miss address stream.
//!
//! The prediction experiment of Figure 5 and the table sizing of Table 2
//! operate on "all L2 cache miss addresses", independent of timing. This
//! module filters a workload's reference stream through the L1 and L2
//! cache *state* (immediate fills, no MSHR timing) and yields the L2 miss
//! lines in order.

use ulmt_cache::{AccessOutcome, Cache, CacheConfig};
use ulmt_simcore::LineAddr;
use ulmt_workloads::WorkloadSpec;

/// Iterator over the L2 miss lines of a workload.
#[derive(Debug)]
pub struct MissStream<I> {
    refs: I,
    l1: Cache,
    l2: Cache,
    l1_line: u64,
}

impl<I> MissStream<I>
where
    I: Iterator<Item = ulmt_workloads::TraceRecord>,
{
    /// Filters `refs` through caches of the given geometries.
    pub fn new(refs: I, l1_cfg: CacheConfig, l2_cfg: CacheConfig) -> Self {
        MissStream {
            refs,
            l1: Cache::new(l1_cfg),
            l2: Cache::new(l2_cfg),
            l1_line: l1_cfg.line_size,
        }
    }

    fn filter_one(&mut self, rec: &ulmt_workloads::TraceRecord) -> Option<LineAddr> {
        let l1_line = rec.addr.line(self.l1_line);
        match self.l1.access(l1_line, rec.is_write) {
            AccessOutcome::Hit { .. } => return None,
            AccessOutcome::Miss { .. } | AccessOutcome::MissMerged { .. } => {
                self.l1.fill(l1_line, false);
            }
            AccessOutcome::Blocked => {}
        }
        let l2_line = rec.addr.line(LineAddr::L2_LINE);
        match self.l2.access(l2_line, rec.is_write) {
            AccessOutcome::Hit { .. } => None,
            AccessOutcome::Miss { .. } | AccessOutcome::MissMerged { .. } => {
                self.l2.fill(l2_line, false);
                Some(l2_line)
            }
            AccessOutcome::Blocked => None,
        }
    }
}

impl<I> Iterator for MissStream<I>
where
    I: Iterator<Item = ulmt_workloads::TraceRecord>,
{
    type Item = LineAddr;

    fn next(&mut self) -> Option<LineAddr> {
        loop {
            let rec = self.refs.next()?;
            if let Some(miss) = self.filter_one(&rec) {
                return Some(miss);
            }
        }
    }
}

/// The L2 miss line stream of `workload` through the Table 3 hierarchy.
pub fn l2_miss_stream(
    workload: &WorkloadSpec,
) -> MissStream<impl Iterator<Item = ulmt_workloads::TraceRecord>> {
    MissStream::new(workload.build(), CacheConfig::l1(), CacheConfig::l2())
}

/// The L2 miss line stream through the caches of `config` (used by scaled
/// profiles, whose workloads only exceed scaled caches).
pub fn l2_miss_stream_with(
    config: &crate::SystemConfig,
    workload: &WorkloadSpec,
) -> MissStream<impl Iterator<Item = ulmt_workloads::TraceRecord>> {
    MissStream::new(workload.build(), config.l1, config.l2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ulmt_workloads::App;

    #[test]
    fn repeated_small_footprint_misses_once() {
        // A workload smaller than the L2 misses each line exactly once.
        let spec = WorkloadSpec::new(App::Tree).scale(0.5).iterations(3);
        let misses: Vec<_> = l2_miss_stream(&spec).collect();
        let distinct: std::collections::HashSet<_> = misses.iter().collect();
        // Noise adds a few extra lines; the repeat iterations add nothing.
        assert!(misses.len() < spec.build().count() / 2);
        assert!(!distinct.is_empty());
    }

    #[test]
    fn streaming_footprint_misses_every_iteration() {
        let spec = WorkloadSpec::new(App::Mcf).scale(1.0).iterations(2);
        let misses = l2_miss_stream(&spec).count();
        // Footprint (22 K lines) >> L2 (8 K lines): nearly every distinct
        // line misses in both iterations.
        assert!(misses as u64 > 2 * spec.footprint_lines() * 9 / 10);
    }

    #[test]
    fn l1_filters_second_half_touches() {
        // CG touches both halves of each line: the second touch hits L1's
        // other line... both 32-B halves are distinct L1 lines, but the L2
        // sees a single miss per 64-B line.
        let spec = WorkloadSpec::new(App::Cg).scale(1.0 / 16.0).iterations(1);
        let refs = spec.build().count() as u64;
        let misses = l2_miss_stream(&spec).count() as u64;
        assert!(misses <= refs / 2 + 1, "misses {misses} refs {refs}");
    }
}
