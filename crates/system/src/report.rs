//! Human-readable run reports.

use crate::result::RunResult;

impl RunResult {
    /// Renders a compact multi-line summary of the run, suitable for
    /// terminal output or a lab notebook.
    ///
    /// # Example
    ///
    /// ```
    /// use ulmt_system::{Experiment, PrefetchScheme, SystemConfig};
    /// use ulmt_workloads::{App, WorkloadSpec};
    ///
    /// let r = Experiment::new(
    ///     SystemConfig::small(),
    ///     WorkloadSpec::new(App::Tree).scale(1.0 / 16.0).iterations(2),
    /// )
    /// .scheme(PrefetchScheme::Repl)
    /// .run();
    /// let text = r.summary();
    /// assert!(text.contains("Tree"));
    /// assert!(text.contains("BeyondL2"));
    /// ```
    pub fn summary(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!("{} / {}\n", self.app, self.scheme));
        s.push_str(&format!(
            "  execution: {} cycles ({} refs, {} L2 misses to memory)\n",
            self.exec_cycles, self.refs, self.l2_misses
        ));
        let total = self.breakdown.total().max(1) as f64;
        s.push_str(&format!(
            "  breakdown: Busy {:.1}%  UptoL2 {:.1}%  BeyondL2 {:.1}%\n",
            100.0 * self.breakdown.busy as f64 / total,
            100.0 * self.breakdown.upto_l2 as f64 / total,
            100.0 * self.breakdown.beyond_l2 as f64 / total,
        ));
        let p = &self.prefetch;
        let squashed =
            p.squashed_filter + p.squashed_demand + p.squashed_duplicate + p.squashed_at_nb;
        if p.issued + squashed > 0 {
            s.push_str(&format!(
                "  prefetching: {} issued; hits {}  delayed {}  replaced {}  redundant {}\n",
                p.issued, p.hits, p.delayed_hits, p.replaced, p.redundant
            ));
            s.push_str(&format!(
                "  squashed: filter {}  demand {}  duplicate {}  at-NB {}\n",
                p.squashed_filter, p.squashed_demand, p.squashed_duplicate, p.squashed_at_nb
            ));
        }
        if let Some(u) = &self.ulmt {
            s.push_str(&format!(
                "  ULMT: {} observations ({} dropped); response {:.0}c occupancy {:.0}c ipc {:.2}\n",
                u.steps,
                u.dropped_observations,
                u.response.mean(),
                u.occupancy.mean(),
                u.ipc()
            ));
        }
        s.push_str(&format!(
            "  memory: FSB {:.1}% busy ({:.1}% prefetch traffic); DRAM row hits {:.1}%\n",
            100.0 * self.fsb_utilization,
            100.0 * self.fsb_prefetch_utilization,
            100.0 * self.dram_row_hit_ratio
        ));
        let fr = self.inter_miss.fractions();
        let labels = self.inter_miss.labels();
        s.push_str("  inter-miss:");
        for (label, f) in labels.iter().zip(fr) {
            s.push_str(&format!(" {label} {:.0}%", 100.0 * f));
        }
        s.push('\n');
        if self.demand_q_overflow + self.prefetch_q_overflow + self.observations_dropped > 0 {
            s.push_str(&format!(
                "  pressure: q1 overflow {}  q2 dropped {}  q3 overflow {}\n",
                self.demand_q_overflow, self.observations_dropped, self.prefetch_q_overflow
            ));
        }
        if let Some(fault) = &self.fault {
            s.push_str(&format!(
                "  faults (seed {}): {} injected, {} absorbed",
                fault.seed,
                fault.injected.total(),
                fault.absorbed
            ));
            if let Some(twin) = &fault.twin {
                s.push_str(&format!(
                    "; {:.2}x vs fault-free twin ({:+} coverage events, {:+} L2 misses)",
                    twin.slowdown, twin.coverage_events_delta, twin.l2_miss_delta
                ));
            }
            s.push('\n');
        }
        if self.wall_nanos > 0 {
            s.push_str(&format!(
                "  host: {:.1} ms wall, {:.0} simulated cycles/s\n",
                self.wall_nanos as f64 / 1e6,
                self.cycles_per_wall_sec()
            ));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use crate::{Experiment, PrefetchScheme, SystemConfig};
    use ulmt_workloads::{App, WorkloadSpec};

    #[test]
    fn summary_covers_all_sections() {
        let r = Experiment::new(
            SystemConfig::small(),
            WorkloadSpec::new(App::Mcf).scale(1.0 / 32.0).iterations(2),
        )
        .scheme(PrefetchScheme::Repl)
        .run();
        let text = r.summary();
        for needle in [
            "Mcf / Repl",
            "execution:",
            "breakdown:",
            "prefetching:",
            "squashed:",
            "ULMT:",
            "memory:",
            "inter-miss:",
            "host:",
            "cycles/s",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
    }

    #[test]
    fn nopref_summary_omits_prefetch_sections() {
        let r = Experiment::new(
            SystemConfig::small(),
            WorkloadSpec::new(App::Tree).scale(1.0 / 16.0).iterations(2),
        )
        .scheme(PrefetchScheme::NoPref)
        .run();
        let text = r.summary();
        assert!(!text.contains("ULMT:"));
        assert!(!text.contains("prefetching:"));
        assert!(!text.contains("squashed:"));
    }

    #[test]
    fn faulted_summary_reports_injection_and_twin() {
        let r = Experiment::new(
            SystemConfig::small(),
            WorkloadSpec::new(App::Mcf).scale(1.0 / 16.0).iterations(2),
        )
        .scheme(PrefetchScheme::Repl)
        .faults(ulmt_simcore::FaultConfig::stress(7))
        .run();
        let text = r.summary();
        assert!(text.contains("faults (seed 7):"), "{text}");
        assert!(text.contains("vs fault-free twin"), "{text}");
    }
}
