//! Typed errors for configuration validation and guarded runs.
//!
//! Historically an inconsistent [`SystemConfig`](crate::SystemConfig)
//! panicked somewhere deep inside a component constructor, killing a whole
//! sweep. [`ConfigError`] turns every such case into a value the harness
//! can report per job, and [`SimAbort`] does the same for runs stopped by
//! the cycle-budget watchdog or a cancellation token.

use ulmt_simcore::Cycle;

/// A structural problem in a [`SystemConfig`](crate::SystemConfig),
/// detected by [`SystemConfig::validate`](crate::SystemConfig::validate)
/// before any component is built.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// A Figure 3 queue was configured with depth 0.
    ZeroQueueDepth {
        /// Which queue (`"demand"`, `"observation"`, `"prefetch"`).
        queue: &'static str,
    },
    /// The Filter module has no entries.
    ZeroFilterEntries,
    /// A cache geometry is inconsistent (zero ways/sets, ragged capacity,
    /// non-power-of-two line).
    Cache {
        /// Which cache (`"L1"`, `"L2"`).
        which: &'static str,
        /// The underlying geometry complaint.
        reason: String,
    },
    /// The main-processor parameters are invalid.
    Cpu {
        /// The underlying complaint.
        reason: String,
    },
    /// The DRAM geometry or timing is inconsistent.
    Dram {
        /// The underlying complaint.
        reason: String,
    },
    /// The front-side-bus timing is inconsistent.
    Fsb {
        /// The underlying complaint.
        reason: String,
    },
    /// The memory-processor parameters are invalid.
    MemProc {
        /// The underlying complaint.
        reason: String,
    },
    /// A fixed path latency is inconsistent with the pipeline model (every
    /// stage of the miss path must take at least one cycle, or events
    /// would re-enter the same stage in the same cycle).
    InconsistentPathLatency {
        /// Which latency (`"l2_lookup"`, `"fsb_propagate"`, ...).
        which: &'static str,
    },
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::ZeroQueueDepth { queue } => {
                write!(f, "queue depth for the {queue} queue must be at least 1")
            }
            ConfigError::ZeroFilterEntries => {
                write!(f, "the Filter module needs at least 1 entry")
            }
            ConfigError::Cache { which, reason } => write!(f, "{which} cache: {reason}"),
            ConfigError::Cpu { reason } => write!(f, "CPU: {reason}"),
            ConfigError::Dram { reason } => write!(f, "DRAM: {reason}"),
            ConfigError::Fsb { reason } => write!(f, "FSB: {reason}"),
            ConfigError::MemProc { reason } => write!(f, "memory processor: {reason}"),
            ConfigError::InconsistentPathLatency { which } => {
                write!(f, "path latency {which} must be at least 1 cycle")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Why a guarded simulation stopped before completing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AbortReason {
    /// The run's [`CancelToken`](ulmt_simcore::CancelToken) was cancelled.
    Cancelled,
    /// The run exceeded its cycle budget (a runaway-simulation watchdog).
    CycleBudgetExceeded {
        /// The budget that was exceeded, in simulated cycles.
        budget: Cycle,
    },
}

/// A simulation stopped cooperatively by the watchdog machinery.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimAbort {
    /// Why the run stopped.
    pub reason: AbortReason,
    /// Simulated cycle at which the run stopped.
    pub at_cycle: Cycle,
}

impl std::fmt::Display for SimAbort {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.reason {
            AbortReason::Cancelled => {
                write!(f, "simulation cancelled at cycle {}", self.at_cycle)
            }
            AbortReason::CycleBudgetExceeded { budget } => write!(
                f,
                "simulation exceeded its cycle budget ({budget}) at cycle {}",
                self.at_cycle
            ),
        }
    }
}

impl std::error::Error for SimAbort {}

/// Everything that can stop a guarded [`Experiment`](crate::Experiment)
/// run short of a result.
#[derive(Debug, Clone, PartialEq)]
pub enum RunError {
    /// The configuration failed validation.
    Config(ConfigError),
    /// The run was stopped by the watchdog machinery.
    Aborted(SimAbort),
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::Config(e) => write!(f, "invalid configuration: {e}"),
            RunError::Aborted(a) => write!(f, "{a}"),
        }
    }
}

impl std::error::Error for RunError {}

impl From<ConfigError> for RunError {
    fn from(e: ConfigError) -> Self {
        RunError::Config(e)
    }
}

impl From<SimAbort> for RunError {
    fn from(a: SimAbort) -> Self {
        RunError::Aborted(a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_descriptive() {
        let e = ConfigError::ZeroQueueDepth {
            queue: "observation",
        };
        assert!(e.to_string().contains("observation"));
        let a = SimAbort {
            reason: AbortReason::CycleBudgetExceeded { budget: 1000 },
            at_cycle: 1001,
        };
        assert!(a.to_string().contains("1000"));
        let r: RunError = a.into();
        assert!(r.to_string().contains("cycle budget"));
        let r: RunError = ConfigError::ZeroFilterEntries.into();
        assert!(r.to_string().contains("Filter"));
    }
}
