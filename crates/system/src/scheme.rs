//! The prefetching schemes evaluated in Figures 7–11.

use ulmt_core::AlgorithmSpec;
use ulmt_memproc::MemProcLocation;
use ulmt_workloads::App;

/// A named prefetching configuration (the bars of Figure 7 plus the
/// Figure 8 location study).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PrefetchScheme {
    /// No prefetching of any kind.
    NoPref,
    /// Processor-side 4-stream sequential prefetcher only (Table 4).
    Conven4,
    /// ULMT running the conventional Base correlation algorithm.
    Base,
    /// ULMT running the Chain algorithm.
    Chain,
    /// ULMT running the Replicated algorithm (memory processor in DRAM).
    Repl,
    /// Replicated with the memory processor in the North Bridge chip
    /// (`ReplMC` in Figure 10).
    ReplMc,
    /// The adaptive ULMT of Section 3.3.3: re-decides between sequential
    /// and Replicated prefetching on-the-fly from the observed miss
    /// stream (an extension experiment; not one of the paper's bars).
    Adaptive,
    /// `Conven4` + Replicated ULMT (the paper's best generic scheme).
    Conven4Repl,
    /// `Conven4` + Replicated with the memory processor in the North
    /// Bridge chip (`Conven4+ReplMC` in Figure 8).
    Conven4ReplMc,
    /// The per-application customization of Table 5 (on top of Conven4):
    /// CG runs `Seq1+Repl` in Verbose mode, MST and Mcf run Repl with
    /// `NumLevels = 4`, everything else falls back to `Conven4+Repl`.
    Custom,
}

/// What a scheme instantiates.
#[derive(Debug, Clone)]
pub struct SchemeSetup {
    /// Enable the processor-side `Conven4` prefetcher.
    pub conven4: bool,
    /// ULMT algorithm, if any.
    pub ulmt: Option<AlgorithmSpec>,
    /// Where the memory processor sits.
    pub location: MemProcLocation,
    /// Verbose mode: the ULMT also observes processor-side prefetch
    /// requests (Section 3.2).
    pub verbose: bool,
}

impl PrefetchScheme {
    /// The seven bars of Figure 7 in order.
    pub const FIGURE7: [PrefetchScheme; 7] = [
        PrefetchScheme::NoPref,
        PrefetchScheme::Conven4,
        PrefetchScheme::Base,
        PrefetchScheme::Chain,
        PrefetchScheme::Repl,
        PrefetchScheme::Conven4Repl,
        PrefetchScheme::Custom,
    ];

    /// Label as the figures print it.
    pub fn label(self) -> &'static str {
        match self {
            PrefetchScheme::NoPref => "NoPref",
            PrefetchScheme::Conven4 => "Conven4",
            PrefetchScheme::Base => "Base",
            PrefetchScheme::Chain => "Chain",
            PrefetchScheme::Repl => "Repl",
            PrefetchScheme::ReplMc => "ReplMC",
            PrefetchScheme::Adaptive => "Adaptive",
            PrefetchScheme::Conven4Repl => "Conven4+Repl",
            PrefetchScheme::Conven4ReplMc => "Conven4+ReplMC",
            PrefetchScheme::Custom => "Custom",
        }
    }

    /// Instantiates the scheme for `app`, using a correlation table with
    /// `num_rows` rows (Table 2 sizes it per application).
    pub fn setup(self, app: App, num_rows: usize) -> SchemeSetup {
        let repl = AlgorithmSpec::repl(num_rows);
        match self {
            PrefetchScheme::NoPref => SchemeSetup {
                conven4: false,
                ulmt: None,
                location: MemProcLocation::InDram,
                verbose: false,
            },
            PrefetchScheme::Conven4 => SchemeSetup {
                conven4: true,
                ulmt: None,
                location: MemProcLocation::InDram,
                verbose: false,
            },
            PrefetchScheme::Base => SchemeSetup {
                conven4: false,
                ulmt: Some(AlgorithmSpec::base(num_rows)),
                location: MemProcLocation::InDram,
                verbose: false,
            },
            PrefetchScheme::Chain => SchemeSetup {
                conven4: false,
                ulmt: Some(AlgorithmSpec::chain(num_rows)),
                location: MemProcLocation::InDram,
                verbose: false,
            },
            PrefetchScheme::Repl => SchemeSetup {
                conven4: false,
                ulmt: Some(repl),
                location: MemProcLocation::InDram,
                verbose: false,
            },
            PrefetchScheme::ReplMc => SchemeSetup {
                conven4: false,
                ulmt: Some(repl),
                location: MemProcLocation::NorthBridge,
                verbose: false,
            },
            PrefetchScheme::Adaptive => SchemeSetup {
                conven4: false,
                ulmt: Some(AlgorithmSpec::Adaptive(
                    ulmt_core::table::TableParams::repl_default(num_rows),
                )),
                location: MemProcLocation::InDram,
                verbose: false,
            },
            PrefetchScheme::Conven4Repl => SchemeSetup {
                conven4: true,
                ulmt: Some(repl),
                location: MemProcLocation::InDram,
                verbose: false,
            },
            PrefetchScheme::Conven4ReplMc => SchemeSetup {
                conven4: true,
                ulmt: Some(repl),
                location: MemProcLocation::NorthBridge,
                verbose: false,
            },
            PrefetchScheme::Custom => match app {
                // Table 5: Seq1+Repl in Verbose mode.
                App::Cg => SchemeSetup {
                    conven4: true,
                    ulmt: Some(AlgorithmSpec::seq1_repl(num_rows)),
                    location: MemProcLocation::InDram,
                    verbose: true,
                },
                // Table 5: Repl with NumLevels = 4.
                App::Mst | App::Mcf => SchemeSetup {
                    conven4: true,
                    ulmt: Some(AlgorithmSpec::repl_levels(num_rows, 4)),
                    location: MemProcLocation::InDram,
                    verbose: false,
                },
                _ => SchemeSetup {
                    conven4: true,
                    ulmt: Some(repl),
                    location: MemProcLocation::InDram,
                    verbose: false,
                },
            },
        }
    }
}

impl std::fmt::Display for PrefetchScheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure7_order() {
        let labels: Vec<_> = PrefetchScheme::FIGURE7.iter().map(|s| s.label()).collect();
        assert_eq!(
            labels,
            vec![
                "NoPref",
                "Conven4",
                "Base",
                "Chain",
                "Repl",
                "Conven4+Repl",
                "Custom"
            ]
        );
    }

    #[test]
    fn custom_follows_table5() {
        let cg = PrefetchScheme::Custom.setup(App::Cg, 1024);
        assert!(cg.verbose);
        assert_eq!(
            cg.ulmt.as_ref().map(AlgorithmSpec::label).as_deref(),
            Some("seq1+repl")
        );

        let mst = PrefetchScheme::Custom.setup(App::Mst, 1024);
        assert!(!mst.verbose);
        assert_eq!(
            mst.ulmt.as_ref().map(AlgorithmSpec::label).as_deref(),
            Some("repl(l4)")
        );

        let ft = PrefetchScheme::Custom.setup(App::Ft, 1024);
        assert_eq!(
            ft.ulmt.as_ref().map(AlgorithmSpec::label).as_deref(),
            Some("repl")
        );
        assert!(ft.conven4);
    }

    #[test]
    fn replmc_moves_the_processor() {
        let s = PrefetchScheme::Conven4ReplMc.setup(App::Gap, 1024);
        assert_eq!(s.location, MemProcLocation::NorthBridge);
    }

    #[test]
    fn adaptive_scheme_builds() {
        let s = PrefetchScheme::Adaptive.setup(App::Gap, 1024);
        assert_eq!(
            s.ulmt.as_ref().map(AlgorithmSpec::label).as_deref(),
            Some("adaptive")
        );
        assert!(!s.conven4);
    }

    #[test]
    fn nopref_disables_everything() {
        let s = PrefetchScheme::NoPref.setup(App::Gap, 1024);
        assert!(!s.conven4);
        assert!(s.ulmt.is_none());
    }
}
