//! The event-driven full-system simulator.
//!
//! One [`SystemSim`] owns every component of Figure 3 and advances them
//! through a deterministic event queue. The main processor is the driver:
//! it consumes the workload trace, runs ahead through its miss window, and
//! blocks when the window or a dependence stalls it; memory replies and
//! ULMT pushes wake it back up.

use std::collections::VecDeque;
use std::time::Instant;

use ulmt_cache::{AccessOutcome, Cache, PrefetchOrigin, PushOutcome};
use ulmt_core::Filter;
use ulmt_cpu::conven::L1_LINE;
use ulmt_cpu::{Conven4, MissWindow, ServiceLevel, StallBreakdown, WindowVerdict};
use ulmt_dram::{Dram, Fsb, TrafficClass};
use ulmt_memproc::{FixedLatencyMemory, MemProcConfig, MemProcessor};
use ulmt_simcore::hash::{fx_map_with_capacity, fx_set_with_capacity};
use ulmt_simcore::stats::BinnedHistogram;
use ulmt_simcore::trace::{FaultKind, PushRejectReason};
use ulmt_simcore::{
    CancelToken, Cycle, EventQueue, FaultPlan, FxHashMap, FxHashSet, LineAddr, ObservationFault,
    SharedTracer, TraceEvent,
};
use ulmt_workloads::{TraceRecord, WorkloadSpec};

use crate::config::SystemConfig;
use crate::error::{AbortReason, ConfigError, SimAbort};
use crate::result::{FaultReport, PrefetchEffect, RunResult};
use crate::scheme::PrefetchScheme;

/// How many events the guarded main loop lets pass between polls of the
/// (atomic) cancellation token. Budget checks are per-event; only the
/// cross-thread flag is amortized.
pub const CANCEL_POLL_EVENTS: u32 = 256;

/// Who a memory transaction belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ReqKind {
    /// A demand L2 miss (queue 1).
    Demand,
    /// A processor-side prefetch that missed the L2.
    CpuPrefetch,
    /// A ULMT prefetch (queue 3), delivered to the L2 as a push.
    UlmtPush,
}

#[derive(Debug)]
enum Event {
    /// The CPU may continue executing.
    CpuResume,
    /// A request arrived at the North Bridge.
    RequestAtNb { line: LineAddr, kind: ReqKind },
    /// A DRAM transaction produced its data at the memory controller.
    DramDone {
        line: LineAddr,
        kind: ReqKind,
        channel: usize,
    },
    /// Data arrived at the L2 cache (demand reply or push).
    ReplyAtL2 { line: LineAddr, kind: ReqKind },
    /// The ULMT's Prefetching step produced addresses.
    UlmtPrefetches { lines: Vec<LineAddr> },
    /// The ULMT finished its Learning step and can take the next
    /// observation.
    UlmtFree,
    /// A fault-delayed observation finally reaches queue 2.
    DelayedObservation { line: LineAddr },
    /// A DRAM channel finished its transfer slot and can start the next
    /// transaction (bank access latency overlaps with earlier transfers).
    ChannelFree { channel: usize },
}

/// What the CPU is blocked on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BlockOn {
    /// A specific line's fill.
    Line(LineAddr),
    /// Any fill (used while draining at the end, or when the L2 is
    /// MSHR-blocked).
    AnyFill,
}

/// Completion state of the previous trace reference (for dependences).
#[derive(Debug, Clone, Copy)]
enum LastRef {
    None,
    Done { at: Cycle, level: ServiceLevel },
    Outstanding { line: LineAddr },
}

#[derive(Debug, Default)]
struct OutstandingLine {
    /// Miss-window ids of demand accesses waiting on this line.
    ids: Vec<u64>,
    /// L1 lines to fill when the data arrives.
    l1_fills: Vec<LineAddr>,
}

/// The full simulated machine, ready to run one workload.
pub struct SystemSim {
    cfg: SystemConfig,
    workload: Box<dyn Iterator<Item = TraceRecord>>,

    events: EventQueue<Event>,

    // --- main processor ---
    cpu_cursor: Cycle,
    insn_count: u64,
    window: MissWindow,
    breakdown: StallBreakdown,
    next_id: u64,
    id_to_line: FxHashMap<u64, LineAddr>,
    pending_record: Option<TraceRecord>,
    pending_busy_done: bool,
    blocked: Option<BlockOn>,
    block_start: Cycle,
    last_ref: LastRef,
    conven4: Option<Conven4>,
    l1: Cache,
    l2: Cache,
    outstanding: FxHashMap<LineAddr, OutstandingLine>,

    // --- memory system ---
    fsb: Fsb,
    dram: Dram,
    demand_q: VecDeque<(LineAddr, ReqKind)>,
    prefetch_q: VecDeque<LineAddr>,
    /// O(1) membership shadow of `prefetch_q` (which never holds
    /// duplicates: insertions are dup-checked, removals clear the set).
    prefetch_q_set: FxHashSet<LineAddr>,
    /// Pushes dispatched to a DRAM channel whose L2 arrival has not
    /// happened yet.
    pushes_on_bus: u64,
    channel_busy: Vec<bool>,
    inflight_dram: FxHashMap<LineAddr, ReqKind>,
    /// Push replies between the memory controller and the L2; a matching
    /// demand request is dropped and satisfied by the push stealing its
    /// MSHR.
    inflight_push_replies: FxHashSet<LineAddr>,

    // --- ULMT ---
    memproc: Option<MemProcessor>,
    table_mem: FixedLatencyMemory,
    obs_q: VecDeque<LineAddr>,
    filter: Filter,
    verbose: bool,

    // --- robustness machinery ---
    /// Deterministic fault injection, consulted at the observation,
    /// memory-processor and DRAM-dispatch hooks.
    faults: Option<FaultPlan>,
    /// Injected fault events that were routed through an existing
    /// graceful-degradation path.
    faults_absorbed: u64,
    /// Cooperative cancellation, polled in the main loop.
    cancel: Option<CancelToken>,
    /// Watchdog: abort once simulated time exceeds this many cycles.
    cycle_budget: Option<Cycle>,
    /// Cycle-stamped event tracer; `None` (the default) keeps every
    /// emission site down to one untaken branch.
    tracer: Option<SharedTracer>,

    // --- statistics ---
    refs: u64,
    l2_miss_requests: u64,
    inter_miss: BinnedHistogram,
    last_miss_at_nb: Option<Cycle>,
    effect: PrefetchEffect,
    demand_q_overflow: u64,
    prefetch_q_overflow: u64,

    finished_trace: bool,
    done: bool,
    end_time: Cycle,
    scheme_label: String,
    app_label: String,
}

impl std::fmt::Debug for SystemSim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SystemSim")
            .field("scheme", &self.scheme_label)
            .field("app", &self.app_label)
            .field("cpu_cursor", &self.cpu_cursor)
            .field("refs", &self.refs)
            .finish()
    }
}

impl SystemSim {
    /// Builds a simulator for `workload` under `scheme`.
    ///
    /// The correlation table is sized from the workload's footprint by the
    /// Table 2 rule (smallest power of two comfortably above the distinct
    /// miss lines), scaled with the workload.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails
    /// [`SystemConfig::validate`]; use [`SystemSim::try_new`] for a
    /// recoverable error.
    pub fn new(cfg: SystemConfig, workload: &WorkloadSpec, scheme: PrefetchScheme) -> Self {
        Self::try_new(cfg, workload, scheme).unwrap_or_else(|e| panic!("invalid SystemConfig: {e}"))
    }

    /// [`SystemSim::new`] returning a typed [`ConfigError`] instead of
    /// panicking on an invalid configuration.
    pub fn try_new(
        cfg: SystemConfig,
        workload: &WorkloadSpec,
        scheme: PrefetchScheme,
    ) -> Result<Self, ConfigError> {
        let num_rows = table_rows_for(workload);
        let setup = scheme.setup(workload.app, num_rows);
        let memproc = setup.ulmt.as_ref().map(|spec| {
            let mp_cfg = MemProcConfig {
                location: setup.location,
                ..cfg.memproc
            };
            MemProcessor::new(mp_cfg, spec.build())
        });
        Self::try_from_parts_hinted(
            cfg,
            Box::new(workload.build()),
            setup.conven4,
            memproc,
            setup.verbose,
            scheme.label().to_string(),
            workload.app.name().to_string(),
            workload.footprint_lines(),
        )
    }

    /// Builds a simulator from explicit parts: any workload trace, any
    /// (optional) memory processor. This is the hook for multiprogrammed
    /// runs and hand-rolled customizations that the [`PrefetchScheme`]
    /// presets do not cover.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`SystemConfig::validate`].
    pub fn from_parts(
        cfg: SystemConfig,
        workload: Box<dyn Iterator<Item = TraceRecord>>,
        conven4: bool,
        memproc: Option<MemProcessor>,
        verbose: bool,
        scheme_label: String,
        app_label: String,
    ) -> Self {
        Self::from_parts_hinted(
            cfg,
            workload,
            conven4,
            memproc,
            verbose,
            scheme_label,
            app_label,
            0,
        )
    }

    /// [`SystemSim::from_parts`] plus a workload footprint hint (distinct
    /// lines the trace is expected to touch, 0 for unknown) used to
    /// pre-size the event queue and the hot-path address maps so the
    /// steady state allocates nothing.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`SystemConfig::validate`]; use
    /// [`SystemSim::try_from_parts_hinted`] for a recoverable error.
    #[allow(clippy::too_many_arguments)]
    pub fn from_parts_hinted(
        cfg: SystemConfig,
        workload: Box<dyn Iterator<Item = TraceRecord>>,
        conven4: bool,
        memproc: Option<MemProcessor>,
        verbose: bool,
        scheme_label: String,
        app_label: String,
        footprint_hint: u64,
    ) -> Self {
        Self::try_from_parts_hinted(
            cfg,
            workload,
            conven4,
            memproc,
            verbose,
            scheme_label,
            app_label,
            footprint_hint,
        )
        .unwrap_or_else(|e| panic!("invalid SystemConfig: {e}"))
    }

    /// [`SystemSim::from_parts_hinted`] returning a typed [`ConfigError`]
    /// instead of panicking on an invalid configuration.
    #[allow(clippy::too_many_arguments)]
    pub fn try_from_parts_hinted(
        cfg: SystemConfig,
        workload: Box<dyn Iterator<Item = TraceRecord>>,
        conven4: bool,
        memproc: Option<MemProcessor>,
        verbose: bool,
        scheme_label: String,
        app_label: String,
        footprint_hint: u64,
    ) -> Result<Self, ConfigError> {
        cfg.validate()?;
        let location = memproc
            .as_ref()
            .map(|mp| mp.config().location)
            .unwrap_or_default();
        let table_mem = FixedLatencyMemory::new(location);
        // The maps only ever hold in-flight state, so their steady-state
        // sizes are bounded by the machine, not the footprint: the miss
        // window caps demand ids, the L2 MSHRs cap outstanding lines, and
        // the NB queues cap memory transactions. The event queue scales
        // with concurrent activity; larger footprints sustain more of it,
        // so let the hint raise its initial capacity (bounded — this is an
        // optimization, never a multi-MB up-front allocation).
        let inflight_cap = cfg.queues.demand + cfg.queues.prefetch + cfg.dram.channels;
        let event_cap = 1024usize.max((footprint_hint as usize / 4).min(1 << 14));
        Ok(SystemSim {
            workload,
            events: EventQueue::with_capacity(event_cap),
            cpu_cursor: 0,
            insn_count: 0,
            window: MissWindow::new(cfg.cpu.max_pending_loads, cfg.cpu.rob_insns),
            breakdown: StallBreakdown::new(),
            next_id: 0,
            id_to_line: fx_map_with_capacity(cfg.cpu.max_pending_loads),
            pending_record: None,
            pending_busy_done: false,
            blocked: None,
            block_start: 0,
            last_ref: LastRef::None,
            conven4: conven4.then(Conven4::table4_default),
            l1: Cache::new(cfg.l1),
            l2: Cache::new(cfg.l2),
            outstanding: fx_map_with_capacity(cfg.l2.mshrs),
            fsb: Fsb::new(cfg.fsb),
            dram: Dram::new(cfg.dram),
            demand_q: VecDeque::with_capacity(cfg.queues.demand),
            prefetch_q: VecDeque::with_capacity(cfg.queues.prefetch),
            prefetch_q_set: fx_set_with_capacity(cfg.queues.prefetch),
            pushes_on_bus: 0,
            channel_busy: vec![false; cfg.dram.channels],
            inflight_dram: fx_map_with_capacity(inflight_cap),
            inflight_push_replies: fx_set_with_capacity(cfg.queues.prefetch),
            memproc,
            table_mem,
            obs_q: VecDeque::with_capacity(cfg.queues.observation),
            filter: Filter::new(cfg.filter_entries),
            verbose,
            faults: None,
            faults_absorbed: 0,
            cancel: None,
            cycle_budget: None,
            tracer: None,
            refs: 0,
            l2_miss_requests: 0,
            inter_miss: BinnedHistogram::inter_miss(),
            last_miss_at_nb: None,
            effect: PrefetchEffect::default(),
            demand_q_overflow: 0,
            prefetch_q_overflow: 0,
            finished_trace: false,
            done: false,
            end_time: 0,
            scheme_label,
            app_label,
            cfg,
        })
    }

    /// Installs a deterministic fault-injection plan. Every fault the plan
    /// produces is routed through an existing overflow/drop/squash path,
    /// and the run's [`RunResult`] carries a [`FaultReport`].
    pub fn set_faults(&mut self, plan: FaultPlan) {
        self.faults = Some(plan);
    }

    /// Installs a cooperative cancellation token, polled between events in
    /// the main loop. A guarded run stops with
    /// [`AbortReason::Cancelled`] shortly after the token fires.
    pub fn set_cancel_token(&mut self, token: CancelToken) {
        self.cancel = Some(token);
    }

    /// Installs a cycle-budget watchdog: a guarded run stops with
    /// [`AbortReason::CycleBudgetExceeded`] once simulated time passes
    /// `budget` cycles.
    pub fn set_cycle_budget(&mut self, budget: Cycle) {
        self.cycle_budget = Some(budget);
    }

    /// Installs a cycle-stamped event tracer. Clones of the handle are
    /// propagated into the FSB and memory-processor models so every
    /// component stamps into one time-ordered stream; the resulting
    /// [`RunResult`] then carries the recorded [`TraceBuffer`]
    /// (see [`RunResult::trace`](crate::RunResult)).
    pub fn set_tracer(&mut self, tracer: SharedTracer) {
        self.fsb.set_tracer(tracer.clone());
        if let Some(mp) = self.memproc.as_mut() {
            mp.set_tracer(tracer.clone());
        }
        self.tracer = Some(tracer);
    }

    /// Records one trace event, if tracing is enabled.
    #[inline]
    fn emit(&self, at: Cycle, event: TraceEvent) {
        if let Some(tracer) = &self.tracer {
            tracer.record(at, event);
        }
    }

    /// Runs the simulation to completion and returns the measurements.
    ///
    /// # Panics
    ///
    /// Panics if the simulation deadlocks (an internal invariant
    /// violation), or if a watchdog installed via
    /// [`SystemSim::set_cancel_token`] / [`SystemSim::set_cycle_budget`]
    /// fires — use [`SystemSim::run_guarded`] to observe those as values.
    pub fn run(self) -> RunResult {
        self.run_guarded().unwrap_or_else(|a| panic!("{a}"))
    }

    /// Runs the simulation to completion, stopping cooperatively if the
    /// cancellation token fires or the cycle budget is exceeded.
    ///
    /// The watchdog checks are cooperative and sit in the main event loop:
    /// the cycle budget is compared against every event timestamp (a
    /// runaway simulation is caught within one event), while the atomic
    /// cancellation flag is polled every [`CANCEL_POLL_EVENTS`] events to
    /// keep it off the hot path.
    ///
    /// # Panics
    ///
    /// Panics if the simulation deadlocks (an internal invariant
    /// violation).
    pub fn run_guarded(mut self) -> Result<RunResult, SimAbort> {
        let wall_start = Instant::now();
        self.events.push(0, Event::CpuResume);
        let mut since_cancel_poll: u32 = 0;
        while let Some((t, ev)) = self.events.pop() {
            if let Some(budget) = self.cycle_budget {
                if t > budget {
                    return Err(SimAbort {
                        reason: AbortReason::CycleBudgetExceeded { budget },
                        at_cycle: t,
                    });
                }
            }
            if let Some(token) = &self.cancel {
                since_cancel_poll += 1;
                if since_cancel_poll >= CANCEL_POLL_EVENTS {
                    since_cancel_poll = 0;
                    if token.is_cancelled() {
                        return Err(SimAbort {
                            reason: AbortReason::Cancelled,
                            at_cycle: t,
                        });
                    }
                }
            }
            self.handle(t, ev);
            if self.done {
                break;
            }
        }
        assert!(
            self.done,
            "simulation deadlocked: blocked={:?} window={} outstanding={} demand_q={}",
            self.blocked,
            self.window.len(),
            self.outstanding.len(),
            self.demand_q.len()
        );
        Ok(self.finish(wall_start.elapsed().as_nanos() as u64))
    }

    fn handle(&mut self, t: Cycle, ev: Event) {
        match ev {
            Event::CpuResume => {
                if self.blocked.is_none() && !self.done {
                    self.cpu_step(t);
                }
            }
            Event::RequestAtNb { line, kind } => self.request_at_nb(line, kind, t),
            Event::DramDone {
                line,
                kind,
                channel,
            } => self.dram_done(line, kind, channel, t),
            Event::ReplyAtL2 { line, kind } => self.reply_at_l2(line, kind, t),
            Event::UlmtPrefetches { lines } => self.enqueue_prefetches(lines, t),
            Event::UlmtFree => self.ulmt_next(t),
            Event::DelayedObservation { line } => self.deliver_observation(line, t),
            Event::ChannelFree { channel } => {
                self.channel_busy[channel] = false;
                self.dispatch_channels(t);
            }
        }
    }

    // ------------------------------------------------------------------
    // Main processor
    // ------------------------------------------------------------------

    fn cpu_step(&mut self, now: Cycle) {
        debug_assert!(self.blocked.is_none());
        let mut t = self.cpu_cursor.max(now);
        loop {
            let Some(rec) = self.pending_record.take().or_else(|| {
                self.pending_busy_done = false;
                self.workload.next()
            }) else {
                self.finished_trace = true;
                if self.window.is_empty() {
                    // Retire the final reference before stopping the clock.
                    if let LastRef::Done { at, level } = self.last_ref {
                        if at > t {
                            self.breakdown.add_stall(level, at - t);
                            t = at;
                        }
                    }
                    self.cpu_cursor = t;
                    self.done = true;
                    self.end_time = t;
                } else {
                    // Drain the remaining in-flight loads.
                    self.cpu_cursor = t;
                    self.block(BlockOn::AnyFill, t);
                }
                return;
            };

            // 1. Miss-window limits.
            match self.window.check(self.insn_count) {
                WindowVerdict::Proceed => {}
                WindowVerdict::StallFull { id } | WindowVerdict::StallRob { id } => {
                    let line = self.id_to_line[&id];
                    self.pending_record = Some(rec);
                    self.cpu_cursor = t;
                    self.block(BlockOn::Line(line), t);
                    return;
                }
            }

            // 2. Dependence on the previous reference.
            if rec.dependent {
                match self.last_ref {
                    LastRef::Done { at, level } if at > t => {
                        self.breakdown.add_stall(level, at - t);
                        t = at;
                    }
                    LastRef::Outstanding { line } => {
                        self.pending_record = Some(rec);
                        self.cpu_cursor = t;
                        self.block(BlockOn::Line(line), t);
                        return;
                    }
                    _ => {}
                }
            }

            // 3. Computation before the reference.
            if !self.pending_busy_done {
                let busy = self.cfg.cpu.busy_cycles(rec.gap_insns as u64);
                t += busy;
                self.breakdown.add_busy(busy);
                self.insn_count += rec.gap_insns as u64 + 1;
                self.pending_busy_done = true;
            }

            // 4. The access itself.
            match self.issue_access(&rec, t) {
                IssueOutcome::Continue => {
                    self.pending_busy_done = false;
                    self.refs += 1;
                    // Only retired references count: an L2Blocked retry of
                    // the same record must not emit twice.
                    self.emit(
                        t,
                        TraceEvent::Ref {
                            addr: rec.addr,
                            is_write: rec.is_write,
                        },
                    );
                }
                IssueOutcome::L2Blocked => {
                    // Wait for any MSHR to free up.
                    self.pending_record = Some(rec);
                    self.cpu_cursor = t;
                    self.block(BlockOn::AnyFill, t);
                    return;
                }
            }
        }
    }

    fn block(&mut self, on: BlockOn, t: Cycle) {
        self.blocked = Some(on);
        self.block_start = t;
    }

    /// Wakes the CPU at `t` because `line`'s data arrived (or `None` for a
    /// generic fill when blocked on `AnyFill`).
    fn maybe_wake_cpu(&mut self, line: LineAddr, t: Cycle) {
        let wake = match self.blocked {
            Some(BlockOn::Line(l)) => l == line,
            Some(BlockOn::AnyFill) => true,
            None => false,
        };
        if wake {
            let stall = t.saturating_sub(self.block_start.max(self.cpu_cursor));
            // Data always comes from beyond the L2 here: blocked waits end
            // with a memory fill.
            self.breakdown.add_stall(ServiceLevel::Memory, stall);
            self.cpu_cursor = self.cpu_cursor.max(t);
            self.blocked = None;
            self.events.push(t, Event::CpuResume);
        }
    }

    fn issue_access(&mut self, rec: &TraceRecord, t: Cycle) -> IssueOutcome {
        let l1_line = rec.addr.line(L1_LINE);
        let l2_line = rec.addr.line(LineAddr::L2_LINE);

        let (l1_missed, l1_allocated) = match self.l1.access(l1_line, rec.is_write) {
            AccessOutcome::Hit { .. } => {
                self.last_ref = LastRef::Done {
                    at: t + self.cfg.cpu.l1_hit,
                    level: ServiceLevel::L1,
                };
                (false, false)
            }
            AccessOutcome::Miss { .. } => (true, true),
            AccessOutcome::MissMerged { .. } => (true, false),
            AccessOutcome::Blocked => (true, false), // bypass the L1
        };
        if !l1_missed {
            return IssueOutcome::Continue;
        }

        // The processor-side prefetcher watches the L1 miss stream.
        if self.conven4.is_some() {
            let prefetches = self
                .conven4
                .as_mut()
                .expect("checked above")
                .observe_l1_miss(rec.addr);
            for p in prefetches {
                self.issue_cpu_prefetch(p, t);
            }
        }

        match self.l2.access(l2_line, rec.is_write) {
            AccessOutcome::Hit {
                first_touch_of_prefetch,
            } => {
                if first_touch_of_prefetch == Some(PrefetchOrigin::Push) {
                    self.effect.hits += 1;
                    self.emit(t, TraceEvent::PushFirstTouch { line: l2_line });
                }
                self.last_ref = LastRef::Done {
                    at: t + self.cfg.cpu.l2_hit,
                    level: ServiceLevel::L2,
                };
                if l1_allocated {
                    self.l1.fill(l1_line, false);
                }
                IssueOutcome::Continue
            }
            AccessOutcome::MissMerged { .. } => {
                let id = self.new_window_id(l2_line);
                let out = self.outstanding.entry(l2_line).or_default();
                out.ids.push(id);
                if l1_allocated {
                    out.l1_fills.push(l1_line);
                }
                self.last_ref = LastRef::Outstanding { line: l2_line };
                IssueOutcome::Continue
            }
            AccessOutcome::Miss {
                evicted_dirty,
                evicted_prefetch,
                ..
            } => {
                self.push_replaced(evicted_prefetch, t);
                self.send_writeback(evicted_dirty, t);
                let id = self.new_window_id(l2_line);
                let out = self.outstanding.entry(l2_line).or_default();
                out.ids.push(id);
                if l1_allocated {
                    out.l1_fills.push(l1_line);
                }
                self.last_ref = LastRef::Outstanding { line: l2_line };
                self.l2_miss_requests += 1;
                self.emit(t, TraceEvent::L2Miss { line: l2_line });
                self.send_request(l2_line, ReqKind::Demand, t);
                IssueOutcome::Continue
            }
            AccessOutcome::Blocked => IssueOutcome::L2Blocked,
        }
    }

    fn new_window_id(&mut self, line: LineAddr) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        self.window.issue(id, self.insn_count);
        self.id_to_line.insert(id, line);
        id
    }

    /// Issues one processor-side prefetch (to the L1, possibly walking
    /// down to memory). Never blocks the CPU.
    fn issue_cpu_prefetch(&mut self, l1_line: LineAddr, t: Cycle) {
        let l1_allocated = match self.l1.access_prefetch(l1_line) {
            AccessOutcome::Hit { .. } | AccessOutcome::Blocked => return,
            AccessOutcome::Miss { .. } => true,
            AccessOutcome::MissMerged { .. } => false,
        };
        let l2_line = l1_line.byte_addr(L1_LINE).line(LineAddr::L2_LINE);
        match self.l2.access_prefetch(l2_line) {
            AccessOutcome::Hit { .. } => {
                if l1_allocated {
                    self.l1.fill(l1_line, true);
                }
            }
            AccessOutcome::MissMerged { .. } => {
                if l1_allocated {
                    self.outstanding
                        .entry(l2_line)
                        .or_default()
                        .l1_fills
                        .push(l1_line);
                }
            }
            AccessOutcome::Miss {
                evicted_dirty,
                evicted_prefetch,
                ..
            } => {
                self.push_replaced(evicted_prefetch, t);
                self.send_writeback(evicted_dirty, t);
                if l1_allocated {
                    self.outstanding
                        .entry(l2_line)
                        .or_default()
                        .l1_fills
                        .push(l1_line);
                }
                self.send_request(l2_line, ReqKind::CpuPrefetch, t);
            }
            AccessOutcome::Blocked => {
                // No resources: the prefetch is simply dropped; release the
                // L1 reservation by filling it immediately as a prefetch.
                if l1_allocated {
                    self.l1.fill(l1_line, true);
                }
            }
        }
    }

    /// Sends a miss/prefetch request towards the North Bridge over the
    /// FSB.
    fn send_request(&mut self, line: LineAddr, kind: ReqKind, t: Cycle) {
        let class = match kind {
            ReqKind::Demand => TrafficClass::Demand,
            ReqKind::CpuPrefetch | ReqKind::UlmtPush => TrafficClass::Prefetch,
        };
        let on_bus = self
            .fsb
            .transfer_request(t + self.cfg.path.l2_lookup, class);
        self.events.push(
            on_bus + self.cfg.path.fsb_propagate,
            Event::RequestAtNb { line, kind },
        );
    }

    /// Records the eviction of a never-touched *pushed* line (`Replaced`
    /// in Figure 9). Processor-side prefetch victims have their own cache
    /// counters and are not part of the push accounting.
    fn push_replaced(&self, evicted: Option<(LineAddr, PrefetchOrigin)>, t: Cycle) {
        if let Some((victim, PrefetchOrigin::Push)) = evicted {
            self.emit(t, TraceEvent::PushReplaced { line: victim });
        }
    }

    /// Models a dirty-line write-back: occupies the FSB, no DRAM
    /// transaction (the paper ignores write-backs beyond their bandwidth).
    fn send_writeback(&mut self, evicted: Option<LineAddr>, t: Cycle) {
        if let Some(line) = evicted {
            self.fsb.transfer_data(t, TrafficClass::WriteBack);
            self.l2.writeback_queue_mut().remove(line);
        }
    }

    // ------------------------------------------------------------------
    // North Bridge / memory controller
    // ------------------------------------------------------------------

    fn request_at_nb(&mut self, line: LineAddr, kind: ReqKind, t: Cycle) {
        if kind == ReqKind::Demand {
            if let Some(last) = self.last_miss_at_nb {
                self.inter_miss.record(t - last);
            }
            self.last_miss_at_nb = Some(t);
        }

        // Cross-queue squashing (Section 3.2): a miss matching a queued
        // ULMT prefetch removes the prefetch; a miss matching an in-flight
        // prefetch rides its reply.
        if self.prefetch_q_set.remove(&line) {
            let pos = self
                .prefetch_q
                .iter()
                .position(|&p| p == line)
                .expect("set shadows the queue");
            self.prefetch_q.remove(pos);
            self.effect.squashed_at_nb += 1;
            self.emit(t, TraceEvent::Q3SquashByDemand { line });
        }
        if self.inflight_dram.get(&line) == Some(&ReqKind::UlmtPush)
            || self.inflight_push_replies.contains(&line)
        {
            // "If a memory-prefetched line matches a miss request from the
            // main processor, the former is considered to be the reply of
            // the latter" — the push will steal the L2 MSHR.
            self.observe(line, kind, t);
            return;
        }

        if self.demand_q.len() >= self.cfg.queues.demand {
            self.demand_q_overflow += 1;
            self.emit(t, TraceEvent::DemandOverflow { line });
        }
        self.demand_q.push_back((line, kind));
        self.observe(line, kind, t);
        self.dispatch_channels(t);
    }

    /// Queue 2: offer an observation to the ULMT, consulting the fault
    /// plan first. Every fault routes through an existing graceful path:
    /// drops use the queue-2 drop accounting, duplicates compete for
    /// queue-2 space, delays re-enter this path later via an event.
    fn observe(&mut self, line: LineAddr, kind: ReqKind, t: Cycle) {
        let observable = match kind {
            ReqKind::Demand => true,
            ReqKind::CpuPrefetch => self.verbose,
            ReqKind::UlmtPush => false,
        };
        if !observable || self.memproc.is_none() {
            return;
        }
        let mut duplicate = false;
        if let Some(plan) = self.faults.as_mut() {
            let fault = plan.on_observation();
            if plan.take_queue_reduction() {
                self.cfg.queues.demand = (self.cfg.queues.demand / 2).max(1);
                self.cfg.queues.observation = (self.cfg.queues.observation / 2).max(1);
                self.cfg.queues.prefetch = (self.cfg.queues.prefetch / 2).max(1);
                // Excess queued observations are dropped through the
                // normal overflow path as new ones arrive; nothing is
                // truncated behind the accounting's back.
                self.faults_absorbed += 1;
                self.emit(
                    t,
                    TraceEvent::FaultInjected {
                        kind: FaultKind::QueueReduction,
                        magnitude: 0,
                    },
                );
            }
            match fault {
                Some(ObservationFault::Drop) => {
                    self.memproc
                        .as_mut()
                        .expect("checked above")
                        .record_dropped_observation();
                    self.faults_absorbed += 1;
                    self.emit(
                        t,
                        TraceEvent::FaultInjected {
                            kind: FaultKind::DropObservation,
                            magnitude: 0,
                        },
                    );
                    self.emit(t, TraceEvent::ObsDrop { line });
                    return;
                }
                Some(ObservationFault::Duplicate) => duplicate = true,
                Some(ObservationFault::Delay(d)) => {
                    // Absorbed at scheduling: the observation rejoins the
                    // normal delivery path via the event queue (and is
                    // simply discarded if the run drains first).
                    self.events.push(t + d, Event::DelayedObservation { line });
                    self.faults_absorbed += 1;
                    self.emit(
                        t,
                        TraceEvent::FaultInjected {
                            kind: FaultKind::DelayObservation,
                            magnitude: d,
                        },
                    );
                    return;
                }
                None => {}
            }
        }
        self.deliver_observation(line, t);
        if duplicate {
            self.faults_absorbed += 1;
            self.emit(
                t,
                TraceEvent::FaultInjected {
                    kind: FaultKind::DuplicateObservation,
                    magnitude: 0,
                },
            );
            self.deliver_observation(line, t);
        }
    }

    /// The fault-free tail of [`SystemSim::observe`]: hand `line` to the
    /// ULMT now if it is idle, queue it if there is room, otherwise drop
    /// the *oldest* queued observation to make room (the newest
    /// observation is the most likely to still be timely — Section 3.2's
    /// queue 2 behaves as a sliding window over the miss stream).
    fn deliver_observation(&mut self, line: LineAddr, t: Cycle) {
        self.emit(t, TraceEvent::ObsEnqueue { line });
        let idle = self.memproc.as_ref().expect("caller checked").is_idle_at(t);
        if idle && self.obs_q.is_empty() {
            self.ulmt_process(line, t);
            return;
        }
        // `while`, not `if`: a forced mid-run queue-depth reduction can
        // leave the queue over the new depth, and each arrival then drains
        // it back down through the normal drop accounting.
        while self.obs_q.len() >= self.cfg.queues.observation {
            let dropped = self.obs_q.pop_front().expect("len checked above");
            self.emit(t, TraceEvent::ObsDrop { line: dropped });
            self.memproc
                .as_mut()
                .expect("caller checked")
                .record_dropped_observation();
        }
        self.obs_q.push_back(line);
    }

    fn dispatch_channels(&mut self, t: Cycle) {
        for c in 0..self.channel_busy.len() {
            if self.channel_busy[c] {
                continue;
            }
            // Demand (queue 1) has priority over prefetches (queue 3).
            let pick = self
                .demand_q
                .iter()
                .position(|&(l, _)| self.dram.channel_of(l) == c)
                .map(|pos| {
                    let (l, k) = self.demand_q.remove(pos).expect("position is valid");
                    (l, k)
                })
                .or_else(|| {
                    self.prefetch_q
                        .iter()
                        .position(|&l| self.dram.channel_of(l) == c)
                        .map(|pos| {
                            let l = self.prefetch_q.remove(pos).expect("position is valid");
                            self.prefetch_q_set.remove(&l);
                            (l, ReqKind::UlmtPush)
                        })
                });
            let Some((line, kind)) = pick else { continue };
            self.channel_busy[c] = true;
            if kind == ReqKind::UlmtPush {
                self.pushes_on_bus += 1;
                self.emit(
                    t,
                    TraceEvent::PushDispatch {
                        line,
                        channel: c as u32,
                    },
                );
            }
            let access = self.dram.access(line);
            self.emit(
                t,
                TraceEvent::DramAccess {
                    line,
                    channel: c as u32,
                    row_hit: access.row_hit,
                },
            );
            // Fault hook: a transient bank-busy spike adds core-access
            // latency to this one transaction; the reply path is latency-
            // tolerant, so the spike is absorbed as an ordinary slow access.
            let busy_spike = match self.faults.as_mut() {
                Some(plan) => {
                    let b = plan.dram_busy();
                    if b > 0 {
                        self.faults_absorbed += 1;
                    }
                    b
                }
                None => 0,
            };
            if busy_spike > 0 {
                self.emit(
                    t,
                    TraceEvent::FaultInjected {
                        kind: FaultKind::DramBusy,
                        magnitude: busy_spike,
                    },
                );
            }
            let injection = if kind == ReqKind::UlmtPush {
                self.memproc
                    .as_ref()
                    .map(|mp| mp.config().location.prefetch_injection_delay())
                    .unwrap_or(0)
            } else {
                0
            };
            let data_at_controller = t
                + injection
                + busy_spike
                + self.cfg.path.nb_to_dram
                + access.latency
                + self.cfg.dram.t_transfer;
            self.inflight_dram.insert(line, kind);
            // The channel's issue rate is bounded by its transfer time;
            // the bank access pipelines underneath earlier transfers.
            self.events.push(
                t + self.cfg.dram.t_transfer,
                Event::ChannelFree { channel: c },
            );
            self.events.push(
                data_at_controller,
                Event::DramDone {
                    line,
                    kind,
                    channel: c,
                },
            );
        }
    }

    fn dram_done(&mut self, line: LineAddr, kind: ReqKind, channel: usize, t: Cycle) {
        let _ = channel; // freed earlier by ChannelFree
        self.inflight_dram.remove(&line);
        if kind == ReqKind::UlmtPush {
            self.inflight_push_replies.insert(line);
        }
        let class = match kind {
            ReqKind::Demand => TrafficClass::Demand,
            ReqKind::CpuPrefetch | ReqKind::UlmtPush => TrafficClass::Prefetch,
        };
        let on_bus = self.fsb.transfer_data(t + self.cfg.path.nb_to_dram, class);
        self.events.push(
            on_bus + self.cfg.path.fsb_propagate + self.cfg.path.deliver,
            Event::ReplyAtL2 { line, kind },
        );
    }

    // ------------------------------------------------------------------
    // L2 arrival
    // ------------------------------------------------------------------

    fn reply_at_l2(&mut self, line: LineAddr, kind: ReqKind, t: Cycle) {
        match kind {
            ReqKind::Demand | ReqKind::CpuPrefetch => {
                let demand_waiting = self.l2.fill(line, false);
                self.emit(
                    t,
                    TraceEvent::L2Fill {
                        line,
                        demand_waiting,
                    },
                );
                if demand_waiting {
                    self.effect.non_pref_misses += 1;
                }
                self.complete_line(line, t);
            }
            ReqKind::UlmtPush => {
                self.inflight_push_replies.remove(&line);
                self.pushes_on_bus -= 1;
                match self.l2.push(line) {
                    PushOutcome::StoleMshr {
                        demand_was_waiting,
                        installed_as_prefetch,
                    } => {
                        self.emit(
                            t,
                            TraceEvent::PushStoleMshr {
                                line,
                                demand_waiting: demand_was_waiting,
                                installed_prefetched: installed_as_prefetch,
                            },
                        );
                        if demand_was_waiting {
                            self.effect.delayed_hits += 1;
                        }
                        if installed_as_prefetch {
                            // The stolen MSHR belonged to a processor-side
                            // prefetch: the pushed line now sits untouched
                            // in the L2 exactly like an accepted push.
                            self.effect.accepted += 1;
                        }
                        self.complete_line(line, t);
                    }
                    PushOutcome::Accepted {
                        evicted_dirty,
                        evicted_prefetch,
                    } => {
                        self.emit(t, TraceEvent::PushAccept { line });
                        self.effect.accepted += 1;
                        self.push_replaced(evicted_prefetch, t);
                        self.send_writeback(evicted_dirty, t);
                    }
                    outcome @ (PushOutcome::DroppedPresent
                    | PushOutcome::DroppedWriteback
                    | PushOutcome::DroppedNoMshr
                    | PushOutcome::DroppedSetPending) => {
                        let reason = match outcome {
                            PushOutcome::DroppedPresent => PushRejectReason::Present,
                            PushOutcome::DroppedWriteback => PushRejectReason::Writeback,
                            PushOutcome::DroppedNoMshr => PushRejectReason::NoMshr,
                            _ => PushRejectReason::SetPending,
                        };
                        self.emit(t, TraceEvent::PushReject { line, reason });
                    }
                }
            }
        }
    }

    /// Completes every access waiting on `line`: retires window entries,
    /// fills the L1, updates the dependence tracker and wakes the CPU.
    fn complete_line(&mut self, line: LineAddr, t: Cycle) {
        if let Some(out) = self.outstanding.remove(&line) {
            for id in out.ids {
                self.window.complete(id);
                self.id_to_line.remove(&id);
            }
            for l1_line in out.l1_fills {
                self.l1.fill(l1_line, false);
            }
        }
        if let LastRef::Outstanding { line: l } = self.last_ref {
            if l == line {
                self.last_ref = LastRef::Done {
                    at: t,
                    level: ServiceLevel::Memory,
                };
            }
        }
        self.maybe_wake_cpu(line, t);
        if self.finished_trace && self.blocked.is_none() && self.window.is_empty() && !self.done {
            self.done = true;
            self.end_time = self.cpu_cursor.max(t);
        }
    }

    // ------------------------------------------------------------------
    // ULMT
    // ------------------------------------------------------------------

    fn ulmt_process(&mut self, miss: LineAddr, t: Cycle) {
        // Fault hook: a transient stall (e.g. the memory processor's OS
        // thread being descheduled) delays the Prefetching step; the
        // existing occupancy accounting absorbs it as ordinary busy time.
        let stall = match self.faults.as_mut() {
            Some(plan) => {
                let s = plan.memproc_stall();
                if s > 0 {
                    self.faults_absorbed += 1;
                }
                s
            }
            None => 0,
        };
        if stall > 0 {
            self.emit(
                t,
                TraceEvent::FaultInjected {
                    kind: FaultKind::MemprocStall,
                    magnitude: stall,
                },
            );
        }
        let Some(mp) = self.memproc.as_mut() else {
            return;
        };
        let start = t.max(mp.busy_until()) + stall;
        let step = mp.process(miss, start, &mut self.table_mem);
        if !step.prefetches.is_empty() {
            self.events.push(
                step.response_done,
                Event::UlmtPrefetches {
                    lines: step.prefetches,
                },
            );
        }
        self.events.push(step.occupancy_done, Event::UlmtFree);
    }

    fn ulmt_next(&mut self, t: Cycle) {
        let idle = self.memproc.as_ref().is_some_and(|mp| mp.is_idle_at(t));
        if idle {
            if let Some(miss) = self.obs_q.pop_front() {
                self.ulmt_process(miss, t);
            }
        }
    }

    /// Queue 3 insertion with Filter and cross-queue squashing.
    ///
    /// Only requests that survive every admission stage — Filter, pending
    /// demand, duplicate, queue depth — enter queue 3 and count as
    /// `issued`; each squash stage has its own counter, so the stages
    /// partition the ULMT's raw request stream exactly.
    fn enqueue_prefetches(&mut self, lines: Vec<LineAddr>, t: Cycle) {
        for line in lines {
            if !self.filter.admit(line) {
                self.effect.squashed_filter += 1;
                self.emit(t, TraceEvent::FilterDrop { line });
                continue;
            }
            self.emit(t, TraceEvent::FilterAdmit { line });
            // A demand request for the same line is already on its way to
            // (or in) DRAM: the prefetch is redundant. Also drop *every*
            // matching observation to save ULMT occupancy (Section 3.2) —
            // duplicates arise from fault injection and from CpuPrefetch
            // observation under verbose schemes.
            let demand_pending = self.demand_q.iter().any(|&(l, _)| l == line)
                || self.inflight_dram.contains_key(&line);
            if demand_pending {
                let before = self.obs_q.len();
                self.obs_q.retain(|&o| o != line);
                let removed = (before - self.obs_q.len()) as u32;
                if removed > 0 {
                    self.emit(t, TraceEvent::ObsSquash { line, removed });
                }
                self.effect.squashed_demand += 1;
                self.emit(t, TraceEvent::Q3SquashDemand { line });
                continue;
            }
            if self.prefetch_q_set.contains(&line) {
                self.effect.squashed_duplicate += 1;
                self.emit(t, TraceEvent::Q3SquashDuplicate { line });
                continue;
            }
            if self.prefetch_q.len() >= self.cfg.queues.prefetch {
                self.prefetch_q_overflow += 1;
                self.emit(t, TraceEvent::Q3Overflow { line });
                continue;
            }
            self.effect.issued += 1;
            self.prefetch_q.push_back(line);
            self.prefetch_q_set.insert(line);
            self.emit(t, TraceEvent::Q3Enqueue { line });
        }
        self.dispatch_channels(t);
    }

    // ------------------------------------------------------------------
    // Results
    // ------------------------------------------------------------------

    fn finish(self, wall_nanos: u64) -> RunResult {
        let l2_stats = *self.l2.stats();
        let elapsed = self.end_time.max(1);
        let observations_dropped = self.memproc_stats_dropped();
        let fault = self.faults.as_ref().map(|plan| FaultReport {
            seed: plan.config().seed,
            injected: plan.counts(),
            absorbed: self.faults_absorbed,
            twin: None, // filled by Experiment when a twin run is requested
        });
        self.emit(
            self.end_time,
            TraceEvent::RunEnd {
                queue2: self.obs_q.len() as u32,
                queue3: self.prefetch_q.len() as u32,
                pushes_in_flight: self.pushes_on_bus as u32,
            },
        );
        let trace = self.tracer.as_ref().map(|tracer| tracer.take());
        RunResult {
            scheme: self.scheme_label,
            app: self.app_label,
            exec_cycles: self.end_time,
            breakdown: self.breakdown,
            l2_misses: self.l2_miss_requests,
            refs: self.refs,
            inter_miss: self.inter_miss,
            prefetch: PrefetchEffect {
                replaced: l2_stats.prefetch_replaced_untouched,
                redundant: l2_stats.pushes_dropped_present,
                dropped_other: l2_stats.pushes_dropped() - l2_stats.pushes_dropped_present,
                inflight_at_end: self.prefetch_q.len() as u64 + self.pushes_on_bus,
                untouched_at_end: self.l2.prefetched_lines_of(PrefetchOrigin::Push) as u64,
                ..self.effect
            },
            ulmt: self.memproc.map(|mp| mp.stats().clone()),
            fsb_utilization: self.fsb.utilization(elapsed),
            fsb_prefetch_utilization: self.fsb.utilization_of(TrafficClass::Prefetch, elapsed),
            dram_row_hit_ratio: self.dram.stats().row_hit_ratio(),
            filter_dropped: self.filter.dropped(),
            observations_dropped,
            demand_q_overflow: self.demand_q_overflow,
            prefetch_q_overflow: self.prefetch_q_overflow,
            fault,
            trace,
            wall_nanos,
        }
    }

    fn memproc_stats_dropped(&self) -> u64 {
        self.memproc
            .as_ref()
            .map(|mp| mp.stats().dropped_observations)
            .unwrap_or(0)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum IssueOutcome {
    Continue,
    L2Blocked,
}

/// Table 2's sizing rule: the smallest power of two comfortably above the
/// workload's distinct miss lines (contiguous footprints spread uniformly
/// over the trivially-hashed sets, so `NumRows ≥ footprint` suffices).
fn table_rows_for(workload: &WorkloadSpec) -> usize {
    let footprint = workload.footprint_lines() as usize;
    footprint.next_power_of_two().max(1024)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ulmt_workloads::App;

    fn run(app: App, scheme: PrefetchScheme) -> RunResult {
        // A scaled-down machine with proportionally scaled workloads: the
        // footprint still exceeds the 32 KB L2, preserving miss behavior.
        let spec = WorkloadSpec::new(app).scale(1.0 / 16.0).iterations(3);
        SystemSim::new(SystemConfig::small(), &spec, scheme).run()
    }

    #[test]
    fn nopref_run_completes_and_accounts_time() {
        let r = run(App::Mcf, PrefetchScheme::NoPref);
        assert!(r.exec_cycles > 0);
        assert!(r.refs > 0);
        assert!(r.l2_misses > 0);
        // Accounting closes: busy + stalls = execution time (within the
        // final drain).
        let total = r.breakdown.total();
        assert!(
            (total as f64 - r.exec_cycles as f64).abs() / (r.exec_cycles as f64) < 0.05,
            "accounted {total} vs exec {}",
            r.exec_cycles
        );
        // A pointer-chasing app is dominated by BeyondL2 stall.
        assert!(r.breakdown.fraction_beyond_l2() > 0.4, "{:?}", r.breakdown);
    }

    #[test]
    fn repl_speeds_up_pointer_chasing() {
        let base = run(App::Mcf, PrefetchScheme::NoPref);
        let repl = run(App::Mcf, PrefetchScheme::Repl);
        let speedup = repl.speedup_vs(base.exec_cycles);
        assert!(speedup > 1.05, "speedup {speedup}");
        assert!(repl.prefetch.hits + repl.prefetch.delayed_hits > 0);
    }

    #[test]
    fn conven4_speeds_up_sequential_cg() {
        let base = run(App::Cg, PrefetchScheme::NoPref);
        let conv = run(App::Cg, PrefetchScheme::Conven4);
        assert!(conv.speedup_vs(base.exec_cycles) > 1.05);
        // But Conven4 does nothing for Mcf (no sequential patterns).
        let mcf_base = run(App::Mcf, PrefetchScheme::NoPref);
        let mcf_conv = run(App::Mcf, PrefetchScheme::Conven4);
        let s = mcf_conv.speedup_vs(mcf_base.exec_cycles);
        assert!(s < 1.05, "Conven4 on Mcf should be neutral, got {s}");
    }

    #[test]
    fn dependent_misses_fall_in_the_200_280_bin() {
        let r = run(App::Mcf, PrefetchScheme::NoPref);
        let fractions = r.inter_miss.fractions();
        // Bin 2 is [200,280): dependent misses arrive roughly one round
        // trip apart.
        assert!(fractions[2] > 0.5, "fractions {fractions:?}");
    }

    #[test]
    fn ulmt_stats_present_only_with_ulmt() {
        let nopref = run(App::Tree, PrefetchScheme::NoPref);
        assert!(nopref.ulmt.is_none());
        let repl = run(App::Tree, PrefetchScheme::Repl);
        let ulmt = repl.ulmt.expect("ULMT ran");
        assert!(ulmt.steps > 0);
        assert!(ulmt.occupancy.mean() > 0.0);
    }

    #[test]
    fn runs_are_deterministic() {
        let a = run(App::Gap, PrefetchScheme::Conven4Repl);
        let b = run(App::Gap, PrefetchScheme::Conven4Repl);
        assert_eq!(a.exec_cycles, b.exec_cycles);
        assert_eq!(a.l2_misses, b.l2_misses);
        assert_eq!(a.prefetch.hits, b.prefetch.hits);
    }

    #[test]
    fn fsb_utilization_grows_with_prefetching() {
        let base = run(App::Gap, PrefetchScheme::NoPref);
        let repl = run(App::Gap, PrefetchScheme::Repl);
        assert!(repl.fsb_utilization >= base.fsb_utilization);
        assert!(repl.fsb_prefetch_utilization > 0.0);
        assert_eq!(base.fsb_prefetch_utilization, 0.0);
    }

    fn run_with_queues(depths: crate::config::QueueDepths) -> RunResult {
        let mut cfg = SystemConfig::small();
        cfg.queues = depths;
        let spec = WorkloadSpec::new(App::Mcf).scale(1.0 / 16.0).iterations(3);
        SystemSim::new(cfg, &spec, PrefetchScheme::Repl).run()
    }

    /// Queue 2 drops the *oldest* observation on overflow (the paper's
    /// sliding-window semantics): a cramped queue must therefore still
    /// observe — and prefetch from — the *recent* part of the miss
    /// stream, not just its prefix.
    #[test]
    fn observation_queue_drops_oldest_on_overflow() {
        use crate::config::QueueDepths;
        let tight = run_with_queues(QueueDepths {
            demand: 16,
            observation: 2,
            prefetch: 16,
        });
        assert!(
            tight.observations_dropped > 0,
            "depth-2 queue never overflowed"
        );
        // Drop-oldest keeps the window current: the ULMT still learns
        // correlations and produces useful prefetches under pressure.
        assert!(
            tight.prefetch.hits + tight.prefetch.delayed_hits > 0,
            "drop-oldest should preserve recent observations: {:?}",
            tight.prefetch
        );
    }

    /// Overflow counters move consistently with queue pressure: shrinking
    /// a queue never reduces its overflow count.
    #[test]
    fn overflow_counters_monotone_in_queue_pressure() {
        use crate::config::QueueDepths;
        let roomy = run_with_queues(QueueDepths::default());
        let tight = run_with_queues(QueueDepths {
            demand: 16,
            observation: 2,
            prefetch: 2,
        });
        assert!(
            tight.observations_dropped >= roomy.observations_dropped,
            "tight {} < roomy {}",
            tight.observations_dropped,
            roomy.observations_dropped
        );
        assert!(
            tight.prefetch_q_overflow >= roomy.prefetch_q_overflow,
            "tight {} < roomy {}",
            tight.prefetch_q_overflow,
            roomy.prefetch_q_overflow
        );
    }

    fn white_box_sim(cfg: SystemConfig) -> SystemSim {
        let spec = WorkloadSpec::new(App::Mcf).scale(1.0 / 16.0).iterations(1);
        SystemSim::new(cfg, &spec, PrefetchScheme::Repl)
    }

    /// Regression for the cross-queue squashing bug: a prefetch matching a
    /// pending demand must remove *every* matching queue-2 observation,
    /// not just the first (duplicates arise from fault injection and from
    /// CpuPrefetch observation under verbose schemes).
    #[test]
    fn prefetch_squashes_all_matching_observations() {
        let mut sim = white_box_sim(SystemConfig::small());
        let dup = LineAddr::new(42);
        sim.obs_q
            .extend([dup, LineAddr::new(7), dup, dup, LineAddr::new(9)]);
        sim.inflight_dram.insert(dup, ReqKind::Demand);
        sim.enqueue_prefetches(vec![dup], 100);
        assert!(
            sim.obs_q.iter().all(|&o| o != dup),
            "stale duplicate observations left behind: {:?}",
            sim.obs_q
        );
        assert_eq!(sim.obs_q.len(), 2);
        assert_eq!(sim.effect.squashed_demand, 1);
        assert_eq!(sim.effect.issued, 0, "a squashed prefetch is not issued");
    }

    /// Regression for the `issued` accounting bug: requests squashed by
    /// the Filter, a pending demand, a duplicate, or queue-3 overflow
    /// must land in their own counters, and `issued` must count exactly
    /// the requests that entered queue 3.
    #[test]
    fn issued_counts_only_bus_bound_prefetches() {
        let mut cfg = SystemConfig::small();
        cfg.queues.prefetch = 2;
        let mut sim = white_box_sim(cfg);
        // Freeze dispatch so queue 3 actually fills up.
        for busy in sim.channel_busy.iter_mut() {
            *busy = true;
        }
        sim.inflight_dram.insert(LineAddr::new(30), ReqKind::Demand);
        sim.enqueue_prefetches(
            vec![
                LineAddr::new(10), // enqueued
                LineAddr::new(10), // Filter drop
                LineAddr::new(20), // enqueued
                LineAddr::new(30), // demand squash
                LineAddr::new(40), // overflow: queue 3 is full
            ],
            0,
        );
        assert_eq!(sim.effect.issued, 2);
        assert_eq!(sim.effect.squashed_filter, 1);
        assert_eq!(sim.effect.squashed_demand, 1);
        assert_eq!(sim.effect.squashed_duplicate, 0);
        assert_eq!(sim.prefetch_q_overflow, 1);
        // A second round: the queued lines are now duplicates.
        sim.filter = Filter::new(sim.cfg.filter_entries); // forget round 1
        sim.enqueue_prefetches(vec![LineAddr::new(10), LineAddr::new(20)], 1);
        assert_eq!(sim.effect.squashed_duplicate, 2);
        assert_eq!(sim.effect.issued, 2, "duplicates must not count as issued");
    }

    /// The hash-set shadow of queue 3 tracks the queue exactly through
    /// enqueues, NB squashes, and channel dispatches.
    #[test]
    fn prefetch_queue_set_stays_in_sync() {
        let mut sim = white_box_sim(SystemConfig::small());
        for busy in sim.channel_busy.iter_mut() {
            *busy = true;
        }
        let lines: Vec<LineAddr> = (0..6).map(|n| LineAddr::new(n * 3)).collect();
        sim.enqueue_prefetches(lines.clone(), 0);
        assert_eq!(sim.prefetch_q.len(), lines.len());
        // An NB demand match removes the entry from both structures.
        sim.request_at_nb(lines[2], ReqKind::Demand, 5);
        assert_eq!(sim.effect.squashed_at_nb, 1);
        assert!(!sim.prefetch_q.contains(&lines[2]));
        // Unfreeze one channel and let it dispatch.
        sim.channel_busy[0] = false;
        sim.dispatch_channels(10);
        assert_eq!(sim.prefetch_q_set.len(), sim.prefetch_q.len());
        for l in &sim.prefetch_q {
            assert!(sim.prefetch_q_set.contains(l), "set lost {l}");
        }
    }

    /// End-to-end accounting identity on a real run: every issued
    /// (queue-3) prefetch is accounted for exactly once.
    #[test]
    fn issued_prefetches_partition_exactly() {
        let r = run(App::Mcf, PrefetchScheme::Repl);
        let p = &r.prefetch;
        assert!(p.issued > 0);
        assert_eq!(
            p.issued,
            p.delayed_hits
                + p.accepted
                + p.redundant
                + p.dropped_other
                + p.squashed_at_nb
                + p.inflight_at_end,
            "issued does not partition: {p:?}"
        );
        assert_eq!(
            p.accepted,
            p.hits + p.replaced + p.untouched_at_end,
            "accepted pushes do not partition: {p:?}"
        );
    }

    /// The pathological all-depth-1 configuration is legal and must
    /// complete (slowly, lossily) rather than wedge or panic.
    #[test]
    fn depth_one_queues_complete_without_panic() {
        use crate::config::QueueDepths;
        let r = run_with_queues(QueueDepths {
            demand: 1,
            observation: 1,
            prefetch: 1,
        });
        assert!(r.exec_cycles > 0);
        assert!(r.refs > 0);
        // Every scheme in the Figure 7 set survives the same squeeze.
        for scheme in PrefetchScheme::FIGURE7 {
            let mut cfg = SystemConfig::small();
            cfg.queues = QueueDepths {
                demand: 1,
                observation: 1,
                prefetch: 1,
            };
            let spec = WorkloadSpec::new(App::Tree).scale(1.0 / 16.0).iterations(2);
            let r = SystemSim::new(cfg, &spec, scheme).run();
            assert!(r.exec_cycles > 0, "{scheme:?} wedged");
        }
    }
}
